"""Model registry tests: digest keying, tiered storage, bit-identity.

The registry's contract is that a persisted model answers exactly like
the in-memory one it was built from — same digests, same predictions to
the bit — while the memory tier's LRU accounting mirrors the
ProfileCache idiom (mem/disk hits, misses, stores, evictions).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.serve import FittedModel, ModelRegistry, ModelSpec
from repro.util.errors import ServeError

TARGETS = [32, 64, 128]


def _variant(model: FittedModel, **spec_changes) -> FittedModel:
    """The same fit under a different identity (for multi-model tests)."""
    return FittedModel(
        spec=replace(model.spec, **spec_changes),
        report=model.report,
        template=model.template,
    )


class TestModelSpec:
    def test_digest_is_stable_and_order_insensitive(self):
        a = ModelSpec(app="jacobi", train_counts=(16, 4, 8), code_version="v1")
        b = ModelSpec(app="jacobi", train_counts=(4, 8, 16), code_version="v1")
        assert a.digest() == b.digest()
        assert a.train_counts == (4, 8, 16)

    @pytest.mark.parametrize(
        "changes",
        [
            {"app": "uh3d"},
            {"machine": "cray_xt5"},
            {"train_counts": (4, 8, 32)},
            {"cache_engine": "reuse"},
            {"forms": "extended"},
            {"code_version": "v2"},
        ],
    )
    def test_every_identity_field_changes_the_digest(self, changes):
        base = ModelSpec(app="jacobi", train_counts=(4, 8, 16), code_version="v1")
        assert replace(base, **changes).digest() != base.digest()

    def test_invalid_specs_rejected(self):
        with pytest.raises(ServeError):
            ModelSpec(app="jacobi", train_counts=(4,))
        with pytest.raises(ServeError):
            ModelSpec(app="jacobi", cache_engine="quantum")
        with pytest.raises(ServeError):
            ModelSpec(app="jacobi", forms="cubist")

    def test_roundtrips_through_dict(self):
        spec = ModelSpec(
            app="jacobi",
            train_counts=(4, 8, 16),
            cache_engine="reuse",
            forms="extended",
            code_version="v1",
        )
        assert ModelSpec.from_dict(spec.to_dict()) == spec


class TestRegistryTiers:
    def test_memory_roundtrip(self, serve_model):
        reg = ModelRegistry(root=None)
        digest = reg.put(serve_model)
        assert digest == serve_model.digest
        assert serve_model.spec in reg
        assert reg.get(serve_model.spec) is serve_model
        assert reg.stats.mem_hits == 1 and reg.stats.stores == 1

    def test_miss_is_counted(self, serve_model):
        reg = ModelRegistry(root=None)
        assert reg.get(serve_model.spec) is None
        assert reg.stats.misses == 1

    def test_disk_tier_survives_memory_clear(self, tmp_path, serve_model):
        reg = ModelRegistry(tmp_path / "models")
        reg.put(serve_model)
        reg.clear_memory()
        loaded = reg.get(serve_model.spec)
        assert loaded is not None and loaded is not serve_model
        assert reg.stats.disk_hits == 1
        # the big fit matrices come back memory-mapped
        assert isinstance(loaded.report.batch.Y, np.memmap)
        assert loaded.spec == serve_model.spec

    def test_persisted_model_predicts_bit_identically(
        self, tmp_path, serve_model
    ):
        reg = ModelRegistry(tmp_path / "models")
        reg.put(serve_model)
        reg.clear_memory()
        loaded = reg.get(serve_model.spec)
        fresh = serve_model.predict(TARGETS)
        persisted = loaded.predict(TARGETS)
        assert np.array_equal(fresh.values, persisted.values)
        assert persisted.pair_keys == fresh.pair_keys
        # synthesized traces match too (the runtime-query path)
        t_fresh = serve_model.synthesize(64)
        t_loaded = loaded.synthesize(64)
        assert np.array_equal(
            t_fresh.stacked_features(), t_loaded.stacked_features()
        )

    def test_lru_eviction_counts(self, serve_model):
        reg = ModelRegistry(root=None, mem_entries=1)
        reg.put(serve_model)
        reg.put(_variant(serve_model, code_version="other-build"))
        assert reg.stats.evictions == 1
        # memory-only registry: the evicted model is gone
        assert reg.get(serve_model.spec) is None
        assert reg.stats.misses == 1

    def test_eviction_falls_back_to_disk(self, tmp_path, serve_model):
        reg = ModelRegistry(tmp_path / "models", mem_entries=1)
        reg.put(serve_model)
        reg.put(_variant(serve_model, code_version="other-build"))
        assert reg.stats.evictions == 1
        assert reg.get(serve_model.spec) is not None
        assert reg.stats.disk_hits == 1

    def test_digests_lists_both_tiers(self, tmp_path, serve_model):
        reg = ModelRegistry(tmp_path / "models", mem_entries=1)
        other = _variant(serve_model, code_version="other-build")
        reg.put(serve_model)
        reg.put(other)  # evicts serve_model from memory, both on disk
        assert set(reg.digests()) == {serve_model.digest, other.digest}
        assert len(reg) == 2

    def test_corrupt_metadata_quarantines_and_misses(
        self, tmp_path, serve_model
    ):
        # self-healing contract: corruption never surfaces as an
        # exception — the entry is quarantined and the lookup misses
        reg = ModelRegistry(tmp_path / "models")
        reg.put(serve_model)
        reg.clear_memory()
        entry = (
            tmp_path / "models" / serve_model.digest[:2] / serve_model.digest
        )
        (entry / "meta.json").write_text("{ not json")
        assert reg.get(serve_model.spec) is None
        assert reg.stats.quarantined == 1
        assert reg.stats.misses == 1
        assert not entry.exists()
        qdir = tmp_path / "models" / "quarantine"
        assert (qdir / f"{serve_model.digest}-0" / "meta.json").exists()
        assert reg.quarantined_digests() == [serve_model.digest]
        # the digest is no longer listed, so get_or_fit would refit
        assert serve_model.digest not in reg.digests()

    def test_bad_mem_entries_rejected(self):
        with pytest.raises(ServeError):
            ModelRegistry(root=None, mem_entries=0)
