"""The analytical ``reuse`` cache engine vs the exact replay engine.

Three layers of coverage:

- unit tests of the profile math (circular reuse times, congruence-class
  timelines, StatStack moments, the subset-runs fast path, cross-block
  traffic estimation);
- property tests comparing analytical hit rates against an exact
  warm+measure replay across a geometry zoo (direct-mapped, low/high
  associativity, fully associative, 1-set-1-way, non-power-of-two set
  counts) crossed with strided/random/pointer-chase/stencil streams —
  the agreement contract the guard gate enforces in production;
- engine plumbing: dispatch, profile caching and extension, metrics
  counters, the cross-engine spot-check gate (clean pass and forced
  divergence), and end-to-end ``collect_trace`` equivalence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import reuse
from repro.cache.engine import ENGINE_NAMES, ExactEngine, ReuseEngine, get_engine
from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.reuse import (
    ProfileCache,
    class_reuse_times,
    congruence_moduli_for,
    cross_block_lines,
    distance_moments,
    expected_distances,
    profile_stream,
    profiles_for,
    reuse_times,
)
from repro.cache.simulator import HierarchySimulator
from repro.instrument.collector import CollectorConfig, collect_trace
from repro.instrument.program import (
    BasicBlockSpec,
    MemInstructionSpec,
    Program,
)
from repro.memstream.generator import interleave_streams
from repro.memstream.patterns import (
    PointerChasePattern,
    RandomPattern,
    StencilPattern,
    StridedPattern,
)
from repro.obs.metrics import REGISTRY
from repro.trace.records import SourceLocation
from repro.util.errors import CollectionError

CHUNK = 1 << 16


# ----------------------------------------------------------------------
# unit tests: profile math


def test_reuse_times_known_stream():
    # stream A B A B C A ; circular wrap for first occurrences
    lines = np.array([0, 1, 0, 1, 2, 0])
    rt, n_lines = reuse_times(lines)
    assert n_lines == 3
    # A@0 wraps to A@5: gap 0; B@1 wraps to B@3: gap 3; A@2 after A@0: 1
    # B@3 after B@1: 1; C@4 wraps to itself: 5; A@5 after A@2: 2
    assert rt.tolist() == [0, 3, 1, 1, 5, 2]


def test_reuse_times_sum_invariant():
    # per line, the gaps plus the accesses themselves tile the circle:
    # sum(rt) = n * n_lines - n
    rng = np.random.default_rng(7)
    lines = rng.integers(0, 13, size=257)
    rt, n_lines = reuse_times(lines)
    assert rt.sum() == lines.shape[0] * n_lines - lines.shape[0]


def test_class_reuse_times_modulus_one_is_global():
    rng = np.random.default_rng(11)
    lines = rng.integers(0, 20, size=301)
    rt, _ = reuse_times(lines)
    np.testing.assert_array_equal(class_reuse_times(lines, 1), rt)


def test_class_reuse_times_counts_only_congruent():
    # lines 0,1,2,3 round-robin; mod 2 each class has its own timeline
    lines = np.array([0, 1, 2, 3, 0, 1, 2, 3])
    rtc = class_reuse_times(lines, 2)
    # between 0@4 and 0@0 the only mod-2-congruent access is 2@2
    assert rtc[4] == 1
    assert rtc[5] == 1  # 3@3 intervenes on class-1's timeline


def test_expected_distances_cyclic_sweep_exact():
    # unit sweep over W lines repeated: every rt = W-1, f(rt) = W-1
    w = 16
    lines = np.tile(np.arange(w), 8)
    rt, _ = reuse_times(lines)
    np.testing.assert_allclose(expected_distances(rt), w - 1.0)


def test_distance_moments_deterministic_variance_zero():
    lines = np.tile(np.arange(8), 10)
    rt, _ = reuse_times(lines)
    dist, var = distance_moments(rt)
    np.testing.assert_allclose(dist, 7.0)
    np.testing.assert_allclose(var, 0.0, atol=1e-12)


def test_subset_runs_matches_direct_argsort():
    rng = np.random.default_rng(3)
    lines = rng.integers(0, 40, size=500)
    runs = reuse._line_runs(lines)
    keep = rng.random(500) > 0.3
    sub = reuse._subset_runs(lines, runs, keep)
    direct = reuse._line_runs(lines[keep])
    # run boundaries and sorted order must agree (stable ties included)
    np.testing.assert_array_equal(sub[0], direct[0])
    np.testing.assert_array_equal(sub[2], direct[2])
    np.testing.assert_array_equal(sub[3], direct[3])


def test_congruence_moduli_for():
    det = [StridedPattern(region_bytes=4096)]
    rnd = [RandomPattern(region_bytes=4096)]
    # all-random streams carry no systematic congruence
    assert congruence_moduli_for(rnd) == ()
    assert congruence_moduli_for(rnd, [512]) == ()
    # no target set counts: the full ladder
    assert congruence_moduli_for(det) == reuse.CONGRUENCE_MODULI
    # pruned to the largest ladder modulus dividing each level
    assert congruence_moduli_for(det, [512, 1024]) == (512, 1024)
    assert congruence_moduli_for(det, [512, 512, 2048]) == (512, 2048)
    # non-power-of-two set count: largest power-of-two divisor
    assert congruence_moduli_for(det, [24]) == (8,)
    # single-set levels need no congruence at all
    assert congruence_moduli_for(det, [1]) == ()


def test_cross_block_lines():
    a = StridedPattern(region_bytes=64 * 100, base=0)
    b = StridedPattern(region_bytes=64 * 30, base=1 << 21)
    c = RandomPattern(region_bytes=64 * 50, base=2 << 21)
    streams = [([a], [100_000]), ([b, c], [10_000, 10_000])]
    extras = cross_block_lines(streams, 64)
    # block 0 sees block 1's two regions; block 1 sees block 0's one
    assert extras[0] == 30 + 50
    assert extras[1] == 100


def test_cross_block_lines_shared_region_excluded():
    shared = StridedPattern(region_bytes=64 * 100, base=0)
    other = StridedPattern(region_bytes=64 * 40, base=1 << 21)
    streams = [([shared], [10_000]), ([shared, other], [10_000, 10_000])]
    extras = cross_block_lines(streams, 64)
    # traffic to a region the block itself touches refreshes, not evicts
    assert extras[0] == 40
    assert extras[1] == 0


def test_cross_block_lines_count_bounded():
    big = RandomPattern(region_bytes=64 * 10_000, base=0)
    tiny = StridedPattern(region_bytes=64, base=1 << 21)
    streams = [([tiny], [10]), ([big], [7])]  # only 7 accesses issued
    extras = cross_block_lines(streams, 64)
    assert extras[0] == 7


# ----------------------------------------------------------------------
# property tests: analytical rates vs exact replay across the zoo

#: geometry zoo: the corners the analytical model must survive
ZOO = [
    CacheGeometry(size_bytes=64, line_size=64, associativity=1, name="one-line"),
    CacheGeometry(size_bytes=4096, line_size=64, associativity=64, name="fa"),
    CacheGeometry(size_bytes=16 * 1024, line_size=64, associativity=1, name="dm"),
    CacheGeometry(size_bytes=32 * 1024, line_size=64, associativity=2, name="2w"),
    # Cray-T3-style non-power-of-two set count (24 sets, 3 ways)
    CacheGeometry(size_bytes=24 * 3 * 64, line_size=64, associativity=3, name="t3"),
    CacheGeometry(size_bytes=1 << 20, line_size=64, associativity=16, name="16w"),
]

STREAMS = {
    "strided_unit": ([StridedPattern(region_bytes=128 * 1024)], [96_000]),
    "strided_small": ([StridedPattern(region_bytes=12 * 1024)], [48_000]),
    "stride4": (
        [StridedPattern(region_bytes=64 * 1024, stride_elements=4)],
        [64_000],
    ),
    "random": ([RandomPattern(region_bytes=256 * 1024)], [96_000]),
    "chase": ([PointerChasePattern(region_bytes=32 * 1024)], [48_000]),
    "stencil": (
        [StencilPattern(region_bytes=96 * 1024, offsets=(-1, 0, 1, -64, 64))],
        [80_000],
    ),
    "mix": (
        [
            StridedPattern(region_bytes=96 * 1024),
            RandomPattern(region_bytes=96 * 1024, base=1 << 21),
        ],
        [48_000, 48_000],
    ),
}


def _materialize(patterns, counts):
    skey = reuse.stream_key(patterns, counts, CHUNK)
    rng = reuse.profiling_rng(skey)
    idx_parts, addr_parts = [], []
    for instr_idx, addrs in interleave_streams(
        patterns, counts, rng, chunk=CHUNK
    ):
        idx_parts.append(instr_idx)
        addr_parts.append(addrs)
    return np.concatenate(idx_parts), np.concatenate(addr_parts)


def _exact_rates(patterns, counts, hierarchy):
    instr_idx, addresses = _materialize(patterns, counts)
    sim = HierarchySimulator(hierarchy)
    sim.process(addresses, instr_idx)  # warm to steady state
    sim.clear_counters()
    sim.process(addresses, instr_idx)
    return sim.result().cumulative_hit_rates()


def _reuse_rates(patterns, counts, hierarchy):
    profiles = profiles_for(
        patterns,
        counts,
        reuse.line_sizes_of(hierarchy),
        chunk=CHUNK,
        cache=ProfileCache(),
        moduli=congruence_moduli_for(
            patterns, [g.n_sets for g in hierarchy.levels]
        ),
    )
    return reuse.aggregate_rates(profiles, hierarchy)


@pytest.mark.parametrize("geometry", ZOO, ids=lambda g: g.name)
@pytest.mark.parametrize("stream", sorted(STREAMS), ids=str)
def test_reuse_matches_exact_across_zoo(geometry, stream):
    patterns, counts = STREAMS[stream]
    hierarchy = CacheHierarchy([geometry], name=f"zoo-{geometry.name}")
    exact = _exact_rates(patterns, counts, hierarchy)
    approx = _reuse_rates(patterns, counts, hierarchy)
    # the production guard gate's agreement contract
    tol = 0.05 + 0.05 * np.abs(exact)
    assert np.all(np.abs(approx - exact) <= tol), (
        f"{stream} on {geometry.name}: exact={exact}, reuse={approx}"
    )


def test_reuse_matches_exact_multi_level():
    patterns, counts = STREAMS["mix"]
    hierarchy = CacheHierarchy(
        [
            CacheGeometry(size_bytes=16 * 1024, associativity=2, name="L1"),
            CacheGeometry(size_bytes=256 * 1024, associativity=8, name="L2"),
        ],
        name="zoo-2level",
    )
    exact = _exact_rates(patterns, counts, hierarchy)
    approx = _reuse_rates(patterns, counts, hierarchy)
    assert np.all(np.abs(approx - exact) <= 0.05 + 0.05 * np.abs(exact))
    # cumulative convention: monotone non-decreasing outward
    assert np.all(np.diff(approx) >= -1e-12)


def test_fully_associative_is_near_exact():
    # FA caches have no mapping assumptions: the model should be tight.
    # One access per line (stride = line size): a 192-line cyclic sweep
    # either fits entirely or thrashes entirely under LRU.
    patterns = [StridedPattern(region_bytes=12 * 1024, stride_elements=8)]
    counts = [48_000]
    for assoc_lines, expect_hit in ((192, 1.0), (64, 0.0)):
        g = CacheGeometry(
            size_bytes=assoc_lines * 64,
            associativity=assoc_lines,
            name="fa",
        )
        hierarchy = CacheHierarchy([g], name="zoo-fa")
        approx = _reuse_rates(patterns, counts, hierarchy)
        assert approx[0] == pytest.approx(expect_hit, abs=0.02)


# ----------------------------------------------------------------------
# profile artifact: caching, extension, metrics


def _small_profile(moduli=(2, 8)):
    patterns = [StridedPattern(region_bytes=8 * 1024)]
    counts = [4_000]
    instr_idx, addresses = _materialize(patterns, counts)
    return profile_stream(instr_idx, addresses, 1, 64, moduli=moduli)


def test_profile_cache_disk_round_trip(tmp_path):
    cache = ProfileCache(tmp_path)
    profile = _small_profile()
    cache.put("k" * 64, profile)
    cache.clear()  # drop the memory tier: force the disk path
    loaded = cache.get("k" * 64)
    assert loaded is not None
    assert loaded.n_lines == profile.n_lines
    np.testing.assert_array_equal(loaded.totals, profile.totals)
    np.testing.assert_array_equal(loaded.counts, profile.counts)
    np.testing.assert_allclose(loaded.distances, profile.distances)
    np.testing.assert_allclose(
        loaded.first_distances, profile.first_distances
    )
    np.testing.assert_array_equal(loaded.first_counts, profile.first_counts)
    assert sorted(loaded.congruence) == [2, 8]
    for m in (2, 8):
        for got, want in zip(loaded.congruence[m], profile.congruence[m]):
            np.testing.assert_allclose(got, want)


def test_profile_cache_corrupt_entry_recomputed(tmp_path):
    cache = ProfileCache(tmp_path)
    cache.put("k" * 64, _small_profile())
    cache._path("k" * 64).write_bytes(b"not an npz")
    cache.clear()
    assert cache.get("k" * 64) is None  # absent/corrupt -> recompute


def test_profiles_for_extends_cached_moduli(tmp_path):
    patterns = [StridedPattern(region_bytes=8 * 1024)]
    counts = [4_000]
    cache = ProfileCache(tmp_path)
    kwargs = dict(chunk=CHUNK, cache=cache)
    profiles = profiles_for(patterns, counts, [64], moduli=(8,), **kwargs)
    assert sorted(profiles[64].congruence) == [8]
    before = REGISTRY.counter("cachesim.reuse.profile_extensions").value
    profiles = profiles_for(patterns, counts, [64], moduli=(8, 64), **kwargs)
    after = REGISTRY.counter("cachesim.reuse.profile_extensions").value
    # only the missing modulus was measured, onto the cached profile
    assert sorted(profiles[64].congruence) == [8, 64]
    assert after == before + 1


def test_profiles_shared_across_geometries():
    patterns = [RandomPattern(region_bytes=64 * 1024)]
    counts = [30_000]
    cache = ProfileCache()
    before = REGISTRY.counter("cachesim.reuse.profiles").value
    for geometry in ZOO:
        profiles_for(
            patterns, counts, [64], chunk=CHUNK, cache=cache, moduli=()
        )
    after = REGISTRY.counter("cachesim.reuse.profiles").value
    # one profile serves the whole geometry zoo
    assert after == before + 1


def test_profile_cache_tier_stats_and_eviction_metrics(tmp_path):
    cache = ProfileCache(tmp_path, mem_entries=2)
    before = REGISTRY.counter("cachesim.reuse.evictions").value
    profile = _small_profile()
    keys = [c * 64 for c in "abc"]
    for key in keys:
        cache.put(key, profile)
    # three stores through a 2-entry LRU: one eviction, mirrored
    assert cache.stats.stores == 3
    assert cache.stats.evictions == 1
    assert REGISTRY.counter("cachesim.reuse.evictions").value == before + 1
    # evicted key comes back from the disk tier; warm key from memory
    assert cache.get(keys[0]) is not None
    assert cache.get(keys[2]) is not None
    assert cache.stats.disk_hits == 1
    assert cache.stats.mem_hits == 1
    # a never-stored key is a miss on both tiers
    assert cache.get("z" * 64) is None
    assert cache.stats.misses == 1
    doc = cache.stats.to_dict()
    assert doc == {
        "mem_hits": 1,
        "disk_hits": 1,
        "misses": 1,
        "stores": 3,
        "evictions": cache.stats.evictions,
    }


def test_eval_counter_increments():
    patterns, counts = STREAMS["random"]
    hierarchy = CacheHierarchy(ZOO[:3], name="zoo-3level")
    before = REGISTRY.counter("cachesim.reuse.evals").value
    _reuse_rates(patterns, counts, hierarchy)
    after = REGISTRY.counter("cachesim.reuse.evals").value
    assert after == before + 3  # one closed-form eval per level


# ----------------------------------------------------------------------
# engine plumbing and the cross-engine guard gate


def _two_block_program():
    program = Program(name="reuse-test")
    loc = SourceLocation("blk0", file="t.c", line=1)
    program.add_block(
        BasicBlockSpec(
            block_id=0,
            location=loc,
            mem_instructions=(
                MemInstructionSpec(
                    "load", StridedPattern(region_bytes=64 * 1024), 2
                ),
                MemInstructionSpec(
                    "store", StridedPattern(region_bytes=32 * 1024), 1
                ),
            ),
            exec_count=20_000,
        )
    )
    program.add_block(
        BasicBlockSpec(
            block_id=1,
            location=SourceLocation("blk1", file="t.c", line=9),
            mem_instructions=(
                MemInstructionSpec(
                    "load", RandomPattern(region_bytes=128 * 1024), 1
                ),
            ),
            exec_count=30_000,
        )
    )
    return program.layout()


def _small_hierarchy():
    return CacheHierarchy(
        [
            CacheGeometry(size_bytes=8 * 1024, associativity=2, name="L1"),
            CacheGeometry(size_bytes=128 * 1024, associativity=8, name="L2"),
        ],
        name="test-2level",
    )


def test_get_engine_dispatch():
    assert isinstance(get_engine("exact"), ExactEngine)
    assert isinstance(get_engine("reuse"), ReuseEngine)
    with pytest.raises(ValueError, match="unknown cache engine"):
        get_engine("bogus")


def test_collector_config_validates_engine():
    assert CollectorConfig(engine="reuse").engine == "reuse"
    with pytest.raises(ValueError, match="unknown cache engine"):
        CollectorConfig(engine="bogus")
    assert "exact" in ENGINE_NAMES and "reuse" in ENGINE_NAMES


def _collect(engine):
    return collect_trace(
        _two_block_program(),
        _small_hierarchy(),
        app="reuse-test",
        rank=0,
        n_ranks=4,
        config=CollectorConfig(
            sample_accesses=30_000, max_sample_accesses=60_000, engine=engine
        ),
    )


def test_collect_trace_engines_agree():
    exact = _collect("exact")
    approx = _collect("reuse")
    schema = exact.schema
    for bid in sorted(exact.blocks):
        for ie, ia in zip(
            exact.blocks[bid].instructions, approx.blocks[bid].instructions
        ):
            he = np.asarray(ie.features[schema.hit_rate_slice])
            ha = np.asarray(ia.features[schema.hit_rate_slice])
            assert np.all(np.abs(ha - he) <= 0.05 + 0.05 * np.abs(he)), (
                f"block {bid}: exact={he}, reuse={ha}"
            )


def test_spot_check_gate_catches_divergence(monkeypatch):
    # sabotage the analytical model: every access predicted a miss
    monkeypatch.setattr(
        reuse, "hit_probability", lambda d, g, n: np.zeros_like(
            np.asarray(d, dtype=np.float64)
        )
    )
    monkeypatch.setattr(
        reuse,
        "congruent_hit_probability",
        lambda d, v, g, n, m=None: np.zeros_like(
            np.asarray(d, dtype=np.float64)
        ),
    )
    with pytest.raises(CollectionError, match="diverged from exact"):
        _collect("reuse")


def test_reuse_engine_guard_off_skips_spot_check(monkeypatch):
    from repro.guard.config import GuardConfig
    from repro.instrument.pebil import InstrumentedProgram

    called = []
    monkeypatch.setattr(
        "repro.guard.gates.cache_engine_spot_check",
        lambda *a, **k: called.append(1),
    )
    engine = ReuseEngine(guard=GuardConfig(policy="off"))
    instrumented = InstrumentedProgram(
        _two_block_program(),
        _small_hierarchy(),
        sample_accesses=30_000,
        max_sample_accesses=60_000,
        chunk=CHUNK,
    )
    report = engine.run(instrumented)
    assert not called
    assert sorted(report.observations) == [0, 1]
