"""Unit + property tests: canonical forms and model selection (§IV)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.canonical import (
    EXTENDED_FORMS,
    PAPER_FORMS,
    ConstantForm,
    ExponentialForm,
    InverseForm,
    LinearForm,
    LogarithmicForm,
    PowerForm,
    QuadraticForm,
    fit_all,
    fit_best,
)

X3 = np.array([96.0, 384.0, 1536.0])
X4 = np.array([96.0, 384.0, 1536.0, 6144.0])


class TestIndividualForms:
    def test_constant_fit(self):
        f = ConstantForm()
        params = f.fit(X3, np.array([5.0, 5.0, 5.0]))
        assert params[0] == 5.0
        np.testing.assert_allclose(f.evaluate(params, X3), 5.0)

    def test_linear_recovers_exact(self):
        f = LinearForm()
        y = 3.0 + 0.01 * X3
        params = f.fit(X3, y)
        np.testing.assert_allclose(params, [3.0, 0.01], rtol=1e-9)
        np.testing.assert_allclose(f.evaluate(params, np.array([6144.0])), 3.0 + 61.44)

    def test_log_recovers_exact(self):
        f = LogarithmicForm()
        y = 1.0 + 2.0 * np.log(X3)
        params = f.fit(X3, y)
        np.testing.assert_allclose(params, [1.0, 2.0], rtol=1e-9)

    def test_log_rejects_nonpositive_x(self):
        assert LogarithmicForm().fit(np.array([0.0, 1.0]), np.array([1.0, 2.0])) is None

    def test_exp_recovers_exact(self):
        f = ExponentialForm()
        y = 2.0 * np.exp(0.001 * X3)
        params = f.fit(X3, y)
        np.testing.assert_allclose(params, [2.0, 0.001], rtol=1e-6)

    def test_exp_negative_values(self):
        f = ExponentialForm()
        y = -2.0 * np.exp(0.001 * X3)
        params = f.fit(X3, y)
        assert params[0] == pytest.approx(-2.0, rel=1e-6)
        assert np.all(f.evaluate(params, X3) < 0)

    def test_exp_mixed_signs_rejected(self):
        assert ExponentialForm().fit(X3, np.array([-1.0, 1.0, 2.0])) is None

    def test_exp_evaluation_never_overflows(self):
        f = ExponentialForm()
        params = np.array([1.0, 10.0])
        out = f.evaluate(params, np.array([1e6]))
        assert np.isfinite(out).all()

    def test_power_recovers_inverse_scaling(self):
        """Strong scaling's 1/P shape is exactly a power law (§VI)."""
        f = PowerForm()
        y = 1e9 / X3
        params = f.fit(X3, y)
        assert params[1] == pytest.approx(-1.0, rel=1e-9)
        pred = f.evaluate(params, np.array([6144.0]))
        assert pred[0] == pytest.approx(1e9 / 6144.0, rel=1e-6)

    def test_inverse_recovers_exact(self):
        f = InverseForm()
        y = 2.0 + 300.0 / X3
        params = f.fit(X3, y)
        np.testing.assert_allclose(params, [2.0, 300.0], rtol=1e-9)

    def test_quadratic_needs_four_points(self):
        # guarded via min_points: fit_all must not offer quadratic on 3 pts
        results = fit_all(X3, np.array([1.0, 2.0, 3.0]), EXTENDED_FORMS)
        assert "quadratic" not in {r.form.name for r in results}
        results4 = fit_all(X4, np.array([1.0, 2.0, 4.0, 9.0]), EXTENDED_FORMS)
        assert "quadratic" in {r.form.name for r in results4}

    def test_describe_strings(self):
        for form in EXTENDED_FORMS:
            params = form.fit(X4, np.array([1.0, 2.0, 3.0, 4.0]))
            if params is not None:
                assert isinstance(form.describe(params), str)


class TestSelection:
    def test_constant_wins_flat_data(self):
        best = fit_best(X3, np.array([7.0, 7.0, 7.0]))
        assert best.form.name == "constant"

    def test_linear_wins_linear_data(self):
        best = fit_best(X3, 1.0 + 0.5 * X3)
        assert best.form.name == "linear"

    def test_log_wins_log_data(self):
        best = fit_best(X3, 2.0 + 3.0 * np.log(X3))
        assert best.form.name == "log"

    def test_exp_wins_exp_data(self):
        best = fit_best(X3, 0.5 * np.exp(0.002 * X3))
        assert best.form.name == "exp"

    def test_fig4_shape_linear_hit_rate(self):
        """Fig. 4: rising L2 hit rate best captured by the linear form."""
        x = np.array([1024.0, 2048.0, 4096.0])
        y = 0.10 + 3e-5 * x  # gently rising rate
        assert fit_best(x, y).form.name == "linear"

    def test_fig5_shape_log_memops(self):
        """Fig. 5: memory-op counts growing like log(cores)."""
        x = np.array([1024.0, 2048.0, 4096.0])
        y = 1e9 * np.log(x) - 5e9
        assert fit_best(x, y).form.name == "log"

    def test_parsimony_tie_break(self):
        # all-zero data: every form fits exactly; constant must win
        best = fit_best(X3, np.zeros(3))
        assert best.form.name == "constant"

    def test_results_ordered_best_first(self):
        results = fit_all(X3, 2.0 + 3.0 * np.log(X3))
        assert results[0].form.name == "log"
        assert results[0].sse <= results[-1].sse + 1e-9

    def test_duplicate_core_counts_rejected(self):
        with pytest.raises(ValueError):
            fit_best(np.array([8.0, 8.0, 16.0]), np.array([1.0, 2.0, 3.0]))

    def test_nonfinite_rejected(self):
        with pytest.raises(Exception):
            fit_best(X3, np.array([1.0, np.nan, 2.0]))

    def test_extended_forms_capture_strong_scaling(self):
        """§VI's conjecture: more forms reduce extrapolation error."""
        y = 1e10 / X3  # per-task counts under strong scaling
        paper_best = fit_best(X3, y, PAPER_FORMS)
        ext_best = fit_best(X3, y, EXTENDED_FORMS)
        true = 1e10 / 6144.0
        paper_err = abs(paper_best.predict(6144.0) - true) / true
        ext_err = abs(ext_best.predict(6144.0) - true) / true
        assert ext_err < 0.01
        assert ext_err < paper_err

    @given(
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-0.5, max_value=0.5),
    )
    @settings(max_examples=50, deadline=None)
    def test_linear_data_always_recovered(self, a, b):
        y = a + b * X3
        results = fit_all(X3, y)
        best = results[0]
        pred = best.predict(X3)
        np.testing.assert_allclose(pred, y, atol=1e-6 + 1e-6 * np.abs(y).max())

    @given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=3, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_some_form_always_fits_positive_data(self, ys):
        best = fit_best(X3, np.array(ys))
        assert np.isfinite(best.sse)

    def test_proportional_series_choose_same_form(self):
        """LS fits commute with scaling: k*y picks the same form as y.

        This is what keeps extrapolated per-iteration ratios exact even
        when absolute counts extrapolate imperfectly (DESIGN.md §5).
        """
        y = 1e10 / X3
        for k in (3.0, 7.0, 0.25):
            a = fit_best(X3, y)
            b = fit_best(X3, k * y)
            assert a.form.name == b.form.name
            ratio = b.predict(6144.0) / a.predict(6144.0)
            assert ratio == pytest.approx(k, rel=1e-9)
