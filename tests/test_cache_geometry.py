"""Unit tests: cache geometry and hierarchy configuration."""

import pytest

from repro.cache.configs import (
    NAMED_HIERARCHIES,
    blue_waters_p1,
    get_hierarchy,
    system_a,
    system_b,
)
from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import CacheHierarchy
from repro.util.units import KB, MB
from repro.util.validation import ValidationError


class TestCacheGeometry:
    def test_derived_quantities(self):
        g = CacheGeometry(size_bytes=32 * KB, line_size=64, associativity=8)
        assert g.n_lines == 512
        assert g.n_sets == 64

    def test_non_power_of_two_sizes_allowed(self):
        # Table III's caches: 12KB 3-way and 56KB 7-way
        g12 = CacheGeometry(size_bytes=12 * KB, line_size=64, associativity=3)
        assert g12.n_sets == 64
        g56 = CacheGeometry(size_bytes=56 * KB, line_size=64, associativity=7)
        assert g56.n_sets == 128

    def test_rejects_indivisible_lines(self):
        with pytest.raises(ValidationError):
            CacheGeometry(size_bytes=1000, line_size=64, associativity=1)

    def test_rejects_indivisible_sets(self):
        with pytest.raises(ValidationError):
            CacheGeometry(size_bytes=64 * 10, line_size=64, associativity=3)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValidationError):
            CacheGeometry(size_bytes=4096, line_size=48, associativity=1)

    def test_fully_associative(self):
        g = CacheGeometry(size_bytes=4 * KB, line_size=64, associativity=64)
        assert g.n_sets == 1

    def test_describe_mentions_size(self):
        g = CacheGeometry(size_bytes=56 * KB, line_size=64, associativity=7, name="L1")
        assert "56KB" in g.describe()


class TestCacheHierarchy:
    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            CacheHierarchy([])

    def test_rejects_shrinking_levels(self):
        with pytest.raises(ValidationError):
            CacheHierarchy(
                [
                    CacheGeometry(1 * MB, name="L1"),
                    CacheGeometry(32 * KB, name="L2"),
                ]
            )

    def test_with_level_replaces(self):
        h = blue_waters_p1()
        new_l1 = CacheGeometry(56 * KB, line_size=64, associativity=7, name="L1")
        h2 = h.with_level(0, new_l1)
        assert h2.levels[0].size_bytes == 56 * KB
        assert h.levels[0].size_bytes == 32 * KB  # original untouched
        assert h2.levels[1:] == h.levels[1:]

    def test_with_level_bounds(self):
        with pytest.raises(IndexError):
            blue_waters_p1().with_level(9, CacheGeometry(64 * KB))

    def test_level_names(self):
        assert blue_waters_p1().level_names == ["L1", "L2", "L3"]


class TestNamedConfigs:
    def test_all_named_hierarchies_construct(self):
        for name in NAMED_HIERARCHIES:
            h = get_hierarchy(name)
            assert h.n_levels >= 2

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_hierarchy("cray_xt9000")

    def test_table3_pair_differs_only_in_l1(self):
        a, b = system_a(), system_b()
        assert a.levels[0].size_bytes == 12 * KB
        assert b.levels[0].size_bytes == 56 * KB
        assert a.levels[1:] == b.levels[1:]
