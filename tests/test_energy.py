"""Unit tests: power/energy modeling and the DVFS planner."""

import numpy as np
import pytest

from repro.energy.dvfs import DvfsPlan, plan_dvfs
from repro.energy.power import EnergyModel, PowerParameters
from repro.psins.convolution import ComputationModel
from repro.psins.replay import UniformTimer, replay_job
from repro.simmpi.runtime import run_job
from repro.trace.features import FeatureSchema
from repro.trace.records import BasicBlockRecord, InstructionRecord, SourceLocation
from repro.trace.tracefile import TraceFile


def two_block_trace(machine):
    """Block 0: memory-bound streaming; block 1: compute-bound FMA."""
    schema = FeatureSchema(machine.hierarchy.level_names)
    trace = TraceFile(
        app="e", rank=0, n_ranks=4, target=machine.hierarchy.name, schema=schema
    )
    mem_block = BasicBlockRecord(
        block_id=0, location=SourceLocation(function="stream")
    )
    mem_block.instructions.append(
        InstructionRecord(
            instr_id=0,
            kind="load",
            features=schema.vector_from_dict(
                {
                    "exec_count": 1e6,
                    "mem_ops": 8e6,
                    "loads": 8e6,
                    "ref_bytes": 8.0,
                    "hit_rate_L1": 0.2,
                    "hit_rate_L2": 0.4,
                    "hit_rate_L3": 0.6,
                }
            ),
        )
    )
    fp_block = BasicBlockRecord(block_id=1, location=SourceLocation(function="fma"))
    fp_block.instructions.append(
        InstructionRecord(
            instr_id=0,
            kind="fp",
            features=schema.vector_from_dict(
                {"exec_count": 1e6, "fp_fma": 5e7, "ilp": 1.0}
            ),
        )
    )
    trace.add_block(mem_block)
    trace.add_block(fp_block)
    return trace


@pytest.fixture(scope="module")
def energy_model(bw_machine):
    comp = ComputationModel(two_block_trace(bw_machine), bw_machine)
    return EnergyModel(comp, PowerParameters())


class TestPowerModel:
    def test_power_within_envelope(self, energy_model):
        params = energy_model.power
        for bid in (0, 1):
            p = energy_model.block_power_w(bid)
            assert params.static_w <= p <= params.max_power_w

    def test_memory_block_mem_dominated(self, energy_model):
        mem = energy_model.block(0)
        fp = energy_model.block(1)
        assert mem.mem_activity > mem.core_activity
        assert fp.core_activity > fp.mem_activity

    def test_energy_positive_and_consistent(self, energy_model):
        for bid in (0, 1):
            b = energy_model.block(bid)
            assert b.energy_j == pytest.approx(b.time_s * b.power_w)
        assert energy_model.traced_task_energy_j() > 0

    def test_unknown_block(self, energy_model):
        with pytest.raises(KeyError):
            energy_model.block(42)

    def test_power_parameters_validated(self):
        with pytest.raises(Exception):
            PowerParameters(static_w=0.0)

    def test_job_energy(self, energy_model, bw_machine):
        def fn(comm):
            comm.compute(0, 100)
            comm.compute(1, 100)
            comm.barrier()

        job = run_job("e", 4, fn)
        timer = UniformTimer(energy_model.computation.iteration_time_s)
        replay = replay_job(job, timer, bw_machine.network)
        result = energy_model.job_energy(job, replay)
        assert result.compute_energy_j > 0
        assert result.idle_energy_j >= 0
        assert result.total_energy_j >= result.compute_energy_j

    def test_imbalance_raises_idle_energy(self, energy_model, bw_machine):
        def balanced(comm):
            comm.compute(0, 100)
            comm.barrier()

        def imbalanced(comm):
            comm.compute(0, 100 * (1 + comm.rank))
            comm.barrier()

        timer = UniformTimer(energy_model.computation.iteration_time_s)
        jobs = [run_job("b", 4, balanced), run_job("i", 4, imbalanced)]
        results = [
            energy_model.job_energy(j, replay_job(j, timer, bw_machine.network))
            for j in jobs
        ]
        # imbalance -> more waiting at the barrier -> more idle energy
        # per unit of compute energy
        ratio_balanced = results[0].idle_energy_j / results[0].compute_energy_j
        ratio_imbalanced = results[1].idle_energy_j / results[1].compute_energy_j
        assert ratio_imbalanced > ratio_balanced


class TestDvfs:
    def test_memory_bound_block_downclocked(self, energy_model):
        plan = plan_dvfs(energy_model, max_slowdown=0.05)
        assert plan.choices[0].frequency < 1.0  # streaming block
        assert plan.choices[1].frequency == 1.0  # fp-bound block

    def test_savings_positive_slowdown_bounded(self, energy_model):
        plan = plan_dvfs(energy_model, max_slowdown=0.05)
        assert plan.energy_savings() > 0.0
        assert plan.slowdown() <= 0.05 + 1e-9

    def test_zero_budget_keeps_nominal_time(self, energy_model):
        plan = plan_dvfs(energy_model, max_slowdown=0.0)
        assert plan.slowdown() <= 1e-9
        # the memory-bound block can still save energy at zero slowdown
        # (its time barely depends on frequency under full overlap)
        assert plan.energy_j <= plan.baseline_energy_j

    def test_bigger_budget_saves_more(self, energy_model):
        tight = plan_dvfs(energy_model, max_slowdown=0.01)
        loose = plan_dvfs(energy_model, max_slowdown=0.20)
        assert loose.energy_savings() >= tight.energy_savings()

    def test_frequency_ladder_validated(self, energy_model):
        with pytest.raises(ValueError):
            plan_dvfs(energy_model, frequencies=(0.5, 0.8))
        with pytest.raises(Exception):
            plan_dvfs(energy_model, frequencies=(0.0, 1.0))
