"""Unit + property tests: the vectorized cache simulator.

The central check is bit-exact agreement with the scalar reference
implementation over every access-pattern class, across chunk boundaries.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.reference import ReferenceCacheLevel, simulate_reference
from repro.cache.simulator import HierarchySimulator
from repro.memstream.patterns import (
    ConstantPattern,
    GatherScatterPattern,
    RandomPattern,
    StencilPattern,
    StridedPattern,
)
from repro.util.rng import stream
from repro.util.units import KB


def tiny_hierarchy():
    return CacheHierarchy(
        [
            CacheGeometry(1 * KB, line_size=64, associativity=2, name="L1"),
            CacheGeometry(4 * KB, line_size=64, associativity=4, name="L2"),
        ],
        name="tiny",
    )


class TestAgainstReference:
    @pytest.mark.parametrize(
        "pattern",
        [
            StridedPattern(region_bytes=8 * KB),
            StridedPattern(region_bytes=2 * KB),
            StridedPattern(region_bytes=16 * KB, stride_elements=8),
            RandomPattern(region_bytes=32 * KB),
            GatherScatterPattern(region_bytes=16 * KB, locality=0.6),
            StencilPattern(region_bytes=8 * KB, offsets=(-17, -1, 0, 1, 17)),
            ConstantPattern(region_bytes=64),
        ],
        ids=lambda p: type(p).__name__ + str(p.region_bytes),
    )
    @pytest.mark.parametrize("chunk", [97, 1024])
    def test_hit_counts_match_reference(self, pattern, chunk):
        h = tiny_hierarchy()
        addrs = pattern.addresses(0, 6000, stream("ref-test"))
        sim = HierarchySimulator(h)
        for i in range(0, len(addrs), chunk):
            sim.process(addrs[i : i + chunk])
        vec_hits = [lv.hits for lv in sim.result().levels]
        _, ref_hits = simulate_reference(h, addrs)
        assert vec_hits == ref_hits

    @given(
        st.lists(st.integers(min_value=0, max_value=4 * KB - 1), min_size=1, max_size=400),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_streams_match_reference(self, raw_addrs, chunk):
        """Adversarial random address lists, arbitrary chunking."""
        h = tiny_hierarchy()
        addrs = np.asarray(raw_addrs, dtype=np.int64)
        sim = HierarchySimulator(h)
        for i in range(0, len(addrs), chunk):
            sim.process(addrs[i : i + chunk])
        vec_hits = [lv.hits for lv in sim.result().levels]
        _, ref_hits = simulate_reference(h, addrs)
        assert vec_hits == ref_hits


class TestSemantics:
    def test_cold_start_all_misses(self):
        h = tiny_hierarchy()
        sim = HierarchySimulator(h)
        # distinct lines: every access cold-misses everywhere
        addrs = np.arange(16, dtype=np.int64) * 64
        sim.process(addrs)
        res = sim.result()
        assert res.levels[0].hits == 0
        assert res.levels[1].hits == 0
        assert res.total_accesses == 16

    def test_immediate_reuse_hits_l1(self):
        sim = HierarchySimulator(tiny_hierarchy())
        sim.process(np.array([0, 0, 0, 0], dtype=np.int64))
        assert sim.result().levels[0].hits == 3

    def test_l1_eviction_caught_by_l2(self):
        h = tiny_hierarchy()  # L1: 16 lines, 2-way, 8 sets
        sim = HierarchySimulator(h)
        # 3 lines mapping to the same L1 set (stride = 8 sets * 64B)
        lines = np.array([0, 512, 1024], dtype=np.int64) * 8  # 0, 4096, 8192
        seq = np.concatenate([lines, lines])
        sim.process(seq)
        res = sim.result()
        # second round: all L1 misses (2-way set overflows with 3 lines,
        # LRU evicts each before reuse), but L2 (4-way) holds them
        assert res.levels[0].hits == 0
        assert res.levels[1].hits == 3

    def test_lru_order_within_set(self):
        # associativity-2 set; access A, B, A, C: B is LRU at C's miss
        g = CacheGeometry(128, line_size=64, associativity=2)  # 1 set
        h = CacheHierarchy([g], name="one-set")
        sim = HierarchySimulator(h)
        a, b, c = 0, 64, 128
        sim.process(np.array([a, b, a, c, a, b], dtype=np.int64))
        res = sim.result()
        # hits: a(3rd), a(5th); b at 6th was evicted by c -> miss
        assert res.levels[0].hits == 2

    def test_working_set_fits_second_pass_all_hits(self):
        h = tiny_hierarchy()
        p = StridedPattern(region_bytes=512)  # 8 lines << L1
        addrs = p.addresses(0, 128, stream("fits"))
        sim = HierarchySimulator(h)
        sim.process(addrs)
        res = sim.result()
        # 8 cold misses; everything else L1-hits
        assert res.levels[0].hits == 128 - 8

    def test_per_instruction_attribution(self):
        h = tiny_hierarchy()
        sim = HierarchySimulator(h)
        addrs = np.array([0, 4096, 0, 4096, 0, 4096], dtype=np.int64)
        instr = np.array([0, 1, 0, 1, 0, 1], dtype=np.int32)
        sim.process(addrs, instr)
        lv0 = sim.result().levels[0]
        assert lv0.instr_accesses[0] == 3 and lv0.instr_accesses[1] == 3
        # each instruction re-touches its own line (different sets)
        assert lv0.instr_hits[0] == 2 and lv0.instr_hits[1] == 2

    def test_instr_idx_shape_mismatch_rejected(self):
        sim = HierarchySimulator(tiny_hierarchy())
        with pytest.raises(ValueError):
            sim.process(np.zeros(4, dtype=np.int64), np.zeros(3, dtype=np.int32))

    def test_reset_clears_everything(self):
        sim = HierarchySimulator(tiny_hierarchy())
        sim.process(np.zeros(100, dtype=np.int64))
        sim.reset()
        res = sim.result()
        assert res.total_accesses == 0
        assert all(lv.hits == 0 for lv in res.levels)
        sim.process(np.zeros(1, dtype=np.int64))
        assert sim.result().levels[0].hits == 0  # cold again

    def test_clear_counters_keeps_cache_warm(self):
        sim = HierarchySimulator(tiny_hierarchy())
        sim.process(np.zeros(10, dtype=np.int64))
        sim.clear_counters()
        sim.process(np.zeros(1, dtype=np.int64))
        res = sim.result()
        assert res.total_accesses == 1
        assert res.levels[0].hits == 1  # line still resident

    def test_empty_chunk(self):
        sim = HierarchySimulator(tiny_hierarchy())
        sim.process(np.empty(0, dtype=np.int64))
        assert sim.result().total_accesses == 0


class TestResultMetrics:
    def test_cumulative_hit_rates_monotone(self):
        sim = HierarchySimulator(tiny_hierarchy())
        p = RandomPattern(region_bytes=16 * KB)
        sim.process(p.addresses(0, 20_000, stream("cum")))
        rates = sim.result().cumulative_hit_rates()
        assert np.all(np.diff(rates) >= 0)
        assert 0.0 <= rates[0] <= rates[-1] <= 1.0

    def test_cumulative_hit_rates_empty(self):
        rates = HierarchySimulator(tiny_hierarchy()).result().cumulative_hit_rates()
        np.testing.assert_array_equal(rates, [0.0, 0.0])

    def test_instruction_cumulative_hit_rates_shape(self):
        sim = HierarchySimulator(tiny_hierarchy())
        addrs = np.array([0, 0, 64, 64], dtype=np.int64)
        sim.process(addrs, np.array([0, 0, 1, 1], dtype=np.int32))
        mat = sim.result().instruction_cumulative_hit_rates(2)
        assert mat.shape == (2, 2)
        assert np.all(mat >= 0) and np.all(mat <= 1)

    def test_local_hit_rate(self):
        sim = HierarchySimulator(tiny_hierarchy())
        sim.process(np.array([0, 0], dtype=np.int64))
        assert sim.result().levels[0].local_hit_rate == 0.5


class TestReferenceLevel:
    def test_basic_lru(self):
        g = CacheGeometry(128, line_size=64, associativity=2)
        lv = ReferenceCacheLevel(g)
        assert lv.access(0) is False
        assert lv.access(0) is True
        assert lv.access(64) is False
        assert lv.access(128) is False  # evicts line 0 (LRU)
        assert lv.access(0) is False
