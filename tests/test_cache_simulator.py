"""Unit + property tests: the vectorized cache simulator.

The central check is bit-exact agreement with the scalar reference
implementation over every access-pattern class, across chunk boundaries.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.reference import ReferenceCacheLevel, simulate_reference
from repro.cache.simulator import HierarchySimulator
from repro.memstream.patterns import (
    ConstantPattern,
    GatherScatterPattern,
    RandomPattern,
    StencilPattern,
    StridedPattern,
)
from repro.util.rng import stream
from repro.util.units import KB


def tiny_hierarchy():
    return CacheHierarchy(
        [
            CacheGeometry(1 * KB, line_size=64, associativity=2, name="L1"),
            CacheGeometry(4 * KB, line_size=64, associativity=4, name="L2"),
        ],
        name="tiny",
    )


class TestAgainstReference:
    @pytest.mark.parametrize(
        "pattern",
        [
            StridedPattern(region_bytes=8 * KB),
            StridedPattern(region_bytes=2 * KB),
            StridedPattern(region_bytes=16 * KB, stride_elements=8),
            RandomPattern(region_bytes=32 * KB),
            GatherScatterPattern(region_bytes=16 * KB, locality=0.6),
            StencilPattern(region_bytes=8 * KB, offsets=(-17, -1, 0, 1, 17)),
            ConstantPattern(region_bytes=64),
        ],
        ids=lambda p: type(p).__name__ + str(p.region_bytes),
    )
    @pytest.mark.parametrize("chunk", [97, 1024])
    def test_hit_counts_match_reference(self, pattern, chunk):
        h = tiny_hierarchy()
        addrs = pattern.addresses(0, 6000, stream("ref-test"))
        sim = HierarchySimulator(h)
        for i in range(0, len(addrs), chunk):
            sim.process(addrs[i : i + chunk])
        vec_hits = [lv.hits for lv in sim.result().levels]
        _, ref_hits = simulate_reference(h, addrs)
        assert vec_hits == ref_hits

    @given(
        st.lists(st.integers(min_value=0, max_value=4 * KB - 1), min_size=1, max_size=400),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_streams_match_reference(self, raw_addrs, chunk):
        """Adversarial random address lists, arbitrary chunking."""
        h = tiny_hierarchy()
        addrs = np.asarray(raw_addrs, dtype=np.int64)
        sim = HierarchySimulator(h)
        for i in range(0, len(addrs), chunk):
            sim.process(addrs[i : i + chunk])
        vec_hits = [lv.hits for lv in sim.result().levels]
        _, ref_hits = simulate_reference(h, addrs)
        assert vec_hits == ref_hits


class TestSemantics:
    def test_cold_start_all_misses(self):
        h = tiny_hierarchy()
        sim = HierarchySimulator(h)
        # distinct lines: every access cold-misses everywhere
        addrs = np.arange(16, dtype=np.int64) * 64
        sim.process(addrs)
        res = sim.result()
        assert res.levels[0].hits == 0
        assert res.levels[1].hits == 0
        assert res.total_accesses == 16

    def test_immediate_reuse_hits_l1(self):
        sim = HierarchySimulator(tiny_hierarchy())
        sim.process(np.array([0, 0, 0, 0], dtype=np.int64))
        assert sim.result().levels[0].hits == 3

    def test_l1_eviction_caught_by_l2(self):
        h = tiny_hierarchy()  # L1: 16 lines, 2-way, 8 sets
        sim = HierarchySimulator(h)
        # 3 lines mapping to the same L1 set (stride = 8 sets * 64B)
        lines = np.array([0, 512, 1024], dtype=np.int64) * 8  # 0, 4096, 8192
        seq = np.concatenate([lines, lines])
        sim.process(seq)
        res = sim.result()
        # second round: all L1 misses (2-way set overflows with 3 lines,
        # LRU evicts each before reuse), but L2 (4-way) holds them
        assert res.levels[0].hits == 0
        assert res.levels[1].hits == 3

    def test_lru_order_within_set(self):
        # associativity-2 set; access A, B, A, C: B is LRU at C's miss
        g = CacheGeometry(128, line_size=64, associativity=2)  # 1 set
        h = CacheHierarchy([g], name="one-set")
        sim = HierarchySimulator(h)
        a, b, c = 0, 64, 128
        sim.process(np.array([a, b, a, c, a, b], dtype=np.int64))
        res = sim.result()
        # hits: a(3rd), a(5th); b at 6th was evicted by c -> miss
        assert res.levels[0].hits == 2

    def test_working_set_fits_second_pass_all_hits(self):
        h = tiny_hierarchy()
        p = StridedPattern(region_bytes=512)  # 8 lines << L1
        addrs = p.addresses(0, 128, stream("fits"))
        sim = HierarchySimulator(h)
        sim.process(addrs)
        res = sim.result()
        # 8 cold misses; everything else L1-hits
        assert res.levels[0].hits == 128 - 8

    def test_per_instruction_attribution(self):
        h = tiny_hierarchy()
        sim = HierarchySimulator(h)
        addrs = np.array([0, 4096, 0, 4096, 0, 4096], dtype=np.int64)
        instr = np.array([0, 1, 0, 1, 0, 1], dtype=np.int32)
        sim.process(addrs, instr)
        lv0 = sim.result().levels[0]
        assert lv0.instr_accesses[0] == 3 and lv0.instr_accesses[1] == 3
        # each instruction re-touches its own line (different sets)
        assert lv0.instr_hits[0] == 2 and lv0.instr_hits[1] == 2

    def test_instr_idx_shape_mismatch_rejected(self):
        sim = HierarchySimulator(tiny_hierarchy())
        with pytest.raises(ValueError):
            sim.process(np.zeros(4, dtype=np.int64), np.zeros(3, dtype=np.int32))

    def test_reset_clears_everything(self):
        sim = HierarchySimulator(tiny_hierarchy())
        sim.process(np.zeros(100, dtype=np.int64))
        sim.reset()
        res = sim.result()
        assert res.total_accesses == 0
        assert all(lv.hits == 0 for lv in res.levels)
        sim.process(np.zeros(1, dtype=np.int64))
        assert sim.result().levels[0].hits == 0  # cold again

    def test_clear_counters_keeps_cache_warm(self):
        sim = HierarchySimulator(tiny_hierarchy())
        sim.process(np.zeros(10, dtype=np.int64))
        sim.clear_counters()
        sim.process(np.zeros(1, dtype=np.int64))
        res = sim.result()
        assert res.total_accesses == 1
        assert res.levels[0].hits == 1  # line still resident

    def test_empty_chunk(self):
        sim = HierarchySimulator(tiny_hierarchy())
        sim.process(np.empty(0, dtype=np.int64))
        assert sim.result().total_accesses == 0


class TestResultMetrics:
    def test_cumulative_hit_rates_monotone(self):
        sim = HierarchySimulator(tiny_hierarchy())
        p = RandomPattern(region_bytes=16 * KB)
        sim.process(p.addresses(0, 20_000, stream("cum")))
        rates = sim.result().cumulative_hit_rates()
        assert np.all(np.diff(rates) >= 0)
        assert 0.0 <= rates[0] <= rates[-1] <= 1.0

    def test_cumulative_hit_rates_empty(self):
        rates = HierarchySimulator(tiny_hierarchy()).result().cumulative_hit_rates()
        np.testing.assert_array_equal(rates, [0.0, 0.0])

    def test_instruction_cumulative_hit_rates_shape(self):
        sim = HierarchySimulator(tiny_hierarchy())
        addrs = np.array([0, 0, 64, 64], dtype=np.int64)
        sim.process(addrs, np.array([0, 0, 1, 1], dtype=np.int32))
        mat = sim.result().instruction_cumulative_hit_rates(2)
        assert mat.shape == (2, 2)
        assert np.all(mat >= 0) and np.all(mat <= 1)

    def test_local_hit_rate(self):
        sim = HierarchySimulator(tiny_hierarchy())
        sim.process(np.array([0, 0], dtype=np.int64))
        assert sim.result().levels[0].local_hit_rate == 0.5


class TestReferenceLevel:
    def test_basic_lru(self):
        g = CacheGeometry(128, line_size=64, associativity=2)
        lv = ReferenceCacheLevel(g)
        assert lv.access(0) is False
        assert lv.access(0) is True
        assert lv.access(64) is False
        assert lv.access(128) is False  # evicts line 0 (LRU)
        assert lv.access(0) is False


def _geometry_zoo():
    """Hierarchies chosen to hit every specialized replay path."""
    return [
        # standard nested pow2 (sorted fast path, round replay)
        tiny_hierarchy(),
        # direct-mapped at both levels (shifted-compare specialization)
        CacheHierarchy(
            [
                CacheGeometry(1 * KB, line_size=64, associativity=1, name="L1"),
                CacheGeometry(4 * KB, line_size=64, associativity=1, name="L2"),
            ],
            name="direct-mapped",
        ),
        # fully-associative L1 (single set: dict-LRU specialization)
        CacheHierarchy(
            [
                CacheGeometry(512, line_size=64, associativity=8, name="L1"),
                CacheGeometry(4 * KB, line_size=64, associativity=8, name="L2"),
            ],
            name="fully-assoc-l1",
        ),
        # non-power-of-two set counts (modulo indexing, legacy path)
        CacheHierarchy(
            [
                CacheGeometry(3 * KB, line_size=64, associativity=1, name="L1"),
                CacheGeometry(12 * KB, line_size=64, associativity=4, name="L2"),
            ],
            name="non-pow2",
        ),
        # mixed line sizes (nested-set-bits precondition fails)
        CacheHierarchy(
            [
                CacheGeometry(1 * KB, line_size=64, associativity=2, name="L1"),
                CacheGeometry(4 * KB, line_size=128, associativity=4, name="L2"),
            ],
            name="mixed-lines",
        ),
        # outward-decreasing set count (nested ordering fails)
        CacheHierarchy(
            [
                CacheGeometry(2 * KB, line_size=64, associativity=2, name="L1"),
                CacheGeometry(4 * KB, line_size=64, associativity=32, name="L2"),
            ],
            name="decreasing-sets",
        ),
    ]


def _served_levels(hierarchy, addrs, chunk):
    """Per-access served level via unique per-access instruction ids.

    Tagging access *i* with instruction id *i* turns the per-instruction
    hit counters into a per-access hit matrix, which pins down the full
    hit/miss sequence at every level — a much stronger equivalence check
    than aggregate hit counts.
    """
    n = len(addrs)
    sim = HierarchySimulator(hierarchy)
    for i in range(0, n, chunk):
        sub = addrs[i : i + chunk]
        sim.process(sub, np.arange(i, i + len(sub), dtype=np.int64))
    result = sim.result()
    served = np.full(n, len(result.levels), dtype=np.int32)
    for j in reversed(range(len(result.levels))):
        hits = result.levels[j].instr_hits
        idx = np.flatnonzero(hits > 0)
        served[idx] = j
    return served, [lv.hits for lv in result.levels]


class TestFastPathEquivalence:
    """The rewritten simulator against the scalar reference, per access.

    Covers every replay specialization (round/dense, direct-mapped,
    fully-associative, legacy non-nested) x pattern class, on the full
    miss-stream cascade.
    """

    @pytest.mark.parametrize(
        "hierarchy", _geometry_zoo(), ids=lambda h: h.name
    )
    @pytest.mark.parametrize(
        "pattern",
        [
            StridedPattern(region_bytes=8 * KB),
            StridedPattern(region_bytes=16 * KB, stride_elements=8),
            RandomPattern(region_bytes=32 * KB),
            GatherScatterPattern(region_bytes=16 * KB, locality=0.6),
        ],
        ids=lambda p: type(p).__name__,
    )
    def test_served_level_sequence_matches_reference(self, hierarchy, pattern):
        addrs = pattern.addresses(0, 4000, stream("fastpath", hierarchy.name))
        served, level_hits = _served_levels(hierarchy, addrs, chunk=997)
        ref_served, ref_hits = simulate_reference(hierarchy, addrs)
        np.testing.assert_array_equal(served, ref_served)
        assert level_hits == ref_hits

    @given(
        st.integers(min_value=0, max_value=len(_geometry_zoo()) - 1),
        st.lists(
            st.integers(min_value=0, max_value=16 * KB - 1),
            min_size=1,
            max_size=300,
        ),
        st.integers(min_value=1, max_value=97),
    )
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_streams_served_levels(self, geo_idx, raw_addrs, chunk):
        hierarchy = _geometry_zoo()[geo_idx]
        addrs = np.asarray(raw_addrs, dtype=np.int64)
        served, level_hits = _served_levels(hierarchy, addrs, chunk)
        ref_served, ref_hits = simulate_reference(hierarchy, addrs)
        np.testing.assert_array_equal(served, ref_served)
        assert level_hits == ref_hits


class TestLevelStats:
    def test_geometric_growth_preserves_counts(self):
        from repro.cache.simulator import LevelStats

        lv = LevelStats("L1")
        rng = np.random.default_rng(7)
        expected_acc = {}
        expected_hit = {}
        top = 0
        # many small records with ever-growing instruction ids: each one
        # forces the per-instruction arrays to extend
        for round_no in range(40):
            top += int(rng.integers(1, 50))
            idx = rng.integers(0, top, size=20).astype(np.int64)
            hits = rng.random(20) < 0.5
            lv.record(idx, hits)
            for i, h in zip(idx.tolist(), hits.tolist()):
                expected_acc[i] = expected_acc.get(i, 0) + 1
                if h:
                    expected_hit[i] = expected_hit.get(i, 0) + 1
        for i, count in expected_acc.items():
            assert lv.instr_accesses[i] == count
        for i, count in expected_hit.items():
            assert lv.instr_hits[i] == count
        assert lv.instr_accesses.sum() == lv.accesses
        assert lv.instr_hits.sum() == lv.hits
        # growth is geometric: backing capacity stays within a constant
        # factor of the live size (the seed's re-concatenation kept it
        # exactly equal, costing O(n^2) over a run)
        assert lv._acc_buf.shape[0] <= 4 * lv.instr_accesses.shape[0] + 4

    def test_per_instruction_rates_match_aggregate(self):
        h = tiny_hierarchy()
        sim = HierarchySimulator(h)
        pattern = GatherScatterPattern(region_bytes=8 * KB, locality=0.5)
        addrs = pattern.addresses(0, 5000, stream("agg-check"))
        n_instr = 7
        instr = (np.arange(5000) % n_instr).astype(np.int64)
        sim.process(addrs, instr)
        result = sim.result()
        # per-instruction counters must partition the aggregate exactly
        for lv in result.levels:
            assert lv.instr_accesses.sum() == lv.accesses
            assert lv.instr_hits.sum() == lv.hits
        # and the access-weighted per-instruction cumulative rates must
        # reproduce the aggregate cumulative curve
        mat = result.instruction_cumulative_hit_rates(n_instr)
        weights = result.levels[0].instr_accesses[:n_instr].astype(float)
        recomposed = (mat * weights[:, None]).sum(axis=0) / weights.sum()
        np.testing.assert_allclose(
            recomposed, result.cumulative_hit_rates(), rtol=1e-12
        )

    def test_unseen_instructions_have_zero_rates(self):
        h = tiny_hierarchy()
        sim = HierarchySimulator(h)
        sim.process(
            np.array([0, 64, 0], dtype=np.int64),
            np.array([2, 2, 2], dtype=np.int64),
        )
        mat = sim.result().instruction_cumulative_hit_rates(4)
        # instructions 0, 1 and 3 never issued an access: all-zero rows,
        # no division-by-zero fallback artifacts
        np.testing.assert_array_equal(mat[0], 0.0)
        np.testing.assert_array_equal(mat[1], 0.0)
        np.testing.assert_array_equal(mat[3], 0.0)
        assert mat[2, -1] > 0


def test_instruction_cumulative_hit_rates_pins_scalar_reference():
    """Regression pin for the vectorized per-instruction rate matrix.

    The loop below is the original scalar derivation (per instruction,
    per level, guard-by-guard); the vectorized padded-matrix version
    must reproduce it bit-for-bit, including short per-level counter
    arrays and instructions that never issued an access.
    """
    h = tiny_hierarchy()
    sim = HierarchySimulator(h)
    pattern = GatherScatterPattern(region_bytes=8 * KB, locality=0.3)
    addrs = pattern.addresses(0, 4096, stream("vec-pin"))
    n_instr = 5
    # leave instruction 3 unseen to exercise the masked divide
    instr = (np.arange(4096) % n_instr).astype(np.int64)
    instr[instr == 3] = 0
    sim.process(addrs, instr)
    result = sim.result()

    n_levels = len(result.levels)
    expected = np.zeros((n_instr, n_levels))
    for i in range(n_instr):
        lv0 = result.levels[0]
        total = int(lv0.instr_accesses[i]) if i < lv0.instr_accesses.shape[0] else 0
        if total == 0:
            continue
        cum = 0.0
        for j, lv in enumerate(result.levels):
            hits = int(lv.instr_hits[i]) if i < lv.instr_hits.shape[0] else 0
            cum += hits
            expected[i, j] = cum / total

    got = result.instruction_cumulative_hit_rates(n_instr)
    np.testing.assert_array_equal(got, expected)
