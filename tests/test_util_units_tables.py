"""Unit tests: units, validation helpers and table rendering."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.tables import Table, format_table
from repro.util.units import GB, KB, MB, bytes_to_human, human_to_bytes
from repro.util.validation import (
    ValidationError,
    check_finite,
    check_in_range,
    check_positive,
    check_power_of_two,
)


class TestUnits:
    def test_constants(self):
        assert KB == 1024 and MB == 1024**2 and GB == 1024**3

    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0B"),
            (512, "512B"),
            (12 * KB, "12KB"),
            (1536, "1.5KB"),
            (56 * KB, "56KB"),
            (3 * MB, "3MB"),
            (2 * GB, "2GB"),
        ],
    )
    def test_bytes_to_human(self, n, expected):
        assert bytes_to_human(n) == expected

    def test_bytes_to_human_rejects_negative(self):
        with pytest.raises(ValueError):
            bytes_to_human(-1)

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("56KB", 56 * KB),
            ("12 kb", 12 * KB),
            ("1.5KB", 1536),
            ("4MiB", 4 * MB),
            ("100", 100),
            ("7B", 7),
        ],
    )
    def test_human_to_bytes(self, text, expected):
        assert human_to_bytes(text) == expected

    def test_human_to_bytes_rejects_garbage(self):
        with pytest.raises(ValueError):
            human_to_bytes("lots")

    def test_human_to_bytes_rejects_fractional_bytes(self):
        with pytest.raises(ValueError):
            human_to_bytes("1.0001KB")

    @given(st.integers(min_value=1, max_value=2**40))
    def test_round_trip_exact_sizes(self, n):
        # values that render without decimals must round-trip
        text = bytes_to_human(n)
        if "." not in text:
            assert human_to_bytes(text) == n


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValidationError):
            check_positive("x", 0)

    def test_check_in_range_inclusive(self):
        check_in_range("x", 0.0, 0.0, 1.0)
        check_in_range("x", 1.0, 0.0, 1.0)
        with pytest.raises(ValidationError):
            check_in_range("x", 1.01, 0.0, 1.0)

    def test_check_in_range_exclusive(self):
        with pytest.raises(ValidationError):
            check_in_range("x", 0.0, 0.0, 1.0, low_inclusive=False)

    def test_check_power_of_two(self):
        check_power_of_two("x", 64)
        for bad in (0, -4, 3, 6, 2.0):
            with pytest.raises(ValidationError):
                check_power_of_two("x", bad)

    def test_check_finite(self):
        check_finite("x", np.ones(3))
        with pytest.raises(ValidationError):
            check_finite("x", np.array([1.0, np.nan]))
        with pytest.raises(ValidationError):
            check_finite("x", np.inf)


class TestTables:
    def test_basic_rendering(self):
        t = Table(columns=["a", "bee"], title="T")
        t.add_row("x", 1)
        t.add_row("longer", 2.5)
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bee" in lines[2]
        assert "2.500" in out

    def test_row_width_enforced(self):
        t = Table(columns=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row("only-one")

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["1"]])

    def test_column_alignment(self):
        out = format_table(["col"], [["x"], ["longvalue"]])
        lines = out.splitlines()
        # all lines padded to the same width
        assert len(set(len(line) for line in lines)) == 1

    def test_float_format_override(self):
        t = Table(columns=["v"], float_fmt=".1f")
        t.add_row(3.14159)
        assert "3.1" in t.render()
        assert "3.14" not in t.render()
