"""Unit tests: the guarded extrapolation engine and degradation ladder.

The load-bearing invariant — clean inputs produce bit-identical output
with guards on or off — plus each rung of the ladder: element
hold-nearest, whole-trace substitution, refusal, and the strict policy
short-circuiting all of it with an element-addressed error.
"""

import numpy as np
import pytest

from repro.core.extrapolate import extrapolate_trace_many
from repro.exec.sigcache import SignatureCache  # noqa: F401 (import check)
from repro.guard.config import GuardConfig
from repro.guard.degrade import DegradationReport
from repro.guard.engine import (
    check_prediction_inputs,
    check_signature,
    guarded_extrapolate,
    guarded_extrapolate_many,
)
from repro.guard.violations import GuardError
from repro.obs.metrics import REGISTRY
from repro.trace.signature import ApplicationSignature
from repro.util.errors import FitError
from repro.util.validation import ValidationError

from tests.test_guard_validators import SCHEMA, _set, make_trace

TARGETS = [128, 512]


def fresh_traces():
    return [make_trace(n, scale=n / 16.0) for n in (16, 32, 64)]


def stacked(sweep):
    return [r.trace.stacked_features() for r in sweep.results]


@pytest.fixture(autouse=True)
def _fresh_registry():
    REGISTRY.reset()
    yield
    REGISTRY.reset()


class TestConfig:
    def test_policies_and_properties(self):
        assert GuardConfig(policy="strict").strict
        assert GuardConfig(policy="degrade").enabled
        assert not GuardConfig(policy="off").enabled

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            GuardConfig(policy="panic")

    def test_bad_threshold_is_validation_error(self):
        with pytest.raises(ValidationError):
            GuardConfig(trust_threshold=-1.0)


class TestCleanBitIdentity:
    @pytest.mark.parametrize("engine", ["batched", "reference"])
    def test_guarded_equals_unguarded_on_clean_inputs(self, engine):
        traces = fresh_traces()
        plain = extrapolate_trace_many(traces, TARGETS, engine=engine)
        sweep, report = guarded_extrapolate_many(
            fresh_traces(), TARGETS, engine=engine,
            config=GuardConfig(policy="degrade"),
        )
        assert report.clean
        for a, b in zip(stacked(plain), stacked(sweep)):
            np.testing.assert_array_equal(a, b)

    def test_spot_check_ran_on_batched_engine(self):
        _, report = guarded_extrapolate_many(
            fresh_traces(), TARGETS, engine="batched",
            config=GuardConfig(policy="degrade"),
        )
        assert report.n_spot_checks > 0
        assert report.n_spot_disagreements == 0

    def test_crossval_gate_populates_trust(self):
        _, report = guarded_extrapolate_many(
            fresh_traces(), TARGETS, config=GuardConfig(policy="degrade"),
        )
        # the synthetic series is exactly linear: every element survives
        assert report.trust_fraction == pytest.approx(1.0)
        assert report.crossval_median_error is not None

    def test_counters_mirrored_into_metrics(self):
        _, report = guarded_extrapolate_many(
            fresh_traces(), TARGETS, config=GuardConfig(policy="degrade"),
        )
        assert REGISTRY.counters.get("guard.spot_checks", 0) == (
            report.n_spot_checks
        )

    def test_guard_off_is_passthrough(self):
        sweep, report = guarded_extrapolate_many(
            fresh_traces(), TARGETS, config=None,
        )
        assert report.policy == "off" and report.clean
        assert [r.target_n_ranks for r in sweep.results] == TARGETS


class TestUsageErrors:
    def test_too_few_traces_stays_fit_error(self):
        with pytest.raises(FitError):
            guarded_extrapolate_many(
                fresh_traces()[:1], TARGETS,
                config=GuardConfig(policy="degrade"),
            )

    def test_nonpositive_target_stays_fit_error(self):
        with pytest.raises(FitError):
            guarded_extrapolate_many(
                fresh_traces(), [-4], config=GuardConfig(policy="degrade"),
            )


class TestLadderRung1:
    def test_single_poisoned_element_held_at_nearest(self):
        traces = fresh_traces()
        _set(traces[1], 1, 0, "exec_count", float("nan"))  # the 32-count
        result, report = guarded_extrapolate(
            traces, 256, config=GuardConfig(policy="degrade"),
        )
        assert report.n_violations == 1
        assert report.n_elements_degraded == 1
        (deg,) = report.degraded_elements
        assert (deg.block_id, deg.instr_id, deg.feature) == (1, 0, "exec_count")
        assert deg.action == "hold-nearest"
        # held at the largest valid training count's collected value
        expected = float(
            traces[2].blocks[1].instructions[0].features[
                SCHEMA.index("exec_count")
            ]
        )
        assert deg.value == pytest.approx(expected)
        vec = result.trace.blocks[1].instructions[0].features
        assert vec[SCHEMA.index("exec_count")] == pytest.approx(expected)
        assert report.n_traces_degraded == 0

    def test_other_elements_unaffected_by_hold(self):
        clean_sweep, _ = guarded_extrapolate_many(
            fresh_traces(), TARGETS, config=GuardConfig(policy="degrade"),
        )
        traces = fresh_traces()
        _set(traces[0], 0, 0, "mem_ops", -3.0)
        dirty_sweep, report = guarded_extrapolate_many(
            traces, TARGETS, config=GuardConfig(policy="degrade"),
        )
        assert report.n_elements_degraded == 1
        j = SCHEMA.index("mem_ops")
        for a, b in zip(stacked(clean_sweep), stacked(dirty_sweep)):
            mask = np.ones(a.shape, dtype=bool)
            mask[0, j] = False  # pair (0,0) is row 0 of the stack
            np.testing.assert_array_equal(a[mask], b[mask])

    def test_held_rates_stay_monotone(self):
        traces = fresh_traces()
        _set(traces[2], 0, 0, "hit_rate_L1", 1.7)  # out of range
        result, report = guarded_extrapolate(
            traces, 256, config=GuardConfig(policy="degrade"),
        )
        # 1.7 breaks the range check AND leaves L2 below L1, so both
        # rate elements of the pair are flagged and held
        assert report.n_elements_degraded == 2
        assert {d.feature for d in report.degraded_elements} == {
            "hit_rate_L1", "hit_rate_L2",
        }
        rates = SCHEMA.hit_rates(result.trace.blocks[0].instructions[0].features)
        assert np.all(np.diff(rates) >= 0)
        assert np.all((rates >= 0) & (rates <= 1))


class TestLadderRung2:
    def test_mostly_poisoned_trace_substituted_whole(self):
        traces = fresh_traces()
        config = GuardConfig(policy="degrade", max_degraded_fraction=0.01)
        _set(traces[1], 0, 0, "exec_count", float("nan"))
        sweep, report = guarded_extrapolate_many(traces, TARGETS, config=config)
        assert report.n_traces_degraded == len(TARGETS)
        for deg, result in zip(report.degraded_traces, sweep.results):
            assert deg.action == "substitute-collected"
            assert deg.substitute_n_ranks == 64  # largest clean trace
            assert result.trace.n_ranks == deg.target
            assert result.trace.extrapolated

    def test_structurally_broken_trace_dropped_not_fatal(self):
        traces = fresh_traces()
        traces[0].blocks[0].instructions[0].features = np.zeros(3)
        sweep, report = guarded_extrapolate_many(
            traces, TARGETS, config=GuardConfig(policy="degrade"),
        )
        # two usable traces remain: fit proceeds, nothing substituted
        assert report.n_violations == 1
        assert report.n_traces_degraded == 0
        assert [r.target_n_ranks for r in sweep.results] == TARGETS


class TestLadderRung3:
    def test_no_clean_trace_refuses_even_in_degrade(self):
        traces = fresh_traces()[:2]
        for t in traces:
            t.blocks[0].instructions[0].features = np.zeros(3)
        report = DegradationReport(policy="degrade")
        with pytest.raises(GuardError):
            guarded_extrapolate_many(
                traces, TARGETS,
                config=GuardConfig(policy="degrade"), report=report,
            )
        assert report.n_refusals == 1


class TestStrictPolicy:
    def test_strict_raises_element_addressed(self):
        traces = fresh_traces()
        _set(traces[1], 1, 0, "exec_count", float("nan"))
        with pytest.raises(GuardError) as excinfo:
            guarded_extrapolate_many(
                traces, TARGETS, config=GuardConfig(policy="strict"),
            )
        message = str(excinfo.value)
        assert "block 1 instr 0 feature 'exec_count'" in message
        assert "finite" in message

    def test_strict_clean_run_matches_unguarded(self):
        plain = extrapolate_trace_many(fresh_traces(), TARGETS)
        sweep, report = guarded_extrapolate_many(
            fresh_traces(), TARGETS, config=GuardConfig(policy="strict"),
        )
        assert report.clean
        for a, b in zip(stacked(plain), stacked(sweep)):
            np.testing.assert_array_equal(a, b)


class TestBoundaryChecks:
    def _signature(self, poisoned=False):
        sig = ApplicationSignature(
            app="guardtest", n_ranks=64, target="tgt", compute_times={0: 1.0}
        )
        trace = make_trace(64)
        if poisoned:
            _set(trace, 0, 0, "exec_count", float("nan"))
        sig.add_trace(trace)
        return sig

    def test_check_signature_degrade_records_and_proceeds(self):
        report = DegradationReport(policy="degrade")
        violations = check_signature(
            self._signature(poisoned=True),
            config=GuardConfig(policy="degrade"), report=report,
        )
        assert len(violations) == 1 and report.n_violations == 1

    def test_check_signature_strict_refuses(self):
        with pytest.raises(GuardError):
            check_signature(
                self._signature(poisoned=True),
                config=GuardConfig(policy="strict"),
                report=DegradationReport(policy="strict"),
            )

    def test_check_signature_disabled_is_noop(self):
        report = DegradationReport(policy="off")
        assert check_signature(
            self._signature(poisoned=True), config=None, report=report
        ) == []
        assert report.clean

    def test_prediction_inputs_clean(self, bw_machine):
        report = DegradationReport(policy="degrade")
        assert check_prediction_inputs(
            make_trace(64), bw_machine,
            config=GuardConfig(policy="degrade"), report=report,
        ) == []

    def test_broken_profile_refuses_under_degrade(self, bw_machine):
        import copy

        profile = copy.deepcopy(bw_machine)
        profile.fp_rates_gflops["fp_mul"] = float("nan")
        report = DegradationReport(policy="degrade")
        with pytest.raises(GuardError, match="fp rate"):
            check_prediction_inputs(
                make_trace(64), profile,
                config=GuardConfig(policy="degrade"), report=report,
            )
        assert report.n_refusals == 1
