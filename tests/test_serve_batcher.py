"""Micro-batcher unit tests: flush triggers, key discipline, fan-out.

The batcher is pure asyncio plumbing — these tests drive it with a
recording executor instead of real models, so every edge case (deadline
flush with a half-full batch, incompatible keys, cancellation mid-batch,
executor failure) is exercised deterministically and fast.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve import MicroBatcher
from repro.util.errors import ServeError


class Recorder:
    """Batch executor that logs every (key, items) call it serves."""

    def __init__(self, fail_for=()):
        self.calls = []
        self.fail_for = set(fail_for)

    def __call__(self, key, items):
        self.calls.append((key, list(items)))
        if key in self.fail_for:
            raise RuntimeError(f"executor failure for {key}")
        return [f"{key}:{item}" for item in items]


def test_size_flush_batches_everything_at_once():
    async def main():
        recorder = Recorder()
        batcher = MicroBatcher(recorder, max_batch=4, window_s=60.0)
        results = await asyncio.gather(
            *(batcher.submit("k", i) for i in range(4))
        )
        return recorder, batcher, results

    recorder, batcher, results = asyncio.run(main())
    # one call, all four items, results fanned back in submission order
    assert len(recorder.calls) == 1
    assert recorder.calls[0] == ("k", [0, 1, 2, 3])
    assert results == ["k:0", "k:1", "k:2", "k:3"]
    assert batcher.stats.size_flushes == 1
    assert batcher.stats.deadline_flushes == 0
    assert batcher.stats.batches == 1
    assert batcher.stats.queries == 4


def test_deadline_flush_with_half_full_batch():
    async def main():
        recorder = Recorder()
        # max_batch far above what we submit: only the deadline can fire
        batcher = MicroBatcher(recorder, max_batch=64, window_s=0.01)
        results = await asyncio.gather(
            *(batcher.submit("k", i) for i in range(3))
        )
        return recorder, batcher, results

    recorder, batcher, results = asyncio.run(main())
    assert results == ["k:0", "k:1", "k:2"]
    assert len(recorder.calls) == 1
    assert batcher.stats.deadline_flushes == 1
    assert batcher.stats.size_flushes == 0


def test_incompatible_keys_are_never_cobatched():
    async def main():
        recorder = Recorder()
        batcher = MicroBatcher(recorder, max_batch=64, window_s=0.01)
        results = await asyncio.gather(
            batcher.submit(("model-a", "features"), 1),
            batcher.submit(("model-b", "features"), 2),
            batcher.submit(("model-a", "runtime"), 3),
            batcher.submit(("model-a", "features"), 4),
        )
        return recorder, batcher, results

    recorder, batcher, results = asyncio.run(main())
    # three distinct keys -> three batches; same-key queries co-batch
    assert batcher.stats.batches == 3
    by_key = {key: items for key, items in recorder.calls}
    assert by_key[("model-a", "features")] == [1, 4]
    assert by_key[("model-b", "features")] == [2]
    assert by_key[("model-a", "runtime")] == [3]
    for key, items in recorder.calls:
        assert len({key}) == 1  # every call carries exactly one key
    assert results[0] == "('model-a', 'features'):1"


def test_cancellation_mid_batch_leaves_others_unaffected():
    async def main():
        recorder = Recorder()
        batcher = MicroBatcher(recorder, max_batch=64, window_s=0.05)
        tasks = [
            asyncio.ensure_future(batcher.submit("k", i)) for i in range(3)
        ]
        # let the submits land in the pending batch, then abandon one
        await asyncio.sleep(0)
        tasks[1].cancel()
        done = await asyncio.gather(*tasks, return_exceptions=True)
        return recorder, batcher, done

    recorder, batcher, done = asyncio.run(main())
    assert done[0] == "k:0"
    assert isinstance(done[1], asyncio.CancelledError)
    assert done[2] == "k:2"
    # the cancelled query never reached the executor
    assert recorder.calls == [("k", [0, 2])]
    assert batcher.stats.cancelled == 1
    assert batcher.stats.queries == 3


def test_whole_batch_cancelled_skips_execution():
    async def main():
        recorder = Recorder()
        batcher = MicroBatcher(recorder, max_batch=64, window_s=0.01)
        tasks = [
            asyncio.ensure_future(batcher.submit("k", i)) for i in range(2)
        ]
        await asyncio.sleep(0)
        for t in tasks:
            t.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        # wait out the deadline so the (empty) flush happens
        await asyncio.sleep(0.03)
        return recorder, batcher

    recorder, batcher = asyncio.run(main())
    assert recorder.calls == []
    assert batcher.stats.batches == 0
    assert batcher.stats.cancelled == 2


def test_executor_failure_fans_out_to_every_submitter():
    async def main():
        recorder = Recorder(fail_for={"bad"})
        batcher = MicroBatcher(recorder, max_batch=2, window_s=60.0)
        return await asyncio.gather(
            batcher.submit("bad", 1),
            batcher.submit("bad", 2),
            return_exceptions=True,
        )

    outcomes = asyncio.run(main())
    assert all(isinstance(o, RuntimeError) for o in outcomes)


def test_result_count_mismatch_is_a_serve_error():
    async def main():
        batcher = MicroBatcher(
            lambda key, items: ["only-one"], max_batch=2, window_s=60.0
        )
        return await asyncio.gather(
            batcher.submit("k", 1),
            batcher.submit("k", 2),
            return_exceptions=True,
        )

    outcomes = asyncio.run(main())
    assert all(isinstance(o, ServeError) for o in outcomes)


def test_flush_all_drains_open_batches_immediately():
    async def main():
        recorder = Recorder()
        batcher = MicroBatcher(recorder, max_batch=64, window_s=60.0)
        tasks = [
            asyncio.ensure_future(batcher.submit("k", i)) for i in range(2)
        ]
        await asyncio.sleep(0)
        assert batcher.pending_keys == ["k"]
        batcher.flush_all()
        results = await asyncio.gather(*tasks)
        return recorder, batcher, results

    recorder, batcher, results = asyncio.run(main())
    assert results == ["k:0", "k:1"]
    assert batcher.stats.drain_flushes == 1
    assert batcher.pending_keys == []


@pytest.mark.parametrize(
    "kwargs", [{"max_batch": 0}, {"window_s": 0.0}, {"window_s": -1.0}]
)
def test_invalid_parameters_rejected(kwargs):
    with pytest.raises(ServeError):
        MicroBatcher(lambda k, items: items, **kwargs)
