"""Unit tests: hardware timing, bandwidth surface, MultiMAPS, profiles."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.configs import opteron_2level
from repro.machine.multimaps import MultiMAPSProbe, run_multimaps
from repro.machine.network import NetworkParameters
from repro.machine.profile import build_profile
from repro.machine.surface import BandwidthSurface, served_fractions
from repro.machine.systems import MACHINE_BUILDERS, get_machine, get_spec
from repro.machine.timing import HardwareTiming


def simple_timing(n_levels=2):
    return HardwareTiming(
        level_time_ns=tuple(1.0 * 4**i for i in range(n_levels)),
        memory_time_ns=50.0 * 4 ** (n_levels - 1),
    )


class TestHardwareTiming:
    def test_service_times_shape(self):
        t = simple_timing(3)
        assert t.service_times_ns().shape == (4,)

    def test_memory_must_be_slowest(self):
        with pytest.raises(ValueError):
            HardwareTiming(level_time_ns=(1.0, 60.0), memory_time_ns=50.0)

    def test_requires_all_fp_kinds(self):
        with pytest.raises(ValueError):
            HardwareTiming(
                level_time_ns=(1.0,),
                memory_time_ns=10.0,
                fp_time_ns={"fp_add": 0.5},
            )

    def test_stream_time(self):
        t = simple_timing(2)  # 1ns, 4ns, 200ns
        assert t.stream_time_ns([10, 0, 0]) == pytest.approx(10.0)
        assert t.stream_time_ns([0, 0, 1]) == pytest.approx(200.0)

    def test_achieved_bandwidth_all_l1(self):
        t = simple_timing(2)
        # 8 bytes per 1ns = 8 GB/s
        assert t.achieved_bandwidth_gbs([100, 0, 0]) == pytest.approx(8.0)

    def test_achieved_bandwidth_empty_stream(self):
        assert simple_timing().achieved_bandwidth_gbs([0, 0, 0]) == 0.0

    def test_served_count_length_checked(self):
        with pytest.raises(ValueError):
            simple_timing(2).stream_time_ns([1, 2])


class TestServedFractions:
    def test_basic(self):
        f = served_fractions(np.array([0.5, 0.75, 1.0]))
        np.testing.assert_allclose(f, [0.5, 0.25, 0.25, 0.0])

    def test_all_memory(self):
        f = served_fractions(np.array([0.0, 0.0]))
        np.testing.assert_allclose(f, [0.0, 0.0, 1.0])

    def test_monotone_enforced(self):
        # jittery (non-monotone) extrapolated rates are re-monotonized
        f = served_fractions(np.array([0.9, 0.85, 0.95]))
        assert np.all(f >= 0)
        assert f.sum() == pytest.approx(1.0)

    @given(
        st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=4)
    )
    @settings(max_examples=50, deadline=None)
    def test_fractions_are_distribution(self, rates):
        f = served_fractions(np.array(rates))
        assert np.all(f >= -1e-12)
        assert f.sum() == pytest.approx(1.0)


class TestBandwidthSurface:
    def test_fit_recovers_reciprocal_model(self):
        # synthesize samples from a known reciprocal model
        rng = np.random.default_rng(42)
        coeffs = np.array([0.1, 0.5, 4.0])  # ns/byte at L1, L2, mem
        rates = rng.uniform(0, 1, size=(50, 2))
        rates.sort(axis=1)
        fractions = served_fractions(rates)
        bw = 1.0 / (fractions @ coeffs)
        surf = BandwidthSurface.fit(rates, bw)
        np.testing.assert_allclose(surf.coefficients, coeffs, rtol=1e-6)
        assert surf.fit_quality() < 1e-9

    def test_bandwidth_monotone_in_hit_rate(self):
        surf = BandwidthSurface.fit(
            np.array([[1.0, 1.0], [0.0, 1.0], [0.0, 0.0]]),
            np.array([20.0, 4.0, 0.5]),
        )
        lo = surf.bandwidth_gbs([0.2, 0.4])
        hi = surf.bandwidth_gbs([0.9, 0.95])
        assert hi > lo

    def test_batched_query(self):
        surf = BandwidthSurface.fit(
            np.array([[1.0, 1.0], [0.0, 0.0]]), np.array([10.0, 1.0])
        )
        out = surf.bandwidth_gbs(np.array([[1.0, 1.0], [0.0, 0.0]]))
        assert out.shape == (2,)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            BandwidthSurface.fit(np.array([[1.0]]), np.array([0.0]))

    def test_rejects_mismatched_samples(self):
        with pytest.raises(ValueError):
            BandwidthSurface.fit(np.ones((3, 2)), np.ones(2))


class TestMultiMAPS:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_multimaps(
            opteron_2level(),
            HardwareTiming(level_time_ns=(0.75, 3.0), memory_time_ns=28.0),
            working_sets=[4096, 32768, 262144, 4 << 20],
            strides=[1, 8],
            accesses_per_probe=20_000,
        )

    def test_probe_count(self, sweep):
        assert len(sweep.probes) == 8
        assert sweep.hit_rates.shape == (8, 2)
        assert sweep.bandwidths_gbs.shape == (8,)

    def test_small_working_set_fast(self, sweep):
        """Fig. 1's shape: in-L1 working sets achieve peak bandwidth."""
        by_probe = {
            (p.working_set_bytes, p.stride_elements): bw
            for p, bw in zip(sweep.probes, sweep.bandwidths_gbs)
        }
        assert by_probe[(4096, 1)] > by_probe[(4 << 20, 1)] * 3

    def test_large_stride_wastes_bandwidth(self, sweep):
        by_probe = {
            (p.working_set_bytes, p.stride_elements): bw
            for p, bw in zip(sweep.probes, sweep.bandwidths_gbs)
        }
        # stride 8 (64B) touches a new line every access in big sets
        assert by_probe[(4 << 20, 8)] < by_probe[(4 << 20, 1)]

    def test_surface_fit_quality(self, sweep):
        assert sweep.surface().fit_quality() < 0.05

    def test_level_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run_multimaps(opteron_2level(), simple_timing(3))

    def test_probe_validation(self):
        with pytest.raises(Exception):
            MultiMAPSProbe(working_set_bytes=0, stride_elements=1)


class TestNetworkParameters:
    def test_p2p_latency_floor(self):
        net = NetworkParameters(latency_us=2.0)
        assert net.p2p_time_s(0) >= 2e-6

    def test_p2p_monotone_in_size(self):
        net = NetworkParameters()
        assert net.p2p_time_s(1 << 20) > net.p2p_time_s(1 << 10)

    def test_effective_bandwidth_saturates(self):
        net = NetworkParameters(bandwidth_gbs=5.0, half_bandwidth_bytes=8192)
        assert net.effective_bandwidth_gbs(8192) == pytest.approx(2.5)
        assert net.effective_bandwidth_gbs(1 << 30) == pytest.approx(5.0, rel=1e-3)

    def test_collectives_scale_logarithmically(self):
        net = NetworkParameters()
        t64 = net.allreduce_time_s(64, 8)
        t4096 = net.allreduce_time_s(4096, 8)
        # log2 depth doubles (6 -> 12); a constant latency term damps it
        assert 1.7 < t4096 / t64 <= 2.0

    def test_alltoall_scales_linearly(self):
        net = NetworkParameters()
        assert net.alltoall_time_s(128, 8) > 10 * net.alltoall_time_s(8, 8)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NetworkParameters().p2p_time_s(-1)


class TestMachineProfiles:
    def test_all_named_machines_have_specs(self):
        for name in MACHINE_BUILDERS:
            spec = get_spec(name)
            assert spec.timing.n_levels == spec.hierarchy.n_levels

    def test_get_machine_cached(self):
        a = get_machine("opteron_2level", accesses_per_probe=10_000)
        b = get_machine("opteron_2level", accesses_per_probe=10_000)
        assert a is b

    def test_unknown_machine(self):
        with pytest.raises(KeyError):
            get_spec("cray_1")

    def test_profile_bandwidth_sane(self):
        m = get_machine("opteron_2level", accesses_per_probe=10_000)
        peak = m.memory_bandwidth_gbs(np.ones(m.n_levels))
        floor = m.memory_bandwidth_gbs(np.zeros(m.n_levels))
        assert peak > floor > 0

    def test_fp_time(self):
        m = get_machine("opteron_2level", accesses_per_probe=10_000)
        t = m.fp_time_s({"fp_add": 1e9})
        assert t == pytest.approx(1e9 / (m.fp_rates_gflops["fp_add"] * 1e9))

    def test_fp_unknown_kind_rejected(self):
        m = get_machine("opteron_2level", accesses_per_probe=10_000)
        with pytest.raises(KeyError):
            m.fp_time_s({"fp_sqrt": 1.0})
