"""Batched fitting engine vs the per-element scalar reference.

The batched engine's contract (DESIGN.md §7.4) is *agreement*, not
approximation: identical candidate form ordering, parameters and SSE to
~1e-9 relative, and synthesized trace values matching the reference
path to 1e-9 relative with exact ties on form selection.  These tests
pit the two implementations against each other over adversarial series
shapes — mixed signs, all zeros, exact canonical data, duplicate-y
parsimony ties, physicality demotions — and over whole traces of the
SPECFEM3D model.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batchfit import batch_fit_series
from repro.core.canonical import EXTENDED_FORMS, PAPER_FORMS, fit_all
from repro.core.extrapolate import extrapolate_trace, extrapolate_trace_many
from repro.core.fitting import fit_feature_series
from repro.trace.features import FeatureSchema

X3 = np.array([96.0, 384.0, 1536.0])


def assert_rows_match_reference(x, Y, forms, rtol=1e-9):
    """Every row's batched candidate list must mirror fit_all's."""
    res = batch_fit_series(x, Y, forms)
    for i in range(Y.shape[0]):
        ref = fit_all(x, Y[i], forms)
        got = res.candidates_for(i)
        assert len(got) == len(ref), f"row {i}: candidate count differs"
        for rank, (r, g) in enumerate(zip(ref, got)):
            assert g.form.name == r.form.name, (
                f"row {i} rank {rank}: {g.form.name} != {r.form.name}"
            )
            np.testing.assert_allclose(
                g.params, r.params, rtol=rtol, atol=1e-12
            )
            np.testing.assert_allclose(g.sse, r.sse, rtol=rtol, atol=1e-18)


class TestAgainstReference:
    def test_mixed_sign_rows(self):
        rng = np.random.default_rng(7)
        Y = rng.uniform(-5, 5, (32, 3))
        assert_rows_match_reference(X3, Y, PAPER_FORMS)

    def test_all_zero_rows(self):
        Y = np.zeros((4, 3))
        assert_rows_match_reference(X3, Y, PAPER_FORMS)
        assert_rows_match_reference(X3, Y, EXTENDED_FORMS)

    def test_exactly_linear(self):
        Y = np.stack([3.0 + 0.25 * X3, -2.0 - 1.5 * X3])
        assert_rows_match_reference(X3, Y, PAPER_FORMS)
        res = batch_fit_series(X3, Y, PAPER_FORMS)
        assert res.forms[res.order[0, 0]].name == "linear"

    def test_exactly_logarithmic(self):
        Y = (5.0 + 2.0 * np.log(X3))[None, :]
        res = batch_fit_series(X3, Y, PAPER_FORMS)
        assert res.forms[res.order[0, 0]].name == "log"
        assert_rows_match_reference(X3, Y, PAPER_FORMS)

    def test_exactly_exponential(self):
        Y = np.stack([2.0 * np.exp(1e-3 * X3), -0.5 * np.exp(2e-3 * X3)])
        res = batch_fit_series(X3, Y, PAPER_FORMS)
        for i in range(2):
            assert res.forms[res.order[i, 0]].name == "exp"
        assert_rows_match_reference(X3, Y, PAPER_FORMS)

    def test_duplicate_y_parsimony_tie(self):
        # constant data fits constant, linear, log, ... all exactly;
        # parsimony must break the tie toward the simplest form in both
        # engines identically
        Y = np.full((3, 3), 42.0)
        Y[1] = 0.125
        Y[2] = -9.5
        res = batch_fit_series(X3, Y, EXTENDED_FORMS)
        for i in range(3):
            assert res.forms[res.order[i, 0]].name == "constant"
        assert_rows_match_reference(X3, Y, EXTENDED_FORMS)

    def test_extended_forms_with_three_counts_skip_quadratic(self):
        rng = np.random.default_rng(11)
        Y = rng.uniform(0.1, 10, (8, 3))
        res = batch_fit_series(X3, Y, EXTENDED_FORMS)
        names = {f.name for f in res.forms}
        assert "quadratic" in names  # present in the form set...
        for i in range(8):
            got = {c.form.name for c in res.candidates_for(i)}
            assert "quadratic" not in got  # ...but never a candidate
        assert_rows_match_reference(X3, Y, EXTENDED_FORMS)

    def test_quadratic_active_with_four_counts(self):
        x4 = np.array([96.0, 384.0, 1536.0, 6144.0])
        rng = np.random.default_rng(13)
        Y = rng.uniform(0.1, 10, (8, 4))
        assert_rows_match_reference(x4, Y, EXTENDED_FORMS)

    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.sampled_from(["uniform", "mixed", "tiny", "huge"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_randomized_series(self, seed, regime):
        rng = np.random.default_rng(seed)
        if regime == "uniform":
            Y = rng.uniform(0, 100, (6, 3))
        elif regime == "mixed":
            Y = rng.uniform(-10, 10, (6, 3))
        elif regime == "tiny":
            Y = rng.uniform(0, 1e-9, (6, 3))
        else:
            Y = rng.uniform(1e9, 1e12, (6, 3))
        # sprinkle exact structure in some rows
        Y[0] = Y[0, 0]
        Y[1] = 1.0 + 0.5 * X3
        assert_rows_match_reference(X3, Y, PAPER_FORMS)

    def test_validation_matches_reference(self):
        with pytest.raises(ValueError):
            batch_fit_series([8, 8, 32], np.ones((1, 3)), PAPER_FORMS)
        with pytest.raises(ValueError):
            batch_fit_series(X3, np.array([[1.0, np.nan, 2.0]]), PAPER_FORMS)
        with pytest.raises(ValueError):
            batch_fit_series(X3, np.ones((1, 2)), PAPER_FORMS)


class TestSelectionAndSweep:
    SCHEMA = FeatureSchema(["L1", "L2"])

    def _series(self, rng, n_pairs=6):
        counts = [1024, 2048, 4096]
        series = {}
        for p in range(n_pairs):
            m = np.zeros((3, self.SCHEMA.n_features))
            for j, f in enumerate(self.SCHEMA.fields):
                if self.SCHEMA.is_rate_field(f):
                    m[:, j] = np.sort(rng.uniform(0.4, 1.0, 3))
                else:
                    m[:, j] = rng.uniform(0, 1e6, 3)
            # a decaying count column that a linear fit would drive
            # negative at large targets: the physicality-demotion case
            m[:, self.SCHEMA.index("exec_count")] = [3e4, 2e4, 1e4]
            series[(p, 0)] = m
        return counts, series

    def test_physicality_demotion_matches_reference(self):
        rng = np.random.default_rng(3)
        counts, series = self._series(rng)
        batched = fit_feature_series(self.SCHEMA, counts, series)
        reference = fit_feature_series(
            self.SCHEMA, counts, series, engine="reference"
        )
        target = 65536  # far enough to push the linear fit negative
        for key in series:
            for f in self.SCHEMA.fields:
                b = batched.fit_for(key[0], key[1], f)
                r = reference.fit_for(key[0], key[1], f)
                bounds = self.SCHEMA.bounds(f)
                sel_b = b.selection_for_target(target, bounds)
                sel_r = r.selection_for_target(target, bounds)
                assert b.candidates[sel_b].form.name == (
                    r.candidates[sel_r].form.name
                )
                assert b.predict(target, bounds) == pytest.approx(
                    r.predict(target, bounds), rel=1e-9, abs=1e-300
                )

    def test_predict_many_matches_scalar_path(self):
        rng = np.random.default_rng(5)
        counts, series = self._series(rng)
        report = fit_feature_series(self.SCHEMA, counts, series)
        targets = [8192, 16384, 65536]
        sweep = report.predict_many(targets)
        hr = self.SCHEMA.hit_rate_slice
        for target in targets:
            for key in series:
                # replicate the scalar synthesis pipeline per element
                vec = self.SCHEMA.empty_vector()
                for j, f in enumerate(self.SCHEMA.fields):
                    fit = report.fit_for(key[0], key[1], f)
                    bounds = self.SCHEMA.bounds(f)
                    value = fit.predict(target, bounds)
                    if self.SCHEMA.is_rate_field(f):
                        last = float(fit.train_y[-1])
                        spread = float(np.ptp(fit.train_y))
                        value = float(
                            np.clip(
                                value, last - 2.0 * spread, last + 2.0 * spread
                            )
                        )
                        value = float(np.clip(value, *bounds))
                    vec[j] = value
                vec[hr] = np.clip(np.maximum.accumulate(vec[hr]), 0.0, 1.0)
                got = sweep.matrix_for(target)[
                    sweep.pair_keys.index(key)
                ]
                np.testing.assert_allclose(got, vec, rtol=1e-9, atol=1e-300)

    def test_predict_many_validates_targets(self):
        rng = np.random.default_rng(9)
        counts, series = self._series(rng, n_pairs=1)
        report = fit_feature_series(self.SCHEMA, counts, series)
        with pytest.raises(ValueError):
            report.predict_many([])
        with pytest.raises(ValueError):
            report.predict_many([0])
        with pytest.raises(KeyError):
            report.predict_many([8192]).matrix_for(999)


class TestWholeTraceEquivalence:
    @pytest.fixture(scope="class")
    def specfem_traces(self):
        from repro.apps.registry import get_app
        from repro.cache.configs import get_hierarchy
        from repro.pipeline.collect import collect_signature

        app = get_app("specfem3d")
        hierarchy = get_hierarchy("blue_waters_p1")
        return [
            collect_signature(app, n, hierarchy).slowest_trace()
            for n in (24, 48, 96)
        ]

    def test_specfem3d_batched_equals_reference(self, specfem_traces):
        target = 384
        batched = extrapolate_trace(specfem_traces, target, engine="batched")
        reference = extrapolate_trace(
            specfem_traces, target, engine="reference"
        )
        tb, tr = batched.trace, reference.trace
        assert sorted(tb.blocks) == sorted(tr.blocks)
        for bid in tb.blocks:
            for ib, ir in zip(
                tb.blocks[bid].instructions, tr.blocks[bid].instructions
            ):
                np.testing.assert_allclose(
                    ib.features, ir.features, rtol=1e-9, atol=1e-300
                )
        # exact ties on form selection
        assert batched.report.form_histogram() == (
            reference.report.form_histogram()
        )

    def test_sweep_equals_single_target_calls(self, specfem_traces):
        targets = [192, 384, 768]
        sweep = extrapolate_trace_many(specfem_traces, targets)
        for target in targets:
            single = extrapolate_trace(specfem_traces, target).trace
            multi = sweep.trace_for(target)
            for bid in multi.blocks:
                for a, b in zip(
                    multi.blocks[bid].instructions,
                    single.blocks[bid].instructions,
                ):
                    assert np.array_equal(a.features, b.features)

    def test_unknown_engine_rejected(self, specfem_traces):
        with pytest.raises(ValueError):
            extrapolate_trace(specfem_traces, 384, engine="gpu")
