"""End-to-end tests: the CLI observability surface.

One real ``table1`` run produces all three artifacts (Chrome trace,
metrics JSON, run manifest); the artifacts validate against the schemas
in ``tests/schemas/``, the exported counters equal the legacy
``CacheStats`` view recorded in the manifest, repeated runs produce
bit-identical output digests, and observability changes no result text.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import manifest as obs_manifest
from repro.obs import trace as obs_trace
from repro.obs.metrics import REGISTRY
from tests.schema_utils import assert_valid
from tests.check_obs_artifacts import check_artifacts

SCHEMA_DIR = Path(__file__).parent / "schemas"
TRACE_SCHEMA = json.loads((SCHEMA_DIR / "trace.schema.json").read_text())
METRICS_SCHEMA = json.loads((SCHEMA_DIR / "metrics.schema.json").read_text())
MANIFEST_SCHEMA = json.loads((SCHEMA_DIR / "manifest.schema.json").read_text())
LOG_SCHEMA = json.loads((SCHEMA_DIR / "log.schema.json").read_text())


@pytest.fixture(autouse=True)
def _obs_isolation(monkeypatch):
    monkeypatch.delenv(obs_trace.ENV_TRACE, raising=False)
    obs_trace.disable()
    REGISTRY.reset()
    yield
    obs_trace.disable()
    REGISTRY.reset()


def _table1_args(run_dir: Path, cache_dir: Path, *extra: str) -> list:
    return [
        "table1", "--app", "jacobi", "--train", "4,8", "--target", "16",
        "--workers", "0", "--cache-dir", str(cache_dir),
        "--trace-out", str(run_dir / "trace.json"),
        "--metrics-out", str(run_dir / "metrics.json"),
        "--manifest-out", str(run_dir / "manifest.json"),
        *extra,
    ]


@pytest.fixture(scope="module")
def table1_run(tmp_path_factory):
    """One traced table1 CLI run shared by every assertion below."""
    base = tmp_path_factory.mktemp("obs-cli")
    run_dir = base / "run1"
    run_dir.mkdir()
    cache_dir = base / "cache"
    import io
    import contextlib

    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        rc = main(_table1_args(run_dir, cache_dir))
    obs_trace.disable()
    assert rc == 0
    return {
        "dir": run_dir,
        "cache_dir": cache_dir,
        "stdout": stdout.getvalue(),
        "trace": json.loads((run_dir / "trace.json").read_text()),
        "metrics": json.loads((run_dir / "metrics.json").read_text()),
        "manifest": json.loads((run_dir / "manifest.json").read_text()),
    }


class TestArtifacts:
    def test_all_artifacts_validate(self, table1_run):
        assert_valid(table1_run["trace"], TRACE_SCHEMA, "chrome trace")
        assert_valid(table1_run["metrics"], METRICS_SCHEMA, "metrics")
        assert_valid(table1_run["manifest"], MANIFEST_SCHEMA, "manifest")
        # the CI validator script agrees
        assert check_artifacts(
            trace=table1_run["dir"] / "trace.json",
            metrics=table1_run["dir"] / "metrics.json",
            manifest=table1_run["dir"] / "manifest.json",
        ) == []

    def test_trace_covers_pipeline_stages(self, table1_run):
        events = table1_run["trace"]["traceEvents"]
        stages = {e["name"].split(".", 1)[0] for e in events}
        # the acceptance bar: nested spans across >= 6 distinct stages
        assert len(stages) >= 6, f"only {sorted(stages)}"
        for expected in ("cli", "collect", "fit", "extrapolate",
                         "predict", "replay", "measure", "cachesim"):
            assert expected in stages
        # spans are genuinely nested, not flat
        assert {e["args"]["depth"] for e in events} >= {0, 1, 2}

    def test_metrics_match_manifest_cache_stats(self, table1_run):
        counters = table1_run["metrics"]["counters"]
        cache = table1_run["manifest"]["cache"]
        for name, value in cache.items():
            assert counters.get(f"cache.{name}", 0) == value
        resilience = table1_run["manifest"]["resilience"]
        for name in ("retries", "timeouts", "crashes"):
            assert counters.get(f"resilience.{name}", 0) == resilience[name]
        assert counters["cachesim.accesses"] > 0

    def test_manifest_records_run_identity(self, table1_run):
        manifest = table1_run["manifest"]
        assert manifest["command"] == "table1"
        assert manifest["app"] == "jacobi"
        assert manifest["machine"] == "blue_waters_p1"
        assert manifest["config"]["target"] == 16
        stage_names = set(manifest["stage_durations"])
        assert {"collect.signatures", "fit.series", "replay.job"} <= stage_names

    def test_result_table_digested(self, table1_run):
        digest = table1_run["manifest"]["outputs"]["table1.txt"]["sha256"]
        assert digest == obs_manifest.digest_bytes(
            table1_run["stdout"].encode("utf-8")
        )


class TestReruns:
    def test_rerun_digests_bit_identical(self, table1_run, tmp_path, capsys):
        run_dir = tmp_path / "run2"
        run_dir.mkdir()
        rc = main(_table1_args(run_dir, table1_run["cache_dir"]))
        assert rc == 0
        capsys.readouterr()
        second = json.loads((run_dir / "manifest.json").read_text())
        assert obs_manifest.output_digests(second) == obs_manifest.output_digests(
            table1_run["manifest"]
        )
        # the rerun was served by the signature cache
        assert second["cache"]["hits"] > 0 and second["cache"]["misses"] == 0

    def test_observability_off_same_results(self, table1_run, capsys):
        rc = main(
            ["table1", "--app", "jacobi", "--train", "4,8", "--target", "16",
             "--workers", "0", "--cache-dir", str(table1_run["cache_dir"])]
        )
        assert rc == 0
        assert capsys.readouterr().out == table1_run["stdout"]


class TestCliFlags:
    def test_quiet_silences_diagnostics(self, table1_run, capsys):
        rc = main(
            ["table1", "--app", "jacobi", "--train", "4,8", "--target", "16",
             "--workers", "0", "--cache-dir", str(table1_run["cache_dir"]),
             "--log-level", "debug", "--quiet"]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert captured.err == ""
        assert "Table I" in captured.out

    def test_log_json_lines_validate(self, table1_run, capsys):
        rc = main(
            ["table1", "--app", "jacobi", "--train", "4,8", "--target", "16",
             "--workers", "0", "--cache-dir", str(table1_run["cache_dir"]),
             "--log-level", "info", "--log-json"]
        )
        captured = capsys.readouterr()
        assert rc == 0
        lines = [ln for ln in captured.err.splitlines() if ln.strip()]
        assert lines, "expected JSON diagnostics on stderr"
        for line in lines:
            assert_valid(json.loads(line), LOG_SCHEMA, "log record")

    def test_collect_writes_default_manifest(self, tmp_path, capsys):
        out = tmp_path / "sig"
        rc = main(
            ["collect", "--app", "jacobi", "--ranks", "4", "--workers", "0",
             "--out", str(out), "--cache-dir", str(tmp_path / "cache")]
        )
        capsys.readouterr()
        assert rc == 0
        manifest = json.loads((out / obs_manifest.MANIFEST_NAME).read_text())
        assert_valid(manifest, MANIFEST_SCHEMA, "collect manifest")
        # every signature artifact is digested; the manifest is excluded
        assert obs_manifest.MANIFEST_NAME not in manifest["outputs"]
        assert any(name.endswith(".npz") for name in manifest["outputs"])
        for name, entry in manifest["outputs"].items():
            assert entry["sha256"] == obs_manifest.digest_file(out / name)

    def test_unwritable_obs_path_exits_2(self, tmp_path, capsys):
        target = tmp_path / "isafile"
        target.write_text("x")
        rc = main(
            ["table1", "--app", "jacobi", "--train", "4,8", "--target", "16",
             "--trace-out", str(target / "trace.json")]
        )
        assert rc == 2
        assert "not writable" in capsys.readouterr().err
