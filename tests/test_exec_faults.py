"""Unit tests: the deterministic fault-injection harness.

The harness itself must be trustworthy before it can vouch for the
recovery paths: plans round-trip through JSON/env, match keys and
attempt numbers exactly, and each fault kind behaves as specified in
both serial and pooled execution.
"""

import json

import pytest

from repro.exec import faults
from repro.exec.faults import FaultPlan, FaultSpec
from repro.exec.pool import _WORKER_ENV, run_tasks
from repro.util.errors import TaskCrashError, TransientTaskError


class TestFaultSpec:
    def test_matches_key_pattern_and_attempt(self):
        spec = FaultSpec(key="collect:jacobi:*", kind="raise", attempts=(1, 3))
        assert spec.matches("collect:jacobi:8", 1)
        assert spec.matches("collect:jacobi:8:rank0", 3)
        assert not spec.matches("collect:jacobi:8", 2)
        assert not spec.matches("collect:uh3d:8", 1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(key="x", kind="explode")

    def test_exact_key_match(self):
        spec = FaultSpec(key="task0", kind="crash")
        assert spec.matches("task0", 1)
        assert not spec.matches("task01", 1)


class TestFaultPlan:
    def test_json_roundtrip(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(key="a*", kind="raise", attempts=(1, 2), message="boom"),
                FaultSpec(key="b", kind="hang", seconds=0.5),
            )
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_json_rejects_non_list(self):
        with pytest.raises(ValueError, match="list"):
            FaultPlan.from_json(json.dumps({"key": "a"}))

    def test_spec_for_filters_kinds(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(key="k", kind="corrupt"),
                FaultSpec(key="k", kind="raise"),
            )
        )
        assert plan.spec_for("k", 1, kinds=("raise",)).kind == "raise"
        assert plan.spec_for("k", 1, kinds=("corrupt",)).kind == "corrupt"
        assert plan.spec_for("k", 2) is None  # attempt 2 never fires

    def test_env_activation_inline_and_file(self, tmp_path, monkeypatch):
        plan = FaultPlan(specs=(FaultSpec(key="k", kind="raise"),))
        monkeypatch.setenv(faults.ENV_FAULT_PLAN, plan.to_json())
        assert faults.active_plan() == plan
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        monkeypatch.setenv(faults.ENV_FAULT_PLAN, f"@{path}")
        assert faults.active_plan() == plan

    def test_installed_plan_overrides_env(self, monkeypatch):
        env_plan = FaultPlan(specs=(FaultSpec(key="env", kind="raise"),))
        monkeypatch.setenv(faults.ENV_FAULT_PLAN, env_plan.to_json())
        installed = FaultPlan(specs=(FaultSpec(key="inst", kind="raise"),))
        with faults.injected(installed):
            assert faults.active_plan() == installed
        assert faults.active_plan() == env_plan


class TestApplyFault:
    def test_noop_without_plan(self):
        faults.apply_fault("anything", 1)  # must not raise

    def test_raise_kind(self):
        plan = FaultPlan(specs=(FaultSpec(key="k", kind="raise", message="zap"),))
        with faults.injected(plan):
            with pytest.raises(TransientTaskError, match="zap"):
                faults.apply_fault("k", 1)
            faults.apply_fault("k", 2)  # attempt 2 clean

    def test_crash_kind_serial_raises_instead_of_exiting(self):
        # outside a pool worker a crash fault must never kill the
        # calling process (that would take the test runner down)
        plan = FaultPlan(specs=(FaultSpec(key="k", kind="crash"),))
        with faults.injected(plan):
            with pytest.raises(TaskCrashError):
                faults.apply_fault("k", 1)

    def test_hang_kind_sleeps(self):
        import time

        plan = FaultPlan(specs=(FaultSpec(key="k", kind="hang", seconds=0.05),))
        with faults.injected(plan):
            start = time.monotonic()
            faults.apply_fault("k", 1)
            assert time.monotonic() - start >= 0.04

    def test_poison_trace_defaults_to_nan(self):
        from tests.test_guard_validators import SCHEMA, make_trace

        trace = make_trace()
        plan = FaultPlan(specs=(FaultSpec(key="k", kind="poison-trace"),))
        with faults.injected(plan):
            assert faults.poison_trace(trace, "k") is trace
        value = trace.blocks[0].instructions[0].features[
            SCHEMA.index("exec_count")
        ]
        assert value != value  # NaN (spec.value=None means NaN)

    def test_poison_trace_explicit_value_and_indices(self):
        from tests.test_guard_validators import SCHEMA, make_trace

        trace = make_trace()
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    key="k", kind="poison-trace", feature="hit_rate_L1",
                    block_index=1, instr_index=1, value=2.5,
                ),
            )
        )
        with faults.injected(plan):
            faults.poison_trace(trace, "k")
        vec = trace.blocks[1].instructions[1].features
        assert vec[SCHEMA.index("hit_rate_L1")] == 2.5

    def test_poison_trace_indices_wrap_modulo(self):
        # indices beyond the trace's extent still land deterministically
        from tests.test_guard_validators import SCHEMA, make_trace

        trace = make_trace()  # 2 blocks x 2 instructions
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    key="k", kind="poison-trace",
                    block_index=5, instr_index=7, value=-9.0,
                ),
            )
        )
        with faults.injected(plan):
            faults.poison_trace(trace, "k")
        vec = trace.blocks[5 % 2].instructions[7 % 2].features
        assert vec[SCHEMA.index("exec_count")] == -9.0

    def test_poison_trace_noop_without_match(self):
        import numpy as np

        from tests.test_guard_validators import make_trace

        trace = make_trace()
        before = trace.stacked_features().copy()
        faults.poison_trace(trace, "k")  # no plan at all
        plan = FaultPlan(specs=(FaultSpec(key="other", kind="poison-trace"),))
        with faults.injected(plan):
            faults.poison_trace(trace, "k")
        np.testing.assert_array_equal(trace.stacked_features(), before)

    def test_poison_spec_json_roundtrip(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(key="p", kind="poison-trace"),  # value=None -> NaN
                FaultSpec(
                    key="q", kind="poison-trace", feature="mem_ops",
                    block_index=1, instr_index=0, value=-1.0,
                ),
            )
        )
        assert FaultPlan.from_json(plan.to_json()) == plan
        # None survives as JSON null, never the nonstandard NaN literal
        assert "NaN" not in plan.to_json()

    def test_check_corrupt_counts_stores_per_key(self):
        plan = FaultPlan(
            specs=(FaultSpec(key="c", kind="corrupt", attempts=(2,)),)
        )
        with faults.injected(plan):
            assert faults.check_corrupt("c") is None  # first store clean
            assert faults.check_corrupt("c").kind == "corrupt"  # second hit
            assert faults.check_corrupt("other") is None


def _probe(x):
    faults.apply_fault(f"probe{x}", 1)
    return x


class TestWorkerInheritance:
    def test_env_plan_reaches_forked_workers(self, monkeypatch):
        plan = FaultPlan(
            specs=(FaultSpec(key="probe1", kind="raise", message="in-worker"),)
        )
        monkeypatch.setenv(faults.ENV_FAULT_PLAN, plan.to_json())
        with pytest.raises(TransientTaskError, match="in-worker"):
            run_tasks(_probe, [(0,), (1,), (2,)], workers=2)

    def test_crash_exit_reserved_for_workers(self, monkeypatch):
        # the in_worker() guard is what separates os._exit from raising;
        # simulate worker context and verify apply_fault would not raise
        # TaskCrashError there (we cannot call it: it would exit)
        monkeypatch.setenv(_WORKER_ENV, "1")
        from repro.exec.pool import in_worker

        assert in_worker()
