"""Meta tests: public-API surface, documentation and example hygiene."""

import ast
import importlib
import pkgutil
from pathlib import Path

import pytest

import repro

SRC = Path(repro.__file__).parent
EXAMPLES = SRC.parent.parent / "examples"


def _all_modules():
    names = []
    for info in pkgutil.walk_packages([str(SRC)], prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        names.append(info.name)
    return names


class TestPackaging:
    def test_every_module_imports(self):
        for name in _all_modules():
            importlib.import_module(name)

    def test_every_module_has_docstring(self):
        for name in _all_modules():
            mod = importlib.import_module(name)
            assert mod.__doc__, f"{name} lacks a module docstring"

    def test_public_api_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name}"

    def test_subpackage_alls_resolve(self):
        for pkg_name in (
            "repro.core",
            "repro.cache",
            "repro.machine",
            "repro.trace",
            "repro.instrument",
            "repro.simmpi",
            "repro.psins",
            "repro.apps",
            "repro.pipeline",
            "repro.commextrap",
            "repro.energy",
            "repro.memstream",
            "repro.util",
        ):
            pkg = importlib.import_module(pkg_name)
            for name in getattr(pkg, "__all__", []):
                assert hasattr(pkg, name), f"{pkg_name}.__all__ lists {name}"

    def test_public_functions_documented(self):
        """Every public callable exported at the top level has a docstring."""
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj):
                assert obj.__doc__, f"repro.{name} lacks a docstring"


class TestExamples:
    @pytest.mark.parametrize(
        "script", sorted(EXAMPLES.glob("*.py")), ids=lambda p: p.name
    )
    def test_examples_parse_and_have_main(self, script):
        tree = ast.parse(script.read_text())
        assert ast.get_docstring(tree), f"{script.name} lacks a docstring"
        names = {
            node.name for node in tree.body if isinstance(node, ast.FunctionDef)
        }
        assert "main" in names, f"{script.name} lacks a main()"

    def test_at_least_five_examples(self):
        assert len(list(EXAMPLES.glob("*.py"))) >= 5

    def test_quickstart_exists(self):
        assert (EXAMPLES / "quickstart.py").exists()


class TestDocs:
    def test_design_md_covers_every_subpackage(self):
        design = (SRC.parent.parent / "DESIGN.md").read_text()
        for pkg in (
            "repro.core",
            "repro.cache",
            "repro.machine",
            "repro.trace",
            "repro.instrument",
            "repro.simmpi",
            "repro.psins",
            "repro.apps",
            "repro.commextrap",
            "repro.energy",
        ):
            assert pkg.split(".")[1] in design, f"DESIGN.md misses {pkg}"

    def test_experiments_md_covers_every_table_and_figure(self):
        text = (SRC.parent.parent / "EXPERIMENTS.md").read_text()
        for artifact in (
            "Table I",
            "Table II",
            "Table III",
            "Figure 1",
            "Figure 3",
            "Figure 4",
            "Figure 5",
        ):
            assert artifact in text, f"EXPERIMENTS.md misses {artifact}"
