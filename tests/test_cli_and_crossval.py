"""Unit tests: the command-line interface and cross-validation extension."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.crossval import cross_validate_traces
from repro.trace.features import FeatureSchema
from repro.trace.records import BasicBlockRecord, InstructionRecord, SourceLocation
from repro.trace.tracefile import TraceFile

SCHEMA = FeatureSchema(["L1", "L2", "L3"])


def synth_trace(n_ranks, noise=0.0):
    trace = TraceFile(
        app="cv", rank=0, n_ranks=n_ranks, target="tgt", schema=SCHEMA
    )
    block = BasicBlockRecord(block_id=0, location=SourceLocation(function="f"))
    block.instructions.append(
        InstructionRecord(
            instr_id=0,
            kind="load",
            features=SCHEMA.vector_from_dict(
                {
                    "exec_count": 1e8 / n_ranks,
                    "mem_ops": 5e8 / n_ranks,
                    "loads": 5e8 / n_ranks,
                    "ref_bytes": 8.0,
                    "hit_rate_L1": 0.9,
                    "hit_rate_L2": min(0.9 + 1e-5 * n_ranks + noise, 1.0),
                    "hit_rate_L3": 1.0,
                }
            ),
        )
    )
    trace.add_block(block)
    return trace


class TestCrossValidation:
    def test_smooth_series_trusted(self):
        traces = [synth_trace(p) for p in (512, 1024, 2048, 4096)]
        report = cross_validate_traces(traces)
        # rates and structure validate; only the 1/P counts should flag
        assert report.trust_fraction(threshold=0.25) > 0.6
        flagged_features = {e.feature for e in report.flagged(0.25)}
        assert flagged_features <= {"exec_count", "mem_ops", "loads"}

    def test_extended_forms_trust_everything(self):
        from repro.core.canonical import EXTENDED_FORMS

        traces = [synth_trace(p) for p in (512, 1024, 2048, 4096)]
        report = cross_validate_traces(traces, forms=EXTENDED_FORMS)
        assert report.trust_fraction(threshold=0.05) == 1.0
        assert report.median_error() < 0.01

    def test_needs_three_traces(self):
        with pytest.raises(ValueError):
            cross_validate_traces([synth_trace(8), synth_trace(16)])

    def test_flagged_sorted_desc(self):
        traces = [synth_trace(p) for p in (512, 1024, 2048, 4096)]
        flagged = cross_validate_traces(traces).flagged(0.0)
        errors = [e.held_out_error for e in flagged]
        assert errors == sorted(errors, reverse=True)


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "uh3d" in out and "blue_waters_p1" in out

    def test_extrapolate_and_inspect(self, tmp_path, capsys):
        paths = []
        for p in (8, 16, 32):
            t = synth_trace(p)
            path = tmp_path / f"t{p}.npz"
            t.save_npz(path)
            paths.append(str(path))
        out_path = tmp_path / "extrap.npz"
        rc = main(
            ["extrapolate", "--trace", *paths, "--target", "128",
             "--out", str(out_path)]
        )
        assert rc == 0
        loaded = TraceFile.load_npz(out_path)
        assert loaded.extrapolated and loaded.n_ranks == 128
        assert "128" in capsys.readouterr().out

    def test_extrapolate_extended_forms_flag(self, tmp_path):
        paths = []
        for p in (8, 16, 32):
            t = synth_trace(p)
            path = tmp_path / f"t{p}.npz"
            t.save_npz(path)
            paths.append(str(path))
        out_path = tmp_path / "e.npz"
        rc = main(
            ["extrapolate", "--trace", *paths, "--target", "64",
             "--extended-forms", "--out", str(out_path)]
        )
        assert rc == 0
        loaded = TraceFile.load_npz(out_path)
        # inverse/power forms recover 1/P counts exactly
        mem = loaded.blocks[0].instructions[0].features[SCHEMA.index("mem_ops")]
        assert mem == pytest.approx(5e8 / 64, rel=1e-3)

    def _save_training(self, tmp_path):
        paths = []
        for p in (8, 16, 32):
            t = synth_trace(p)
            path = tmp_path / f"t{p}.npz"
            t.save_npz(path)
            paths.append(str(path))
        return paths

    def test_extrapolate_multi_target_sweep(self, tmp_path, capsys):
        paths = self._save_training(tmp_path)
        rc = main(
            ["extrapolate", "--trace", *paths, "--target", "64,128,256",
             "--out", str(tmp_path / "sweep-{target}.npz")]
        )
        assert rc == 0
        out = capsys.readouterr().out
        for target in (64, 128, 256):
            loaded = TraceFile.load_npz(tmp_path / f"sweep-{target}.npz")
            assert loaded.extrapolated and loaded.n_ranks == target
            assert f"sweep-{target}.npz" in out

    def test_extrapolate_multi_target_needs_placeholder(self, tmp_path):
        paths = self._save_training(tmp_path)
        with pytest.raises(SystemExit):
            main(
                ["extrapolate", "--trace", *paths, "--target", "64,128",
                 "--out", str(tmp_path / "one.npz")]
            )

    def test_extrapolate_engine_flag(self, tmp_path):
        paths = self._save_training(tmp_path)
        outs = {}
        for engine in ("batched", "reference"):
            out_path = tmp_path / f"{engine}.npz"
            rc = main(
                ["extrapolate", "--trace", *paths, "--target", "128",
                 "--engine", engine, "--out", str(out_path)]
            )
            assert rc == 0
            outs[engine] = TraceFile.load_npz(out_path)
        a = outs["batched"].blocks[0].instructions[0].features
        b = outs["reference"].blocks[0].instructions[0].features
        np.testing.assert_allclose(a, b, rtol=1e-9)

    def test_bad_train_list_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1", "--app", "jacobi", "--train", "a,b", "--target", "8"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_app_rejected(self, capsys):
        # validated by the error taxonomy, not argparse: exit code 2
        # with a one-line actionable message, no traceback
        assert main(["measure", "--app", "lammps", "--ranks", "4"]) == 2
        err = capsys.readouterr().err
        assert "unknown application 'lammps'" in err
        assert "jacobi" in err  # the message lists the known apps
