"""Unit tests: domain decomposition and the application proxies."""

import numpy as np
import pytest

from repro.apps.base import ScalingMode
from repro.apps.decomposition import CartesianDecomposition, factor3
from repro.apps.jacobi import JacobiParams, JacobiProxy
from repro.apps.registry import get_app
from repro.apps.specfem3d import SpecFEM3DProxy, SpecFEMParams
from repro.apps.uh3d import UH3DParams, UH3DProxy
from repro.simmpi.profiler import profile_job
from repro.simmpi.runtime import verify_job


class TestFactor3:
    @pytest.mark.parametrize(
        "p,expected",
        [
            (1, (1, 1, 1)),
            (8, (2, 2, 2)),
            (96, (6, 4, 4)),
            (384, (8, 8, 6)),
            (1536, (16, 12, 8)),
            (6144, (24, 16, 16)),
            (1024, (16, 8, 8)),
            (8192, (32, 16, 16)),
            (7, (7, 1, 1)),
        ],
    )
    def test_known_factorizations(self, p, expected):
        assert factor3(p) == expected

    @pytest.mark.parametrize("p", [2, 12, 100, 2048, 4096])
    def test_product_is_p(self, p):
        dims = factor3(p)
        assert dims[0] * dims[1] * dims[2] == p
        assert dims[0] >= dims[1] >= dims[2]


class TestDecomposition:
    def test_cells_partition_exactly(self):
        dec = CartesianDecomposition((48, 48, 48), 96)
        total = sum(dec.geometry(r).n_cells for r in range(96))
        assert total == 48**3

    def test_uneven_split_distributes_extras(self):
        dec = CartesianDecomposition((10, 1, 1), 3)
        sizes = sorted(dec.geometry(r).local_cells[0] for r in range(3))
        assert sizes == [3, 3, 4]

    def test_neighbors_symmetric(self):
        dec = CartesianDecomposition((16, 16, 16), 8)
        for r in range(8):
            geom = dec.geometry(r)
            for (dim, direction), nbr in geom.neighbors.items():
                back = dec.geometry(nbr).neighbors[(dim, -direction)]
                assert back == r

    def test_boundary_faces_nonperiodic(self):
        dec = CartesianDecomposition((16, 16, 16), 8)  # 2x2x2 grid
        assert all(dec.geometry(r).boundary_faces == 3 for r in range(8))

    def test_periodic_has_no_boundary(self):
        dec = CartesianDecomposition(
            (16, 16, 16), 8, periodic=(True, True, True)
        )
        for r in range(8):
            geom = dec.geometry(r)
            assert geom.boundary_faces == 0
            assert len(geom.neighbors) == 6

    def test_halo_and_boundary_cells(self):
        dec = CartesianDecomposition((8, 8, 8), 2)  # split x into 2
        geom = dec.geometry(0)
        assert geom.local_cells == (4, 8, 8)
        assert geom.halo_cells() == 64  # one x-face
        assert geom.boundary_cells() == 64 + 2 * 32 + 2 * 32  # 5 outer faces

    def test_too_many_ranks_rejected(self):
        with pytest.raises(ValueError):
            CartesianDecomposition((2, 2, 2), 64)

    def test_equivalence_classes_partition(self):
        dec = CartesianDecomposition((48, 48, 48), 96)
        classes = dec.equivalence_classes()
        all_ranks = sorted(r for cls in classes for r in cls)
        assert all_ranks == list(range(96))

    def test_rank_coords_round_trip(self):
        dec = CartesianDecomposition((48, 48, 48), 96)
        for r in (0, 13, 95):
            assert dec.rank_of(dec.coords_of(r)) == r


@pytest.mark.parametrize(
    "app_factory,counts",
    [
        (lambda: JacobiProxy(JacobiParams(global_cells=(32, 32, 32), n_steps=2)), (4, 8)),
        (
            lambda: SpecFEM3DProxy(
                SpecFEMParams(global_elements=(12, 12, 12), n_steps=2)
            ),
            (6, 24),
        ),
        (
            lambda: UH3DProxy(
                UH3DParams(global_cells=(32, 32, 32), particles_per_cell=2.0, n_steps=2)
            ),
            (8, 16),
        ),
    ],
    ids=["jacobi", "specfem3d", "uh3d"],
)
class TestProxyContracts:
    def test_jobs_verify(self, app_factory, counts):
        app = app_factory()
        for p in counts:
            verify_job(app.build_job(p))

    def test_programs_consistent_with_scripts(self, app_factory, counts):
        """Every compute event references a block that exists, and total
        script iterations equal the program's exec_count."""
        app = app_factory()
        for p in counts:
            job = app.build_job(p)
            for rank in (0, p - 1):
                program = app.rank_program(rank, p)
                totals = {}
                for ev in job.script(rank).compute_events():
                    program.block(ev.block_id)  # raises if missing
                    totals[ev.block_id] = totals.get(ev.block_id, 0) + ev.iterations
                for bid, total in totals.items():
                    assert program.block(bid).exec_count == total

    def test_equivalence_classes_partition_and_match(self, app_factory, counts):
        app = app_factory()
        for p in counts:
            classes = app.equivalence_classes(p)
            all_ranks = sorted(r for cls in classes for r in cls)
            assert all_ranks == list(range(p))

    def test_block_ids_stable_across_core_counts(self, app_factory, counts):
        app = app_factory()
        ids = [
            sorted(b.block_id for b in app.rank_program(0, p).blocks)
            for p in counts
        ]
        assert ids[0] == ids[1]

    def test_strong_scaling_shrinks_dominant_work(self, app_factory, counts):
        app = app_factory()
        small = app.rank_program(0, counts[0])
        large = app.rank_program(0, counts[1])
        assert large.total_mem_accesses < small.total_mem_accesses

    def test_determinism(self, app_factory, counts):
        a1, a2 = app_factory(), app_factory()
        p = counts[0]
        j1, j2 = a1.build_job(p), a2.build_job(p)
        for s1, s2 in zip(j1.scripts, j2.scripts):
            assert s1.events == s2.events


class TestJacobiSpecifics:
    def test_weak_scaling_grows_global(self):
        app = JacobiProxy(
            JacobiParams(weak_cells_per_rank=(8, 8, 8)), scaling=ScalingMode.WEAK
        )
        d8 = app.decomposition(8)
        assert d8.global_cells == (16, 16, 16)
        # per-rank cells constant under weak scaling
        assert d8.geometry(0).n_cells == 8**3
        d64 = app.decomposition(64)
        assert d64.geometry(0).n_cells == 8**3


class TestUH3DSpecifics:
    @pytest.fixture(scope="class")
    def app(self):
        return UH3DProxy(
            UH3DParams(global_cells=(32, 32, 32), particles_per_cell=2.0, n_steps=2)
        )

    def test_density_peak_location_stable(self, app):
        """The busiest region must stay busiest across core counts."""
        for p in (8, 64):
            job = app.build_job(p)
            prof = profile_job(job, app.program_factory(p))
            slowest = prof.slowest_rank()
            dec = app.decomposition(p)
            coords = dec.coords_of(slowest)
            pos_x = (coords[0] + 0.5) / dec.grid[0]
            assert abs(pos_x - 0.25) < 0.3  # near the dayside peak

    def test_density_levels_bounded(self, app):
        levels = {app.density_level(r, 64) for r in range(64)}
        assert levels <= set(range(app.params.density_levels))
        assert len(levels) > 1  # the field actually varies

    def test_load_imbalance_present(self, app):
        job = app.build_job(64)
        prof = profile_job(job, app.program_factory(64))
        assert prof.load_imbalance() > 1.1


class TestSpecFEMSpecifics:
    def test_corner_rank_is_slowest(self):
        app = SpecFEM3DProxy(SpecFEMParams(global_elements=(12, 12, 12), n_steps=2))
        job = app.build_job(24)
        prof = profile_job(job, app.program_factory(24))
        slowest = prof.slowest_rank()
        geom = app.decomposition(24).geometry(slowest)
        assert geom.boundary_faces == 3  # a corner rank

    def test_norm_stages_grow_with_log_cores(self):
        app = SpecFEM3DProxy(SpecFEMParams(global_elements=(12, 12, 12)))
        from repro.apps.specfem3d import BLOCK_NORM_STAGES

        e6 = app.rank_program(0, 6).block(BLOCK_NORM_STAGES).exec_count
        e24 = app.rank_program(0, 24).block(BLOCK_NORM_STAGES).exec_count
        assert e24 > e6  # log2(24) > log2(6)


class TestRegistry:
    def test_lookup(self):
        assert get_app("jacobi").name == "jacobi"
        assert get_app("specfem3d").name == "specfem3d"
        assert get_app("uh3d").name == "uh3d"

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_app("lammps")
