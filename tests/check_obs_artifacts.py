"""Validate observability artifacts against the schemas in tests/schemas/.

CI runs this after a traced pipeline invocation::

    python tests/check_obs_artifacts.py --trace trace.json \
        --metrics metrics.json --manifest manifest.json --log log.jsonl \
        --degradation degradation.json

Exit status 0 when every given artifact validates, 1 otherwise (with one
line per problem on stderr).  Importable too: :func:`check_artifacts`
returns the list of problems so tests can assert it is empty.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Union

if __package__ in (None, ""):  # executed as a script: python tests/check_...
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from tests.schema_utils import validate  # noqa: E402

SCHEMA_DIR = Path(__file__).resolve().parent / "schemas"

#: minimum distinct pipeline stages a full-pipeline trace must cover
MIN_TRACE_STAGES = 6

_PathLike = Union[str, Path]


def _load_schema(name: str) -> dict:
    return json.loads((SCHEMA_DIR / f"{name}.schema.json").read_text())


def _load_json(path: _PathLike, label: str, problems: List[str]):
    try:
        return json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        problems.append(f"{label}: cannot load {path}: {exc}")
        return None


def check_artifacts(
    *,
    trace: Optional[_PathLike] = None,
    metrics: Optional[_PathLike] = None,
    manifest: Optional[_PathLike] = None,
    log: Optional[_PathLike] = None,
    degradation: Optional[_PathLike] = None,
    telemetry: Optional[_PathLike] = None,
    min_stages: int = MIN_TRACE_STAGES,
) -> List[str]:
    """Validate whichever artifacts were given; return the problems."""
    problems: List[str] = []

    if trace is not None:
        doc = _load_json(trace, "trace", problems)
        if doc is not None:
            problems += [f"trace: {p}" for p in validate(doc, _load_schema("trace"))]
            events = doc.get("traceEvents") or []
            if not events:
                problems.append("trace: no span events recorded")
            stages = {
                e["name"].split(".", 1)[0]
                for e in events
                if isinstance(e, dict) and isinstance(e.get("name"), str)
            }
            if len(stages) < min_stages:
                problems.append(
                    f"trace: only {len(stages)} pipeline stages "
                    f"({sorted(stages)}), expected >= {min_stages}"
                )

    if metrics is not None:
        doc = _load_json(metrics, "metrics", problems)
        if doc is not None:
            problems += [
                f"metrics: {p}" for p in validate(doc, _load_schema("metrics"))
            ]

    if manifest is not None:
        doc = _load_json(manifest, "manifest", problems)
        if doc is not None:
            problems += [
                f"manifest: {p}" for p in validate(doc, _load_schema("manifest"))
            ]

    if degradation is not None:
        doc = _load_json(degradation, "degradation", problems)
        if doc is not None:
            problems += [
                f"degradation: {p}"
                for p in validate(doc, _load_schema("degradation"))
            ]
            counters = doc.get("counters") or {}
            # internal consistency: the counters must agree with the
            # enumerated lists (the acceptance contract for the guard
            # scenario runs in CI)
            for counter, key in (
                ("violations", "violations"),
                ("gate_flags", "gate_flags"),
                ("elements_degraded", "degraded_elements"),
                ("traces_degraded", "degraded_traces"),
                ("refusals", "refusals"),
            ):
                listed = doc.get(key)
                if isinstance(listed, list) and counters.get(counter) != len(listed):
                    problems.append(
                        f"degradation: counter {counter!r} is "
                        f"{counters.get(counter)} but {key!r} lists "
                        f"{len(listed)} entries"
                    )
            if doc.get("clean") and any(counters.get(c) for c in (
                "violations", "elements_degraded", "traces_degraded",
                "refusals", "spot_disagreements",
            )):
                problems.append(
                    "degradation: marked clean despite nonzero counters"
                )

    if telemetry is not None:
        schema = _load_schema("telemetry")
        try:
            lines = Path(telemetry).read_text().splitlines()
        except OSError as exc:
            problems.append(f"telemetry: cannot load {telemetry}: {exc}")
            lines = []
        records = []
        for i, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                # a torn final line is the live-writer contract, not
                # corruption; anywhere else it is a problem
                if i == len(lines):
                    continue
                problems.append(f"telemetry: line {i} is not JSON: {exc}")
                continue
            problems += [
                f"telemetry: line {i}: {p}" for p in validate(record, schema)
            ]
            records.append((i, record))
        if not records:
            problems.append("telemetry: no complete records")
        # cross-record consistency: seq strictly increases, time never
        # runs backwards, and a final record can only close the file
        prev_seq, prev_t = -1, -1.0
        for i, record in records:
            seq, t_s = record.get("seq", -1), record.get("t_s", 0.0)
            if seq <= prev_seq:
                problems.append(
                    f"telemetry: line {i}: seq {seq} after {prev_seq}"
                )
            if t_s < prev_t:
                problems.append(
                    f"telemetry: line {i}: t_s {t_s} ran backwards"
                )
            if record.get("final") and (i, record) != records[-1]:
                problems.append(
                    f"telemetry: line {i}: final record is not last"
                )
            prev_seq, prev_t = seq, t_s

    if log is not None:
        schema = _load_schema("log")
        try:
            lines = Path(log).read_text().splitlines()
        except OSError as exc:
            problems.append(f"log: cannot load {log}: {exc}")
            lines = []
        for i, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                problems.append(f"log: line {i} is not JSON: {exc}")
                continue
            problems += [f"log: line {i}: {p}" for p in validate(record, schema)]

    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", default=None, help="Chrome trace JSON")
    parser.add_argument("--metrics", default=None, help="metrics JSON")
    parser.add_argument("--manifest", default=None, help="run manifest JSON")
    parser.add_argument("--log", default=None, help="JSONL diagnostic log")
    parser.add_argument(
        "--degradation", default=None,
        help="guard DegradationReport JSON (from --degradation-out)",
    )
    parser.add_argument(
        "--telemetry", default=None,
        help="serve flight-recorder JSONL (from --telemetry-out)",
    )
    parser.add_argument(
        "--min-stages", type=int, default=MIN_TRACE_STAGES,
        help="minimum distinct pipeline stages the trace must cover",
    )
    args = parser.parse_args(argv)
    if not any(
        (args.trace, args.metrics, args.manifest, args.log,
         args.degradation, args.telemetry)
    ):
        parser.error("nothing to check: give at least one artifact path")
    problems = check_artifacts(
        trace=args.trace,
        metrics=args.metrics,
        manifest=args.manifest,
        log=args.log,
        degradation=args.degradation,
        telemetry=args.telemetry,
        min_stages=args.min_stages,
    )
    for problem in problems:
        print(f"check_obs_artifacts: {problem}", file=sys.stderr)
    if not problems:
        checked = [
            name
            for name in ("trace", "metrics", "manifest", "log",
                         "degradation", "telemetry")
            if getattr(args, name)
        ]
        print(f"check_obs_artifacts: OK ({', '.join(checked)})")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
