"""Shared fixtures: small, fast variants of the pipeline objects.

Everything here is module-scoped or session-scoped where construction is
expensive (machine profiles probe the simulated hierarchy; traces run the
cache simulator), so the suite stays quick while still exercising the
real code paths end-to-end.
"""

from __future__ import annotations

import pytest

from repro.apps.jacobi import JacobiParams, JacobiProxy
from repro.cache.configs import blue_waters_p1, cray_xt5, opteron_2level
from repro.instrument.collector import CollectorConfig
from repro.machine.profile import build_profile
from repro.machine.systems import get_spec
from repro.pipeline.collect import CollectionSettings, collect_signature

@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    """Isolate every test from ambient fault plans (env or leftover
    install): only plans a test installs itself may fire."""
    from repro.exec import faults

    monkeypatch.delenv(faults.ENV_FAULT_PLAN, raising=False)
    previous = faults.install_plan(None)
    yield
    faults.install_plan(previous)


#: Small collector budget for tests: still coverage-faithful for the
#: small regions the test apps use.
FAST_COLLECTOR = CollectorConfig(
    sample_accesses=30_000, max_sample_accesses=400_000
)

FAST_SETTINGS = CollectionSettings(ranks="slowest", collector=FAST_COLLECTOR)


@pytest.fixture(scope="session")
def small_jacobi():
    """A Jacobi proxy small enough to trace at many core counts."""
    return JacobiProxy(JacobiParams(global_cells=(64, 64, 64), n_steps=2))


@pytest.fixture(scope="session")
def bw_machine():
    """Blue-Waters-like machine profile with a reduced probe budget."""
    spec = get_spec("blue_waters_p1")
    return build_profile(
        spec.name,
        spec.hierarchy,
        spec.timing,
        spec.network,
        accesses_per_probe=20_000,
    )


@pytest.fixture(scope="session")
def bw_spec():
    return get_spec("blue_waters_p1")


@pytest.fixture(scope="session")
def jacobi_traces(small_jacobi, bw_machine):
    """Slowest-task traces of the small Jacobi at three core counts."""
    return [
        collect_signature(
            small_jacobi, p, bw_machine.hierarchy, FAST_SETTINGS
        ).slowest_trace()
        for p in (4, 8, 16)
    ]


@pytest.fixture(scope="session")
def serve_model(jacobi_traces):
    """A fitted serving model over the small Jacobi training trio."""
    from repro.core.extrapolate import fit_traces
    from repro.serve import FittedModel, ModelSpec

    report, template = fit_traces(jacobi_traces)
    spec = ModelSpec(
        app="jacobi",
        machine="blue_waters_p1",
        train_counts=(4, 8, 16),
        code_version="test-build",
    )
    return FittedModel(spec=spec, report=report, template=template)
