"""Integration tests: the full pipeline on a small workload.

Collect -> extrapolate -> predict -> measure, exercising every subsystem
together the way the benchmark harness does, but at test-friendly sizes.
"""

import numpy as np
import pytest

from repro.core.errors import abs_rel_error
from repro.core.extrapolate import extrapolate_trace
from repro.core.influence import influential_instructions
from repro.pipeline.collect import CollectionSettings, collect_signature
from repro.pipeline.experiment import Table1Config, run_table1
from repro.pipeline.predict import measure_runtime, predict_runtime
from repro.pipeline.report import table1_report
from repro.trace.diff import compare_traces

from tests.conftest import FAST_COLLECTOR, FAST_SETTINGS


class TestCollection:
    def test_signature_contents(self, small_jacobi, bw_machine):
        sig = collect_signature(
            small_jacobi, 8, bw_machine.hierarchy, FAST_SETTINGS
        )
        assert sig.n_ranks == 8
        assert len(sig.traces) == 1
        assert len(sig.compute_times) == 8
        trace = sig.slowest_trace()
        assert trace.n_blocks == 3
        assert trace.target == bw_machine.hierarchy.name

    def test_collect_specific_ranks(self, small_jacobi, bw_machine):
        settings = CollectionSettings(ranks=[0, 3], collector=FAST_COLLECTOR)
        sig = collect_signature(small_jacobi, 8, bw_machine.hierarchy, settings)
        assert sig.ranks == [0, 3]

    def test_collect_all_ranks(self, small_jacobi, bw_machine):
        settings = CollectionSettings(ranks="all", collector=FAST_COLLECTOR)
        sig = collect_signature(small_jacobi, 4, bw_machine.hierarchy, settings)
        assert sig.ranks == [0, 1, 2, 3]

    def test_bad_rank_rejected(self, small_jacobi, bw_machine):
        settings = CollectionSettings(ranks=[99], collector=FAST_COLLECTOR)
        with pytest.raises(ValueError):
            collect_signature(small_jacobi, 8, bw_machine.hierarchy, settings)

    def test_collection_deterministic(self, small_jacobi, bw_machine):
        t1 = collect_signature(
            small_jacobi, 8, bw_machine.hierarchy, FAST_SETTINGS
        ).slowest_trace()
        t2 = collect_signature(
            small_jacobi, 8, bw_machine.hierarchy, FAST_SETTINGS
        ).slowest_trace()
        for b1, b2 in zip(t1.sorted_blocks(), t2.sorted_blocks()):
            for i1, i2 in zip(b1.instructions, b2.instructions):
                np.testing.assert_array_equal(i1.features, i2.features)


class TestEndToEnd:
    def test_extrapolated_prediction_close_to_collected(
        self, small_jacobi, bw_machine, jacobi_traces
    ):
        target = 32
        res = extrapolate_trace(jacobi_traces, target)
        coll = collect_signature(
            small_jacobi, target, bw_machine.hierarchy, FAST_SETTINGS
        ).slowest_trace()
        job = small_jacobi.build_job(target)
        pred_e = predict_runtime(
            small_jacobi, target, res.trace, bw_machine, job=job
        )
        pred_c = predict_runtime(small_jacobi, target, coll, bw_machine, job=job)
        gap = abs_rel_error(pred_c.runtime_s, pred_e.runtime_s)
        assert gap < 0.30  # Jacobi has sharp transitions; proxies do better

    def test_prediction_vs_ground_truth(
        self, small_jacobi, bw_machine, bw_spec, jacobi_traces
    ):
        target = 16
        coll = jacobi_traces[2]
        job = small_jacobi.build_job(target)
        pred = predict_runtime(small_jacobi, target, coll, bw_machine, job=job)
        meas = measure_runtime(small_jacobi, target, bw_spec, job=job)
        assert abs_rel_error(meas.runtime_s, pred.runtime_s) < 0.25

    def test_trace_core_count_enforced(self, small_jacobi, bw_machine, jacobi_traces):
        with pytest.raises(ValueError):
            predict_runtime(small_jacobi, 64, jacobi_traces[0], bw_machine)

    def test_influential_elements_error_bound(
        self, small_jacobi, bw_machine, jacobi_traces
    ):
        """§IV's evaluation, miniaturized: influential-element errors."""
        target = 32
        res = extrapolate_trace(jacobi_traces, target)
        coll = collect_signature(
            small_jacobi, target, bw_machine.hierarchy, FAST_SETTINGS
        ).slowest_trace()
        influential = influential_instructions(coll)
        # hit rates of influential instructions must extrapolate well
        diff = compare_traces(
            coll,
            res.trace,
            fields=[f for f in coll.schema.fields if f.startswith("hit_rate")],
        )
        inf_set = influential.influential_set()
        inf_errors = [
            e.abs_rel_error
            for e in diff.errors
            if (e.block_id, e.instr_id) in inf_set
        ]
        assert inf_errors
        assert float(np.median(inf_errors)) < 0.20

    def test_full_table1_protocol_small(self, small_jacobi):
        cfg = Table1Config(
            collection=FAST_SETTINGS, accesses_per_probe=20_000
        )
        result = run_table1(
            small_jacobi, train_counts=(4, 8, 16), target_count=32, config=cfg
        )
        assert len(result.rows) == 2
        types = {r.trace_type for r in result.rows}
        assert types == {"Extrap.", "Coll."}
        for row in result.rows:
            assert row.predicted_runtime_s > 0
            assert np.isfinite(row.pct_error)
        # the collected-trace prediction must be decent
        coll_row = next(r for r in result.rows if r.trace_type == "Coll.")
        assert coll_row.pct_error < 25.0
        report = table1_report(result.rows)
        assert "jacobi" in report and "Extrap." in report


class TestWhatIfStudies:
    def test_run_whatif_sweep(self, small_jacobi):
        """One training fit answers many 'what if N cores?' questions."""
        from repro.pipeline.experiment import (
            collect_training_traces,
            run_whatif_sweep,
        )

        cfg = Table1Config(
            collection=FAST_SETTINGS, accesses_per_probe=20_000
        )
        training = collect_training_traces(small_jacobi, (4, 8, 16), cfg)
        assert [t.n_ranks for t in training] == [4, 8, 16]
        targets = [32, 64, 128]
        result = run_whatif_sweep(
            small_jacobi, (4, 8, 16), targets, cfg, training=training
        )
        assert [r.core_count for r in result.rows] == targets
        assert all(r.predicted_runtime_s > 0 for r in result.rows)
        assert result.sweep.targets == targets
        # the sweep shares one fit report across all targets
        assert all(
            res.report is result.sweep.report
            for res in result.sweep.results
        )

    def test_table3_style_l1_sensitivity(self, small_jacobi):
        """Same app, two targets differing only in L1 size (Table III)."""
        from repro.cache.configs import system_a, system_b

        t_a = collect_signature(
            small_jacobi, 8, system_a(), FAST_SETTINGS
        ).slowest_trace()
        t_b = collect_signature(
            small_jacobi, 8, system_b(), FAST_SETTINGS
        ).slowest_trace()
        ia, ib = t_a.schema.index("hit_rate_L1"), t_b.schema.index("hit_rate_L1")
        # bigger L1 can only help
        for bid in t_a.blocks:
            for k, ins in enumerate(t_a.blocks[bid].instructions):
                ra = ins.features[ia]
                rb = t_b.blocks[bid].instructions[k].features[ib]
                assert rb >= ra - 0.02
