"""Unit tests: stage-boundary artifact validators and violation types.

Each validator turns bad data into typed, element-addressed
:class:`GuardViolation` values instead of letting it crash deep in the
numerics; these tests pin down exactly which check fires, at which
severity, addressing which element — and that clean artifacts produce
no violations at all.
"""

import copy
import dataclasses

import numpy as np
import pytest

from repro.core.extrapolate import extrapolate_trace
from repro.guard.validators import (
    validate_fit_report,
    validate_machine_profile,
    validate_trace,
)
from repro.guard.violations import GuardError, GuardViolation, worst_severity
from repro.trace.features import FeatureSchema
from repro.trace.records import (
    BasicBlockRecord,
    InstructionRecord,
    SourceLocation,
)
from repro.trace.tracefile import TraceFile

SCHEMA = FeatureSchema(["L1", "L2"])


def make_trace(n_ranks=64, scale=1.0, extrapolated=False):
    """A small physically valid trace: 2 blocks x 2 instructions."""
    trace = TraceFile(
        app="guardtest", rank=0, n_ranks=n_ranks, target="tgt", schema=SCHEMA
    )
    for bid in (0, 1):
        block = BasicBlockRecord(
            block_id=bid, location=SourceLocation(function=f"f{bid}")
        )
        for k in range(2):
            vec = SCHEMA.vector_from_dict(
                {
                    "exec_count": 1000.0 * scale * (bid + k + 1),
                    "mem_ops": 400.0 * scale,
                    "loads": 300.0 * scale,
                    "stores": 100.0 * scale,
                    "ref_bytes": 8.0,
                    "working_set_bytes": 4096.0,
                    "ilp": 2.0,
                    "dep_chain": 3.0,
                    "hit_rate_L1": 0.9,
                    "hit_rate_L2": 0.97,
                }
            )
            block.instructions.append(
                InstructionRecord(instr_id=k, kind="load", features=vec)
            )
        trace.add_block(block)
    trace.extrapolated = extrapolated
    return trace


def _set(trace, bid, k, feature, value):
    trace.blocks[bid].instructions[k].features[SCHEMA.index(feature)] = value


class TestTraceValidator:
    def test_clean_trace_no_violations(self):
        assert validate_trace(make_trace(), boundary="collect->fit") == []

    def test_nan_flagged_once_element_addressed(self):
        trace = make_trace()
        _set(trace, 1, 0, "exec_count", float("nan"))
        violations = validate_trace(trace, boundary="collect->fit")
        assert len(violations) == 1  # finite check only, not also count
        v = violations[0]
        assert v.check == "finite" and v.severity == "error"
        assert (v.block_id, v.instr_id, v.feature) == (1, 0, "exec_count")
        assert v.element_addressed
        assert "block 1 instr 0 feature 'exec_count'" in v.describe()

    def test_negative_count_flagged(self):
        trace = make_trace()
        _set(trace, 0, 1, "mem_ops", -5.0)
        (v,) = validate_trace(trace, boundary="collect->fit")
        assert v.check == "count-negative"
        assert (v.block_id, v.instr_id, v.feature) == (0, 1, "mem_ops")

    def test_rate_out_of_range_flagged(self):
        trace = make_trace()
        _set(trace, 0, 0, "hit_rate_L2", 1.4)
        checks = {
            v.check for v in validate_trace(trace, boundary="collect->fit")
        }
        assert "rate-range" in checks

    def test_rate_tolerance_absorbs_float_noise(self):
        trace = make_trace()
        _set(trace, 0, 0, "hit_rate_L2", 1.0 + 1e-12)
        assert validate_trace(trace, boundary="collect->fit") == []

    def test_monotonicity_flags_outer_level_of_drop(self):
        trace = make_trace()
        _set(trace, 1, 1, "hit_rate_L2", 0.5)  # below L1's 0.9
        (v,) = validate_trace(trace, boundary="collect->fit")
        assert v.check == "rate-monotone"
        assert v.feature == "hit_rate_L2"  # the outer (dropping) level

    def test_schema_width_mismatch_is_fatal_and_preempts(self):
        trace = make_trace()
        # poison values too — they must NOT be reported, since element
        # addressing by column is meaningless with a bad width
        _set(trace, 0, 0, "exec_count", float("nan"))
        trace.blocks[1].instructions[0].features = np.zeros(3)
        violations = validate_trace(trace, boundary="collect->fit")
        assert [v.check for v in violations] == ["schema"]
        assert violations[0].severity == "fatal"
        assert violations[0].block_id == 1
        assert violations[0].instr_id == 0

    def test_nonpositive_ranks_is_fatal(self):
        trace = make_trace(n_ranks=0)
        checks = {
            v.severity
            for v in validate_trace(trace, boundary="collect->fit")
            if v.check == "n-ranks"
        }
        assert checks == {"fatal"}

    def test_extrapolated_marker_postcondition(self):
        trace = make_trace(extrapolated=False)
        violations = validate_trace(
            trace, boundary="extrapolate->predict",
            artifact="extrapolated-trace",
        )
        assert [v.check for v in violations] == ["extrapolated-marker"]
        trace.extrapolated = True
        assert validate_trace(trace, boundary="extrapolate->predict") == []


class TestFitReportValidator:
    @pytest.fixture(scope="class")
    def fit_report(self):
        # the reference engine stores persistent ElementFit objects, so
        # the poisoning test below can mutate a selected fit in place
        traces = [make_trace(n, scale=n / 16.0) for n in (16, 32, 64)]
        return extrapolate_trace(traces, 256, engine="reference").report

    def test_clean_fit_report(self, fit_report):
        assert validate_fit_report(fit_report, SCHEMA) == []

    def test_nonfinite_params_flagged(self, fit_report):
        report = copy.deepcopy(fit_report)
        element = next(iter(report.elements()))
        element.fit.params[...] = np.nan
        violations = validate_fit_report(report, SCHEMA)
        assert violations and all(v.check == "fit-finite" for v in violations)
        assert violations[0].element_addressed


class TestMachineProfileValidator:
    def test_clean_profile(self, bw_machine):
        assert validate_machine_profile(bw_machine) == []

    def test_nonpositive_fp_rate_fatal(self, bw_machine):
        profile = copy.deepcopy(bw_machine)
        profile.fp_rates_gflops["fp_add"] = 0.0
        (v,) = validate_machine_profile(profile)
        assert v.check == "fp-rate" and v.severity == "fatal"

    def test_nonfinite_network_parameter_fatal(self, bw_machine):
        profile = copy.deepcopy(bw_machine)
        profile.network = dataclasses.replace(
            profile.network, latency_us=float("inf")
        )
        (v,) = validate_machine_profile(profile)
        assert v.check == "network" and "latency_us" in v.message

    def test_surface_crash_is_a_violation_not_an_exception(self, bw_machine):
        profile = copy.deepcopy(bw_machine)

        class Broken:
            def bandwidth_gbs(self, *a, **k):
                raise RuntimeError("boom")

        profile.surface = Broken()
        violations = validate_machine_profile(profile)
        assert violations and violations[0].check == "surface"

    def test_nonphysical_surface_output_fatal(self, bw_machine, monkeypatch):
        profile = copy.deepcopy(bw_machine)
        monkeypatch.setattr(
            type(profile),
            "memory_bandwidth_gbs",
            lambda self, rates: np.full(np.asarray(rates).shape[0], -1.0),
        )
        (v,) = validate_machine_profile(profile)
        assert v.check == "surface" and v.severity == "fatal"


class TestViolationTypes:
    def test_partial_address_renders(self):
        v = GuardViolation(
            artifact="trace", boundary="collect->fit", check="schema",
            message="bad width", severity="fatal", block_id=3, instr_id=1,
        )
        assert not v.element_addressed  # feature missing
        assert v.element == "block 3 instr 1"
        assert "element block 3 instr 1" in v.describe()

    def test_worst_severity_ranking(self):
        mk = lambda s: GuardViolation(  # noqa: E731
            artifact="trace", boundary="b", check="c", message="m", severity=s
        )
        assert worst_severity([mk("warn"), mk("fatal"), mk("error")]) == "fatal"
        assert worst_severity([]) is None

    def test_guard_error_message_leads_with_worst(self):
        err = GuardError(
            [
                GuardViolation(
                    artifact="trace", boundary="b", check="finite",
                    message="nan", severity="error", block_id=0, instr_id=0,
                    feature="exec_count",
                ),
                GuardViolation(
                    artifact="trace", boundary="b", check="n-ranks",
                    message="bad ranks", severity="fatal",
                ),
            ]
        )
        text = str(err)
        assert text.startswith("trace: bad ranks")  # fatal sorts first
        assert "(+1 more)" in text

    def test_guard_error_without_evidence(self):
        assert "refused" in str(GuardError([]))
