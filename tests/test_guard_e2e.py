"""End-to-end tests: guardrails through the CLI (the acceptance run).

The combined fault scenario from the issue: one ``REPRO_FAULT_PLAN``
injects a poisoned trace element AND a corrupted cache entry into a
Table I run.  Under ``--guard degrade`` the run completes, with the
DegradationReport enumerating exactly the degraded elements and the
manifest/metrics ``guard.*`` counters agreeing; under ``--guard
strict`` it exits 2 with an element-addressed one-liner.  Clean inputs
produce bit-identical artifacts with guards on or off.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import QUALITY_SIDECAR_SUFFIX, main
from repro.exec import faults
from repro.exec.faults import FaultPlan, FaultSpec
from repro.obs import manifest as obs_manifest
from tests.check_obs_artifacts import check_artifacts

#: poison the slowest-rank trace of the count-8 training run; corrupt
#: the first cache store of the run (the count-4 signature)
COMBINED_PLAN = FaultPlan(
    specs=(
        FaultSpec(key="collect:jacobi:8:rank*", kind="poison-trace"),
        FaultSpec(key="*", kind="corrupt", attempts=(1,)),
    )
)


def _table1_args(run_dir: Path, cache_dir: Path, policy: str) -> list:
    return [
        "table1", "--app", "jacobi", "--train", "4,8", "--target", "16",
        "--workers", "0", "--cache-dir", str(cache_dir),
        "--guard", policy,
        "--degradation-out", str(run_dir / "degradation.json"),
        "--metrics-out", str(run_dir / "metrics.json"),
        "--manifest-out", str(run_dir / "manifest.json"),
    ]


@pytest.fixture(scope="module")
def faulted_degrade_run(tmp_path_factory):
    """The combined-fault table1 run under --guard degrade, twice over a
    shared cache (run 2 additionally exercises quarantine + recollect)."""
    base = tmp_path_factory.mktemp("guard-e2e")
    cache_dir = base / "cache"
    runs = []
    import contextlib
    import io

    with faults.injected(COMBINED_PLAN):
        for name in ("run1", "run2"):
            run_dir = base / name
            run_dir.mkdir()
            stdout = io.StringIO()
            with contextlib.redirect_stdout(stdout):
                rc = main(_table1_args(run_dir, cache_dir, "degrade"))
            runs.append(
                {
                    "rc": rc,
                    "dir": run_dir,
                    "stdout": stdout.getvalue(),
                    "degradation": json.loads(
                        (run_dir / "degradation.json").read_text()
                    ),
                    "metrics": json.loads(
                        (run_dir / "metrics.json").read_text()
                    ),
                    "manifest": json.loads(
                        (run_dir / "manifest.json").read_text()
                    ),
                }
            )
    return {"cache_dir": cache_dir, "runs": runs}


class TestDegradeCompletes:
    def test_both_runs_complete(self, faulted_degrade_run):
        for run in faulted_degrade_run["runs"]:
            assert run["rc"] == 0
            assert "Table I" in run["stdout"]

    def test_exactly_the_poisoned_element_degraded(self, faulted_degrade_run):
        for run in faulted_degrade_run["runs"]:
            doc = run["degradation"]
            assert doc["policy"] == "degrade" and not doc["clean"]
            # the plan poisons exactly one element (block 0, instr 0,
            # exec_count by spec defaults) of one training trace
            (violation,) = doc["violations"]
            assert violation["check"] == "finite"
            assert violation["feature"] == "exec_count"
            (element,) = doc["degraded_elements"]
            assert element["action"] == "hold-nearest"
            assert element["feature"] == "exec_count"
            assert (element["block_id"], element["instr_id"]) == (
                violation["block_id"], violation["instr_id"],
            )
            assert doc["degraded_traces"] == [] and doc["refusals"] == []

    def test_degradation_report_validates(self, faulted_degrade_run):
        for run in faulted_degrade_run["runs"]:
            assert check_artifacts(
                degradation=run["dir"] / "degradation.json",
                manifest=run["dir"] / "manifest.json",
                metrics=run["dir"] / "metrics.json",
            ) == []

    def test_manifest_and_metrics_counters_agree(self, faulted_degrade_run):
        for run in faulted_degrade_run["runs"]:
            guard = run["manifest"]["guard"]
            assert guard == run["degradation"]
            counters = run["metrics"]["counters"]
            for name, value in guard["counters"].items():
                assert counters.get(f"guard.{name}", 0) == value
            assert guard["counters"]["violations"] == 1
            assert guard["counters"]["elements_degraded"] == 1

    def test_stdout_carries_guard_summary(self, faulted_degrade_run):
        for run in faulted_degrade_run["runs"]:
            assert "guard:" in run["stdout"]
            assert "elements degraded: 1" in run["stdout"]

    def test_second_run_hit_cache_corruption(self, faulted_degrade_run):
        # run 1 stored a truncated entry; run 2 quarantined and
        # recollected it rather than crashing or trusting garbage
        second = faulted_degrade_run["runs"][1]["manifest"]
        assert second["cache"]["corrupt"] >= 1


class TestStrictRefuses:
    def test_exit_2_with_element_addressed_line(
        self, faulted_degrade_run, tmp_path, capsys
    ):
        run_dir = tmp_path / "strict"
        run_dir.mkdir()
        with faults.injected(COMBINED_PLAN):
            rc = main(
                _table1_args(
                    run_dir, faulted_degrade_run["cache_dir"], "strict"
                )
            )
        captured = capsys.readouterr()
        assert rc == 2
        (line,) = [
            ln for ln in captured.err.splitlines()
            if ln.startswith("repro: error:")
        ]
        assert "feature 'exec_count'" in line
        assert "block" in line and "instr" in line
        assert "Traceback" not in captured.err
        # the partial ledger was still exported for post-mortem
        doc = json.loads((run_dir / "degradation.json").read_text())
        assert doc["counters"]["violations"] == 1


class TestCleanBitIdentity:
    @pytest.fixture(scope="class")
    def trace_files(self, jacobi_traces, tmp_path_factory):
        base = tmp_path_factory.mktemp("guard-clean")
        paths = []
        for trace in jacobi_traces:
            p = base / f"train{trace.n_ranks}.npz"
            trace.save_npz(p)
            paths.append(str(p))
        return paths

    def _extrapolate(self, trace_files, out: Path, *extra: str) -> int:
        return main(
            ["extrapolate", "--trace", *trace_files, "--target", "64",
             "--out", str(out), *extra]
        )

    def test_npz_identical_guards_on_vs_off(
        self, trace_files, tmp_path, capsys
    ):
        on = tmp_path / "on.npz"
        off = tmp_path / "off.npz"
        assert self._extrapolate(trace_files, on, "--guard", "degrade") == 0
        assert self._extrapolate(trace_files, off, "--guard", "off") == 0
        capsys.readouterr()
        assert obs_manifest.digest_file(on) == obs_manifest.digest_file(off)
        # trust data lives in the sidecar, never in the trace itself
        assert Path(str(on) + QUALITY_SIDECAR_SUFFIX).exists()
        assert not Path(str(off) + QUALITY_SIDECAR_SUFFIX).exists()

    def test_guarded_extrapolate_reports_trust(
        self, trace_files, tmp_path, capsys
    ):
        out = tmp_path / "t.npz"
        assert self._extrapolate(trace_files, out, "--guard", "degrade") == 0
        stdout = capsys.readouterr().out
        assert "cross-validation trust fraction" in stdout
        sidecar = json.loads(
            Path(str(out) + QUALITY_SIDECAR_SUFFIX).read_text()
        )
        assert sidecar["clean"] is True
        assert 0.0 <= sidecar["trust_fraction"] <= 1.0


class TestPredictTrustFloor:
    @pytest.fixture()
    def low_trust_trace(self, jacobi_traces, tmp_path):
        trace = jacobi_traces[-1]
        path = tmp_path / "extrap.npz"
        trace.save_npz(path)
        sidecar = {
            "schema_version": 1,
            "policy": "degrade",
            "clean": True,
            "trust_threshold": 0.2,
            "trust_fraction": 0.1,
            "crossval_median_error": 0.5,
            "flagged_elements": 9,
            "degraded_elements": [],
            "degraded_traces": [],
        }
        Path(str(path) + QUALITY_SIDECAR_SUFFIX).write_text(
            json.dumps(sidecar)
        )
        return {"path": str(path), "ranks": trace.n_ranks}

    def _predict(self, spec, *extra: str) -> int:
        return main(
            ["predict", "--app", "jacobi", "--ranks", str(spec["ranks"]),
             "--trace", spec["path"], *extra]
        )

    def test_strict_refuses_below_floor(self, low_trust_trace, capsys):
        rc = self._predict(
            low_trust_trace, "--guard", "strict", "--trust-threshold", "0.5"
        )
        captured = capsys.readouterr()
        assert rc == 2
        assert "trust fraction 0.100 below" in captured.err

    def test_degrade_warns_and_predicts(self, low_trust_trace, capsys):
        rc = self._predict(
            low_trust_trace, "--guard", "degrade", "--trust-threshold", "0.5"
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "predicted runtime" in captured.out
        assert "trust fraction 0.100" in captured.out

    def test_no_floor_no_refusal(self, low_trust_trace, capsys):
        rc = self._predict(low_trust_trace, "--guard", "strict")
        captured = capsys.readouterr()
        assert rc == 0
        assert "predicted runtime" in captured.out
