"""Unit + integration tests: communication trace extrapolation."""

import numpy as np
import pytest

from repro.apps.jacobi import JacobiParams, JacobiProxy
from repro.apps.uh3d import UH3DParams, UH3DProxy
from repro.commextrap.stanza import Stanza, compress_script, stanza_signature
from repro.commextrap.synthesize import CommExtrapolationError, extrapolate_job
from repro.commextrap.topology import InferredTopology, infer_topology
from repro.simmpi.events import (
    BarrierEvent,
    CollectiveEvent,
    ComputeEvent,
    RecvEvent,
    SendEvent,
)
from repro.simmpi.runtime import Job, RankScript, run_job, verify_job


@pytest.fixture(scope="module")
def jacobi():
    return JacobiProxy(JacobiParams(global_cells=(64, 64, 64), n_steps=3))


@pytest.fixture(scope="module")
def uh3d():
    return UH3DProxy(
        UH3DParams(global_cells=(64, 64, 64), particles_per_cell=2.0, n_steps=3)
    )


class TestTopologyInference:
    def test_jacobi_grid_recovered(self, jacobi):
        job = jacobi.build_job(64)
        topo = infer_topology(job)
        assert sorted(topo.grid, reverse=True) == [4, 4, 4]
        assert topo.periodic == (False, False, False)
        assert topo.explained == 1.0

    def test_uh3d_periodic_recovered(self, uh3d):
        job = uh3d.build_job(64)
        topo = infer_topology(job)
        assert sorted(topo.grid, reverse=True) == [4, 4, 4]
        assert topo.periodic == (True, True, True)

    def test_nonuniform_grid(self, jacobi):
        job = jacobi.build_job(32)  # factor3 -> (4, 4, 2)
        topo = infer_topology(job)
        assert sorted(topo.grid, reverse=True) == [4, 4, 2]

    def test_computation_only_job(self):
        job = run_job("solo", 8, lambda comm: comm.compute(0, 10))
        topo = infer_topology(job)
        assert topo.grid[0] * topo.grid[1] * topo.grid[2] == 8

    def test_unexplainable_communication(self):
        def fn(comm):
            # all-pairs chatter: no grid explains it at 95%
            for other in range(comm.size):
                if other != comm.rank:
                    comm.send(other, 8)
                    comm.recv(other, 8)

        job = run_job("chaos", 12, fn)
        with pytest.raises(ValueError, match="no 3-D grid"):
            infer_topology(job)

    def test_neighbor_arithmetic(self):
        topo = InferredTopology(
            grid=(4, 2, 2), periodic=(True, False, False), explained=1.0
        )
        assert topo.neighbor(0, (1, 0, 0)) == 1
        assert topo.neighbor(0, (-1, 0, 0)) == 3  # periodic wrap in x
        assert topo.neighbor(0, (0, -1, 0)) == -1  # non-periodic edge
        assert topo.offset_of(0, 3) == (-1, 0, 0)
        with pytest.raises(ValueError):
            topo.offset_of(0, 5)  # diagonal: not a unit offset


class TestStanza:
    def test_period_detected(self):
        step = [
            ComputeEvent(block_id=0, iterations=100),
            SendEvent(dest=1, nbytes=64, tag=0),
            RecvEvent(src=1, nbytes=64, tag=0),
            BarrierEvent(),
        ]
        stanza = compress_script(0, step * 5)
        assert stanza.repeats == 5
        assert stanza.n_slots == 4
        assert stanza.signature() == stanza_signature(step)
        assert stanza.is_stationary(0)

    def test_non_repeating_collapses_to_one_period(self):
        events = [
            ComputeEvent(block_id=0, iterations=1),
            ComputeEvent(block_id=1, iterations=2),
            ComputeEvent(block_id=0, iterations=3),
        ]
        stanza = compress_script(0, events)
        assert stanza.repeats == 1
        assert stanza.n_slots == 3

    def test_scalar_series_tracked(self):
        events = [
            ComputeEvent(block_id=0, iterations=10),
            ComputeEvent(block_id=0, iterations=20),
        ]
        stanza = compress_script(0, events)
        # block ids equal -> period 1 with varying scalar
        assert stanza.repeats == 2
        assert stanza.scalars[0] == [10.0, 20.0]
        assert not stanza.is_stationary(0)

    def test_empty_script(self):
        stanza = compress_script(3, [])
        assert stanza.repeats == 0 and stanza.n_slots == 0

    def test_real_app_script_compresses(self, jacobi):
        job = jacobi.build_job(8)
        stanza = compress_script(0, job.script(0).events)
        assert stanza.repeats == jacobi.params.n_steps


class TestSynthesis:
    def test_jacobi_job_extrapolates(self, jacobi):
        training = [jacobi.build_job(p) for p in (64, 128, 256)]
        synth = extrapolate_job(training, 512)
        verify_job(synth)  # structural consistency
        assert synth.n_ranks == 512
        truth = jacobi.build_job(512)
        # compare event structure rank by rank
        mismatches = 0
        for rank in range(512):
            if stanza_signature(synth.script(rank).events) != stanza_signature(
                truth.script(rank).events
            ):
                mismatches += 1
        assert mismatches == 0

    def test_jacobi_scalars_accurate(self, jacobi):
        # volume terms (cell counts) extrapolate to <2%; surface terms
        # (halo cells, face message sizes) depend on the factorization's
        # per-dimension anisotropy, which is only piecewise-smooth in P —
        # a known limitation of scalar fitting vs ScalaExtrap's symbolic
        # geometry, so they get a looser band.
        training = [jacobi.build_job(p) for p in (64, 128, 256)]
        synth = extrapolate_job(training, 512)
        truth = jacobi.build_job(512)
        from repro.apps.jacobi import BLOCK_HALO_PACK

        for rank in (0, 100, 511):
            for ev_s, ev_t in zip(
                synth.script(rank).events, truth.script(rank).events
            ):
                if isinstance(ev_s, ComputeEvent):
                    rel = 0.15 if ev_s.block_id == BLOCK_HALO_PACK else 0.02
                    assert ev_s.iterations == pytest.approx(
                        ev_t.iterations, rel=rel
                    )
                elif isinstance(ev_s, (SendEvent, RecvEvent)):
                    assert ev_s.nbytes == pytest.approx(ev_t.nbytes, rel=0.15)

    def test_jacobi_partners_exact(self, jacobi):
        training = [jacobi.build_job(p) for p in (64, 128, 256)]
        synth = extrapolate_job(training, 512)
        truth = jacobi.build_job(512)
        for rank in range(0, 512, 37):
            sends_s = [
                (e.dest, e.tag)
                for e in synth.script(rank).events
                if isinstance(e, SendEvent)
            ]
            sends_t = [
                (e.dest, e.tag)
                for e in truth.script(rank).events
                if isinstance(e, SendEvent)
            ]
            assert sorted(sends_s) == sorted(sends_t)

    def test_uh3d_periodic_extrapolates(self, uh3d):
        training = [uh3d.build_job(p) for p in (64, 128, 256)]
        synth = extrapolate_job(training, 512)
        verify_job(synth)
        assert synth.n_ranks == 512
        # particle-exchange recv sizes were reconciled against sends
        for script in synth.scripts[:32]:
            for ev in script.events:
                if isinstance(ev, RecvEvent):
                    assert ev.nbytes >= 0

    def test_needs_two_jobs(self, jacobi):
        with pytest.raises(CommExtrapolationError):
            extrapolate_job([jacobi.build_job(64)], 512)

    def test_duplicate_counts_rejected(self, jacobi):
        job = jacobi.build_job(64)
        with pytest.raises(CommExtrapolationError):
            extrapolate_job([job, job], 512)

    def test_bad_target_grid(self, jacobi):
        training = [jacobi.build_job(p) for p in (64, 128)]
        with pytest.raises(CommExtrapolationError):
            extrapolate_job(training, 512, target_grid=(3, 3, 3))

    def test_interior_target_needs_interior_training(self, jacobi):
        # grids (2,2,2)/(4,2,2) have no y/z-interior ranks to learn from
        training = [jacobi.build_job(p) for p in (8, 16)]
        with pytest.raises(CommExtrapolationError, match="interior"):
            extrapolate_job(training, 64)


class TestEndToEndPrediction:
    def test_synthesized_job_predicts_like_app_job(self, jacobi, bw_machine):
        """Predicted runtime from the synthesized event trace matches the
        prediction from the app-generated one (the ScalaExtrap promise)."""
        from repro.pipeline.collect import collect_signature
        from repro.pipeline.predict import predict_runtime
        from repro.core.extrapolate import extrapolate_trace
        from tests.conftest import FAST_SETTINGS

        target = 512
        counts = (64, 128, 256)
        traces = [
            collect_signature(
                jacobi, p, bw_machine.hierarchy, FAST_SETTINGS
            ).slowest_trace()
            for p in counts
        ]
        comp = extrapolate_trace(traces, target)
        training_jobs = [jacobi.build_job(p) for p in counts]
        synth_job = extrapolate_job(training_jobs, target)
        true_job = jacobi.build_job(target)
        pred_synth = predict_runtime(
            jacobi, target, comp.trace, bw_machine, job=synth_job
        )
        pred_true = predict_runtime(
            jacobi, target, comp.trace, bw_machine, job=true_job
        )
        assert pred_synth.runtime_s == pytest.approx(
            pred_true.runtime_s, rel=0.05
        )
