"""Chaos acceptance test: the serving stack under a combined fault plan.

One scripted scenario injects every serve fault kind at once —
slow-predict, predict-raise (enough to open the breaker),
corrupt-model-entry, a worker crash during runtime replay, and a
deadline expiry — and holds the stack to the resilience contract:

- **no hangs**: every query resolves with an :class:`Answer` or a typed
  :class:`~repro.util.errors.ReproError`, never silence;
- **bit-identity**: queries untouched by faults answer bit-identically
  (same feature bytes, same replayed runtime) to a fault-free run;
- **exact accounting**: the engine's :class:`ServeReport`, the
  ``serve.resilience.*`` metrics counters, ``engine.summary()``, and
  the run manifest all record *exactly* the injected fault tallies —
  no double counts, no losses.

The scenario drives queries sequentially so the per-key batch attempt
numbers (which the fault plan addresses) are deterministic; the CI
``serve-chaos`` job replays the same kind of plan through the CLI under
real concurrency.
"""

from __future__ import annotations

import asyncio
import hashlib
from dataclasses import replace

import pytest

from repro.exec import faults
from repro.obs.manifest import build_manifest
from repro.obs.metrics import REGISTRY
from repro.serve import (
    FittedModel,
    ModelRegistry,
    Query,
    QueryEngine,
    ServeConfig,
    ServeReport,
)
from repro.util.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ReproError,
    ServeError,
    TaskCrashError,
)

WINDOW_S = 0.03
BREAKER_OPEN_S = 0.05


def _sha(values) -> str:
    return hashlib.sha256(values.tobytes()).hexdigest()


def _chaos_plan(digest_a: str, digest_b: str) -> faults.FaultPlan:
    """Every serve fault kind, addressed to deterministic attempts."""
    features_key = f"serve:batch:{digest_a[:12]}:features"
    return faults.FaultPlan(
        specs=(
            # 2nd feature batch limps (but answers)
            faults.FaultSpec(
                key=features_key, kind="slow-predict",
                attempts=(2,), seconds=0.02,
            ),
            # 3rd and 4th fail -> breaker (threshold 2) opens
            faults.FaultSpec(
                key=features_key, kind="predict-raise", attempts=(3, 4),
            ),
            # model B's store is truncated -> quarantined on first load
            faults.FaultSpec(
                key=digest_b, kind="corrupt-model-entry", feature="matrix",
            ),
            # one runtime replay target crashes through all its retries
            faults.FaultSpec(
                key=f"serve:replay:{digest_a[:12]}:64", kind="crash",
                attempts=(1, 2, 3),
            ),
        )
    )


@pytest.fixture()
def chaos_setup(tmp_path, serve_model, bw_machine):
    from repro.apps.registry import get_app

    model_b = FittedModel(
        spec=replace(serve_model.spec, code_version="build-b"),
        report=serve_model.report,
        template=serve_model.template,
    )
    probe = ModelRegistry(tmp_path / "probe")
    probe.put(serve_model)
    entry_mb = probe.disk_usage_bytes() / (1024 * 1024)

    def build_engine(root):
        reg = ModelRegistry(root, budget_mb=entry_mb * 2.5)
        reg.put(serve_model)
        reg.put(model_b)
        # cold memory tier: every first load goes through the disk
        # entry, so the injected store corruption is actually read
        reg.clear_memory()
        engine = QueryEngine(
            reg,
            default_model=serve_model.digest,
            config=ServeConfig(
                max_batch=16,
                window_s=WINDOW_S,
                breaker_threshold=2,
                breaker_open_s=BREAKER_OPEN_S,
            ),
        )
        # session-fixture machine profile: skip the expensive rebuild
        engine._runtime_ctx[serve_model.digest] = (
            get_app("jacobi"), bw_machine
        )
        return engine

    return serve_model, model_b, entry_mb, build_engine


async def _run_scenario(engine, model_b):
    """The scripted chaos walk; returns every outcome, labeled."""
    outcomes = {}

    async def ask(label, query):
        try:
            outcomes[label] = await engine.query(query)
        except ReproError as exc:
            outcomes[label] = exc
        return outcomes[label]

    await engine.start()
    # feature-batch attempts 1..4: clean, slow, raise, raise (opens)
    await ask("clean1", Query(target=32))
    await ask("slow", Query(target=48))
    await ask("fail1", Query(target=64))
    await ask("fail2", Query(target=64))
    # breaker is open: shed fast at admission
    await ask("shed", Query(target=64))
    # past the jittered window (<= 0.05 * 1.25): the probe closes it
    await asyncio.sleep(BREAKER_OPEN_S * 1.25 + 0.02)
    await ask("probe", Query(target=32))
    # runtime replay: target 64 crashes out, 128 rides along untouched
    crash = asyncio.ensure_future(
        ask("crash", Query(target=64, kind="runtime"))
    )
    healthy = asyncio.ensure_future(
        ask("replay", Query(target=128, kind="runtime"))
    )
    await asyncio.gather(crash, healthy)
    # model B's entry was corrupted at store: quarantine, typed error
    await ask("corrupt", Query(target=32, model=model_b.digest))
    # a 5ms deadline parks in a 30ms window: expired at batch flush
    await ask("deadline", Query(target=96, deadline_ms=5.0))
    await engine.stop()
    return outcomes


def test_chaos_every_query_answered_and_tallies_exact(chaos_setup, tmp_path):
    serve_model, model_b, entry_mb, build_engine = chaos_setup
    plan = _chaos_plan(serve_model.digest, model_b.digest)
    counters_before = {
        name: REGISTRY.counters.get(f"serve.resilience.{name}", 0)
        for name in ServeReport.COUNTER_FIELDS
    }

    with faults.injected(plan):
        engine = build_engine(tmp_path / "chaos")
        outcomes = asyncio.run(_run_scenario(engine, model_b))

    # -- no hangs: every query resolved, answer or typed error ----------
    assert set(outcomes) == {
        "clean1", "slow", "fail1", "fail2", "shed", "probe",
        "crash", "replay", "corrupt", "deadline",
    }
    for label, outcome in outcomes.items():
        assert not isinstance(outcome, BaseException) or isinstance(
            outcome, ReproError
        ), f"{label}: untyped {outcome!r}"
    assert isinstance(outcomes["fail1"], ServeError)
    assert isinstance(outcomes["fail2"], ServeError)
    assert isinstance(outcomes["shed"], CircuitOpenError)
    assert isinstance(outcomes["crash"], TaskCrashError)
    assert isinstance(outcomes["corrupt"], ServeError)
    assert isinstance(outcomes["deadline"], DeadlineExceededError)

    # -- exact fault accounting -----------------------------------------
    report = engine.report
    assert report.slow_predicts == 1
    # fail1 + fail2 + model B vanishing mid-batch
    assert report.batch_failures == 3
    assert report.breaker_opens == 1
    assert report.breaker_half_opens == 1
    assert report.breaker_closes == 1
    assert report.breaker_rejected == 1
    assert report.deadline_flush == 1
    assert report.deadline_admission == 0
    assert report.deadline_dispatch == 0
    # both runtime queries co-batched into one offloaded execution —
    # the crashed target failed alone, its batch mate was answered
    assert report.offloads == 1
    assert outcomes["replay"].batch_size == 2
    tag = serve_model.digest[:12]
    assert report.transitions == [
        f"{tag}:open", f"{tag}:half_open", f"{tag}:closed"
    ]
    # the crashed replay retried per the worker policy, then collected
    assert report.worker.crashes == 3
    assert report.worker.retries == 2

    # -- registry self-healing and bounds --------------------------------
    reg = engine.registry
    assert reg.stats.quarantined == 1
    assert reg.quarantined_digests() == [model_b.digest]
    assert reg.disk_usage_bytes() <= entry_mb * 2.5 * 1024 * 1024

    # -- report == metrics == summary == manifest ------------------------
    for name in ServeReport.COUNTER_FIELDS:
        delta = (
            REGISTRY.counters.get(f"serve.resilience.{name}", 0)
            - counters_before[name]
        )
        assert delta == getattr(report, name), name
    assert engine.summary()["resilience"] == report.to_dict()
    manifest = build_manifest(command="serve", serve=engine.report)
    assert manifest["serve"] == report.to_dict()

    # -- bit-identity of clean answers vs a fault-free run ---------------
    baseline_engine = build_engine(tmp_path / "baseline")
    baseline = asyncio.run(_run_scenario(baseline_engine, model_b))
    # the baseline still offloads and expires the deadline query (load
    # shape, not faults) — but no failure machinery fires
    base_report = baseline_engine.report
    assert base_report.batch_failures == 0
    assert base_report.breaker_opens == 0
    assert base_report.slow_predicts == 0
    assert base_report.worker.clean
    assert baseline_engine.registry.stats.quarantined == 0
    # the deadline query expires in both runs (it is load, not a fault)
    assert isinstance(baseline["deadline"], DeadlineExceededError)
    for label in ("clean1", "slow", "probe", "replay"):
        chaotic, ideal = outcomes[label], baseline[label]
        assert _sha(chaotic.values) == _sha(ideal.values), label
        assert chaotic.runtime_s == ideal.runtime_s, label
    # queries that failed under chaos succeed in the fault-free run
    for label in ("fail1", "fail2", "shed", "crash", "corrupt"):
        assert not isinstance(baseline[label], BaseException), label
