"""Property-based tests: invariants of fitting and extrapolation."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.canonical import EXTENDED_FORMS, PAPER_FORMS, fit_all, fit_best
from repro.core.extrapolate import extrapolate_trace, extrapolate_trace_many
from repro.core.fitting import fit_feature_series
from repro.trace.features import FeatureSchema
from repro.trace.records import BasicBlockRecord, InstructionRecord, SourceLocation
from repro.trace.tracefile import TraceFile

SCHEMA = FeatureSchema(["L1", "L2"])

core_counts = st.lists(
    st.integers(min_value=2, max_value=20),
    min_size=3,
    max_size=5,
    unique=True,
).map(lambda ks: sorted(2**k for k in set(ks)))


positive_series = st.lists(
    st.floats(min_value=1e-3, max_value=1e12, allow_nan=False),
    min_size=3,
    max_size=3,
)


class TestFitProperties:
    @given(core_counts, st.floats(min_value=-1e6, max_value=1e6))
    @settings(max_examples=40, deadline=None)
    def test_constant_data_predicts_constant(self, counts, value):
        assume(len(counts) >= 3)
        x = np.array(counts, dtype=np.float64)
        best = fit_best(x, np.full(len(x), value))
        assert best.form.name == "constant"
        assert best.predict(np.array([10 * x[-1]]))[0] == pytest.approx(
            value, abs=1e-9 + 1e-9 * abs(value)
        )

    @given(positive_series, st.floats(min_value=0.1, max_value=50.0))
    @settings(max_examples=60, deadline=None)
    def test_scaling_equivariance(self, ys, k):
        """fit(k*y) predicts k*fit(y) — the ratio-preservation lemma."""
        x = np.array([1024.0, 2048.0, 4096.0])
        y = np.array(ys)
        a = fit_best(x, y)
        b = fit_best(x, k * y)
        assert a.form.name == b.form.name
        pa = a.predict(np.array([8192.0]))[0]
        pb = b.predict(np.array([8192.0]))[0]
        if np.isfinite(pa) and abs(pa) > 1e-12:
            assert pb / pa == pytest.approx(k, rel=1e-6)

    @given(positive_series)
    @settings(max_examples=60, deadline=None)
    def test_fit_all_ordering_invariant(self, ys):
        """First result never has higher SSE than any other (mod ties)."""
        x = np.array([8.0, 64.0, 512.0])
        results = fit_all(x, np.array(ys), EXTENDED_FORMS)
        best_sse = results[0].sse
        scale = float(np.asarray(ys) @ np.asarray(ys))
        for other in results[1:]:
            assert best_sse <= other.sse * (1 + 1e-6) + scale * 1e-10

    @given(positive_series)
    @settings(max_examples=40, deadline=None)
    def test_training_points_reproduced_within_tolerance(self, ys):
        """The best fit is at least as good as the constant fit."""
        x = np.array([16.0, 128.0, 1024.0])
        y = np.array(ys)
        best = fit_best(x, y)
        const_sse = float(((y - y.mean()) ** 2).sum())
        assert best.sse <= const_sse * (1 + 1e-9)


def trace_from_matrix(n_ranks, matrix):
    trace = TraceFile(
        app="prop", rank=0, n_ranks=n_ranks, target="tgt", schema=SCHEMA
    )
    block = BasicBlockRecord(block_id=0, location=SourceLocation(function="f"))
    for k, row in enumerate(matrix):
        block.instructions.append(
            InstructionRecord(instr_id=k, kind="load", features=np.array(row))
        )
    trace.add_block(block)
    return trace


@st.composite
def trace_series(draw):
    """Three consistent traces with smooth random feature evolutions."""
    n_instr = draw(st.integers(min_value=1, max_value=3))
    base = draw(
        st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                min_size=SCHEMA.n_features,
                max_size=SCHEMA.n_features,
            ),
            min_size=n_instr,
            max_size=n_instr,
        )
    )
    growth = draw(st.floats(min_value=0.5, max_value=2.0))
    counts = (64, 128, 256)
    traces = []
    for i, n in enumerate(counts):
        factor = growth**i
        matrix = [[v * factor for v in row] for row in base]
        # clamp rate columns into [0, 1]
        for row in matrix:
            for j in range(*SCHEMA.hit_rate_slice.indices(SCHEMA.n_features)):
                row[j] = min(max(row[j] % 1.0, 0.0), 1.0)
        traces.append(trace_from_matrix(n, matrix))
    # rates must be monotone within each vector for physical sanity
    return traces


def assert_physical(trace):
    for block in trace.blocks.values():
        for ins in block.instructions:
            vec = ins.features
            assert np.all(np.isfinite(vec))
            rates = SCHEMA.hit_rates(vec)
            assert np.all(rates >= 0.0) and np.all(rates <= 1.0)
            assert np.all(np.diff(rates) >= 0)
            for f in ("exec_count", "mem_ops", "loads", "stores"):
                assert vec[SCHEMA.index(f)] >= 0.0


#: adversarial targets relative to the (64, 128, 256) training counts:
#: below, at a training count, between two, and far beyond
ADVERSARIAL_TARGETS = [32, 128, 192, 4096]


class TestExtrapolationProperties:
    @given(trace_series())
    @settings(max_examples=25, deadline=None)
    def test_output_always_physical(self, traces):
        res = extrapolate_trace(traces, 1024)
        assert_physical(res.trace)

    @pytest.mark.parametrize("engine", ["batched", "reference"])
    @given(traces=trace_series())
    @settings(max_examples=15, deadline=None)
    def test_physical_at_adversarial_targets_both_engines(
        self, engine, traces
    ):
        """Both engines synthesize only physical traces, even when asked
        to 'extrapolate' below, onto, or between the training counts —
        the guard subsystem's postcondition check must never fire on
        clean inputs at any target."""
        sweep = extrapolate_trace_many(
            traces, ADVERSARIAL_TARGETS, engine=engine
        )
        assert [r.target_n_ranks for r in sweep.results] == ADVERSARIAL_TARGETS
        for res in sweep.results:
            assert res.trace.extrapolated
            assert res.trace.n_ranks == res.target_n_ranks
            assert_physical(res.trace)

    @given(trace_series())
    @settings(max_examples=10, deadline=None)
    def test_guarded_postcondition_holds_on_clean_inputs(self, traces):
        """validate_trace finds nothing to flag in any synthesized trace
        — the executable form of the bit-identity invariant's premise."""
        from repro.guard.validators import validate_trace

        sweep = extrapolate_trace_many(traces, ADVERSARIAL_TARGETS)
        for res in sweep.results:
            assert validate_trace(
                res.trace, boundary="extrapolate->predict"
            ) == []

    @given(trace_series())
    @settings(max_examples=25, deadline=None)
    def test_structure_always_preserved(self, traces):
        res = extrapolate_trace(traces, 2048)
        assert sorted(res.trace.blocks) == sorted(traces[0].blocks)
        for bid, block in res.trace.blocks.items():
            assert block.n_instructions == traces[0].blocks[bid].n_instructions

    @given(trace_series())
    @settings(max_examples=25, deadline=None)
    def test_deterministic(self, traces):
        a = extrapolate_trace(traces, 512)
        b = extrapolate_trace(traces, 512)
        for bid in a.trace.blocks:
            for i1, i2 in zip(
                a.trace.blocks[bid].instructions, b.trace.blocks[bid].instructions
            ):
                np.testing.assert_array_equal(i1.features, i2.features)
