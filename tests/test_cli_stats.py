"""``repro stats``: the flight-recorder analysis surface.

The human rendering is golden-tested against a synthetic recorder with
hand-checkable numbers; ``--json`` exposes the same digest as a machine
document; validation failures exit 2 with one actionable line; a torn
or empty recorder degrades to a message, never a traceback.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.telemetry import StreamingHistogram

TAG = "ab12cd34ef56"

GOLDEN = """\
flight recorder: 3 records over 1.500s (complete)
totals: queries=11 answered=9 failed=2 rejected=0 batches=4 \
mean_batch=2.5 registry_hit_rate=0.8
loop lag: mean=1.5ms max=2.0ms

rate timeline
========================================================
seq | t_s   | dt_s  | answered | qps   | p50_ms | p95_ms
----+-------+-------+----------+-------+--------+-------
0   | 0.000 | 0.000 | 0        | 0.000 | -      | -
1   | 1.000 | 1.000 | 8        | 8.000 | 4.000  | 4.000
2   | 1.500 | 0.500 | 1        | 2.000 | 8.000  | 8.000

tenants
=======================================================
tenant | queries | answered | failed | rejected | waits
-------+---------+----------+--------+----------+------
acme   | 11      | 9        | 2      | 0        | 0

breaker transitions
====================================
seq | t_s   | transition
----+-------+-----------------------
1   | 1.000 | ab12cd34ef56:open
2   | 1.500 | ab12cd34ef56:half_open
2   | 1.500 | ab12cd34ef56:closed
breaker states: ab12cd34ef56:closed

slowest queries
======================================================
latency_ms | tenant | target | kind     | model
-----------+--------+--------+----------+-------------
12.500     | acme   | 64     | features | ab12cd34ef56
"""


def _single_value_hist(value: float, n: int = 1) -> dict:
    hist = StreamingHistogram()
    for _ in range(n):
        hist.observe(value)
    return hist.to_dict()


def _recorder_records() -> list:
    """Three intervals with hand-checkable numbers: a quiet baseline,
    a busy interval where the breaker opens, a final interval where it
    recovers.  Latency hists hold one repeated value so the quantile
    interpolation clamps and p50/p95 are exact round milliseconds."""
    return [
        {"schema": 1, "seq": 0, "t_s": 0.0, "wall_time": 1.7e9,
         "interval_s": 0.0, "final": False, "counters": {}, "gauges": {},
         "hists": {}},
        {"schema": 1, "seq": 1, "t_s": 1.0, "wall_time": 1.7e9 + 1,
         "interval_s": 1.0, "final": False, "loop_lag_s": 0.002,
         "counters": {
             "serve.queries": 10, "serve.answered": 8, "serve.failed": 2,
             "serve.batch.batches": 4, "serve.batch.queries": 10,
             "serve.tenant.queries.acme": 10,
             "serve.tenant.answered.acme": 8,
             "serve.tenant.failed.acme": 2,
             "serve.registry.mem_hits": 3, "serve.registry.misses": 1,
         },
         "gauges": {"serve.queue_depth.acme": 2.0},
         "hists": {"serve.latency_s": _single_value_hist(0.004, 2)},
         "breakers": {TAG: "open"}, "transitions": [f"{TAG}:open"],
         "slow_queries": [
             {"latency_ms": 12.5, "tenant": "acme", "target": 64,
              "kind": "features", "model": TAG},
         ]},
        {"schema": 1, "seq": 2, "t_s": 1.5, "wall_time": 1.7e9 + 1.5,
         "interval_s": 0.5, "final": True, "loop_lag_s": 0.001,
         "counters": {"serve.answered": 1, "serve.queries": 1,
                      "serve.tenant.queries.acme": 1,
                      "serve.tenant.answered.acme": 1,
                      "serve.registry.mem_hits": 1},
         "gauges": {"serve.queue_depth.acme": 0.0},
         "hists": {"serve.latency_s": _single_value_hist(0.008)},
         "breakers": {TAG: "closed"},
         "transitions": [f"{TAG}:half_open", f"{TAG}:closed"]},
    ]


@pytest.fixture()
def recorder(tmp_path):
    path = tmp_path / "flight.jsonl"
    with path.open("w") as fh:
        for record in _recorder_records():
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def _run(capsys, argv):
    rc = main(argv)
    captured = capsys.readouterr()
    return rc, captured.out, captured.err


class TestStatsRendering:
    def test_golden_output(self, recorder, capsys):
        rc, out, _ = _run(capsys, ["stats", "--telemetry", str(recorder)])
        assert rc == 0
        # trailing pad spaces are layout, not content
        got = [line.rstrip() for line in out.splitlines()]
        want = [line.rstrip() for line in GOLDEN.splitlines()]
        assert got == want

    def test_json_document(self, recorder, capsys):
        rc, out, _ = _run(
            capsys, ["stats", "--telemetry", str(recorder), "--json"]
        )
        assert rc == 0
        doc = json.loads(out)
        assert doc["complete"] is True
        assert doc["records"] == 3
        assert doc["totals"] == {
            "queries": 11, "answered": 9, "failed": 2, "rejected": 0,
            "batches": 4, "mean_batch": 2.5, "registry_hit_rate": 0.8,
        }
        assert doc["tenants"] == {
            "acme": {"queries": 11, "answered": 9, "failed": 2,
                     "rejected": 0, "waits": 0},
        }
        assert [t["transition"] for t in doc["transitions"]] == [
            f"{TAG}:open", f"{TAG}:half_open", f"{TAG}:closed",
        ]
        assert doc["breakers"] == {TAG: "closed"}
        assert doc["loop_lag"] == {"mean_ms": 1.5, "max_ms": 2.0}
        # the per-interval qps timeline
        assert [e["qps"] for e in doc["timeline"]] == [0.0, 8.0, 2.0]
        assert doc["timeline"][1]["p95_ms"] == 4.0

    def test_top_limits_slow_queries(self, tmp_path, capsys):
        records = _recorder_records()
        records[1]["slow_queries"] = [
            {"latency_ms": float(10 + i), "tenant": "acme",
             "target": 32, "kind": "features", "model": TAG}
            for i in range(5)
        ]
        path = tmp_path / "many.jsonl"
        with path.open("w") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")
        rc, out, _ = _run(
            capsys,
            ["stats", "--telemetry", str(path), "--top", "2", "--json"],
        )
        assert rc == 0
        slow = json.loads(out)["slow_queries"]
        assert [e["latency_ms"] for e in slow] == [14.0, 13.0]

    def test_mid_run_recorder_renders(self, recorder, capsys):
        # drop the final record: a live process being inspected mid-run
        lines = recorder.read_text().splitlines()[:-1]
        torn = recorder.with_name("live.jsonl")
        torn.write_text("\n".join(lines) + "\n" + '{"seq": 2, "t_')
        rc, out, _ = _run(capsys, ["stats", "--telemetry", str(torn)])
        assert rc == 0
        assert "mid-run (no final record)" in out


class TestStatsValidation:
    def test_missing_file(self, tmp_path, capsys):
        rc, _, err = _run(
            capsys, ["stats", "--telemetry", str(tmp_path / "nope.jsonl")]
        )
        assert rc == 2
        assert "--telemetry file not found" in err
        assert "Traceback" not in err

    def test_negative_top(self, recorder, capsys):
        rc, _, err = _run(
            capsys, ["stats", "--telemetry", str(recorder), "--top", "-1"]
        )
        assert rc == 2 and "--top must be >= 0" in err

    def test_empty_file_is_not_an_error(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        rc, out, _ = _run(capsys, ["stats", "--telemetry", str(path)])
        assert rc == 0
        assert "no complete records" in out

    def test_corrupt_mid_file_is_typed(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('garbage\n{"seq": 0}\n')
        rc, _, err = _run(capsys, ["stats", "--telemetry", str(path)])
        assert rc != 0
        assert "Traceback" not in err
