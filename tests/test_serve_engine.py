"""Query-engine tests: batching identity, admission, fairness.

Everything runs on a memory-tier registry with the session-fitted Jacobi
model; the event loop is driven explicitly (tasks + ``sleep(0)``) where
dispatch order matters, so the fairness and admission assertions are
deterministic.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace

import numpy as np
import pytest

from repro.serve import (
    FittedModel,
    ModelRegistry,
    Query,
    QueryEngine,
    ServeConfig,
)
from repro.util.errors import AdmissionError, ServeError


def _engine(serve_model, **config_kwargs) -> QueryEngine:
    reg = ModelRegistry(root=None, mem_entries=4)
    reg.put(serve_model)
    defaults = {"max_batch": 16, "window_s": 0.005}
    defaults.update(config_kwargs)
    return QueryEngine(
        reg,
        default_model=serve_model.digest,
        config=ServeConfig(**defaults),
    )


async def _settle(n: int = 3) -> None:
    """Let already-runnable tasks advance without waiting wall-clock."""
    for _ in range(n):
        await asyncio.sleep(0)


def test_batched_answers_bit_identical_to_sequential(serve_model):
    targets = [32, 64, 128, 256]
    queries = [Query(target=targets[i % len(targets)]) for i in range(32)]

    async def main():
        engine = _engine(serve_model)
        await engine.start()
        answers = await asyncio.gather(*(engine.query(q) for q in queries))
        await engine.stop()
        return answers

    answers = asyncio.run(main())
    # the contract: a coalesced answer is bit-identical to what a
    # sequential single-target predict_many would have returned
    for q, a in zip(queries, answers):
        expected = serve_model.predict([q.target]).values[0]
        assert np.array_equal(a.values, expected)
    # and the queries actually shared array passes
    assert max(a.batch_size for a in answers) > 1


def test_distinct_models_never_share_a_batch(serve_model):
    other = FittedModel(
        spec=replace(serve_model.spec, code_version="other-build"),
        report=serve_model.report,
        template=serve_model.template,
    )

    async def main():
        engine = _engine(serve_model, max_batch=64)
        engine.registry.put(other)
        await engine.start()
        answers = await asyncio.gather(
            *(engine.query(Query(target=64)) for _ in range(4)),
            *(
                engine.query(Query(target=64, model=other.digest))
                for _ in range(4)
            ),
        )
        await engine.stop()
        return engine, answers

    engine, answers = asyncio.run(main())
    # eight concurrent queries, but two models -> two batches of four
    assert engine.batcher.stats.batches == 2
    assert all(a.batch_size == 4 for a in answers)
    assert {a.model for a in answers} == {serve_model.digest, other.digest}


def test_unknown_model_is_rejected_up_front(serve_model):
    async def main():
        engine = _engine(serve_model)
        await engine.start()
        try:
            with pytest.raises(ServeError):
                await engine.query(Query(target=64, model="f" * 64))
        finally:
            await engine.stop()

    asyncio.run(main())


def test_query_validation(serve_model):
    with pytest.raises(ServeError):
        Query(target=0)
    with pytest.raises(ServeError):
        Query(target=64, kind="vibes")
    with pytest.raises(ServeError):
        ServeConfig(admission="maybe")


def test_admission_reject_sheds_overflow(serve_model):
    async def main():
        engine = _engine(
            serve_model, queue_depth=2, admission="reject"
        )
        # enqueue while the dispatcher is *not* running: the queue fills
        tasks = [
            asyncio.ensure_future(engine.query(Query(target=64)))
            for _ in range(4)
        ]
        await _settle()
        rejected = [t for t in tasks if t.done() and t.exception()]
        assert len(rejected) == 2
        assert all(
            isinstance(t.exception(), AdmissionError) for t in rejected
        )
        # the admitted queries are still answered once serving starts
        await engine.start()
        survivors = [t for t in tasks if t not in rejected]
        answers = await asyncio.gather(*survivors)
        await engine.stop()
        return engine, answers

    engine, answers = asyncio.run(main())
    assert len(answers) == 2
    assert engine.stats.rejected == 2
    assert engine.stats.answered == 2


def test_admission_wait_applies_backpressure_without_loss(serve_model):
    async def main():
        engine = _engine(serve_model, queue_depth=1, admission="wait")
        tasks = [
            asyncio.ensure_future(engine.query(Query(target=64)))
            for _ in range(3)
        ]
        await _settle()
        # nothing rejected; the overflow callers are parked waiting
        assert not any(t.done() for t in tasks)
        assert engine.stats.backpressure_waits >= 2
        await engine.start()
        answers = await asyncio.gather(*tasks)
        await engine.stop()
        return answers

    answers = asyncio.run(main())
    assert len(answers) == 3 and all(a.values is not None for a in answers)


def test_dispatch_round_robins_across_tenants(serve_model):
    async def main():
        engine = _engine(serve_model, max_batch=64)
        tasks = []
        # tenant A floods first, then B files two queries
        for _ in range(6):
            tasks.append(
                asyncio.ensure_future(
                    engine.query(Query(target=64, tenant="A"))
                )
            )
            await asyncio.sleep(0)
        for _ in range(2):
            tasks.append(
                asyncio.ensure_future(
                    engine.query(Query(target=64, tenant="B"))
                )
            )
            await asyncio.sleep(0)
        await engine.start()
        await asyncio.gather(*tasks)
        await engine.stop()
        return engine

    engine = asyncio.run(main())
    # one query per tenant per cycle: B is served long before A drains
    assert engine.dispatch_log[:4] == ["A", "B", "A", "B"]
    assert engine.dispatch_log.count("A") == 6
    assert engine.dispatch_log.count("B") == 2


def test_stop_drains_enqueued_queries(serve_model):
    async def main():
        engine = _engine(serve_model, window_s=30.0)  # deadline never fires
        tasks = [
            asyncio.ensure_future(engine.query(Query(target=t)))
            for t in (32, 64, 128)
        ]
        await _settle()
        await engine.start()
        # drain must flush the open (half-full) batch immediately
        await engine.stop(drain=True)
        return await asyncio.gather(*tasks)

    answers = asyncio.run(main())
    assert [a.target for a in answers] == [32, 64, 128]
    assert all(a.batch_size == 3 for a in answers)


def test_admission_accounting_in_metrics(serve_model):
    """Reject-mode sheds land in both the stats and the serve.* counters."""
    from repro.obs.metrics import REGISTRY

    before = REGISTRY.counters.get("serve.rejected", 0)

    async def main():
        engine = _engine(serve_model, queue_depth=1, admission="reject")
        tasks = [
            asyncio.ensure_future(engine.query(Query(target=64)))
            for _ in range(4)
        ]
        await _settle()
        await engine.start()
        await asyncio.gather(*tasks, return_exceptions=True)
        await engine.stop()
        return engine, tasks

    engine, tasks = asyncio.run(main())
    rejections = [
        t.exception() for t in tasks if t.exception() is not None
    ]
    assert len(rejections) == 3
    assert all(isinstance(e, AdmissionError) for e in rejections)
    assert engine.stats.rejected == 3
    assert REGISTRY.counters.get("serve.rejected", 0) - before == 3
    # accounting is exhaustive: every query rejected or answered
    assert engine.stats.answered == 1
    assert engine.stats.queries == (
        engine.stats.answered + engine.stats.failed + engine.stats.rejected
    )


def test_per_tenant_queue_depth_gauges(serve_model):
    """The serve.queue_depth.<tenant> gauge tracks each tenant's queue."""
    from repro.obs.metrics import REGISTRY

    async def main():
        engine = _engine(serve_model)
        depths = {}
        tasks = []
        for i in range(3):
            tasks.append(
                asyncio.ensure_future(
                    engine.query(Query(target=64, tenant="hot"))
                )
            )
            await asyncio.sleep(0)
            depths[f"enqueue{i}"] = REGISTRY.gauge(
                "serve.queue_depth.hot"
            ).value
        tasks.append(
            asyncio.ensure_future(
                engine.query(Query(target=64, tenant="cold"))
            )
        )
        await asyncio.sleep(0)
        depths["cold"] = REGISTRY.gauge("serve.queue_depth.cold").value
        await engine.start()
        await asyncio.gather(*tasks)
        depths["hot_drained"] = REGISTRY.gauge("serve.queue_depth.hot").value
        depths["cold_drained"] = REGISTRY.gauge(
            "serve.queue_depth.cold"
        ).value
        await engine.stop()
        return depths

    depths = asyncio.run(main())
    # the gauge rises with each admission, per tenant...
    assert depths["enqueue0"] == 1.0
    assert depths["enqueue1"] == 2.0
    assert depths["enqueue2"] == 3.0
    assert depths["cold"] == 1.0
    # ...and returns to zero once the dispatcher drains the queues
    assert depths["hot_drained"] == 0.0
    assert depths["cold_drained"] == 0.0


def test_loadgen_percentiles_match_hand_computed_values(serve_model):
    """p50/p95 come from linear-interpolation quantiles over latencies.

    A stub engine answers with prescribed latencies, so the report's
    percentile math is pinned against hand-computed values:
    sorted latencies [10, 20, 30, 40] ms -> p50 at position 1.5 is
    25 ms, p95 at position 2.85 is 30 + 0.85 * 10 = 38.5 ms.
    """
    from repro.serve import Answer, LoadSpec, run_load, synthetic_queries

    latencies_ms = [30.0, 10.0, 40.0, 20.0]  # submission order

    class _StubEngine:
        def __init__(self):
            self.n = 0

        async def query(self, q):
            i = self.n
            self.n += 1
            return Answer(
                target=q.target,
                kind=q.kind,
                model="stub",
                tenant=q.tenant,
                values=np.zeros((1, 1)),
                runtime_s=None,
                batch_size=2,
                latency_s=latencies_ms[i] / 1e3,
            )

    spec = LoadSpec(n_queries=4, targets=(64,), name="p95-math")
    queries = synthetic_queries(spec, model="stub")
    report, answers = asyncio.run(run_load(_StubEngine(), queries))
    assert len(answers) == 4 and all(a is not None for a in answers)
    assert report.p50_ms == pytest.approx(25.0)
    assert report.p95_ms == pytest.approx(38.5)
    assert report.mean_batch == pytest.approx(2.0)
    assert report.rejected == 0 and report.errors == 0


def test_summary_reports_all_layers(serve_model):
    async def main():
        engine = _engine(serve_model)
        await engine.start()
        await engine.query(Query(target=64))
        await engine.stop()
        return engine.summary()

    summary = asyncio.run(main())
    assert summary["engine"]["answered"] == 1
    assert summary["batcher"]["batches"] == 1
    assert summary["latency"]["count"] == 1
    assert summary["latency"]["p95_s"] >= summary["latency"]["p50_s"] >= 0.0
    assert "mem_hits" in summary["registry"]
