"""Unit tests: pipeline pieces not covered by the integration suite."""

import numpy as np
import pytest

from repro.pipeline.experiment import Table1Row
from repro.pipeline.report import table1_report


class TestTable1Row:
    def test_pct_error(self):
        row = Table1Row(
            app="x",
            core_count=64,
            trace_type="Extrap.",
            predicted_runtime_s=0.95,
            measured_runtime_s=1.0,
        )
        assert row.pct_error == pytest.approx(5.0)

    def test_report_rendering(self):
        rows = [
            Table1Row("uh3d", 8192, "Extrap.", 537.0, 565.0),
            Table1Row("uh3d", 8192, "Coll.", 536.0, 565.0),
        ]
        text = table1_report(rows)
        assert "uh3d" in text
        assert "Extrap." in text and "Coll." in text
        assert "537.0" in text
        assert "%" in text

    def test_report_empty(self):
        text = table1_report([])
        assert "Trace Type" in text


class TestReplayAtScale:
    """The replay engine must handle thousands of ranks efficiently."""

    def test_large_rank_count_allreduce_chain(self):
        from repro.machine.network import NetworkParameters
        from repro.psins.replay import ComputationTimer, replay_job
        from repro.simmpi.runtime import run_job

        class T(ComputationTimer):
            def time_s(self, rank, block_id, iterations):
                return 1e-9 * iterations

        def fn(comm):
            for _ in range(3):
                comm.compute(0, 1000 + comm.rank)
                comm.allreduce(8)

        job = run_job("big", 4096, fn)
        net = NetworkParameters()
        res = replay_job(job, T(), net)
        # critical path: slowest rank each round + collectives
        expected = 3 * (1e-9 * (1000 + 4095) + net.allreduce_time_s(4096, 8))
        assert res.runtime_s == pytest.approx(expected, rel=1e-6)

    def test_ring_pipeline_at_scale(self):
        from repro.machine.network import NetworkParameters
        from repro.psins.replay import ComputationTimer, replay_job
        from repro.simmpi.runtime import run_job

        class T(ComputationTimer):
            def time_s(self, rank, block_id, iterations):
                return 1e-6

        def fn(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.compute(0, 1)
            comm.send(right, 64)
            comm.recv(left, 64)

        job = run_job("ring", 2048, fn)
        res = replay_job(job, T(), NetworkParameters())
        assert res.n_events == 2048 * 3
        assert res.runtime_s > 0


class TestMachineCaching:
    def test_spec_cache_returns_same_object(self):
        from repro.machine.systems import get_spec

        assert get_spec("cray_xt5") is get_spec("cray_xt5")

    def test_profiles_differ_by_probe_budget(self):
        from repro.machine.systems import get_machine

        a = get_machine("opteron_2level", accesses_per_probe=10_000)
        b = get_machine("opteron_2level", accesses_per_probe=12_000)
        assert a is not b
