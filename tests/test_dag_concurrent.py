"""Concurrent ``repro dag run`` processes sharing one cache directory.

The locking contract: exactly one process executes each node
(``O_CREAT|O_EXCL`` node lockfiles), a loser polls and adopts the
winner's committed artifact (counted in ``lock_waits``), and a lockfile
abandoned by a SIGKILLed holder is taken over once its mtime passes the
staleness horizon (``lock_takeovers``).  The exactly-once guarantee is
checked at the source of truth: the shared state store must hold one
``done`` record per node, no matter how many runners raced.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.exec.resilience import ResilienceConfig
from repro.obs.manifest import digest_file
from repro.pipeline.dag import (
    STATE_FILE,
    SweepSpec,
    _lock_path,
    build_dag,
    dag_status,
    run_dag,
)
from repro.pipeline.journal import RunJournal
from repro.util.errors import DagError

SPEC_KW = dict(
    app="jacobi",
    train_counts=(4, 8),
    targets=(16,),
    table1=False,
    accesses_per_probe=2000,
    sample_accesses=20_000,
    max_sample_accesses=200_000,
    code_version="test",
)
#: the 7-node graph of SPEC_KW: 2 collects, fit, one extrapolate cone
N_NODES = 7


def _spec() -> SweepSpec:
    return SweepSpec(**SPEC_KW)


def _fast():
    return ResilienceConfig(
        max_retries=0, backoff_base_s=0.001, backoff_max_s=0.01
    )


@pytest.fixture(scope="module")
def seeded(tmp_path_factory):
    """A completed run: artifacts + state store to race against."""
    root = tmp_path_factory.mktemp("dag-seed")
    result = run_dag(_spec(), root, resilience=_fast())
    assert result.ok
    return root, result


def _status_key(root, name: str) -> str:
    by_name = {s.name: s for s in dag_status(_spec(), root)}
    return by_name[name].key


class TestLockContention:
    def test_loser_waits_then_adopts_winners_artifact(self, seeded, tmp_path):
        """A held lock makes the second runner poll; when the holder
        commits and releases, the poller adopts without executing."""
        root, result = seeded
        victim = "report:whatif"
        key = _status_key(root, victim)
        art = Path(result.artifacts[victim])
        payload = art.read_bytes()
        state_record = dict(
            node=victim, rule="report-whatif", status="done",
            sha256=result.digests[victim],
        )

        # regress the node: artifact gone, store says failed — the next
        # runner must execute it, so a held lock actually blocks
        art.unlink()
        with RunJournal(root / STATE_FILE, resume=True) as store:
            store.amend(key, node=victim, rule="report-whatif",
                        status="failed", error="simulated")
        lock = _lock_path(root, key)
        lock.parent.mkdir(parents=True, exist_ok=True)
        lock.write_text(f"{os.getpid()} winner\n")

        def winner_commits():
            time.sleep(0.25)  # let the loser rack up polls
            art.write_bytes(payload)
            with RunJournal(root / STATE_FILE, resume=True) as store:
                store.amend(key, **state_record)
            lock.unlink()

        thread = threading.Thread(target=winner_commits)
        thread.start()
        try:
            race = run_dag(
                _spec(), root, resilience=_fast(),
                lock_stale_s=30.0, lock_poll_s=0.02,
            )
        finally:
            thread.join()
        assert race.ok
        assert race.statuses[victim] == "clean"  # adopted, not executed
        assert race.stats.executed == 0
        assert race.stats.lock_waits >= 1
        assert race.stats.lock_takeovers == 0
        assert race.digests[victim] == result.digests[victim]

    def test_lock_wait_timeout_raises(self, seeded):
        root, result = seeded
        victim = "report:whatif"
        key = _status_key(root, victim)
        art = Path(result.artifacts[victim])
        payload = art.read_bytes()
        art.unlink()
        lock = _lock_path(root, key)
        lock.write_text("0 forever\n")
        try:
            with pytest.raises(DagError, match="timed out"):
                run_dag(
                    _spec(), root, resilience=_fast(),
                    lock_stale_s=600.0, lock_poll_s=0.01, lock_wait_s=0.05,
                )
        finally:
            lock.unlink()
            art.write_bytes(payload)

    def test_stale_lock_from_dead_holder_is_taken_over(self, seeded):
        """A lockfile whose holder was SIGKILLed (old mtime, no process
        behind it) must not wedge the DAG: the next runner claims it."""
        root, result = seeded
        victim = "report:whatif"
        key = _status_key(root, victim)
        art = Path(result.artifacts[victim])
        art.unlink()
        lock = _lock_path(root, key)
        lock.write_text("99999 dead-holder\n")
        stale = time.time() - 3600.0
        os.utime(lock, (stale, stale))

        result2 = run_dag(
            _spec(), root, resilience=_fast(),
            lock_stale_s=30.0, lock_poll_s=0.01,
        )
        assert result2.ok
        assert result2.statuses[victim] == "executed"
        assert result2.stats.lock_takeovers == 1
        assert result2.stats.lock_waits >= 1
        assert result2.digests[victim] == result.digests[victim]
        assert not lock.exists()


class TestTwoProcesses:
    def test_cold_race_executes_every_node_exactly_once(self, tmp_path):
        """Two real processes, one empty dag root, full race: every
        node computed by exactly one process, both agree on digests."""
        root = tmp_path / "shared"
        script = (
            "import json, sys\n"
            "from repro.pipeline.dag import SweepSpec, run_dag\n"
            "from repro.exec.resilience import ResilienceConfig\n"
            f"spec = SweepSpec(**{SPEC_KW!r})\n"
            f"res = run_dag(spec, {str(root)!r}, lock_poll_s=0.02,\n"
            "    resilience=ResilienceConfig(max_retries=0,\n"
            "        backoff_base_s=0.001, backoff_max_s=0.01))\n"
            "with open(sys.argv[1], 'w') as fh:\n"
            "    json.dump(res.to_dict(), fh)\n"
            "sys.exit(0 if res.ok else 1)\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        env.pop("REPRO_FAULT_PLAN", None)
        outs = [tmp_path / "a.json", tmp_path / "b.json"]
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(out)],
                cwd=Path(__file__).resolve().parents[1], env=env,
            )
            for out in outs
        ]
        for proc in procs:
            assert proc.wait(timeout=180) == 0
        res_a, res_b = (json.loads(out.read_text()) for out in outs)

        # both processes agree on every node's content digest
        assert res_a["digests"] == res_b["digests"]
        assert len(res_a["digests"]) == N_NODES

        # exactly-once: each node was executed by one process and
        # adopted by the other, however the race interleaved
        executed_a = res_a["stats"]["executed"]
        executed_b = res_b["stats"]["executed"]
        assert executed_a + executed_b == N_NODES
        assert res_a["stats"]["clean"] + res_b["stats"]["clean"] == N_NODES
        assert not res_a["errors"] and not res_b["errors"]

        # the source of truth agrees: one done record per node key
        per_key = {}
        for line in (root / STATE_FILE).read_text().splitlines():
            entry = json.loads(line)
            if (entry.get("meta") or {}).get("status") == "done":
                per_key[entry["unit"]] = per_key.get(entry["unit"], 0) + 1
        assert len(per_key) == N_NODES
        assert all(count == 1 for count in per_key.values()), per_key

        # and the artifacts on disk match the recorded digests
        by_name = {s.name: s for s in dag_status(_spec(), root)}
        for node in build_dag(_spec()).topo():
            status = by_name[node.name]
            assert status.state == "clean"
            art = root / "artifacts" / f"{status.key}{node.ext}"
            assert digest_file(art) == res_a["digests"][node.name]
