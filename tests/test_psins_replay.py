"""Unit tests: the PSiNS-style replay engine."""

import numpy as np
import pytest

from repro.machine.network import NetworkParameters
from repro.psins.replay import (
    ComputationTimer,
    PerRankTimer,
    ReplayDeadlockError,
    UniformTimer,
    replay_job,
)
from repro.simmpi.runtime import run_job


class FixedTimer(ComputationTimer):
    """1 microsecond per iteration regardless of block."""

    def __init__(self, per_iter_s=1e-6):
        self.per_iter_s = per_iter_s

    def time_s(self, rank, block_id, iterations):
        return self.per_iter_s * iterations


NET = NetworkParameters(
    latency_us=1.0,
    bandwidth_gbs=10.0,
    half_bandwidth_bytes=1,  # effectively flat bandwidth
    per_hop_us=0.0,
    send_overhead_us=0.0,
)


class TestComputeOnly:
    def test_runtime_is_max_rank(self):
        def fn(comm):
            comm.compute(0, 100 * (comm.rank + 1))

        job = run_job("c", 4, fn)
        res = replay_job(job, FixedTimer(), NET)
        assert res.runtime_s == pytest.approx(400e-6)
        np.testing.assert_allclose(
            res.compute_time_s, [100e-6, 200e-6, 300e-6, 400e-6]
        )
        assert res.comm_time_s.sum() == 0.0

    def test_empty_job(self):
        job = run_job("empty", 3, lambda comm: None)
        res = replay_job(job, FixedTimer(), NET)
        assert res.runtime_s == 0.0
        assert res.n_events == 0


class TestPointToPoint:
    def test_receiver_waits_for_sender(self):
        def fn(comm):
            if comm.rank == 0:
                comm.compute(0, 100)  # 100us of work first
                comm.send(1, 0)
            else:
                comm.recv(0, 0)

        job = run_job("p2p", 2, fn)
        res = replay_job(job, FixedTimer(), NET)
        # rank 1 waits 100us for the send, then pays 1us latency
        assert res.runtime_s == pytest.approx(101e-6)
        assert res.comm_time_s[1] == pytest.approx(101e-6)

    def test_early_sender_not_blocked(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(1, 0)
                comm.compute(0, 500)
            else:
                comm.compute(0, 100)
                comm.recv(0, 0)

        job = run_job("p2p", 2, fn)
        res = replay_job(job, FixedTimer(), NET)
        # sender proceeds immediately (buffered); receiver gets message
        # at max(own 100us, send@0) + 1us latency
        assert res.compute_time_s[0] == pytest.approx(500e-6)
        assert res.runtime_s == pytest.approx(500e-6)

    def test_transfer_time_scales_with_bytes(self):
        def make(nbytes):
            def fn(comm):
                if comm.rank == 0:
                    comm.send(1, nbytes)
                else:
                    comm.recv(0, nbytes)

            return run_job("x", 2, fn)

        small = replay_job(make(1_000), FixedTimer(), NET).runtime_s
        large = replay_job(make(10_000_000), FixedTimer(), NET).runtime_s
        assert large > small
        # 10MB at 10GB/s = 1ms
        assert large == pytest.approx(1e-6 + 1e-3, rel=0.01)

    def test_message_order_fifo_per_key(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(1, 100, tag=0)
                comm.send(1, 100, tag=0)
            else:
                comm.recv(0, 100, tag=0)
                comm.recv(0, 100, tag=0)

        res = replay_job(run_job("fifo", 2, fn), FixedTimer(), NET)
        assert res.runtime_s > 0

    def test_size_mismatch_detected(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(1, 100)
            else:
                comm.recv(0, 200)

        with pytest.raises(ValueError, match="size mismatch"):
            replay_job(run_job("bad", 2, fn), FixedTimer(), NET)

    def test_deadlock_detected(self):
        # both ranks recv first: classic deadlock (verify_job would also
        # reject, but replay must fail loudly, not hang)
        def fn(comm):
            other = 1 - comm.rank
            comm.recv(other, 8)
            comm.send(other, 8)

        with pytest.raises(ReplayDeadlockError):
            replay_job(run_job("dead", 2, fn), FixedTimer(), NET)


class TestCollectives:
    def test_barrier_synchronizes(self):
        def fn(comm):
            comm.compute(0, 100 * (comm.rank + 1))
            comm.barrier()
            comm.compute(0, 10)

        job = run_job("b", 3, fn)
        res = replay_job(job, FixedTimer(), NET)
        barrier_cost = NET.barrier_time_s(3)
        assert res.runtime_s == pytest.approx(300e-6 + barrier_cost + 10e-6)
        # the fastest rank waited ~200us in the barrier
        assert res.comm_time_s[0] == pytest.approx(200e-6 + barrier_cost)

    def test_consecutive_collectives(self):
        def fn(comm):
            comm.allreduce(8)
            comm.barrier()
            comm.allreduce(64)

        res = replay_job(run_job("cc", 4, fn), FixedTimer(), NET)
        expected = (
            NET.allreduce_time_s(4, 8)
            + NET.barrier_time_s(4)
            + NET.allreduce_time_s(4, 64)
        )
        assert res.runtime_s == pytest.approx(expected)

    def test_collective_spec_mismatch_detected(self):
        def fn(comm):
            comm.allreduce(8 if comm.rank == 0 else 16)

        with pytest.raises(ValueError, match="collective"):
            replay_job(run_job("mm", 2, fn), FixedTimer(), NET)


class TestTimers:
    def test_uniform_timer(self):
        timer = UniformTimer(lambda block_id: 2e-6 * (block_id + 1))
        assert timer.time_s(0, 1, 10) == pytest.approx(40e-6)

    def test_per_rank_timer(self):
        timer = PerRankTimer({0: lambda b: 1e-6, 1: lambda b: 2e-6})
        assert timer.time_s(1, 0, 5) == pytest.approx(10e-6)
        with pytest.raises(KeyError):
            timer.time_s(2, 0, 1)


class TestResultMetrics:
    def test_comm_fraction(self):
        def fn(comm):
            comm.compute(0, 100)
            comm.barrier()

        res = replay_job(run_job("f", 2, fn), FixedTimer(), NET)
        assert 0.0 <= res.comm_fraction() < 1.0

    def test_halo_exchange_pattern_completes(self):
        """A realistic 1-D halo exchange at a few dozen ranks."""

        def fn(comm):
            left = (comm.rank - 1) % comm.size
            right = (comm.rank + 1) % comm.size
            for _ in range(3):
                comm.compute(0, 50)
                comm.send(left, 1024, tag=0)
                comm.send(right, 1024, tag=1)
                comm.recv(right, 1024, tag=0)
                comm.recv(left, 1024, tag=1)
                comm.allreduce(8)

        job = run_job("halo", 32, fn)
        res = replay_job(job, FixedTimer(), NET)
        assert res.runtime_s > 3 * 50e-6
        assert res.n_events == 32 * 3 * 6


class TestBookkeepingDrains:
    """Regression: long replays must not accumulate dead scheduler state.

    ``coll_spec`` entries used to live forever, and defaultdict lookups
    on the send/recv paths materialized empty deques for every key ever
    probed.  The engine now deletes bookkeeping as it drains, so after a
    clean replay every transient structure is empty.
    """

    def _run_engine(self, job):
        from repro.psins.replay import ReplayEngine

        engine = ReplayEngine(job, FixedTimer(), NET)
        engine.run()
        return engine

    def test_collective_state_freed(self):
        def fn(comm):
            for _ in range(20):
                comm.compute(0, comm.rank + 1)
                comm.allreduce(8)
                comm.barrier()

        engine = self._run_engine(run_job("colls", 4, fn))
        assert engine.coll_spec == {}
        assert engine.coll_arrivals == {}

    def test_matched_p2p_state_freed(self):
        def fn(comm):
            peer = comm.rank ^ 1
            for it in range(50):
                if comm.rank % 2 == 0:
                    comm.send(peer, 64, tag=it)
                    comm.recv(peer, 64, tag=it)
                else:
                    comm.recv(peer, 64, tag=it)
                    comm.send(peer, 64, tag=it)

        engine = self._run_engine(run_job("pingpong", 4, fn))
        # every send was consumed, every waiter was woken
        assert engine.mailbox == {}
        assert engine.recv_waiters == {}

    def test_probing_recv_leaves_no_empty_queues(self):
        def fn(comm):
            if comm.rank == 0:
                comm.compute(0, 100)
                comm.send(1, 8)
            else:
                comm.recv(0, 8)  # blocks: key probed before message exists

        engine = self._run_engine(run_job("probe", 2, fn))
        assert engine.mailbox == {}
        assert engine.recv_waiters == {}

    def test_unmatched_send_is_the_only_residue(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(1, 8)  # never received

        engine = self._run_engine(run_job("orphan", 2, fn))
        assert list(engine.mailbox) == [(0, 1, 0)]
        assert engine.recv_waiters == {}

    def test_replay_job_unchanged_semantics(self):
        def fn(comm):
            if comm.rank == 0:
                comm.compute(0, 100)
                comm.send(1, 0)
            else:
                comm.recv(0, 0)

        res = replay_job(run_job("p2p", 2, fn), FixedTimer(), NET)
        assert res.runtime_s == pytest.approx(101e-6)
