"""Unit tests: SimMPI events, communicator, runtime, profiler."""

import pytest

from repro.instrument.builder import ProgramBuilder
from repro.memstream.patterns import StridedPattern
from repro.simmpi.comm import SimComm
from repro.simmpi.events import (
    BarrierEvent,
    CollectiveEvent,
    ComputeEvent,
    RecvEvent,
    SendEvent,
)
from repro.simmpi.profiler import profile_job
from repro.simmpi.runtime import (
    Job,
    JobVerificationError,
    RankScript,
    run_job,
    verify_job,
)


class TestEvents:
    def test_collective_validates_op(self):
        with pytest.raises(ValueError):
            CollectiveEvent(op="gathervv")

    def test_barrier_helper(self):
        b = BarrierEvent()
        assert b.op == "barrier" and b.nbytes == 0

    def test_negative_sizes_rejected(self):
        with pytest.raises(Exception):
            SendEvent(dest=0, nbytes=-1)
        with pytest.raises(Exception):
            ComputeEvent(block_id=0, iterations=-1)


class TestSimComm:
    def test_rank_bounds(self):
        with pytest.raises(ValueError):
            SimComm(4, 4)
        with pytest.raises(ValueError):
            SimComm(0, 0)

    def test_self_send_rejected(self):
        comm = SimComm(1, 4)
        with pytest.raises(ValueError):
            comm.send(1, 8)
        with pytest.raises(ValueError):
            comm.recv(1, 8)

    def test_zero_iteration_compute_dropped(self):
        comm = SimComm(0, 2)
        comm.compute(0, 0)
        assert comm.events == []

    def test_event_recording_order(self):
        comm = SimComm(0, 4)
        comm.compute(7, 100)
        comm.send(1, 64, tag=3)
        comm.recv(1, 64, tag=3)
        comm.allreduce(8)
        kinds = [type(e).__name__ for e in comm.events]
        assert kinds == ["ComputeEvent", "SendEvent", "RecvEvent", "CollectiveEvent"]

    def test_sendrecv_orders_send_first(self):
        comm = SimComm(0, 4)
        comm.sendrecv(1, 8, 2, 16, tag=5)
        assert isinstance(comm.events[0], SendEvent)
        assert isinstance(comm.events[1], RecvEvent)
        assert comm.events[1].src == 2 and comm.events[1].nbytes == 16

    def test_mpi4py_style_introspection(self):
        comm = SimComm(2, 8)
        assert comm.get_rank() == 2 and comm.get_size() == 8


class TestRuntime:
    @staticmethod
    def ring_fn(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        comm.compute(0, 10 * (comm.rank + 1))
        comm.send(right, 128)
        comm.recv(left, 128)
        comm.barrier()

    def test_run_job_structure(self):
        job = run_job("ring", 4, self.ring_fn)
        assert job.n_ranks == 4
        assert all(s.rank == i for i, s in enumerate(job.scripts))
        assert job.script(2).n_events == 4

    def test_verify_ring_ok(self):
        verify_job(run_job("ring", 4, self.ring_fn))

    def test_verify_catches_unmatched_send(self):
        def bad(comm):
            if comm.rank == 0:
                comm.send(1, 8)

        with pytest.raises(JobVerificationError, match="unmatched send"):
            verify_job(run_job("bad", 2, bad))

    def test_verify_catches_unmatched_recv(self):
        def bad(comm):
            if comm.rank == 1:
                comm.recv(0, 8)

        with pytest.raises(JobVerificationError, match="unmatched recv"):
            verify_job(run_job("bad", 2, bad))

    def test_verify_catches_collective_mismatch(self):
        def bad(comm):
            if comm.rank == 0:
                comm.allreduce(8)
            else:
                comm.barrier()

        with pytest.raises(JobVerificationError, match="collective"):
            verify_job(run_job("bad", 2, bad))

    def test_job_rank_consistency_checked(self):
        with pytest.raises(ValueError):
            Job(app="x", n_ranks=2, scripts=[RankScript(rank=0)])
        with pytest.raises(ValueError):
            Job(
                app="x",
                n_ranks=2,
                scripts=[RankScript(rank=0), RankScript(rank=0)],
            )


class TestProfiler:
    def test_slowest_rank_found(self):
        def fn(comm):
            comm.compute(0, 100 * (comm.rank + 1))
            comm.barrier()

        job = run_job("imbalanced", 4, fn)
        program = (
            ProgramBuilder("p")
            .block("work", block_id=0)
            .load(StridedPattern(region_bytes=4096))
            .executes(100)
            .done()
            .build()
        )
        prof = profile_job(job, lambda rank: program)
        assert prof.slowest_rank() == 3
        assert prof.load_imbalance() == pytest.approx(4 / 2.5)

    def test_balanced_job(self):
        def fn(comm):
            comm.compute(0, 100)

        job = run_job("balanced", 4, fn)
        program = (
            ProgramBuilder("p")
            .block("work", block_id=0)
            .load(StridedPattern(region_bytes=4096))
            .executes(100)
            .done()
            .build()
        )
        prof = profile_job(job, lambda rank: program)
        assert prof.load_imbalance() == pytest.approx(1.0)
        assert prof.slowest_rank() == 0  # deterministic tie-break
