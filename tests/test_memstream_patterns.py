"""Unit + property tests: access patterns and stream generation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memstream.generator import StreamGenerator, interleave_streams
from repro.memstream.patterns import (
    BlockedPattern,
    ConstantPattern,
    GatherScatterPattern,
    PointerChasePattern,
    RandomPattern,
    StencilPattern,
    StridedPattern,
)
from repro.memstream.workingset import (
    footprint_bytes,
    measured_footprint_bytes,
    unique_lines,
)
from repro.util.rng import stream

ALL_PATTERN_FACTORIES = [
    lambda: StridedPattern(region_bytes=4096),
    lambda: StridedPattern(region_bytes=8192, stride_elements=4),
    lambda: BlockedPattern(region_bytes=16384, tile_elements=64, revisits=2),
    lambda: RandomPattern(region_bytes=32768),
    lambda: GatherScatterPattern(region_bytes=16384, locality=0.5),
    lambda: GatherScatterPattern(region_bytes=16384, locality=0.0),
    lambda: GatherScatterPattern(region_bytes=16384, locality=1.0),
    lambda: StencilPattern(region_bytes=8192, offsets=(-9, -1, 0, 1, 9)),
    lambda: PointerChasePattern(region_bytes=32768),
    lambda: ConstantPattern(region_bytes=64),
]


@pytest.fixture
def rng():
    return stream("pattern-tests")


class TestPatternContracts:
    @pytest.mark.parametrize("factory", ALL_PATTERN_FACTORIES)
    def test_addresses_in_region(self, factory, rng):
        p = factory().with_base(1 << 20)
        addrs = p.addresses(0, 5000, rng)
        assert addrs.dtype == np.int64
        assert addrs.min() >= p.base
        assert addrs.max() < p.base + p.region_bytes

    @pytest.mark.parametrize("factory", ALL_PATTERN_FACTORIES)
    def test_chunk_stability(self, factory, rng):
        """Addresses must not depend on how the range is chunked."""
        p = factory()
        whole = p.addresses(0, 4000, rng)
        parts = np.concatenate(
            [p.addresses(i, 500, rng) for i in range(0, 4000, 500)]
        )
        np.testing.assert_array_equal(whole, parts)

    @pytest.mark.parametrize("factory", ALL_PATTERN_FACTORIES)
    def test_determinism_across_instances(self, factory):
        a = factory().addresses(100, 200, stream("same", 1))
        b = factory().addresses(100, 200, stream("same", 1))
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("factory", ALL_PATTERN_FACTORIES)
    def test_rng_path_changes_stochastic_patterns(self, factory):
        p = factory()
        a = p.addresses(0, 1000, stream("path", 1))
        b = p.addresses(0, 1000, stream("path", 2))
        if isinstance(
            p, (RandomPattern, GatherScatterPattern, PointerChasePattern)
        ) and not (isinstance(p, GatherScatterPattern) and p.locality == 1.0):
            assert not np.array_equal(a, b)
        elif isinstance(p, (StridedPattern, StencilPattern, ConstantPattern)):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("factory", ALL_PATTERN_FACTORIES)
    def test_alignment(self, factory, rng):
        p = factory()
        addrs = p.addresses(0, 1000, rng)
        assert np.all((addrs - p.base) % p.element_size == 0)


class TestStridedPattern:
    def test_unit_stride_sequence(self, rng):
        p = StridedPattern(region_bytes=800, element_size=8)
        addrs = p.addresses(0, 10, rng)
        np.testing.assert_array_equal(addrs, np.arange(10) * 8)

    def test_wraparound(self, rng):
        p = StridedPattern(region_bytes=80, element_size=8)  # 10 elements
        addrs = p.addresses(0, 25, rng)
        np.testing.assert_array_equal(addrs[:10], addrs[10:20])

    def test_stride_spacing(self, rng):
        p = StridedPattern(region_bytes=8000, element_size=8, stride_elements=4)
        addrs = p.addresses(0, 5, rng)
        assert np.all(np.diff(addrs) == 32)

    def test_rejects_bad_region(self):
        with pytest.raises(ValueError):
            StridedPattern(region_bytes=4, element_size=8)


class TestStencilPattern:
    def test_one_application_touches_offsets(self, rng):
        offsets = (-3, -1, 0, 1, 3)
        p = StencilPattern(region_bytes=8000, offsets=offsets)
        addrs = p.addresses(0, 5, rng)
        # first stencil application is centered at 0 (mod region)
        centers = (np.asarray(offsets) % p.n_elements) * 8
        np.testing.assert_array_equal(np.sort(addrs), np.sort(centers))

    def test_rejects_empty_offsets(self):
        with pytest.raises(ValueError):
            StencilPattern(region_bytes=4096, offsets=())


class TestBlockedPattern:
    def test_revisits_repeat_tile(self, rng):
        p = BlockedPattern(region_bytes=4096, tile_elements=8, revisits=2)
        addrs = p.addresses(0, 16, rng)
        np.testing.assert_array_equal(addrs[:8], addrs[8:16])

    def test_tiles_advance(self, rng):
        p = BlockedPattern(region_bytes=4096, tile_elements=8, revisits=1)
        addrs = p.addresses(0, 16, rng)
        assert addrs[8] == 8 * 8  # second tile starts after first


class TestGatherScatter:
    def test_locality_extremes_have_different_line_counts(self, rng):
        n = 20_000
        lines_rand = unique_lines(
            GatherScatterPattern(region_bytes=1 << 20, locality=0.0).addresses(
                0, n, rng
            )
        )
        lines_local = unique_lines(
            GatherScatterPattern(
                region_bytes=1 << 20, locality=1.0, cluster_elements=512
            ).addresses(0, n, rng)
        )
        assert lines_local < lines_rand

    def test_locality_validated(self):
        with pytest.raises(ValueError):
            GatherScatterPattern(region_bytes=4096, locality=1.5)


class TestConstantPattern:
    def test_single_address(self, rng):
        p = ConstantPattern(region_bytes=64, base=4096)
        assert np.all(p.addresses(0, 100, rng) == 4096)

    def test_footprint_is_one_element(self):
        assert ConstantPattern(region_bytes=4096).footprint_bytes() == 8


class TestRandomPattern:
    def test_roughly_uniform(self, rng):
        p = RandomPattern(region_bytes=1 << 16)
        addrs = p.addresses(0, 50_000, rng)
        # split region into 8 octants; counts should be balanced within 10%
        octant = (addrs * 8) // (1 << 16)
        counts = np.bincount(octant, minlength=8)
        assert counts.min() > 0.9 * counts.mean()


class TestStreamGenerator:
    def test_total_respected(self, rng):
        gen = StreamGenerator(
            pattern=StridedPattern(region_bytes=4096), total=1000, rng=rng, chunk=300
        )
        chunks = list(gen)
        assert sum(len(c) for c in chunks) == 1000
        assert len(chunks) == 4

    def test_all_addresses_matches_pattern(self, rng):
        p = StridedPattern(region_bytes=4096)
        gen = StreamGenerator(pattern=p, total=700, rng=rng, chunk=128)
        np.testing.assert_array_equal(gen.all_addresses(), p.addresses(0, 700, rng))

    def test_zero_total(self, rng):
        gen = StreamGenerator(pattern=StridedPattern(region_bytes=64), total=0, rng=rng)
        assert gen.all_addresses().size == 0


class TestInterleave:
    def test_counts_exact(self, rng):
        patterns = [
            StridedPattern(region_bytes=4096),
            RandomPattern(region_bytes=4096, base=8192),
        ]
        counts = [1000, 3000]
        total = 0
        seen = np.zeros(2, dtype=int)
        for idx, addrs in interleave_streams(patterns, counts, rng, chunk=512):
            assert idx.shape == addrs.shape
            total += len(addrs)
            seen += np.bincount(idx, minlength=2)
        assert total == 4000
        np.testing.assert_array_equal(seen, counts)

    def test_attribution_addresses_match_pattern(self, rng):
        """Each instruction's addresses must be its pattern's sequence."""
        patterns = [
            StridedPattern(region_bytes=4096),
            StridedPattern(region_bytes=4096, base=1 << 20, stride_elements=2),
        ]
        counts = [500, 1500]
        per_instr = {0: [], 1: []}
        for idx, addrs in interleave_streams(patterns, counts, rng, chunk=256):
            for i in (0, 1):
                per_instr[i].append(addrs[idx == i])
        for i, p in enumerate(patterns):
            got = np.concatenate(per_instr[i])
            expected = p.addresses(0, counts[i], rng.child("instr", i))
            np.testing.assert_array_equal(got, expected)

    def test_interleaving_mixes_instructions(self, rng):
        """Equal-count streams must alternate, not concatenate."""
        patterns = [
            StridedPattern(region_bytes=4096),
            StridedPattern(region_bytes=4096, base=1 << 20),
        ]
        first_chunk_idx, _ = next(
            iter(interleave_streams(patterns, [512, 512], rng, chunk=64))
        )
        # within the first chunk both instructions appear
        assert set(np.unique(first_chunk_idx)) == {0, 1}

    def test_mismatched_lengths_rejected(self, rng):
        with pytest.raises(ValueError):
            list(interleave_streams([StridedPattern(region_bytes=64)], [1, 2], rng))

    def test_empty(self, rng):
        assert list(interleave_streams([], [], rng)) == []


class TestWorkingSet:
    def test_unique_lines(self):
        addrs = np.array([0, 8, 64, 65, 128])
        assert unique_lines(addrs, line_size=64) == 3

    def test_unique_lines_empty(self):
        assert unique_lines(np.array([], dtype=np.int64)) == 0

    def test_footprint_sums_line_rounded(self):
        pats = [
            StridedPattern(region_bytes=100),  # rounds to 128
            StridedPattern(region_bytes=64),
        ]
        assert footprint_bytes(pats, line_size=64) == 128 + 64

    def test_measured_vs_analytic_consistency(self):
        rng = stream("ws")
        p = StridedPattern(region_bytes=64 * 100)
        measured = measured_footprint_bytes([p.addresses(0, 2000, rng)])
        assert measured == p.footprint_bytes()  # full wrap covers region

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=64, max_value=1 << 16),
    )
    @settings(max_examples=25, deadline=None)
    def test_footprint_bounds_measured(self, stride, region):
        rng = stream("ws-prop", stride, region)
        region = (region // 8) * 8 or 8
        p = StridedPattern(region_bytes=region, stride_elements=stride)
        measured = measured_footprint_bytes([p.addresses(0, 3000, rng)])
        assert measured <= footprint_bytes([p])
