"""Serving-tier fault-discipline tests: breakers, deadlines, registry.

The resilience contract (DESIGN §7.10) is that a serving failure is
always *fast and typed* — a query gets a DeadlineExceededError /
CircuitOpenError / ServeError answer, never a hang — and that every
recovery event is tallied exactly once in the engine's
:class:`~repro.serve.resilience.ServeReport`.  The breaker state
machine takes explicit ``now`` values, so every transition here is
driven without sleeping; the engine-level tests use real (tiny) windows
only where wall clock is the thing under test.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.exec import faults
from repro.obs.metrics import REGISTRY
from repro.serve import (
    CircuitBreaker,
    FittedModel,
    ModelRegistry,
    Query,
    QueryEngine,
    ServeConfig,
    ServeReport,
)
from repro.serve.registry import FAULT_FILES
from repro.util.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ServeError,
)


def _engine(serve_model, **config_kwargs) -> QueryEngine:
    reg = ModelRegistry(root=None, mem_entries=4)
    reg.put(serve_model)
    defaults = {"max_batch": 16, "window_s": 0.005}
    defaults.update(config_kwargs)
    return QueryEngine(
        reg,
        default_model=serve_model.digest,
        config=ServeConfig(**defaults),
    )


def _variant(model: FittedModel, **spec_changes) -> FittedModel:
    return FittedModel(
        spec=replace(model.spec, **spec_changes),
        report=model.report,
        template=model.template,
    )


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        b = CircuitBreaker("m" * 64, threshold=3, open_s=1.0)
        for _ in range(2):
            b.record_failure(now=0.0)
        assert b.state == "closed" and b.admit(0.0)
        b.record_failure(now=0.0)
        assert b.state == "open" and b.opens == 1
        assert not b.admit(0.5)  # still inside the open window

    def test_success_resets_the_failure_streak(self):
        b = CircuitBreaker("m" * 64, threshold=2, open_s=1.0)
        b.record_failure(now=0.0)
        b.record_success()
        b.record_failure(now=0.0)
        assert b.state == "closed"  # never two *consecutive* failures

    def test_jittered_window_is_deterministic_per_model_and_open(self):
        a = CircuitBreaker("a" * 64, threshold=1, open_s=1.0)
        b = CircuitBreaker("a" * 64, threshold=1, open_s=1.0)
        a.record_failure(now=10.0)
        b.record_failure(now=10.0)
        # same (model, open count) -> identical probe schedule
        assert a._probe_at == b._probe_at
        # jitter stretches the window by +0%..+25%, never shrinks it
        assert 11.0 <= a._probe_at <= 11.25
        # a different model (or a later open) jitters differently
        c = CircuitBreaker("c" * 64, threshold=1, open_s=1.0)
        c.record_failure(now=10.0)
        assert c._probe_at != a._probe_at

    def test_half_open_admits_exactly_one_probe(self):
        b = CircuitBreaker("m" * 64, threshold=1, open_s=1.0)
        b.record_failure(now=0.0)
        probe_at = b._probe_at
        assert not b.allow_dispatch(probe_at - 0.01)
        assert b.allow_dispatch(probe_at)  # the probe
        assert b.state == "half_open"
        assert not b.allow_dispatch(probe_at)  # gate: one in flight
        assert not b.admit(probe_at)

    def test_probe_success_closes_probe_failure_reopens(self):
        report = ServeReport()
        b = CircuitBreaker("m" * 64, threshold=1, open_s=1.0, report=report)
        b.record_failure(now=0.0)
        assert b.allow_dispatch(b._probe_at)
        b.record_failure(now=b._probe_at)  # probe failed
        assert b.state == "open" and b.opens == 2
        assert b.allow_dispatch(b._probe_at)
        b.record_success()  # probe healthy
        assert b.state == "closed" and b.failures == 0
        tag = "m" * 12
        assert report.transitions == [
            f"{tag}:open",
            f"{tag}:half_open",
            f"{tag}:open",
            f"{tag}:half_open",
            f"{tag}:closed",
        ]
        assert report.breaker_opens == 2
        assert report.breaker_half_opens == 2
        assert report.breaker_closes == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("m", threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("m", open_s=0.0)


class TestServeReport:
    def test_bump_mirrors_into_metrics(self):
        before = REGISTRY.counters.get("serve.resilience.breaker_opens", 0)
        report = ServeReport()
        report.bump("breaker_opens", 2)
        assert report.breaker_opens == 2
        after = REGISTRY.counters.get("serve.resilience.breaker_opens", 0)
        assert after - before == 2

    def test_clean_and_to_dict(self):
        report = ServeReport()
        assert report.clean
        report.bump("deadline_dispatch")
        report.bump("deadline_flush", 2)
        assert not report.clean
        doc = report.to_dict()
        assert doc["deadline_expired"] == 3
        assert doc["transitions"] == []
        assert doc["worker"]["retries"] == 0
        assert "deadline_expired=3" in report.summary()


class TestDeadlineBoundaries:
    def test_admission_wait_deadline(self, serve_model):
        async def main():
            engine = _engine(
                serve_model, queue_depth=1, admission="wait"
            )
            # dispatcher not running: the first query occupies the only
            # slot, the second parks in the backpressure wait and its
            # 20ms deadline expires there
            first = asyncio.ensure_future(engine.query(Query(target=64)))
            await asyncio.sleep(0)
            with pytest.raises(DeadlineExceededError):
                await engine.query(Query(target=64, deadline_ms=20.0))
            await engine.start()
            await first
            await engine.stop()
            return engine

        engine = asyncio.run(main())
        assert engine.report.deadline_admission == 1
        assert engine.report.deadline_expired == 1
        assert engine.stats.failed == 1 and engine.stats.answered == 1

    def test_dispatch_deadline(self, serve_model):
        async def main():
            engine = _engine(serve_model)
            # enqueue before start, then let the deadline lapse in-queue
            task = asyncio.ensure_future(
                engine.query(Query(target=64, deadline_ms=10.0))
            )
            await asyncio.sleep(0.03)
            await engine.start()
            with pytest.raises(DeadlineExceededError):
                await task
            await engine.stop()
            return engine

        engine = asyncio.run(main())
        assert engine.report.deadline_dispatch == 1
        assert engine.batcher.stats.queries == 0  # never reached a batch

    def test_batch_flush_deadline(self, serve_model):
        async def main():
            # the window never fires on its own; the query is dispatched
            # fresh, parks in the open batch, and ages out before the
            # drain flush runs it
            engine = _engine(serve_model, window_s=30.0)
            await engine.start()
            task = asyncio.ensure_future(
                engine.query(Query(target=64, deadline_ms=10.0))
            )
            fresh = asyncio.ensure_future(engine.query(Query(target=128)))
            await asyncio.sleep(0.03)
            await engine.stop(drain=True)
            with pytest.raises(DeadlineExceededError):
                await task
            return engine, await fresh

        engine, answer = asyncio.run(main())
        assert engine.report.deadline_flush == 1
        assert engine.batcher.stats.expired == 1
        # the expired query's batch mate is still computed and answered
        assert answer.target == 128 and answer.batch_size == 1

    def test_expired_query_never_computed(self, serve_model):
        """Deadline answers carry the boundary name and cost no predict."""

        async def main():
            engine = _engine(serve_model, window_s=30.0)
            await engine.start()
            task = asyncio.ensure_future(
                engine.query(Query(target=64, deadline_ms=5.0))
            )
            await asyncio.sleep(0.02)
            await engine.stop(drain=True)
            try:
                await task
            except DeadlineExceededError as exc:
                return engine, str(exc)
            raise AssertionError("deadline did not fire")

        engine, message = asyncio.run(main())
        assert "batch flush" in message
        assert engine.batcher.stats.batches == 0
        assert engine.stats.answered == 0


class TestBreakerInEngine:
    def test_failures_open_then_probe_recloses(self, serve_model):
        """End-to-end breaker walk: closed -> open -> half_open -> closed."""
        digest = serve_model.digest
        key = f"serve:batch:{digest[:12]}:features"
        plan = faults.FaultPlan(
            specs=(
                faults.FaultSpec(
                    key=key, kind="predict-raise", attempts=(1, 2)
                ),
            )
        )

        async def main():
            engine = _engine(
                serve_model,
                breaker_threshold=2,
                breaker_open_s=0.05,
            )
            await engine.start()
            try:
                # two failing batches open the breaker...
                for _ in range(2):
                    with pytest.raises(ServeError):
                        await engine.query(Query(target=64))
                # ...which sheds the next query at admission, fast
                with pytest.raises(CircuitOpenError):
                    await engine.query(Query(target=64))
                # after the jittered window (<= 0.05 * 1.25) the next
                # query is the half-open probe; the fault plan is spent,
                # so it succeeds and recloses the breaker
                await asyncio.sleep(0.08)
                answer = await engine.query(Query(target=64))
            finally:
                await engine.stop()
            return engine, answer

        with faults.injected(plan):
            engine, answer = asyncio.run(main())
        report = engine.report
        assert report.batch_failures == 2
        assert report.breaker_opens == 1
        assert report.breaker_half_opens == 1
        assert report.breaker_closes == 1
        assert report.breaker_rejected == 1
        tag = digest[:12]
        assert report.transitions == [
            f"{tag}:open", f"{tag}:half_open", f"{tag}:closed"
        ]
        # the recovered answer is still bit-identical to a direct predict
        assert np.array_equal(
            answer.values, serve_model.predict([64]).values[0]
        )

    def test_unhardened_engine_has_no_breaker(self, serve_model):
        digest = serve_model.digest
        key = f"serve:batch:{digest[:12]}:features"
        plan = faults.FaultPlan(
            specs=(
                faults.FaultSpec(
                    key=key, kind="predict-raise", attempts=tuple(range(1, 9))
                ),
            )
        )

        async def main():
            engine = _engine(
                serve_model, hardened=False, breaker_threshold=1
            )
            await engine.start()
            try:
                for _ in range(3):
                    with pytest.raises(ServeError):
                        await engine.query(Query(target=64))
            finally:
                await engine.stop()
            return engine

        with faults.injected(plan):
            engine = asyncio.run(main())
        # every failure is typed ServeError; nothing ever shed
        assert engine.report.breaker_opens == 0
        assert engine.report.breaker_rejected == 0


class TestOffload:
    def test_large_feature_batches_offload(self, serve_model):
        async def main():
            engine = _engine(
                serve_model, offload_batch_size=2, max_batch=8
            )
            await engine.start()
            answers = await asyncio.gather(
                *(engine.query(Query(target=64)) for _ in range(4))
            )
            await engine.stop()
            return engine, answers

        engine, answers = asyncio.run(main())
        assert engine.report.offloads >= 1
        expected = serve_model.predict([64]).values[0]
        for a in answers:
            assert np.array_equal(a.values, expected)

    def test_runtime_replay_offloads_and_matches_sequential(
        self, serve_model, bw_machine
    ):
        from repro.apps.registry import get_app
        from repro.pipeline.predict import predict_runtime

        async def main():
            engine = _engine(serve_model)
            # pre-seed the runtime context with the session fixture so
            # the test does not pay a full machine-profile build
            engine._runtime_ctx[serve_model.digest] = (
                get_app("jacobi"), bw_machine
            )
            await engine.start()
            answer = await engine.query(Query(target=64, kind="runtime"))
            await engine.stop()
            return engine, answer

        engine, answer = asyncio.run(main())
        assert engine.report.offloads == 1
        assert engine.report.worker.clean
        # offloaded replay is bit-identical to the sequential path
        sweep = serve_model.predict([64])
        trace = serve_model.synthesize(64, prediction=sweep)
        expected = predict_runtime(
            get_app("jacobi"), 64, trace, bw_machine
        ).runtime_s
        assert answer.runtime_s == expected

    def test_worker_crash_during_replay_fails_one_query(
        self, serve_model, bw_machine
    ):
        """An exhausted-retry replay fails its own query, not the batch."""
        from repro.apps.registry import get_app

        digest = serve_model.digest
        key = f"serve:replay:{digest[:12]}:64"
        plan = faults.FaultPlan(
            specs=(
                faults.FaultSpec(
                    key=key, kind="crash", attempts=(1, 2, 3, 4, 5)
                ),
            )
        )

        async def main():
            engine = _engine(serve_model, max_batch=4, window_s=0.02)
            engine._runtime_ctx[digest] = (get_app("jacobi"), bw_machine)
            await engine.start()
            doomed = asyncio.ensure_future(
                engine.query(Query(target=64, kind="runtime"))
            )
            healthy = asyncio.ensure_future(
                engine.query(Query(target=128, kind="runtime"))
            )
            answer = await healthy
            with pytest.raises(Exception) as err:
                await doomed
            await engine.stop()
            return engine, answer, err.value

        with faults.injected(plan):
            engine, answer, exc = asyncio.run(main())
        # the co-batched healthy target is answered normally
        assert answer.target == 128 and answer.runtime_s > 0
        # the crashed target's retries are in the worker report
        assert not engine.report.worker.clean
        assert engine.report.worker.crashes >= 1
        assert engine.report.worker.retries >= 1
        assert any("collected failure" in e for e in engine.report.worker.events)


class TestRegistryGC:
    def test_gc_evicts_lru_until_under_budget(self, tmp_path, serve_model):
        probe = ModelRegistry(tmp_path / "probe")
        probe.put(serve_model)
        entry_mb = probe.disk_usage_bytes() / (1024 * 1024)
        assert entry_mb > 0

        root = tmp_path / "models"
        reg = ModelRegistry(root, budget_mb=entry_mb * 1.5)
        a = serve_model
        b = _variant(serve_model, code_version="build-b")
        reg.put(a)
        time.sleep(0.01)  # atime ordering must be unambiguous
        reg.put(b)
        # 2 entries > 1.5-entry budget: the older store (a) is evicted,
        # the just-stored digest (b) is protected
        assert reg.stats.gc_evictions == 1
        assert reg.digests() == [b.digest] or set(reg.digests()) == {
            b.digest
        }
        assert reg.disk_usage_bytes() <= entry_mb * 1.5 * 1024 * 1024
        assert REGISTRY.gauge("serve.registry.disk_mb").value <= entry_mb * 1.5

    def test_gc_order_is_access_order_not_store_order(
        self, tmp_path, serve_model
    ):
        probe = ModelRegistry(tmp_path / "probe")
        probe.put(serve_model)
        entry_mb = probe.disk_usage_bytes() / (1024 * 1024)

        reg = ModelRegistry(
            tmp_path / "models", budget_mb=entry_mb * 2.5, mem_entries=1
        )
        a = serve_model
        b = _variant(serve_model, code_version="build-b")
        c = _variant(serve_model, code_version="build-c")
        reg.put(a)
        time.sleep(0.01)
        reg.put(b)
        time.sleep(0.01)
        reg.clear_memory()
        assert reg.get(a.spec) is not None  # disk hit refreshes a's atime
        time.sleep(0.01)
        reg.put(c)  # over budget: evict LRU = b, not the older-stored a
        assert reg.stats.gc_evictions == 1
        assert set(reg.digests()) == {a.digest, c.digest}

    def test_quarantined_entries_do_not_count_against_budget(
        self, tmp_path, serve_model
    ):
        reg = ModelRegistry(tmp_path / "models")
        reg.put(serve_model)
        live = reg.disk_usage_bytes()
        reg.clear_memory()
        entry = reg._model_dir(serve_model.digest)
        (entry / "meta.json").write_text("{ broken")
        assert reg.get(serve_model.spec) is None
        assert reg.disk_usage_bytes() == 0 < live


class TestCorruptModelEntryFault:
    @pytest.mark.parametrize("feature", sorted(FAULT_FILES))
    def test_injected_corruption_trips_quarantine(
        self, tmp_path, serve_model, feature
    ):
        digest = serve_model.digest
        plan = faults.FaultPlan(
            specs=(
                faults.FaultSpec(
                    key=digest, kind="corrupt-model-entry", feature=feature
                ),
            )
        )
        reg = ModelRegistry(tmp_path / "models")
        with faults.injected(plan):
            reg.put(serve_model)
        reg.clear_memory()
        # the truncated artifact fails the size gate -> quarantine + miss
        assert reg.get(serve_model.spec) is None
        assert reg.stats.quarantined == 1
        assert reg.quarantined_digests() == [digest]

    def test_quarantine_then_get_or_fit_refits(self, tmp_path, serve_model):
        import repro.serve.registry as registry_mod

        digest = serve_model.digest
        plan = faults.FaultPlan(
            specs=(
                faults.FaultSpec(
                    key=digest, kind="corrupt-model-entry", feature="matrix"
                ),
            )
        )
        reg = ModelRegistry(tmp_path / "models")
        with faults.injected(plan):
            reg.put(serve_model)
        reg.clear_memory()

        fitted = []
        original = registry_mod.fit_model

        def fake_fit(spec, *, config=None, report=None):
            fitted.append(spec)
            return serve_model

        registry_mod.fit_model = fake_fit
        try:
            model = reg.get_or_fit(serve_model.spec)
        finally:
            registry_mod.fit_model = original
        assert model.digest == digest
        assert fitted == [serve_model.spec]
        assert reg.stats.quarantined == 1 and reg.stats.fits == 1
        # the refit entry is healthy: a cold get loads it from disk
        reg.clear_memory()
        assert reg.get(serve_model.spec) is not None
        assert reg.stats.quarantined == 1  # no second quarantine


class TestFitLock:
    def test_waiter_loads_winners_artifact_instead_of_refitting(
        self, tmp_path, serve_model
    ):
        """Second fitter polls the lock and loads, never fits."""
        import repro.serve.registry as registry_mod

        root = tmp_path / "models"
        reg = ModelRegistry(root, lock_poll_s=0.01)
        digest = serve_model.digest
        lock = reg._lock_path(digest)
        lock.parent.mkdir(parents=True, exist_ok=True)
        lock.write_text("9999 0\n")  # another process holds the fit lock

        original = registry_mod.fit_model

        def forbidden_fit(spec, *, config=None, report=None):
            raise AssertionError("waiter must load, not refit")

        result = {}

        def waiter():
            result["model"] = reg.get_or_fit(serve_model.spec)

        registry_mod.fit_model = forbidden_fit
        try:
            t = threading.Thread(target=waiter)
            t.start()
            time.sleep(0.05)  # the waiter is polling by now
            writer = ModelRegistry(root)  # "the other process"
            writer.put(serve_model)
            os.remove(lock)
            t.join(timeout=10.0)
            assert not t.is_alive()
        finally:
            registry_mod.fit_model = original
        assert result["model"].digest == digest
        assert reg.stats.lock_waits >= 1
        assert reg.stats.fits == 0

    def test_stale_lock_is_taken_over(self, tmp_path, serve_model):
        reg = ModelRegistry(tmp_path / "models", lock_stale_s=30.0)
        digest = serve_model.digest
        lock = reg._lock_path(digest)
        lock.parent.mkdir(parents=True, exist_ok=True)
        lock.write_text("dead 0\n")
        old = time.time() - 120.0
        os.utime(lock, (old, old))  # the fitter crashed two minutes ago
        assert not reg._try_lock(digest)  # takeover removes the corpse...
        assert reg.stats.lock_takeovers == 1
        assert reg._try_lock(digest)  # ...so the next poll acquires
        reg._unlock(digest)

    def test_fresh_lock_is_respected(self, tmp_path, serve_model):
        reg = ModelRegistry(tmp_path / "models", lock_stale_s=30.0)
        digest = serve_model.digest
        assert reg._try_lock(digest)
        assert not reg._try_lock(digest)
        assert reg.stats.lock_takeovers == 0
        reg._unlock(digest)
        assert reg._try_lock(digest)
        reg._unlock(digest)
