"""Parallel execution substrate: pool determinism + signature cache.

The acceptance-critical property is that fanning collection out over a
process pool is invisible in the results: parallel and serial
`collect_signature` must produce bit-for-bit identical TraceFiles, and
a warm cache must return exactly what a fresh collection would.
"""

import os
import pickle
import time

import numpy as np
import pytest

from repro.exec.pool import _WORKER_ENV, in_worker, resolve_workers, run_tasks
from repro.exec.sigcache import (
    ENTRY_MAGIC,
    SCHEMA_VERSION,
    SignatureCache,
    app_token,
)
from repro.pipeline.collect import (
    CollectionSettings,
    collect_signature,
    collect_signatures,
)

from tests.conftest import FAST_COLLECTOR


def _square(x):
    return x * x


def _fail_on(x, bad):
    if x == bad:
        raise ValueError(f"task {x} failed")
    return x


def _observe_pool_state():
    return (os.getpid(), in_worker(), resolve_workers(4, 8))


class TestRunTasks:
    def test_results_in_task_order(self):
        tasks = [(i,) for i in range(20)]
        assert run_tasks(_square, tasks, workers=0) == [i * i for i in range(20)]
        assert run_tasks(_square, tasks, workers=3) == [i * i for i in range(20)]

    def test_serial_and_parallel_agree(self):
        tasks = [(i,) for i in range(7)]
        assert run_tasks(_square, tasks, workers=0) == run_tasks(
            _square, tasks, workers=2
        )

    def test_empty_task_list(self):
        assert run_tasks(_square, [], workers=4) == []

    def test_task_exception_propagates(self):
        with pytest.raises(ValueError, match="task 3 failed"):
            run_tasks(_fail_on, [(i, 3) for i in range(5)], workers=2)
        with pytest.raises(ValueError, match="task 3 failed"):
            run_tasks(_fail_on, [(i, 3) for i in range(5)], workers=0)

    def test_workers_run_in_other_processes(self):
        results = run_tasks(_observe_pool_state, [()] * 4, workers=2)
        pids = {pid for pid, _, _ in results}
        assert os.getpid() not in pids
        # workers are flagged, and nested fan-out degrades to serial
        assert all(flagged for _, flagged, _ in results)
        assert all(nested == 0 for _, _, nested in results)

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1, 4)

    def test_resolve_semantics(self):
        assert resolve_workers(0, 10) == 0  # escape hatch
        assert resolve_workers(1, 10) == 0  # one worker = inline
        assert resolve_workers(8, 3) == 3  # capped at task count
        assert resolve_workers(2, 1) == 0  # single task stays inline
        auto = resolve_workers(None, 64)
        assert 0 <= auto <= (os.cpu_count() or 1)

    def test_in_worker_guard(self, monkeypatch):
        monkeypatch.setenv(_WORKER_ENV, "1")
        assert in_worker()
        assert resolve_workers(8, 8) == 0


def _interrupt_first(x):
    if x == 0:
        raise KeyboardInterrupt
    time.sleep(0.5)
    return x


class TestInterruptAndResolveEdges:
    def test_keyboard_interrupt_propagates_promptly(self):
        # Ctrl-C in a worker must not wait out the queued tasks: 20
        # half-second sleeps behind 2 workers would take ~5s drained,
        # but cancel_futures drops the queue as soon as the first task
        # raises
        start = time.monotonic()
        with pytest.raises(KeyboardInterrupt):
            run_tasks(_interrupt_first, [(i,) for i in range(20)], workers=2)
        assert time.monotonic() - start < 3.0

    def test_keyboard_interrupt_serial(self):
        with pytest.raises(KeyboardInterrupt):
            run_tasks(_interrupt_first, [(0,)], workers=0)

    def test_auto_workers_inside_worker_stays_serial(self, monkeypatch):
        monkeypatch.setenv(_WORKER_ENV, "1")
        assert resolve_workers(None, 8) == 0

    def test_unknown_cpu_count_degrades_to_serial(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert resolve_workers(None, 8) == 0


def _traces_equal(a, b) -> bool:
    if (a.app, a.rank, a.n_ranks, a.target) != (b.app, b.rank, b.n_ranks, b.target):
        return False
    if sorted(a.blocks) != sorted(b.blocks):
        return False
    for block_id in a.blocks:
        ma = a.blocks[block_id].feature_matrix()
        mb = b.blocks[block_id].feature_matrix()
        if ma.shape != mb.shape or not np.array_equal(ma, mb):
            return False
    return True


def _signatures_equal(a, b) -> bool:
    if a.ranks != b.ranks or a.compute_times != b.compute_times:
        return False
    return all(_traces_equal(a.traces[r], b.traces[r]) for r in a.ranks)


class TestParallelCollection:
    N_RANKS = 4

    def _settings(self, workers):
        return CollectionSettings(
            ranks="all", collector=FAST_COLLECTOR, workers=workers
        )

    def test_parallel_collection_bit_identical_to_serial(
        self, small_jacobi, bw_machine
    ):
        serial = collect_signature(
            small_jacobi, self.N_RANKS, bw_machine.hierarchy, self._settings(0)
        )
        parallel = collect_signature(
            small_jacobi, self.N_RANKS, bw_machine.hierarchy, self._settings(2)
        )
        assert serial.ranks == list(range(self.N_RANKS))
        assert _signatures_equal(serial, parallel)

    def test_batch_collection_matches_individual(self, small_jacobi, bw_machine):
        settings = CollectionSettings(collector=FAST_COLLECTOR, workers=2)
        batch = collect_signatures(
            small_jacobi, [4, 8], bw_machine.hierarchy, settings
        )
        for count, sig in zip([4, 8], batch):
            alone = collect_signature(
                small_jacobi, count, bw_machine.hierarchy, settings
            )
            assert sig.n_ranks == count
            assert _signatures_equal(sig, alone)


class TestSignatureCache:
    def _settings(self):
        return CollectionSettings(collector=FAST_COLLECTOR, workers=0)

    def test_roundtrip_and_stats(self, tmp_path, small_jacobi, bw_machine):
        cache = SignatureCache(tmp_path)
        settings = self._settings()
        first = collect_signature(
            small_jacobi, 4, bw_machine.hierarchy, settings, cache=cache
        )
        assert (cache.stats.misses, cache.stats.stores) == (1, 1)
        second = collect_signature(
            small_jacobi, 4, bw_machine.hierarchy, settings, cache=cache
        )
        assert cache.stats.hits == 1
        assert _signatures_equal(first, second)

    def test_key_distinguishes_inputs(self, tmp_path, small_jacobi, bw_machine):
        cache = SignatureCache(tmp_path)
        settings = self._settings()
        base = cache.key_for(small_jacobi, 4, bw_machine.hierarchy, settings)
        assert base is not None
        assert base != cache.key_for(
            small_jacobi, 8, bw_machine.hierarchy, settings
        )
        other_coll = CollectionSettings(
            collector=type(FAST_COLLECTOR)(sample_accesses=999), workers=0
        )
        assert base != cache.key_for(
            small_jacobi, 4, bw_machine.hierarchy, other_coll
        )

    def test_workers_excluded_from_key(self, tmp_path, small_jacobi, bw_machine):
        cache = SignatureCache(tmp_path)
        k0 = cache.key_for(
            small_jacobi, 4, bw_machine.hierarchy,
            CollectionSettings(collector=FAST_COLLECTOR, workers=0),
        )
        k4 = cache.key_for(
            small_jacobi, 4, bw_machine.hierarchy,
            CollectionSettings(collector=FAST_COLLECTOR, workers=4),
        )
        assert k0 == k4

    def test_unstable_repr_is_uncacheable(self, tmp_path, bw_machine):
        class AdHocApp:
            name = "adhoc"

            def __init__(self):
                self.params = object()  # repr embeds a memory address

        cache = SignatureCache(tmp_path)
        key = cache.key_for(
            AdHocApp(), 4, bw_machine.hierarchy, self._settings()
        )
        assert key is None
        assert cache.stats.uncacheable == 1
        assert cache.get(key) is None  # None key is always a miss
        cache.put(key, "ignored")  # and never stored
        assert cache.stats.stores == 0

    @pytest.mark.parametrize(
        "garbage",
        [
            b"not a pickle",  # UnpicklingError
            b"garbage\n",  # ValueError: 'g' opcode parses an int argument
            b"",  # EOFError
        ],
    )
    def test_corrupt_entry_is_a_miss(
        self, tmp_path, small_jacobi, bw_machine, garbage
    ):
        cache = SignatureCache(tmp_path)
        settings = self._settings()
        key = cache.key_for(small_jacobi, 4, bw_machine.hierarchy, settings)
        cache.put(key, {"fake": True})
        (tmp_path / f"{key}.pkl").write_bytes(garbage)
        assert cache.get(key) is None
        assert cache.stats.misses == 1
        assert cache.stats.corrupt == 1


class TestQuarantine:
    """Corrupt cache entries are moved aside — never silently deleted,
    never surfaced as exceptions — and counted."""

    def _settings(self):
        return CollectionSettings(collector=FAST_COLLECTOR, workers=0)

    def _seeded(self, tmp_path, small_jacobi, bw_machine):
        cache = SignatureCache(tmp_path)
        key = cache.key_for(
            small_jacobi, 4, bw_machine.hierarchy, self._settings()
        )
        cache.put(key, {"payload": list(range(100))})
        return cache, key

    def test_corrupt_entry_moved_to_quarantine(
        self, tmp_path, small_jacobi, bw_machine
    ):
        cache, key = self._seeded(tmp_path, small_jacobi, bw_machine)
        (tmp_path / f"{key}.pkl").write_bytes(b"\x00" * 32)
        assert cache.get(key) is None
        assert not (tmp_path / f"{key}.pkl").exists()
        quarantined = cache.quarantine_root / f"{key}.pkl"
        assert quarantined.read_bytes() == b"\x00" * 32  # preserved intact

    def test_hand_truncated_entry_is_quarantined(
        self, tmp_path, small_jacobi, bw_machine
    ):
        # digest framing catches a torn write: chop a valid entry in half
        cache, key = self._seeded(tmp_path, small_jacobi, bw_machine)
        path = tmp_path / f"{key}.pkl"
        blob = path.read_bytes()
        assert blob.startswith(ENTRY_MAGIC)
        path.write_bytes(blob[: len(blob) // 2])
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert (cache.quarantine_root / f"{key}.pkl").exists()
        # the slot is free again: a re-store round-trips
        cache.put(key, {"payload": list(range(100))})
        assert cache.get(key) == {"payload": list(range(100))}

    def test_pre_digest_legacy_entry_is_a_miss(
        self, tmp_path, small_jacobi, bw_machine
    ):
        # schema v1 entries were raw pickles with no digest header; they
        # must load as misses (recollect), not as trusted data
        cache, key = self._seeded(tmp_path, small_jacobi, bw_machine)
        (tmp_path / f"{key}.pkl").write_bytes(
            pickle.dumps({"stale": "v1 entry"})
        )
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert (cache.quarantine_root / f"{key}.pkl").exists()

    def test_corruption_mirrored_into_run_report(
        self, tmp_path, small_jacobi, bw_machine
    ):
        from repro.exec.resilience import RunReport

        cache, key = self._seeded(tmp_path, small_jacobi, bw_machine)
        (tmp_path / f"{key}.pkl").write_bytes(b"junk")
        report = RunReport()
        cache.bind_report(report)
        assert cache.get(key) is None
        assert report.cache_corruptions == 1
        assert report.quarantined == [key]
        assert any("quarantine" in e for e in report.events)

    def test_missing_entry_is_plain_miss_not_corruption(
        self, tmp_path, small_jacobi, bw_machine
    ):
        cache = SignatureCache(tmp_path)
        key = cache.key_for(
            small_jacobi, 4, bw_machine.hierarchy, self._settings()
        )
        assert cache.get(key) is None
        assert cache.stats.corrupt == 0
        assert cache.stats.misses == 1

    def test_app_token_stable_across_instances(self, small_jacobi):
        clone = pickle.loads(pickle.dumps(small_jacobi))
        assert app_token(small_jacobi) == app_token(clone)

    def test_schema_version_in_key(self, tmp_path, small_jacobi, bw_machine):
        """Bumping SCHEMA_VERSION must change every key."""
        import repro.exec.sigcache as sigcache

        cache = SignatureCache(tmp_path)
        settings = self._settings()
        before = cache.key_for(small_jacobi, 4, bw_machine.hierarchy, settings)
        old = sigcache.SCHEMA_VERSION
        try:
            sigcache.SCHEMA_VERSION = old + 1
            after = cache.key_for(
                small_jacobi, 4, bw_machine.hierarchy, settings
            )
        finally:
            sigcache.SCHEMA_VERSION = old
        assert SCHEMA_VERSION == old
        assert before != after
