"""Checkpoint/resume: a killed sweep picks up where it stopped.

The contract (DESIGN.md §7.5): the journal is bookkeeping, the cache is
data.  A unit is committed (flush+fsync) only after its signature is
cached; on ``--resume`` only journaled units whose cache entry is still
readable are skipped, so resume can never change results — it only
avoids redoing finished work.
"""

import json

import numpy as np
import pytest

from repro.exec import faults
from repro.exec.faults import FaultPlan, FaultSpec
from repro.exec.resilience import ResilienceConfig, RunReport
from repro.exec.sigcache import SignatureCache
from repro.pipeline.collect import CollectionSettings, collect_signatures
from repro.pipeline.journal import (
    RunJournal,
    default_journal_path,
    make_journal,
    unit_key,
)
from repro.util.errors import TaskCrashError

from tests.conftest import FAST_COLLECTOR

COUNTS = [4, 8, 16]


def _settings():
    return CollectionSettings(
        collector=FAST_COLLECTOR, workers=0,
        resilience=ResilienceConfig(
            max_retries=1, backoff_base_s=0.001, backoff_max_s=0.01
        ),
    )


def _assert_signatures_equal(got, expected):
    for g, e in zip(got, expected):
        assert g.app == e.app and g.n_ranks == e.n_ranks
        assert g.compute_times == e.compute_times
        gt, et = g.slowest_trace(), e.slowest_trace()
        assert gt.rank == et.rank
        assert sorted(gt.blocks) == sorted(et.blocks)
        for block_id, gb in gt.blocks.items():
            eb = et.blocks[block_id]
            for gi, ei in zip(gb.instructions, eb.instructions):
                np.testing.assert_array_equal(gi.features, ei.features)


class TestRunJournal:
    def test_mark_and_done(self, tmp_path):
        with RunJournal(tmp_path / "run.jsonl") as journal:
            assert not journal.done("u1")
            journal.mark("u1", n_ranks=8)
            assert journal.done("u1")
            assert journal.stats.marked == 1

    def test_resume_skips_and_counts(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.mark_many(["u1", "u2"])
        with RunJournal(path, resume=True) as journal:
            assert journal.skip("u1") and journal.skip("u2")
            assert not journal.skip("u3")
            assert journal.stats.resumed == 2
            journal.mark("u3")
        assert RunJournal(path, resume=True).completed == {"u1", "u2", "u3"}

    def test_fresh_run_truncates_stale_journal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.mark("stale")
        with RunJournal(path, resume=False) as journal:
            assert not journal.done("stale")

    def test_torn_tail_line_ignored(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.mark("u1")
        # simulate a writer killed mid-write: append half a record
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"unit": "u2"')
        with RunJournal(path, resume=True) as journal:
            assert journal.done("u1")
            assert not journal.done("u2")  # never committed -> redone
            journal.mark("u2")  # and the journal keeps working

    def test_torn_tail_recovery_at_every_byte_offset(self, tmp_path):
        """Property: truncate the journal at *every* byte offset inside
        the final record.  Recovery must never lose a committed unit and
        never trust the torn one — the crash model behind the DAG state
        store ("readable after a kill at any instant")."""
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.mark("u1", n_ranks=4)
            journal.mark("u2", n_ranks=8)
            journal.mark("u3", n_ranks=16, note="final record")
        data = path.read_bytes()
        prefix = data[: data.rindex(b'{"meta"')]  # bytes before record 3
        for cut in range(len(prefix), len(data) + 1):
            path.write_bytes(data[:cut])
            # a tail is committed only when its JSON made it out whole
            # (the final newline is decoration, not part of the record)
            try:
                committed = json.loads(data[len(prefix):cut])["unit"] == "u3"
            except ValueError:
                committed = False
            with RunJournal(path, resume=True) as journal:
                # committed units always survive, with their metadata
                assert journal.done("u1") and journal.done("u2")
                assert journal.meta("u1") == {"n_ranks": 4}
                assert journal.meta("u2") == {"n_ranks": 8}
                # the torn record is trusted only when byte-complete,
                # and then only with its full metadata
                assert journal.done("u3") == committed
                if committed:
                    assert journal.meta("u3") == {
                        "n_ranks": 16, "note": "final record"
                    }
                # and the journal keeps accepting appends afterwards
                journal.mark("u4")
                assert journal.done("u4")
        # sanity on the property itself: both verdicts were exercised
        assert len(prefix) < len(data) - 1

    def test_amend_last_record_wins(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.amend("n1", status="failed", error="boom")
            assert journal.meta("n1") == {"status": "failed", "error": "boom"}
            journal.amend("n1", status="done", sha256="abc")
            assert journal.stats.amended == 2
        # append-only on disk: both records present, latest wins on load
        assert len(path.read_text().splitlines()) == 2
        with RunJournal(path, resume=True) as journal:
            assert journal.meta("n1") == {"status": "done", "sha256": "abc"}
            assert journal.metas() == {"n1": {"status": "done", "sha256": "abc"}}

    def test_refresh_folds_in_other_writers(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as mine:
            mine.mark("u1")
            with RunJournal(path, resume=True) as other:
                other.mark("u2", via="other")
            assert not mine.done("u2")
            mine.refresh()
            assert mine.done("u2")
            assert mine.meta("u2") == {"via": "other"}

    def test_remark_is_idempotent(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.mark("u1")
            journal.mark("u1")
            assert journal.stats.marked == 1
        assert len(path.read_text().splitlines()) == 1

    def test_default_path_sanitizes_run_name(self, tmp_path):
        path = default_journal_path(tmp_path, "table1 jacobi 4,8/16")
        assert path.parent == tmp_path
        assert "/" not in path.name.replace(".jsonl", "")
        assert path.name.endswith(".jsonl")

    def test_make_journal_optional(self, tmp_path):
        assert make_journal(None, "x") is None
        journal = make_journal(tmp_path, "x", resume=True)
        assert journal is not None and journal.path.parent == tmp_path
        journal.close()


class TestCollectionResume:
    def _run(self, small_jacobi, bw_spec, cache, journal, report=None):
        return collect_signatures(
            small_jacobi, COUNTS, bw_spec.hierarchy, _settings(),
            cache=cache, journal=journal,
            report=report if report is not None else RunReport(),
        )

    def test_killed_run_resumes_only_unfinished_units(
        self, tmp_path, small_jacobi, bw_spec
    ):
        # reference: clean uncached run
        clean = self._run(small_jacobi, bw_spec, None, None)

        journal_path = tmp_path / "ckpt" / "run.jsonl"
        hier = bw_spec.hierarchy.name

        # --- run 1 "dies" on the third unit: the crash fault fires on
        # every attempt, so retries exhaust and the run aborts with the
        # first two units committed
        cache1 = SignatureCache(tmp_path / "cache")
        plan = FaultPlan(
            specs=(FaultSpec(key="collect:jacobi:16", kind="crash",
                             attempts=(1, 2, 3)),)
        )
        with RunJournal(journal_path) as journal:
            with faults.injected(plan):
                with pytest.raises(TaskCrashError):
                    self._run(small_jacobi, bw_spec, cache1, journal)
            assert journal.completed == {
                unit_key("collect", "jacobi", hier, 4),
                unit_key("collect", "jacobi", hier, 8),
            }
        assert cache1.stats.stores == 2

        # --- run 2 resumes: only count 16 is re-collected
        cache2 = SignatureCache(tmp_path / "cache")
        report = RunReport()
        with RunJournal(journal_path, resume=True) as journal:
            resumed = self._run(small_jacobi, bw_spec, cache2, journal, report)
            assert journal.stats.resumed == 2  # units served by the cache
            assert journal.stats.marked == 1  # only the unfinished one
        assert cache2.stats.hits == 2
        assert cache2.stats.stores == 1
        assert report.clean  # no faults this time

        # resume changed nothing about the results
        _assert_signatures_equal(resumed, clean)

    def test_journaled_unit_with_lost_cache_entry_is_recollected(
        self, tmp_path, small_jacobi, bw_spec
    ):
        journal_path = tmp_path / "ckpt" / "run.jsonl"
        cache1 = SignatureCache(tmp_path / "cache")
        with RunJournal(journal_path) as journal:
            clean = self._run(small_jacobi, bw_spec, cache1, journal)

        # the cache entry for count 8 vanishes (cleared cache, pruned
        # file, quarantined entry...) while the journal still lists it
        key8 = cache1.key_for(
            small_jacobi, 8, bw_spec.hierarchy, _settings()
        )
        (cache1.root / f"{key8}.pkl").unlink()

        cache2 = SignatureCache(tmp_path / "cache")
        with RunJournal(journal_path, resume=True) as journal:
            resumed = self._run(small_jacobi, bw_spec, cache2, journal)
            # journal said "done", cache said "gone" -> recollect
            assert journal.stats.resumed == 2
            assert cache2.stats.stores == 1
        _assert_signatures_equal(resumed, clean)

    def test_journal_lines_carry_unit_names(self, tmp_path, small_jacobi, bw_spec):
        journal_path = tmp_path / "ckpt" / "run.jsonl"
        cache = SignatureCache(tmp_path / "cache")
        with RunJournal(journal_path) as journal:
            self._run(small_jacobi, bw_spec, cache, journal)
        units = [
            json.loads(line)["unit"]
            for line in journal_path.read_text().splitlines()
        ]
        hier = bw_spec.hierarchy.name
        assert units == [
            unit_key("collect", "jacobi", hier, c) for c in COUNTS
        ]
