"""Integration tests: observability threaded through the pipeline.

Worker->parent span propagation under a real process pool, metrics
mirroring from the legacy tallies (``CacheStats``/``RunReport``/
``JournalStats``), run-manifest digest stability, and the determinism
contract: enabling observability changes no numeric output.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.exec.pool import run_tasks
from repro.exec.resilience import (
    ResilienceConfig,
    RunReport,
    run_tasks_resilient,
)
from repro.exec.sigcache import ENTRY_MAGIC, SignatureCache
from repro.obs import manifest as obs_manifest
from repro.obs import trace as obs_trace
from repro.obs.metrics import REGISTRY
from repro.pipeline.collect import CollectionSettings, collect_signature
from repro.pipeline.journal import RunJournal
from tests.conftest import FAST_COLLECTOR
from tests.schema_utils import assert_valid

SCHEMA_DIR = Path(__file__).parent / "schemas"
MANIFEST_SCHEMA = json.loads((SCHEMA_DIR / "manifest.schema.json").read_text())


@pytest.fixture(autouse=True)
def _obs_isolation(monkeypatch):
    monkeypatch.delenv(obs_trace.ENV_TRACE, raising=False)
    obs_trace.disable()
    REGISTRY.reset()
    yield
    obs_trace.disable()
    REGISTRY.reset()


def _spanning_square(x: int) -> int:
    """Pool task that opens a span and bumps a counter (module-level so
    it pickles into workers)."""
    with obs_trace.span("demo.square", x=x):
        REGISTRY.inc("demo.calls")
        return x * x


def _nested_resilient_sum(x: int) -> int:
    """Pool task that itself fans out resiliently — the shape of
    ``collect_signatures`` -> ``collect_signature`` inside a worker,
    where the inner fan-out degrades to serial execution."""
    results, _ = run_tasks_resilient(
        _spanning_square, [(x,), (x + 1,)],
        workers=0, config=ResilienceConfig(max_retries=0),
    )
    return sum(results)


class TestWorkerPropagation:
    def test_spans_ship_back_from_pool_workers(self):
        tracer = obs_trace.enable()
        tasks = [(i,) for i in range(6)]
        results = run_tasks(
            _spanning_square, tasks, workers=2,
            keys=[f"sq:{i}" for i in range(6)],
        )
        assert results == [i * i for i in range(6)]
        names = [e["name"] for e in tracer.events]
        assert names.count("demo.square") == 6
        assert names.count("exec.task") == 6
        # spans really came from other processes
        pids = {e["pid"] for e in tracer.events}
        assert os.getpid() not in pids
        # task keys travel as span args
        keys = {
            e["args"]["key"] for e in tracer.events
            if e["name"] == "exec.task"
        }
        assert keys == {f"sq:{i}" for i in range(6)}

    def test_metrics_ship_back_from_pool_workers(self):
        obs_trace.enable()
        run_tasks(_spanning_square, [(i,) for i in range(5)], workers=2)
        assert REGISTRY.counters["demo.calls"] == 5

    def test_serial_path_untouched_by_tracing(self):
        tracer = obs_trace.enable()
        results = run_tasks(_spanning_square, [(2,), (3,)], workers=0)
        assert results == [4, 9]
        # serial spans land directly, with the calling process's pid
        assert {e["pid"] for e in tracer.events} == {os.getpid()}

    def test_nested_resilient_fanout_ships_plain_values(self):
        # regression: a resilient fan-out running serially *inside* a
        # traced pool worker must not leak TaskEnvelopes into results
        tracer = obs_trace.enable()
        results, report = run_tasks_resilient(
            _nested_resilient_sum, [(1,), (3,)],
            workers=2, config=ResilienceConfig(max_retries=0),
        )
        assert results == [1 + 4, 9 + 16]
        assert report.clean
        names = [e["name"] for e in tracer.events]
        assert names.count("demo.square") == 4  # inner spans still arrive
        assert REGISTRY.counters["demo.calls"] == 4

    def test_tracing_off_pool_results_identical(self):
        on = None
        try:
            obs_trace.enable()
            on = run_tasks(_spanning_square, [(i,) for i in range(4)], workers=2)
        finally:
            obs_trace.disable()
        off = run_tasks(_spanning_square, [(i,) for i in range(4)], workers=2)
        assert on == off


class TestMetricsMirroring:
    def test_cache_stats_equal_registry(self, tmp_path):
        cache = SignatureCache(tmp_path / "cache")
        key = "0" * 64
        assert cache.get(key) is None  # miss
        cache.put(key, {"payload": 1})  # store
        assert cache.get(key) == {"payload": 1}  # hit
        # corrupt the entry -> quarantine -> counted miss
        path = cache._path(key)
        path.write_bytes(ENTRY_MAGIC + b"f" * 64 + b"\n" + b"garbage")
        assert cache.get(key) is None
        expected = cache.stats.to_dict()
        assert expected == {
            "hits": 1, "misses": 2, "stores": 1,
            "uncacheable": 0, "corrupt": 1,
        }
        mirrored = {
            name.split(".", 1)[1]: value
            for name, value in REGISTRY.counters.items()
            if name.startswith("cache.")
        }
        assert {k: v for k, v in expected.items() if v} == mirrored

    def test_run_report_equal_registry(self):
        report = RunReport()
        report.bump("retries", 2)
        report.bump("timeouts")
        doc = report.to_dict()
        assert doc["retries"] == 2 and doc["timeouts"] == 1
        assert REGISTRY.counters["resilience.retries"] == 2
        assert REGISTRY.counters["resilience.timeouts"] == 1
        # to_dict round-trips through JSON with every counter intact
        reloaded = json.loads(json.dumps(doc))
        assert reloaded == doc
        # the text summary and the dict view agree on every counter
        summary = report.summary()
        assert "retries=2" in summary and "timeouts=1" in summary

    def test_journal_stats_equal_registry(self, tmp_path):
        with RunJournal(tmp_path / "j.jsonl") as journal:
            journal.mark("unit:a")
            journal.mark("unit:b")
        with RunJournal(tmp_path / "j.jsonl", resume=True) as journal:
            assert journal.skip("unit:a")
            journal.mark("unit:c")
            doc = journal.stats.to_dict()
        assert doc == {"resumed": 1, "marked": 1, "amended": 0}
        assert REGISTRY.counters["journal.marked"] == 3
        assert REGISTRY.counters["journal.resumed"] == 1


class TestManifest:
    def test_npz_digest_stable_across_saves(self, tmp_path):
        arrays = {"a": np.arange(10.0), "b": np.ones((3, 3))}
        p1, p2 = tmp_path / "one.npz", tmp_path / "two.npz"
        np.savez_compressed(p1, **arrays)
        np.savez_compressed(p2, **arrays)
        assert obs_manifest.digest_file(p1) == obs_manifest.digest_file(p2)
        # content changes change the digest
        arrays["a"] = arrays["a"] + 1
        p3 = tmp_path / "three.npz"
        np.savez_compressed(p3, **arrays)
        assert obs_manifest.digest_file(p3) != obs_manifest.digest_file(p1)

    def test_build_manifest_schema_and_digests(self, tmp_path):
        out = tmp_path / "artifact.bin"
        out.write_bytes(b"hello world")
        cache = SignatureCache(tmp_path / "cache")
        report = RunReport()
        tracer = obs_trace.enable()
        with obs_trace.span("fit.series"):
            pass
        doc = obs_manifest.build_manifest(
            command="table1",
            config={"target": 32, "forms": ("a", "b")},
            outputs={"artifact.bin": out, "table.txt": b"rendered\n"},
            app="jacobi",
            machine="blue_waters_p1",
            cache=cache,
            report=report,
            tracer=tracer,
        )
        assert_valid(doc, MANIFEST_SCHEMA, "manifest")
        digests = obs_manifest.output_digests(doc)
        assert digests["artifact.bin"] == obs_manifest.digest_bytes(
            b"hello world"
        )
        assert doc["outputs"]["table.txt"]["bytes"] == 9
        assert doc["stage_durations"]["fit.series"]["count"] == 1
        path = obs_manifest.write_manifest(tmp_path / "m.json", doc)
        assert json.loads(path.read_text()) == doc

    def test_git_sha_present_in_repo(self):
        sha = obs_manifest.git_sha()
        assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))


class TestDeterminism:
    def test_observability_changes_no_numeric_output(self, small_jacobi, bw_machine):
        settings = CollectionSettings(
            ranks="slowest", collector=FAST_COLLECTOR, workers=0
        )
        plain = collect_signature(
            small_jacobi, 4, bw_machine.hierarchy, settings
        )
        obs_trace.enable()
        tracer = obs_trace.current()
        traced = collect_signature(
            small_jacobi, 4, bw_machine.hierarchy, settings
        )
        assert tracer.events, "tracing was on but recorded nothing"
        assert plain.compute_times == traced.compute_times
        a = plain.slowest_trace()
        b = traced.slowest_trace()
        for bid in a.blocks:
            for ia, ib in zip(
                a.blocks[bid].instructions, b.blocks[bid].instructions
            ):
                np.testing.assert_array_equal(ia.features, ib.features)

    def test_no_timestamps_in_span_free_exports(self, tmp_path):
        # signature payloads digested for the manifest must not absorb
        # wall-clock state: same trace saved twice -> same digest
        obs_trace.enable()
        from repro.trace.features import FeatureSchema
        from repro.trace.records import (
            BasicBlockRecord,
            InstructionRecord,
            SourceLocation,
        )
        from repro.trace.tracefile import TraceFile

        schema = FeatureSchema(["L1"])
        trace = TraceFile(app="x", rank=0, n_ranks=2, target="t", schema=schema)
        block = BasicBlockRecord(block_id=0, location=SourceLocation(function="f"))
        block.instructions.append(
            InstructionRecord(
                instr_id=0, kind="load",
                features=np.zeros(schema.n_features),
            )
        )
        trace.add_block(block)
        trace.save_npz(tmp_path / "a.npz")
        trace.save_npz(tmp_path / "b.npz")
        assert obs_manifest.digest_file(
            tmp_path / "a.npz"
        ) == obs_manifest.digest_file(tmp_path / "b.npz")
