"""End-to-end tests: the ``repro dag`` CLI surface.

One real ``dag run`` over a tiny sweep backs every assertion: report
text on stdout, ``dag.*`` counters in the exported metrics, the run
manifest's ``dag`` document, ``dag status`` exit codes and rendering,
and argument validation.
"""

from __future__ import annotations

import contextlib
import io
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.metrics import REGISTRY
from tests.schema_utils import assert_valid

SCHEMA_DIR = Path(__file__).parent / "schemas"
MANIFEST_SCHEMA = json.loads((SCHEMA_DIR / "manifest.schema.json").read_text())

N_NODES = 15  #: the --train 4,8 --targets 16,32 graph, table1 included


def _spec_args(dag_root: Path) -> list:
    return [
        "--app", "jacobi", "--train", "4,8", "--targets", "16,32",
        "--accesses-per-probe", "2000", "--sample-accesses", "20000",
        "--max-sample-accesses", "200000", "--code-version", "test",
        "--dag-root", str(dag_root),
    ]


def _run(argv: list) -> tuple:
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        rc = main(argv)
    return rc, out.getvalue()


@pytest.fixture(scope="module")
def cold_cli_run(tmp_path_factory):
    """One cold ``dag run`` shared by every assertion below."""
    base = tmp_path_factory.mktemp("cli-dag")
    dag_root = base / "dagroot"
    run_dir = base / "run1"
    run_dir.mkdir()
    rc, stdout = _run([
        "dag", "run", *_spec_args(dag_root), "--workers", "0",
        "--metrics-out", str(run_dir / "metrics.json"),
        "--manifest-out", str(run_dir / "manifest.json"),
    ])
    return dag_root, run_dir, rc, stdout


class TestDagRun:
    def test_exit_code_and_report_text(self, cold_cli_run):
        _root, _run_dir, rc, stdout = cold_cli_run
        assert rc == 0
        assert "Extrap." in stdout and "Coll." in stdout  # Table I
        assert "What-if sweep" in stdout

    def test_metrics_carry_exact_dag_tallies(self, cold_cli_run):
        _root, run_dir, _rc, _stdout = cold_cli_run
        doc = json.loads((run_dir / "metrics.json").read_text())
        counters = doc["counters"]
        assert counters["dag.executed"] == N_NODES
        assert doc["gauges"]["dag.nodes_total"] == N_NODES
        for name in ("dag.failed", "dag.poisoned", "dag.quarantined",
                     "dag.lock_takeovers", "dag.node_crashes"):
            assert counters.get(name, 0) == 0

    def test_manifest_records_the_dag_document(self, cold_cli_run):
        _root, run_dir, _rc, _stdout = cold_cli_run
        doc = json.loads((run_dir / "manifest.json").read_text())
        assert_valid(doc, MANIFEST_SCHEMA, "manifest")
        assert doc["command"] == "dag-run"
        dag = doc["dag"]
        assert dag["spec"]["app"] == "jacobi"
        assert len(dag["statuses"]) == N_NODES
        assert set(dag["statuses"].values()) == {"executed"}
        assert dag["stats"]["executed"] == N_NODES
        assert dag["errors"] == {}
        # report artifacts are digested into the manifest outputs
        assert {"table1.txt", "whatif.txt"} <= set(doc["outputs"])

    def test_warm_rerun_is_a_noop_and_still_prints(self, cold_cli_run, tmp_path):
        root, _run_dir, _rc, _stdout = cold_cli_run
        REGISTRY.reset()
        rc, stdout = _run([
            "dag", "run", *_spec_args(root), "--workers", "0",
            "--metrics-out", str(tmp_path / "metrics.json"),
        ])
        assert rc == 0
        assert "What-if sweep" in stdout  # clean reports still rendered
        doc = json.loads((tmp_path / "metrics.json").read_text())
        assert doc["counters"].get("dag.executed", 0) == 0
        assert doc["counters"]["dag.clean"] == N_NODES


class TestDagStatus:
    def test_dirty_graph_exits_nonzero(self, tmp_path):
        rc, stdout = _run([
            "dag", "status", *_spec_args(tmp_path / "never-run"),
        ])
        assert rc == 1
        assert "stale" in stdout and "blocked" in stdout

    def test_clean_graph_exits_zero(self, cold_cli_run):
        root, _run_dir, _rc, _stdout = cold_cli_run
        rc, stdout = _run(["dag", "status", *_spec_args(root)])
        assert rc == 0
        assert stdout.count("clean") == N_NODES
        assert "Reason" not in stdout

    def test_explain_adds_reasons(self, cold_cli_run):
        root, _run_dir, _rc, _stdout = cold_cli_run
        rc, stdout = _run([
            "dag", "status", *_spec_args(root), "--explain",
        ])
        assert rc == 0
        assert "Reason" in stdout
        assert "artifact matches committed digest" in stdout

    def test_json_document(self, cold_cli_run):
        root, _run_dir, _rc, _stdout = cold_cli_run
        rc, stdout = _run([
            "dag", "status", *_spec_args(root), "--json",
        ])
        assert rc == 0
        doc = json.loads(stdout)
        assert len(doc) == N_NODES
        assert all(s["state"] == "clean" for s in doc)
        assert all(len(s["key"]) == 64 for s in doc)

    def test_config_change_shows_the_dirty_cone(self, cold_cli_run):
        root, _run_dir, _rc, _stdout = cold_cli_run
        rc, stdout = _run([
            "dag", "status", *_spec_args(root),
            "--rate-trust-factor", "9.0", "--json",
        ])
        assert rc == 1
        states = {s["name"]: s["state"] for s in json.loads(stdout)}
        assert states["collect:4"] == "clean"
        assert states["fit"] == "clean"
        assert states["extrapolate:16"] == "stale"
        assert states["convolve:extrap:16"] == "blocked"


class TestDagUsageErrors:
    @pytest.mark.parametrize("argv", [
        ["dag", "run", "--app", "jacobi", "--train", "4,8",
         "--targets", "16", "--fresh", "--resume"],
        ["dag", "run", "--app", "jacobi", "--train", "4",
         "--targets", "16"],
        ["dag", "run", "--app", "no-such-app", "--train", "4,8",
         "--targets", "16"],
        ["dag", "status", "--app", "jacobi", "--train", "4,8",
         "--targets", "16", "--machine", "no-such-machine"],
    ])
    def test_bad_arguments_exit_2(self, argv, tmp_path):
        with contextlib.redirect_stdout(io.StringIO()):
            rc = main(argv + ["--dag-root", str(tmp_path / "root")])
        assert rc == 2
