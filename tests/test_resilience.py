"""The fault-tolerant executor: every recovery path, exercised.

Injected faults (crash, hang, transient, cache corruption) drive
retries, pool restarts, timeouts, and serial fallback; the acceptance
property throughout is that recovery is *invisible in the results* —
a faulty run returns bit-identical values to a fault-free serial run,
with only the RunReport differing.
"""

import time

import pytest

from repro.exec import faults
from repro.exec.faults import FaultPlan, FaultSpec
from repro.exec.resilience import (
    ResilienceConfig,
    RunReport,
    backoff_s,
    run_tasks_resilient,
)
from repro.util.errors import (
    TaskCrashError,
    TaskTimeoutError,
    TransientTaskError,
)

from tests.conftest import FAST_COLLECTOR

FAST = ResilienceConfig(backoff_base_s=0.001, backoff_max_s=0.01)


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"deterministic failure {x}")


class TestSerialResilient:
    def test_plain_results_match_run_tasks(self):
        tasks = [(i,) for i in range(6)]
        results, report = run_tasks_resilient(
            _square, tasks, workers=0, config=FAST
        )
        assert results == [i * i for i in range(6)]
        assert report.clean

    def test_transient_fault_retried_deterministically(self):
        plan = FaultPlan(
            specs=(FaultSpec(key="t2", kind="raise", attempts=(1, 2)),)
        )
        keys = [f"t{i}" for i in range(4)]
        with faults.injected(plan):
            results, report = run_tasks_resilient(
                _square, [(i,) for i in range(4)], keys=keys,
                workers=0, config=FAST,
            )
        assert results == [0, 1, 4, 9]
        assert report.transient_errors == 2
        assert report.retries == 2
        assert not report.clean

    def test_transient_fault_exhausts_retries(self):
        plan = FaultPlan(
            specs=(FaultSpec(key="t1", kind="raise", attempts=(1, 2, 3, 4)),)
        )
        with faults.injected(plan):
            with pytest.raises(TransientTaskError):
                run_tasks_resilient(
                    _square, [(1,), (2,)], keys=["t1", "t2"],
                    workers=0,
                    config=ResilienceConfig(max_retries=2, backoff_base_s=0.001),
                )

    def test_serial_crash_fault_retried(self):
        plan = FaultPlan(specs=(FaultSpec(key="c0", kind="crash"),))
        with faults.injected(plan):
            results, report = run_tasks_resilient(
                _square, [(3,)], keys=["c0"], workers=0, config=FAST
            )
        assert results == [9]
        assert report.crashes == 1

    def test_deterministic_error_propagates_immediately(self):
        report = RunReport()
        with pytest.raises(ValueError, match="deterministic failure"):
            run_tasks_resilient(
                _boom, [(1,)], workers=0, config=FAST, report=report
            )
        assert report.retries == 0  # pure errors are never retried

    def test_on_result_called_per_task(self):
        seen = {}
        run_tasks_resilient(
            _square, [(i,) for i in range(3)], workers=0, config=FAST,
            on_result=lambda i, v: seen.__setitem__(i, v),
        )
        assert seen == {0: 0, 1: 1, 2: 4}


class TestBackoff:
    def test_backoff_is_deterministic_and_bounded(self):
        cfg = ResilienceConfig(backoff_base_s=0.1, backoff_max_s=0.5)
        a = backoff_s("collect:jacobi:8", 3, cfg)
        b = backoff_s("collect:jacobi:8", 3, cfg)
        assert a == b  # keyed RNG: identical runs back off identically
        assert 0.0 < a <= 0.4  # ceiling 0.1 * 2**2 = 0.4
        # different keys / attempts draw independently
        assert backoff_s("collect:jacobi:16", 3, cfg) != a
        assert backoff_s("collect:jacobi:8", 2, cfg) != a

    def test_backoff_ceiling_capped(self):
        cfg = ResilienceConfig(backoff_base_s=0.1, backoff_max_s=0.15)
        assert backoff_s("k", 10, cfg) <= 0.15


class TestPooledResilient:
    def test_worker_crash_recovered_by_pool_restart(self):
        plan = FaultPlan(specs=(FaultSpec(key="p1", kind="crash"),))
        keys = [f"p{i}" for i in range(4)]
        with faults.injected(plan):
            results, report = run_tasks_resilient(
                _square, [(i,) for i in range(4)], keys=keys,
                workers=2, config=FAST,
            )
        assert results == [0, 1, 4, 9]
        assert report.crashes == 1
        assert report.pool_restarts == 1
        assert report.serial_fallbacks == 0

    def test_hang_detected_by_timeout_and_retried(self):
        # attempt 1 hangs for 30s; the 0.5s budget kills the pool and
        # attempt 2 (fault exhausted) succeeds — promptly
        plan = FaultPlan(
            specs=(FaultSpec(key="h0", kind="hang", seconds=30.0),)
        )
        cfg = ResilienceConfig(
            task_timeout_s=0.5, backoff_base_s=0.001, backoff_max_s=0.01
        )
        start = time.monotonic()
        with faults.injected(plan):
            results, report = run_tasks_resilient(
                _square, [(5,), (6,)], keys=["h0", "h1"],
                workers=2, config=cfg,
            )
        elapsed = time.monotonic() - start
        assert results == [25, 36]
        assert report.timeouts == 1
        assert report.pool_restarts >= 1
        assert elapsed < 15.0  # nowhere near the 30s hang

    def test_timeout_exhaustion_raises_taxonomy_error(self):
        plan = FaultPlan(
            specs=(FaultSpec(key="h0", kind="hang", seconds=30.0,
                             attempts=(1, 2)),)
        )
        cfg = ResilienceConfig(
            task_timeout_s=0.3, max_retries=1,
            backoff_base_s=0.001, pool_restart_limit=99,
        )
        with faults.injected(plan):
            with pytest.raises(TaskTimeoutError, match="h0"):
                run_tasks_resilient(
                    _square, [(5,), (6,)], keys=["h0", "h1"],
                    workers=2, config=cfg,
                )

    def test_repeated_pool_failure_degrades_to_serial(self):
        # task s0 crashes its worker on attempts 1 and 2 -> two broken
        # pools -> restart limit 1 exceeded -> remaining tasks run
        # serially in-process (where the crash fault no longer fires)
        plan = FaultPlan(
            specs=(FaultSpec(key="s0", kind="crash", attempts=(1, 2)),)
        )
        cfg = ResilienceConfig(
            max_retries=5, pool_restart_limit=1,
            backoff_base_s=0.001, backoff_max_s=0.01,
        )
        with faults.injected(plan):
            results, report = run_tasks_resilient(
                _square, [(i,) for i in range(3)],
                keys=[f"s{i}" for i in range(3)],
                workers=2, config=cfg,
            )
        assert results == [0, 1, 4]
        assert report.serial_fallbacks == 1
        assert report.pool_restarts == 2
        assert report.crashes >= 2

    def test_crash_exhaustion_raises_task_crash_error(self):
        plan = FaultPlan(
            specs=(FaultSpec(key="s0", kind="crash",
                             attempts=(1, 2, 3, 4, 5, 6)),)
        )
        cfg = ResilienceConfig(
            max_retries=1, pool_restart_limit=99, backoff_base_s=0.001
        )
        with faults.injected(plan):
            with pytest.raises(TaskCrashError):
                run_tasks_resilient(
                    _square, [(1,), (2,)], keys=["s0", "s1"],
                    workers=2, config=cfg,
                )

    def test_faulty_run_bit_identical_to_clean_serial(self):
        tasks = [(i,) for i in range(8)]
        keys = [f"b{i}" for i in range(8)]
        clean, _ = run_tasks_resilient(
            _square, tasks, keys=keys, workers=0, config=FAST
        )
        plan = FaultPlan(
            specs=(
                FaultSpec(key="b2", kind="crash"),
                FaultSpec(key="b5", kind="raise"),
            )
        )
        with faults.injected(plan):
            faulty, report = run_tasks_resilient(
                _square, tasks, keys=keys, workers=3, config=FAST
            )
        assert faulty == clean
        assert report.crashes == 1
        assert report.transient_errors == 1

    def test_key_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="pair up"):
            run_tasks_resilient(_square, [(1,), (2,)], keys=["only-one"])


class TestFaultInjectedTable1:
    """Acceptance: a full Table I row under an injected fault plan —
    one worker crash, one transient exception, one corrupted cache
    entry — completes bit-identical to a fault-free serial run, and the
    RunReport records exactly the injected faults."""

    TRAIN = (4, 8)
    TARGET = 16

    def _config(self, cache, workers, resilience=None):
        from repro.pipeline.collect import CollectionSettings
        from repro.pipeline.experiment import Table1Config

        return Table1Config(
            collection=CollectionSettings(
                collector=FAST_COLLECTOR, workers=workers,
                resilience=resilience,
            ),
            cache=cache,
            accesses_per_probe=20_000,
        )

    def test_table1_under_faults_matches_clean_serial(
        self, tmp_path, small_jacobi
    ):
        from repro.exec.sigcache import SignatureCache
        from repro.pipeline.experiment import run_table1

        # --- reference: fault-free, serial, uncached
        clean = run_table1(
            small_jacobi, self.TRAIN, self.TARGET, self._config(None, 0)
        )

        # --- pre-corrupt the cache entry for the count-8 unit so the
        # run discovers, quarantines, and recollects it
        cache = SignatureCache(tmp_path / "cache")
        cfg = self._config(
            cache, workers=2,
            resilience=ResilienceConfig(
                backoff_base_s=0.001, backoff_max_s=0.01, max_retries=3
            ),
        )
        key8 = cache.key_for(
            small_jacobi, 8, _bw_hierarchy(), cfg.collection
        )
        cache.root.mkdir(parents=True, exist_ok=True)
        (cache.root / f"{key8}.pkl").write_bytes(b"torn entry \x00\x01")

        plan = FaultPlan(
            specs=(
                FaultSpec(key="collect:jacobi:4", kind="crash"),
                FaultSpec(key="collect:jacobi:16", kind="raise"),
            )
        )
        with faults.injected(plan):
            faulty = run_table1(small_jacobi, self.TRAIN, self.TARGET, cfg)

        # bit-identical rows despite one crash, one transient error,
        # and one corrupt cache entry
        for clean_row, faulty_row in zip(clean.rows, faulty.rows):
            assert faulty_row.predicted_runtime_s == clean_row.predicted_runtime_s
            assert faulty_row.measured_runtime_s == clean_row.measured_runtime_s

        report = faulty.run_report
        assert report.crashes == 1
        assert report.transient_errors == 1
        assert report.timeouts == 0
        assert report.cache_corruptions == 1
        assert report.quarantined == [key8]
        assert cache.stats.corrupt == 1
        # the corrupt entry was preserved for post-mortem, not deleted
        assert (cache.quarantine_root / f"{key8}.pkl").exists()


def _bw_hierarchy():
    from repro.machine.systems import get_spec

    return get_spec("blue_waters_p1").hierarchy
