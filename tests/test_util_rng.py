"""Unit tests: deterministic RNG streams."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.rng import DEFAULT_ROOT_SEED, RngStream, derive_seed, stream


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed("a", 1, 2.5) == derive_seed("a", 1, 2.5)

    def test_path_sensitivity(self):
        assert derive_seed("a", "b") != derive_seed("ab")
        assert derive_seed("a", "b") != derive_seed("b", "a")

    def test_element_types_distinguished(self):
        # int 1 vs float 1.0 vs string "1" must hash differently
        seeds = {derive_seed(1), derive_seed(1.0), derive_seed("1")}
        assert len(seeds) == 3

    def test_bool_not_conflated_with_int(self):
        assert derive_seed(True) != derive_seed(1)

    def test_root_seed_changes_everything(self):
        assert derive_seed("x", root=1) != derive_seed("x", root=2)

    def test_bytes_payload(self):
        assert derive_seed(b"abc") == derive_seed(b"abc")
        assert derive_seed(b"abc") != derive_seed("abc")

    def test_rejects_unsupported_type(self):
        with pytest.raises(TypeError):
            derive_seed(object())

    def test_range(self):
        s = derive_seed("anything")
        assert 0 <= s < 2**64

    @given(st.lists(st.integers(-(2**60), 2**60), min_size=1, max_size=5))
    def test_concatenation_not_ambiguous(self, path):
        # path [a, b] must differ from [a] with b appended differently
        s1 = derive_seed(*path)
        s2 = derive_seed(*path, 0)
        assert s1 != s2


class TestRngStream:
    def test_same_path_same_stream(self):
        a = stream("x", 1).random(10)
        b = stream("x", 1).random(10)
        np.testing.assert_array_equal(a, b)

    def test_different_paths_differ(self):
        a = stream("x", 1).random(10)
        b = stream("x", 2).random(10)
        assert not np.array_equal(a, b)

    def test_child_path_composes(self):
        direct = stream("a", "b", "c").random(5)
        via_child = stream("a").child("b", "c").random(5)
        np.testing.assert_array_equal(direct, via_child)

    def test_child_independent_of_parent_state(self):
        parent = stream("p")
        parent.random(1000)  # consume parent state
        child_after = parent.child("k").random(5)
        fresh_child = stream("p").child("k").random(5)
        np.testing.assert_array_equal(child_after, fresh_child)

    def test_integers_dtype_and_range(self):
        vals = stream("i").integers(0, 10, size=1000)
        assert vals.dtype == np.int64
        assert vals.min() >= 0 and vals.max() < 10

    def test_path_recorded(self):
        s = stream("a", 3)
        assert s.path == ("a", 3)
