"""Unit tests: Eq. 1 convolution and the ground-truth simulator."""

import numpy as np
import pytest

from repro.cache.configs import blue_waters_p1
from repro.instrument.builder import ProgramBuilder
from repro.machine.systems import get_spec
from repro.memstream.patterns import RandomPattern, StridedPattern
from repro.psins.convolution import (
    ComputationModel,
    ConvolutionConfig,
    combine_with_overlap,
)
from repro.psins.ground_truth import (
    GroundTruthConfig,
    GroundTruthTimer,
    _pattern_randomness,
    measure_job,
)
from repro.psins.replay import replay_job, UniformTimer
from repro.simmpi.runtime import run_job
from repro.trace.features import FeatureSchema
from repro.trace.records import BasicBlockRecord, InstructionRecord, SourceLocation
from repro.trace.tracefile import TraceFile
from repro.util.units import KB, MB


def make_trace(machine, mem_ops=1000.0, exec_count=100.0, hit=(1.0, 1.0, 1.0),
               fp=0.0, ilp=2.0):
    schema = FeatureSchema(machine.hierarchy.level_names)
    trace = TraceFile(
        app="t", rank=0, n_ranks=4, target=machine.hierarchy.name, schema=schema
    )
    block = BasicBlockRecord(block_id=0, location=SourceLocation(function="f"))
    vec = schema.vector_from_dict(
        {
            "exec_count": exec_count,
            "mem_ops": mem_ops,
            "loads": mem_ops,
            "ref_bytes": 8.0,
            "working_set_bytes": 4096.0,
            "fp_add": fp,
            "ilp": ilp,
            "hit_rate_L1": hit[0],
            "hit_rate_L2": hit[1],
            "hit_rate_L3": hit[2],
        }
    )
    block.instructions.append(InstructionRecord(instr_id=0, kind="load", features=vec))
    trace.add_block(block)
    return trace


class TestOverlap:
    def test_full_overlap_hides_smaller(self):
        assert combine_with_overlap(10.0, 4.0, 1.0) == 10.0

    def test_no_overlap_sums(self):
        assert combine_with_overlap(10.0, 4.0, 0.0) == 14.0

    def test_symmetric(self):
        assert combine_with_overlap(4.0, 10.0, 0.5) == combine_with_overlap(
            10.0, 4.0, 0.5
        )


class TestComputationModel:
    def test_memory_time_matches_eq1(self, bw_machine):
        trace = make_trace(bw_machine, mem_ops=1_000_000, hit=(1.0, 1.0, 1.0))
        model = ComputationModel(trace, bw_machine)
        bw = float(bw_machine.memory_bandwidth_gbs(np.array([1.0, 1.0, 1.0])))
        expected_ns = 1_000_000 * 8.0 / bw
        assert model.breakdown(0).memory_time_s == pytest.approx(
            expected_ns * 1e-9, rel=1e-9
        )

    def test_lower_hit_rates_cost_more(self, bw_machine):
        fast = ComputationModel(
            make_trace(bw_machine, hit=(1.0, 1.0, 1.0)), bw_machine
        ).total_compute_time_s()
        slow = ComputationModel(
            make_trace(bw_machine, hit=(0.2, 0.4, 0.6)), bw_machine
        ).total_compute_time_s()
        assert slow > fast * 2

    def test_fp_time_and_overlap(self, bw_machine):
        trace = make_trace(bw_machine, mem_ops=0.0, fp=1e6, ilp=1.0)
        model = ComputationModel(trace, bw_machine)
        b = model.breakdown(0)
        assert b.memory_time_s == 0.0
        rate = bw_machine.fp_rates_gflops["fp_add"] * 1e9
        assert b.fp_time_s == pytest.approx(1e6 / rate)
        assert b.total_time_s == pytest.approx(b.fp_time_s)

    def test_ilp_scales_fp(self, bw_machine):
        t1 = ComputationModel(
            make_trace(bw_machine, mem_ops=0.0, fp=1e6, ilp=1.0), bw_machine
        ).total_compute_time_s()
        t4 = ComputationModel(
            make_trace(bw_machine, mem_ops=0.0, fp=1e6, ilp=4.0), bw_machine
        ).total_compute_time_s()
        assert t1 == pytest.approx(4 * t4)
        # ilp beyond max_issue_width is capped
        t8 = ComputationModel(
            make_trace(bw_machine, mem_ops=0.0, fp=1e6, ilp=8.0), bw_machine
        ).total_compute_time_s()
        assert t8 == pytest.approx(t4)

    def test_iteration_time(self, bw_machine):
        trace = make_trace(bw_machine, exec_count=100.0)
        model = ComputationModel(trace, bw_machine)
        assert model.iteration_time_s(0) == pytest.approx(
            model.breakdown(0).total_time_s / 100.0
        )

    def test_target_mismatch_rejected(self, bw_machine):
        trace = make_trace(bw_machine)
        trace.target = "other-machine"
        with pytest.raises(ValueError):
            ComputationModel(trace, bw_machine)

    def test_unknown_block(self, bw_machine):
        model = ComputationModel(make_trace(bw_machine), bw_machine)
        with pytest.raises(KeyError):
            model.breakdown(13)

    def test_memory_fraction(self, bw_machine):
        model = ComputationModel(make_trace(bw_machine, fp=10.0), bw_machine)
        assert 0.0 < model.memory_fraction() <= 1.0

    def test_overlap_config(self, bw_machine):
        trace = make_trace(bw_machine, mem_ops=1e6, fp=1e6, ilp=1.0)
        t_none = ComputationModel(
            trace, bw_machine, ConvolutionConfig(overlap=0.0)
        ).total_compute_time_s()
        t_full = ComputationModel(
            trace, bw_machine, ConvolutionConfig(overlap=1.0)
        ).total_compute_time_s()
        assert t_none > t_full


class TestGroundTruth:
    def make_program(self, exec_count=2000):
        return (
            ProgramBuilder("gt")
            .block("hot", block_id=0)
            .load(StridedPattern(region_bytes=8 * KB), per_iteration=4)
            .fp({"fp_fma": 8}, ilp=2.0, dep_chain=4.0)
            .executes(exec_count)
            .done()
            .block("tlb-hungry", block_id=1)
            .load(RandomPattern(region_bytes=64 * MB))
            .executes(exec_count)
            .done()
            .build()
        )

    def test_iteration_times_positive(self, bw_spec):
        timer = GroundTruthTimer(
            self.make_program(), bw_spec.hierarchy, bw_spec.timing,
            GroundTruthConfig(sample_accesses=20_000),
        )
        assert timer.iteration_time_s(0) > 0
        assert timer.iteration_time_s(1) > 0

    def test_tlb_penalty_applies_to_large_random(self, bw_spec):
        cfg_on = GroundTruthConfig(sample_accesses=20_000)
        cfg_off = GroundTruthConfig(sample_accesses=20_000, tlb_miss_ns=0.0)
        t_on = GroundTruthTimer(
            self.make_program(), bw_spec.hierarchy, bw_spec.timing, cfg_on
        )
        t_off = GroundTruthTimer(
            self.make_program(), bw_spec.hierarchy, bw_spec.timing, cfg_off
        )
        # block 1 (64MB random) pays TLB; block 0 (8KB) does not
        assert t_on.iteration_time_s(1) > t_off.iteration_time_s(1)
        assert t_on.iteration_time_s(0) == pytest.approx(
            t_off.iteration_time_s(0), rel=1e-9
        )

    def test_loop_overhead_additive(self, bw_spec):
        base = GroundTruthConfig(sample_accesses=20_000, loop_overhead_cycles=0.0)
        heavy = GroundTruthConfig(sample_accesses=20_000, loop_overhead_cycles=4.0)
        t0 = GroundTruthTimer(
            self.make_program(), bw_spec.hierarchy, bw_spec.timing, base
        ).iteration_time_s(0)
        t4 = GroundTruthTimer(
            self.make_program(), bw_spec.hierarchy, bw_spec.timing, heavy
        ).iteration_time_s(0)
        expected = 4.0 / bw_spec.timing.frequency_ghz * 1e-9
        assert t4 - t0 == pytest.approx(expected, rel=1e-6)

    def test_unknown_block(self, bw_spec):
        timer = GroundTruthTimer(
            self.make_program(), bw_spec.hierarchy, bw_spec.timing,
            GroundTruthConfig(sample_accesses=10_000),
        )
        with pytest.raises(KeyError):
            timer.iteration_time_s(9)

    def test_pattern_randomness_ordering(self):
        from repro.memstream.patterns import (
            ConstantPattern,
            GatherScatterPattern,
            StencilPattern,
        )

        rand = _pattern_randomness(RandomPattern(region_bytes=4096))
        gather = _pattern_randomness(
            GatherScatterPattern(region_bytes=4096, locality=0.5)
        )
        stencil = _pattern_randomness(StencilPattern(region_bytes=4096))
        const = _pattern_randomness(ConstantPattern(region_bytes=64))
        assert rand > gather > stencil > const == 0.0

    def test_measure_job_requires_partition(self, bw_spec):
        job = run_job("x", 2, lambda comm: comm.compute(0, 10))
        program = self.make_program()
        with pytest.raises(ValueError, match="partition"):
            measure_job(
                job,
                lambda r: program,
                [[0]],  # rank 1 missing
                bw_spec.hierarchy,
                bw_spec.timing,
                bw_spec.network,
            )

    def test_measure_job_runs(self, bw_spec):
        def fn(comm):
            comm.compute(0, 100)
            comm.barrier()

        job = run_job("m", 4, fn)
        program = self.make_program(exec_count=100)
        res = measure_job(
            job,
            lambda r: program,
            [[0, 1], [2, 3]],
            bw_spec.hierarchy,
            bw_spec.timing,
            bw_spec.network,
            GroundTruthConfig(sample_accesses=10_000),
        )
        assert res.runtime_s > 0
        assert res.n_ranks == 4
