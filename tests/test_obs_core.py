"""Unit tests: the observability primitives (log, trace, metrics).

Covers span nesting and exception safety, Chrome-trace JSON schema
validity, metrics histogram quantiles, rate-limited and JSON-structured
logging, and the ``$REPRO_LOG`` grammar — all without touching the
pipeline.
"""

from __future__ import annotations

import io
import json
import logging
import time
from pathlib import Path

import pytest

from repro.obs import log as obs_log
from repro.obs import trace as obs_trace
from repro.obs.metrics import REGISTRY, MetricsRegistry, _quantile
from tests.schema_utils import assert_valid, validate

SCHEMA_DIR = Path(__file__).parent / "schemas"
TRACE_SCHEMA = json.loads((SCHEMA_DIR / "trace.schema.json").read_text())
METRICS_SCHEMA = json.loads((SCHEMA_DIR / "metrics.schema.json").read_text())
LOG_SCHEMA = json.loads((SCHEMA_DIR / "log.schema.json").read_text())


@pytest.fixture(autouse=True)
def _obs_isolation(monkeypatch):
    """Every test starts and ends with pristine observability state."""
    monkeypatch.delenv(obs_trace.ENV_TRACE, raising=False)
    monkeypatch.delenv(obs_log.ENV_LOG, raising=False)
    obs_trace.disable()
    REGISTRY.reset()
    yield
    obs_trace.disable()
    REGISTRY.reset()
    root = logging.getLogger(obs_log.ROOT_LOGGER)
    for handler in list(root.handlers):
        root.removeHandler(handler)


class TestSpans:
    def test_disabled_is_noop(self):
        assert obs_trace.span("x") is obs_trace.span("y")
        with obs_trace.span("anything", k=1):
            pass
        assert obs_trace.current() is None

    def test_nesting_depths(self):
        tracer = obs_trace.enable()
        with obs_trace.span("outer"):
            with obs_trace.span("inner"):
                pass
        by_name = {e["name"]: e for e in tracer.events}
        assert by_name["outer"]["args"]["depth"] == 0
        assert by_name["inner"]["args"]["depth"] == 1
        # inner closed first, and sits inside the outer's interval
        assert tracer.events[0]["name"] == "inner"
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6

    def test_exception_recorded_and_propagated(self):
        tracer = obs_trace.enable()
        with pytest.raises(ValueError):
            with obs_trace.span("boom", step=3):
                raise ValueError("no")
        (event,) = tracer.events
        assert event["args"]["error"] == "ValueError"
        assert event["args"]["step"] == 3
        assert obs_trace.active_spans() == []  # stack unwound

    def test_args_jsonified(self):
        tracer = obs_trace.enable()
        with obs_trace.span("s", obj=object(), n=2, name="x"):
            pass
        args = tracer.events[0]["args"]
        assert isinstance(args["obj"], str)
        assert args["n"] == 2 and args["name"] == "x"

    def test_traced_decorator(self):
        tracer = obs_trace.enable()

        @obs_trace.traced("deco.fn", flavor="test")
        def fn(a, b):
            return a + b

        assert fn(2, 3) == 5
        (event,) = tracer.events
        assert event["name"] == "deco.fn"
        assert event["args"]["flavor"] == "test"

    def test_chrome_export_schema_and_rebase(self, tmp_path):
        tracer = obs_trace.enable()
        with obs_trace.span("a.one"):
            with obs_trace.span("b.two", detail="d"):
                time.sleep(0.001)
        doc = tracer.export_chrome(tmp_path / "trace.json")
        assert_valid(doc, TRACE_SCHEMA, "chrome trace")
        reloaded = json.loads((tmp_path / "trace.json").read_text())
        assert reloaded == doc
        ts = [e["ts"] for e in doc["traceEvents"]]
        assert min(ts) == 0.0 and ts == sorted(ts)
        assert sorted(tracer.stages()) == ["a", "b"]

    def test_stage_durations_aggregates(self):
        tracer = obs_trace.enable()
        for _ in range(3):
            with obs_trace.span("fit.series"):
                pass
        durations = tracer.stage_durations()
        assert durations["fit.series"]["count"] == 3
        assert durations["fit.series"]["total_s"] >= 0.0

    def test_worker_init_resets_inherited_events(self):
        tracer = obs_trace.enable()  # also sets $REPRO_TRACE, as a parent would
        with obs_trace.span("parent.span"):
            pass
        assert tracer.events
        obs_trace.worker_init()  # what a forked pool worker runs
        fresh = obs_trace.current()
        assert fresh is not None and fresh.events == []


class TestEnvelopes:
    def test_call_shipped_plain_outside_worker(self):
        tracer = obs_trace.enable()
        result = obs_trace.call_shipped(lambda a: a * 2, "k1", (21,))
        assert result == 42  # no envelope: spans land locally
        assert any(e["name"] == "exec.task" for e in tracer.events)

    def test_ship_and_unwrap_roundtrip(self, monkeypatch):
        obs_trace.enable()
        monkeypatch.setenv("REPRO_EXEC_WORKER", "1")
        REGISTRY.inc("demo.count", 5)
        envelope = obs_trace.call_shipped(lambda a: a + 1, "k2", (1,))
        assert isinstance(envelope, obs_trace.TaskEnvelope)
        assert envelope.value == 2
        # the worker-side drain cleared local state...
        assert obs_trace.current().events == []
        assert REGISTRY.counters == {}
        monkeypatch.delenv("REPRO_EXEC_WORKER")
        # ...and the parent-side unwrap absorbs it
        assert obs_trace.unwrap(envelope) == 2
        assert any(
            e["name"] == "exec.task" for e in obs_trace.current().events
        )
        assert REGISTRY.counters["demo.count"] == 5

    def test_unwrap_passthrough(self):
        assert obs_trace.unwrap("plain") == "plain"


class TestMetrics:
    def test_quantile_interpolation(self):
        values = [float(v) for v in range(1, 101)]
        assert _quantile(values, 0.50) == pytest.approx(50.5)
        assert _quantile(values, 0.95) == pytest.approx(95.05)
        assert _quantile(values, 0.0) == 1.0
        assert _quantile(values, 1.0) == 100.0
        assert _quantile([], 0.5) == 0.0
        assert _quantile([7.0], 0.95) == 7.0

    def test_counters_gauges_timers(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(2.5)
        for v in range(1, 101):
            reg.observe("t", v / 1000.0)
        doc = reg.to_dict()
        assert_valid(doc, METRICS_SCHEMA, "metrics")
        assert doc["counters"]["c"] == 5
        assert doc["gauges"]["g"] == 2.5
        timer = doc["timers"]["t"]
        assert timer["count"] == 100
        assert timer["sum_s"] == pytest.approx(sum(range(1, 101)) / 1000.0)
        assert timer["p50_s"] == pytest.approx(0.0505)
        assert timer["p95_s"] == pytest.approx(0.09505)
        assert timer["p99_s"] == pytest.approx(0.09901)
        assert timer["max_s"] == pytest.approx(0.1)

    def test_timer_context_manager(self):
        reg = MetricsRegistry()
        with reg.timer("block").time():
            time.sleep(0.001)
        summary = reg.timer("block").summary()
        assert summary["count"] == 1 and summary["max_s"] > 0.0

    def test_drain_merge(self):
        reg = MetricsRegistry()
        reg.inc("a", 2)
        reg.gauge("g").set(1.0)
        reg.observe("t", 0.5)
        snapshot = reg.drain()
        assert reg.counters == {} and reg.timers == {}
        other = MetricsRegistry()
        other.inc("a", 3)
        other.merge(snapshot)
        assert other.counters["a"] == 5
        assert other.gauges["g"] == 1.0
        merged = other.timers["t"]
        assert merged.reservoir == [0.5]
        assert merged.hist.count == 1 and merged.hist.total == 0.5
        # legacy raw-list snapshots (pre-histogram drains) still merge
        other.merge({"timers": {"t": [0.25]}})
        assert other.timers["t"].reservoir == [0.5, 0.25]
        assert other.timers["t"].summary()["max_s"] == 0.5

    def test_export_file(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("x")
        doc = reg.export(tmp_path / "m.json")
        assert json.loads((tmp_path / "m.json").read_text()) == doc


class TestLogging:
    def _configure(self, **kwargs) -> io.StringIO:
        stream = io.StringIO()
        obs_log.configure(stream=stream, **kwargs)
        return stream

    def test_human_format_and_level(self):
        stream = self._configure(level="info")
        log = obs_log.get_logger("unit")
        log.debug("hidden")
        log.info("shown %d", 7)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        assert "INFO" in lines[0] and "unit: shown 7" in lines[0]

    def test_json_lines_validate(self):
        stream = self._configure(level="debug", json_mode=True)
        log = obs_log.get_logger("unit.json")
        obs_log.set_task_context(task="collect:app:8")
        try:
            log.warning("storm %s", "x")
        finally:
            obs_log.clear_task_context()
        for line in stream.getvalue().splitlines():
            record = json.loads(line)
            assert_valid(record, LOG_SCHEMA, "log record")
        record = json.loads(stream.getvalue().splitlines()[0])
        assert record["msg"] == "storm x"
        assert record["context"] == {"task": "collect:app:8"}

    def test_quiet_forces_error(self):
        stream = self._configure(level="debug", quiet=True)
        log = obs_log.get_logger("unit.quiet")
        log.warning("suppressed")
        log.error("kept")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1 and "kept" in lines[0]

    def test_rate_limit_burst_and_annotation(self):
        stream = self._configure(level="info", burst=3, interval_s=0.05)
        log = obs_log.get_logger("unit.storm")
        for i in range(10):
            log.info("repeated %d", i)
        assert len(stream.getvalue().splitlines()) == 3
        time.sleep(0.06)
        log.info("repeated %d", 99)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 4
        assert "(+7 suppressed)" in lines[-1]

    def test_rate_limit_keys_on_template(self):
        stream = self._configure(level="info", burst=2, interval_s=60.0)
        log = obs_log.get_logger("unit.keys")
        log.info("alpha")
        log.info("alpha")
        log.info("alpha")  # third alpha suppressed...
        log.info("beta")  # ...but a different template passes
        lines = stream.getvalue().splitlines()
        assert len(lines) == 3 and "beta" in lines[-1]

    def test_env_grammar(self, monkeypatch):
        assert obs_log._parse_env("debug") == ("debug", None)
        assert obs_log._parse_env("json:info") == ("info", True)
        assert obs_log._parse_env("warning,human") == ("warning", False)
        assert obs_log._parse_env("typo:nonsense") == (None, None)
        monkeypatch.setenv(obs_log.ENV_LOG, "json:debug")
        stream = io.StringIO()
        root = obs_log.configure(stream=stream)
        assert root.level == logging.DEBUG
        obs_log.get_logger("env").debug("via env")
        assert json.loads(stream.getvalue().splitlines()[0])["msg"] == "via env"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(obs_log.ENV_LOG, "debug")
        root = obs_log.configure(level="error", stream=io.StringIO())
        assert root.level == logging.ERROR

    def test_exception_rendering(self):
        stream = self._configure(level="error", json_mode=True)
        log = obs_log.get_logger("unit.exc")
        try:
            raise RuntimeError("kaput")
        except RuntimeError:
            log.exception("failed")
        record = json.loads(stream.getvalue().splitlines()[0])
        assert "RuntimeError: kaput" in record["exc"]

    def test_schema_validator_rejects_bad_documents(self):
        # the mini validator itself must catch violations, or every
        # schema assertion in this suite is vacuous
        assert validate({"traceEvents": "nope"}, TRACE_SCHEMA)
        assert validate(
            {"counters": {}, "gauges": {}, "timers": {}, "extra": 1},
            METRICS_SCHEMA,
        )
        assert validate({"ts": 1.0}, LOG_SCHEMA)  # missing required
        bad_event = {
            "traceEvents": [
                {
                    "name": "x", "cat": "c", "ph": "B", "ts": 0, "dur": 0,
                    "pid": 1, "tid": 1, "args": {},
                }
            ],
            "displayTimeUnit": "ms",
        }
        assert validate(bad_event, TRACE_SCHEMA)  # ph "B" not allowed
