"""Integration: the full pipeline on a reduced UH3D (the second app class).

The Jacobi integration exercises stencil/streaming behavior; this module
covers the gather/scatter-dominated PIC workload, plus the clustering
extension end to end.
"""

import numpy as np
import pytest

from repro.apps.uh3d import UH3DParams, UH3DProxy
from repro.core.clustering import cluster_ranks, extrapolate_signature_clustered
from repro.core.crossval import cross_validate_traces
from repro.core.errors import abs_rel_error
from repro.core.extrapolate import extrapolate_trace
from repro.pipeline.collect import CollectionSettings, collect_signature
from repro.pipeline.predict import measure_runtime, predict_runtime

from tests.conftest import FAST_COLLECTOR, FAST_SETTINGS


@pytest.fixture(scope="module")
def uh3d_small():
    return UH3DProxy(
        UH3DParams(
            global_cells=(32, 32, 32), particles_per_cell=2.0, n_steps=2
        )
    )


@pytest.fixture(scope="module")
def uh3d_traces(uh3d_small, bw_machine):
    return [
        collect_signature(
            uh3d_small, p, bw_machine.hierarchy, FAST_SETTINGS
        ).slowest_trace()
        for p in (8, 16, 32)
    ]


class TestUH3DEndToEnd:
    def test_trace_structure(self, uh3d_traces):
        for trace in uh3d_traces:
            assert trace.n_blocks == 7
            assert trace.app == "uh3d"

    def test_extrap_vs_collected_prediction(
        self, uh3d_small, bw_machine, uh3d_traces
    ):
        target = 64
        res = extrapolate_trace(uh3d_traces, target)
        coll = collect_signature(
            uh3d_small, target, bw_machine.hierarchy, FAST_SETTINGS
        ).slowest_trace()
        job = uh3d_small.build_job(target)
        pe = predict_runtime(uh3d_small, target, res.trace, bw_machine, job=job)
        pc = predict_runtime(uh3d_small, target, coll, bw_machine, job=job)
        assert abs_rel_error(pc.runtime_s, pe.runtime_s) < 0.25

    def test_prediction_vs_measured(self, uh3d_small, bw_machine, bw_spec, uh3d_traces):
        target = 32
        job = uh3d_small.build_job(target)
        pred = predict_runtime(
            uh3d_small, target, uh3d_traces[2], bw_machine, job=job
        )
        meas = measure_runtime(uh3d_small, target, bw_spec, job=job)
        assert abs_rel_error(meas.runtime_s, pred.runtime_s) < 0.25

    def test_gather_hit_rates_rise_with_core_count(self, uh3d_traces):
        """The Table II mechanism on the small config."""
        from repro.apps.uh3d import BLOCK_FIELD_GATHER

        schema = uh3d_traces[0].schema
        l3 = [
            t.blocks[BLOCK_FIELD_GATHER].instructions[0].features[
                schema.index("hit_rate_L3")
            ]
            for t in uh3d_traces
        ]
        assert l3[-1] >= l3[0]

    def test_cross_validation_on_real_traces(self, uh3d_traces):
        report = cross_validate_traces(uh3d_traces)
        assert 0.0 < report.trust_fraction(0.25) <= 1.0
        # rates validate well even when counts flag
        rate_errors = [
            e.held_out_error
            for e in report.elements
            if e.feature.startswith("hit_rate") and np.isfinite(e.held_out_error)
        ]
        assert float(np.median(rate_errors)) < 0.10


class TestClusteringEndToEnd:
    @pytest.fixture(scope="class")
    def full_signatures(self, uh3d_small, bw_machine):
        settings = CollectionSettings(ranks="all", collector=FAST_COLLECTOR)
        return [
            collect_signature(uh3d_small, p, bw_machine.hierarchy, settings)
            for p in (8, 16)
        ]

    def test_cluster_ranks_on_collected_signature(self, full_signatures):
        clustering = cluster_ranks(full_signatures[0], 2)
        assert sorted(clustering.labels) == list(range(8))
        assert len(clustering.representatives) == 2

    def test_clustered_extrapolation_runs(self, full_signatures):
        result = extrapolate_signature_clustered(full_signatures, 32, k=2)
        assert len(result.traces) == 2
        assert sum(result.shares) == pytest.approx(1.0)
        for trace in result.traces:
            assert trace.n_ranks == 32
            assert trace.n_blocks == 7
