"""Cross-validate the analytical cache engine on a Table II-style sweep.

CI runs this after the unit/property suites::

    python tests/check_cache_engines.py

It collects the jacobi proxy's slowest-rank signature against several
named target hierarchies with ``--cache-engine reuse`` semantics (the
guard gate armed, so any silent reuse/exact divergence aborts the
sweep), re-collects with the exact engine, and checks:

- per-block cumulative hit rates agree within the guard tolerance on
  every level of every hierarchy;
- the multi-geometry sweep *reuses* profiles instead of re-profiling:
  hierarchies that sample identical streams hit the profile cache
  (``cachesim.reuse.profile_hits``), and the total number of profiling
  passes stays at one per distinct (stream, line size);
- the closed-form evaluator ran per level (``cachesim.reuse.evals``).

Exit status 0 when every check holds, 1 otherwise (one line per problem
on stderr).  Importable too: :func:`run_sweep` returns the problem list
so tests can assert it is empty.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path
from typing import List

if __package__ in (None, ""):  # executed as a script
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.apps.registry import get_app  # noqa: E402
from repro.cache.configs import NAMED_HIERARCHIES  # noqa: E402
from repro.cache.reuse import configure_profile_cache  # noqa: E402
from repro.instrument.collector import CollectorConfig, collect_trace  # noqa: E402
from repro.obs.metrics import REGISTRY  # noqa: E402

#: the sweep's target systems; blue_waters_p1 and system_a sample
#: identical streams (same largest cache), so the second one must be
#: served from the profile cache without a single new profiling pass
SWEEP = ("opteron_2level", "blue_waters_p1", "system_a")

APP = "jacobi"
N_RANKS = 16
RANK = 0

#: the guard gate's agreement contract, applied per block and level
RTOL = 0.05
ATOL = 0.05

#: known model deviations, (hierarchy, block_id, level) -> ceiling.
#: system_a's tiny 3-way L1 exposes the pooled-StatStack bias on
#: jacobi's asymmetric stencil/store block (DESIGN.md §7.8): the
#: per-block L1 rate lands ~0.08 high while every outer level agrees to
#: 1e-3.  The deviation is bounded here so a regression past the
#: documented envelope still fails the sweep.
KNOWN_DEVIATIONS = {("system_a", 0, 0): 0.12}


def _counter(name: str):
    return REGISTRY.counter(name).value


def _collect(hierarchy, engine: str):
    app = get_app(APP)
    return collect_trace(
        app.rank_program(RANK, N_RANKS),
        hierarchy,
        app=APP,
        rank=RANK,
        n_ranks=N_RANKS,
        config=CollectorConfig(engine=engine),
    )


def _block_rates(trace):
    """block_id -> access-weighted cumulative hit-rate vector."""
    schema = trace.schema
    out = {}
    for bid in sorted(trace.blocks):
        block = trace.blocks[bid]
        rates, weights = [], []
        for instr in block.instructions:
            vec = np.asarray(instr.features, dtype=np.float64)
            rates.append(vec[schema.hit_rate_slice])
            weights.append(max(float(vec[0]), 1.0))
        if rates:
            w = np.asarray(weights)
            out[bid] = (w[:, None] * np.asarray(rates)).sum(axis=0) / w.sum()
    return out


def run_sweep(profile_root=None) -> List[str]:
    problems: List[str] = []
    configure_profile_cache(profile_root)
    profiles_before = _counter("cachesim.reuse.profiles")
    evals_before = _counter("cachesim.reuse.evals")

    per_hierarchy_profiles = {}
    results = {}
    for name in SWEEP:
        hierarchy = NAMED_HIERARCHIES[name]()
        before = _counter("cachesim.reuse.profiles")
        try:
            results[name] = _collect(hierarchy, "reuse")
        except Exception as exc:  # guard gate refusal or a crash
            problems.append(f"{name}: reuse collection failed: {exc}")
            continue
        per_hierarchy_profiles[name] = (
            _counter("cachesim.reuse.profiles") - before
        )

    if problems:
        return problems

    # multi-geometry reuse: system_a samples the same streams as
    # blue_waters_p1 (same largest cache) and needs the same congruence
    # moduli, so its *engine* profiles all come from the cache; the one
    # pass it may still take is the guard gate profiling its own
    # truncated spot-check stream
    if per_hierarchy_profiles.get("system_a", -1) > 1:
        problems.append(
            "system_a ran "
            f"{per_hierarchy_profiles.get('system_a')} profiling passes; "
            "expected its engine profiles served from the cache shared "
            "with blue_waters_p1 (at most the gate's own pass)"
        )
    if _counter("cachesim.reuse.profile_hits") == 0:
        problems.append("profile cache recorded no hits across the sweep")
    if _counter("cachesim.reuse.evals") <= evals_before:
        problems.append("closed-form evaluator never ran")
    total_profiles = _counter("cachesim.reuse.profiles") - profiles_before
    # 2 distinct stream samplings x 3 blocks for the engines, plus one
    # truncated spot-check stream per hierarchy for the guard gate
    if total_profiles > 2 * 3 + len(SWEEP):
        problems.append(
            f"{total_profiles} profiling passes across the sweep; expected "
            "at most one per distinct (stream, line size)"
        )

    # agreement with the exact engine, per block and level
    print(f"{'hierarchy':>16} {'block':>5} {'exact':>28} {'reuse':>28}")
    for name in SWEEP:
        hierarchy = NAMED_HIERARCHIES[name]()
        exact = _block_rates(_collect(hierarchy, "exact"))
        approx = _block_rates(results[name])
        def fmt(v):
            return "[" + " ".join(f"{x:.4f}" for x in v) + "]"

        for bid in sorted(exact):
            he, ha = exact[bid], approx[bid]
            print(f"{name:>16} {bid:>5} {fmt(he):>28} {fmt(ha):>28}")
            err = np.abs(ha - he)
            tol = ATOL + RTOL * np.abs(he)
            for lvl in np.flatnonzero(err > tol):
                ceiling = KNOWN_DEVIATIONS.get((name, bid, int(lvl)))
                if ceiling is not None and err[lvl] <= ceiling:
                    print(
                        f"{name:>16} {bid:>5} level {lvl}: known "
                        f"deviation {err[lvl]:.4f} (ceiling {ceiling})"
                    )
                    continue
                problems.append(
                    f"{name} block {bid} level {lvl}: reuse "
                    f"{ha[lvl]:.4f} vs exact {he[lvl]:.4f} diverges "
                    f"beyond atol={ATOL} rtol={RTOL}"
                )
    return problems


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        problems = run_sweep(Path(tmp) / "profiles")
    for problem in problems:
        print(f"check_cache_engines: {problem}", file=sys.stderr)
    if problems:
        return 1
    print("cache-engine sweep OK: reuse agrees with exact, profiles shared")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
