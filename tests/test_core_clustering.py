"""Unit tests: the §VI task-clustering extension."""

import numpy as np
import pytest

from repro.core.clustering import (
    cluster_ranks,
    extrapolate_signature_clustered,
    _kmeans,
)
from repro.trace.features import FeatureSchema
from repro.trace.records import BasicBlockRecord, InstructionRecord, SourceLocation
from repro.trace.signature import ApplicationSignature
from repro.trace.tracefile import TraceFile
from repro.util.rng import stream

SCHEMA = FeatureSchema(["L1", "L2"])


def make_signature(n_ranks, heavy_ranks, base=1e7):
    """Signature where ``heavy_ranks`` do 4x the work of the others."""
    sig = ApplicationSignature(app="clu", n_ranks=n_ranks, target="tgt")
    for r in range(n_ranks):
        scale = 4.0 if r in heavy_ranks else 1.0
        trace = TraceFile(
            app="clu", rank=r, n_ranks=n_ranks, target="tgt", schema=SCHEMA
        )
        block = BasicBlockRecord(block_id=0, location=SourceLocation(function="f"))
        work = scale * base / n_ranks
        block.instructions.append(
            InstructionRecord(
                instr_id=0,
                kind="load",
                features=SCHEMA.vector_from_dict(
                    {
                        "exec_count": work,
                        "mem_ops": 4 * work,
                        "loads": 4 * work,
                        "ref_bytes": 8.0,
                        "hit_rate_L1": 0.9,
                        "hit_rate_L2": 1.0,
                    }
                ),
            )
        )
        trace.add_block(block)
        sig.add_trace(trace)
    return sig


class TestKMeans:
    def test_separates_obvious_clusters(self):
        rng = stream("km-test")
        points = np.concatenate(
            [np.zeros((10, 2)), np.ones((10, 2)) * 10.0]
        )
        labels, centers = _kmeans(points, 2, rng)
        assert len(set(labels[:10])) == 1
        assert len(set(labels[10:])) == 1
        assert labels[0] != labels[10]

    def test_k_larger_than_n_rejected(self):
        with pytest.raises(ValueError):
            _kmeans(np.zeros((3, 2)), 5, stream("km"))

    def test_deterministic(self):
        points = np.random.default_rng(0).normal(size=(30, 3))
        l1, _ = _kmeans(points, 3, stream("km-det"))
        l2, _ = _kmeans(points, 3, stream("km-det"))
        np.testing.assert_array_equal(l1, l2)


class TestClusterRanks:
    def test_heavy_ranks_isolated(self):
        heavy = {0, 1}
        sig = make_signature(8, heavy)
        clustering = cluster_ranks(sig, 2)
        # cluster 0 (heaviest first) must be exactly the heavy ranks
        assert set(clustering.members(0)) == heavy
        assert clustering.share(0) == pytest.approx(0.25)

    def test_representative_in_cluster(self):
        sig = make_signature(8, {0})
        clustering = cluster_ranks(sig, 2)
        for j in range(2):
            assert clustering.representatives[j] in clustering.members(j)

    def test_needs_traces(self):
        sig = ApplicationSignature(app="clu", n_ranks=4, target="tgt")
        with pytest.raises(ValueError):
            cluster_ranks(sig, 2)


class TestClusteredExtrapolation:
    def test_shares_and_traces(self):
        sigs = [make_signature(p, {0, 1}) for p in (8, 16, 32)]
        result = extrapolate_signature_clustered(sigs, 64, k=2)
        assert len(result.traces) == 2
        assert sum(result.shares) == pytest.approx(1.0)
        assert all(t.extrapolated for t in result.traces)
        assert all(t.n_ranks == 64 for t in result.traces)

    def test_cluster_zero_is_heavier(self):
        sigs = [make_signature(p, {0, 1}) for p in (8, 16, 32)]
        result = extrapolate_signature_clustered(sigs, 64, k=2)
        idx = SCHEMA.index("mem_ops")
        heavy = result.traces[0].blocks[0].instructions[0].features[idx]
        light = result.traces[1].blocks[0].instructions[0].features[idx]
        assert heavy > light

    def test_weighted_total(self):
        sigs = [make_signature(p, {0}) for p in (8, 16, 32)]
        result = extrapolate_signature_clustered(sigs, 64, k=2)
        total = result.weighted_total_compute(
            lambda t: t.blocks[0].instructions[0].features[SCHEMA.index("mem_ops")]
        )
        assert total > 0

    def test_needs_two_signatures(self):
        with pytest.raises(ValueError):
            extrapolate_signature_clustered([make_signature(8, {0})], 64, k=2)
