"""Live telemetry: streaming histograms, the sampler, and the recorder.

Four contracts:

- **histogram fidelity** — the log2-bucket streaming histogram answers
  p50/p95/p99 within its documented relative-error bound (1/SUBBUCKETS)
  of ``numpy.percentile`` on the raw stream, with exact count/sum/
  min/max, and merging shards is equivalent to one big histogram;
- **snapshot determinism** — on a fake clock, the sampler writes
  byte-identical flight-recorder files for identical registry activity;
- **torn-tail tolerance** — a recorder cut off mid-write reads back
  minus its torn line (the journal's tolerance), while mid-file
  corruption still raises;
- **interval placement** — breaker transitions land in the recorder
  interval where they actually happened (the chaos-plan run), and
  per-interval counter deltas telescope to the end-of-run tallies
  exactly.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

import numpy as np
import pytest

from repro.exec import faults
from repro.obs.metrics import RESERVOIR_SIZE, MetricsRegistry, REGISTRY
from repro.obs.telemetry import (
    SUBBUCKETS,
    SlowQueryLog,
    StreamingHistogram,
    TelemetryConfig,
    TelemetrySampler,
    bucket_bounds,
    bucket_index,
    hist_delta,
    merged_hist,
    read_flight_records,
    render_prometheus,
    sum_counters,
    write_prometheus,
)
from repro.util.errors import ReproError, ServeError

from tests.check_obs_artifacts import check_artifacts
from tests.schema_utils import assert_valid

TELEMETRY_SCHEMA = json.loads(
    (Path(__file__).parent / "schemas" / "telemetry.schema.json").read_text()
)


class TestStreamingHistogram:
    def test_bucket_scheme_is_consistent(self):
        # every in-range positive value falls inside its bucket's bounds
        for value in (1e-9, 0.001, 0.5, 1.0, 3.7, 1e6):
            idx = bucket_index(value)
            lo, hi = bucket_bounds(idx)
            assert lo <= value < hi, value
        # zero/negative/underflow fold into the zero bucket
        assert bucket_index(0.0) == 0
        assert bucket_index(-1.0) == 0
        assert bucket_index(1e-13) == 0
        # overflow clamps into the top bucket
        assert bucket_index(1e9) == bucket_index(2.0 ** 30)

    @pytest.mark.parametrize(
        "name,values",
        [
            ("lognormal", np.random.default_rng(7).lognormal(-6, 2, 5000)),
            ("uniform", np.random.default_rng(8).uniform(0.001, 0.1, 5000)),
            ("bimodal", np.concatenate([
                np.random.default_rng(9).normal(0.002, 0.0002, 2500),
                np.random.default_rng(10).normal(0.05, 0.005, 2500),
            ]).clip(min=1e-6)),
        ],
    )
    def test_quantiles_vs_numpy(self, name, values):
        """Property: bucket-interpolated quantiles within 1/SUBBUCKETS
        relative error of numpy.percentile on the raw stream."""
        hist = StreamingHistogram()
        for v in values:
            hist.observe(float(v))
        bound = 1.0 / SUBBUCKETS
        for q in (0.05, 0.25, 0.50, 0.90, 0.95, 0.99):
            # between the straddling order statistics (modulo bucket
            # width): numpy's *linear* point inside an empty gap is not
            # a value any bucket scheme can represent, the bracket is
            lo = float(np.quantile(values, q, method="lower"))
            hi = float(np.quantile(values, q, method="higher"))
            got = hist.quantile(q)
            assert lo * (1 - bound) <= got <= hi * (1 + bound), (
                name, q, got, lo, hi,
            )
            # and on the dense interior the pointwise bound holds too
            ref = float(np.percentile(values, q * 100))
            if abs(hi - lo) / ref <= bound:
                assert abs(got - ref) / ref <= 2 * bound, (name, q, got, ref)
        assert hist.count == len(values)
        assert hist.total == pytest.approx(float(np.sum(values)))
        assert hist.min_value == float(np.min(values))
        assert hist.max_value == float(np.max(values))
        assert hist.quantile(0.0) == hist.min_value
        assert hist.quantile(1.0) == hist.max_value

    def test_merge_equals_single_histogram(self):
        rng = np.random.default_rng(11)
        values = rng.lognormal(-5, 1.5, 3000)
        whole = StreamingHistogram()
        shards = [StreamingHistogram() for _ in range(3)]
        for i, v in enumerate(values):
            whole.observe(float(v))
            shards[i % 3].observe(float(v))
        merged = StreamingHistogram()
        for shard in shards:
            merged.merge(shard)
        assert merged.buckets == whole.buckets
        assert merged.count == whole.count
        assert merged.total == pytest.approx(whole.total)
        assert merged.quantile(0.95) == whole.quantile(0.95)

    def test_dict_roundtrip_and_delta(self):
        hist = StreamingHistogram()
        for v in (0.001, 0.002, 0.004):
            hist.observe(v)
        doc = hist.to_dict()
        back = StreamingHistogram.from_dict(doc)
        assert back.to_dict() == doc
        assert back.quantile(0.5) == hist.quantile(0.5)
        # a delta between snapshots covers exactly the new observations
        before = hist.to_dict()
        hist.observe(0.008)
        delta = hist_delta(hist.to_dict(), before)
        assert delta["count"] == 1
        assert delta["sum"] == pytest.approx(0.008)
        assert sum(delta["buckets"].values()) == 1
        assert hist_delta(hist.to_dict(), hist.to_dict()) is None
        empty = StreamingHistogram()
        assert hist_delta(empty.to_dict(), None) is None

    def test_empty_and_zero(self):
        hist = StreamingHistogram()
        assert hist.quantile(0.5) == 0.0
        hist.observe(0.0)
        assert hist.count == 1 and hist.quantile(0.99) == 0.0


class TestTimerState:
    def test_reservoir_keeps_short_runs_exact(self):
        reg = MetricsRegistry()
        for v in range(1, 101):
            reg.observe("t", v / 1000.0)
        summary = reg.timer("t").summary()
        # identical numbers to the legacy sorted-list interpolation
        assert summary["p50_s"] == pytest.approx(0.0505)
        assert summary["p95_s"] == pytest.approx(0.09505)
        assert summary["p99_s"] == pytest.approx(0.09901)
        assert reg.timers["t"].exact

    def test_histogram_takes_over_past_reservoir(self):
        reg = MetricsRegistry()
        rng = np.random.default_rng(3)
        values = rng.lognormal(-6, 1, RESERVOIR_SIZE * 4)
        for v in values:
            reg.observe("t", float(v))
        state = reg.timers["t"]
        assert not state.exact
        assert len(state.reservoir) == RESERVOIR_SIZE
        summary = state.summary()
        assert summary["count"] == len(values)
        for q, key in ((0.5, "p50_s"), (0.95, "p95_s"), (0.99, "p99_s")):
            ref = float(np.percentile(values, q * 100))
            assert abs(summary[key] - ref) / ref <= 1.0 / SUBBUCKETS
        assert summary["max_s"] == float(np.max(values))


class TestSlowQueryLog:
    def test_top_n_and_drain(self):
        log = SlowQueryLog(3)
        for i, lat in enumerate([0.01, 0.05, 0.02, 0.04, 0.03]):
            log.record(lat, tenant=f"t{i}")
        drained = log.drain()
        assert [e["latency_ms"] for e in drained] == [50.0, 40.0, 30.0]
        assert log.drain() == []  # reset per interval

    def test_disabled(self):
        log = SlowQueryLog(0)
        log.record(1.0, tenant="t")
        assert log.drain() == []


def _fake_sampler(tmp_path, name="flight.jsonl"):
    reg = MetricsRegistry()
    clock = _FakeClock(100.0)
    sampler = TelemetrySampler(
        None,
        TelemetryConfig(interval_s=1.0, out=tmp_path / name),
        registry=reg,
        clock=clock,
        wall_clock=lambda: 1.7e9,
    )
    return reg, clock, sampler


class _FakeClock:
    def __init__(self, t):
        self.t = t

    def __call__(self):
        return self.t


def _scripted_run(reg, clock, sampler):
    reg.inc("serve.queries", 5)
    reg.gauge("serve.queue_depth.a").set(2.0)
    reg.observe("serve.latency_s", 0.004)
    clock.t += 1.0
    sampler.sample()
    reg.inc("serve.queries", 3)
    reg.inc("serve.answered", 8)
    reg.observe("serve.latency_s", 0.004)
    clock.t += 1.5
    sampler.sample(loop_lag_s=0.5)
    clock.t += 0.25
    sampler.sample(final=True)
    sampler.close()


class TestSamplerFakeClock:
    def test_snapshot_determinism(self, tmp_path):
        """Identical activity on a fake clock: byte-identical recorders."""
        files = []
        for name in ("a.jsonl", "b.jsonl"):
            reg, clock, sampler = _fake_sampler(tmp_path, name)
            _scripted_run(reg, clock, sampler)
            files.append((tmp_path / name).read_bytes())
        assert files[0] == files[1]

    def test_interval_delta_semantics(self, tmp_path):
        reg, clock, sampler = _fake_sampler(tmp_path)
        _scripted_run(reg, clock, sampler)
        records = read_flight_records(tmp_path / "flight.jsonl")
        assert len(records) == 3
        for record in records:
            assert_valid(record, TELEMETRY_SCHEMA, "telemetry record")
        first, second, final = records
        # deltas, not cumulative values
        assert first["counters"] == {"serve.queries": 5}
        assert second["counters"] == {"serve.queries": 3, "serve.answered": 8}
        assert final["counters"] == {}
        assert first["seq"] == 0 and second["seq"] == 1
        assert second["interval_s"] == pytest.approx(1.5)
        assert second["loop_lag_s"] == pytest.approx(0.5)
        # the loop-lag probe also lands as a gauge for Prometheus
        assert second["gauges"]["serve.loop_lag_s"] == pytest.approx(0.5)
        assert final["final"] is True
        # telescoping: interval sums equal the end-of-run registry
        totals = sum_counters(records)
        assert totals == {"serve.queries": 8, "serve.answered": 8}
        assert merged_hist(records, "serve.latency_s").count == 2
        # per-interval histogram deltas carry only that interval's counts
        assert records[0]["hists"]["serve.latency_s"]["count"] == 1
        assert records[1]["hists"]["serve.latency_s"]["count"] == 1
        assert "serve.latency_s" not in records[2]["hists"]
        # the checker accepts the artifact end to end
        assert check_artifacts(telemetry=tmp_path / "flight.jsonl") == []


class TestFlightRecorderReads:
    def test_torn_tail_is_dropped(self, tmp_path):
        reg, clock, sampler = _fake_sampler(tmp_path)
        _scripted_run(reg, clock, sampler)
        path = tmp_path / "flight.jsonl"
        whole = read_flight_records(path)
        with path.open("a") as fh:
            fh.write('{"schema": 1, "seq": 3, "t_s"')  # killed mid-write
        torn = read_flight_records(path)
        assert torn == whole
        # strict mode refuses even the torn tail
        with pytest.raises(ReproError):
            read_flight_records(path, strict=True)

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": 1, "seq": 0}\ngarbage\n{"seq": 1}\n')
        with pytest.raises(ReproError):
            read_flight_records(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError):
            read_flight_records(tmp_path / "nope.jsonl")

    def test_checker_flags_inconsistencies(self, tmp_path):
        base = {
            "schema": 1, "wall_time": 1.0, "final": False,
            "counters": {}, "gauges": {}, "hists": {},
        }
        path = tmp_path / "incons.jsonl"
        path.write_text(
            json.dumps({**base, "seq": 0, "t_s": 1.0, "interval_s": 1.0,
                        "final": True})
            + "\n"
            + json.dumps({**base, "seq": 0, "t_s": 0.5, "interval_s": 0.5})
            + "\n"
        )
        problems = check_artifacts(telemetry=path)
        assert any("seq" in p for p in problems)
        assert any("ran backwards" in p for p in problems)
        assert any("final record is not last" in p for p in problems)


class TestPrometheus:
    def test_exposition_well_formed(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("serve.queries", 12)
        reg.inc("serve.tenant.answered.acme", 7)
        reg.gauge("serve.queue_depth.acme").set(3.0)
        reg.gauge("serve.breaker.ab12cd34ef56").set(1.0)
        for v in (0.001, 0.002, 0.004, 0.008):
            reg.observe("serve.latency_s", v)
        text = render_prometheus(reg)
        lines = text.splitlines()
        assert "# TYPE repro_serve_queries_total counter" in lines
        assert "repro_serve_queries_total 12" in lines
        # the per-tenant / per-model families carry labels
        assert 'repro_serve_tenant_answered_total{tenant="acme"} 7' in lines
        assert 'repro_serve_queue_depth{tenant="acme"} 3.0' in lines
        assert 'repro_serve_breaker_state{model="ab12cd34ef56"} 1.0' in lines
        # histogram family: cumulative le buckets, +Inf, sum, count
        assert "# TYPE repro_serve_latency_seconds histogram" in lines
        bucket_lines = [
            ln for ln in lines
            if ln.startswith("repro_serve_latency_seconds_bucket")
        ]
        assert bucket_lines[-1] == (
            'repro_serve_latency_seconds_bucket{le="+Inf"} 4'
        )
        counts = [int(ln.rsplit(" ", 1)[1]) for ln in bucket_lines]
        assert counts == sorted(counts)  # cumulative
        assert "repro_serve_latency_seconds_count 4" in lines
        # every line is a comment or `name{labels} value`
        for ln in lines:
            assert ln.startswith("# TYPE ") or len(ln.rsplit(" ", 1)) == 2

    def test_atomic_write_replaces(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("x", 1)
        path = tmp_path / "metrics.prom"
        write_prometheus(path, reg)
        first = path.read_text()
        reg.inc("x", 1)
        write_prometheus(path, reg)
        assert path.read_text() != first
        assert not path.with_name("metrics.prom.tmp").exists()


class TestLoopLagProbe:
    def test_blocked_loop_is_recorded(self, tmp_path):
        """A coroutine that blocks the loop shows up as tick lag."""
        reg = MetricsRegistry()
        sampler = TelemetrySampler(
            None,
            TelemetryConfig(interval_s=0.01, out=tmp_path / "lag.jsonl"),
            registry=reg,
        )

        async def main():
            import time as _time

            await sampler.start()
            await asyncio.sleep(0.012)  # let one clean tick land
            _time.sleep(0.05)  # block the event loop outright
            await asyncio.sleep(0.012)
            await sampler.stop()

        asyncio.run(main())
        records = read_flight_records(tmp_path / "lag.jsonl")
        lags = [r["loop_lag_s"] for r in records if "loop_lag_s" in r]
        assert lags, "no periodic ticks recorded"
        assert max(lags) >= 0.03, f"blocking sleep not observed: {lags}"
        assert records[-1]["final"]


WINDOW_S = 0.02
BREAKER_OPEN_S = 0.05


class TestChaosRecorder:
    """Breaker transitions land in the interval where they happened."""

    def test_transitions_in_their_intervals(
        self, tmp_path, serve_model, bw_machine
    ):
        from repro.apps.registry import get_app
        from repro.serve import ModelRegistry, Query, QueryEngine, ServeConfig

        digest = serve_model.digest
        tag = digest[:12]
        plan = faults.FaultPlan(
            specs=(
                faults.FaultSpec(
                    key=f"serve:batch:{tag}:features",
                    kind="predict-raise",
                    attempts=(1, 2),
                ),
            )
        )
        registry = ModelRegistry(tmp_path / "reg")
        registry.put(serve_model)
        engine = QueryEngine(
            registry,
            default_model=digest,
            config=ServeConfig(
                max_batch=16,
                window_s=WINDOW_S,
                breaker_threshold=2,
                breaker_open_s=BREAKER_OPEN_S,
            ),
        )
        engine._runtime_ctx[digest] = (get_app("jacobi"), bw_machine)
        sampler = TelemetrySampler(
            engine, TelemetryConfig(out=tmp_path / "flight.jsonl")
        )
        counters_before = {
            name: REGISTRY.counters.get(name, 0)
            for name in ("serve.queries", "serve.answered", "serve.failed")
        }

        async def scenario():
            await engine.start()
            engine.telemetry = sampler
            sampler.sample()  # baseline record absorbs prior state
            outcomes = []
            for _ in range(2):  # both fail -> breaker opens on the 2nd
                try:
                    outcomes.append(await engine.query(Query(target=32)))
                except ServeError as exc:
                    outcomes.append(exc)
            sampler.sample()  # interval 1: the open must land here
            await asyncio.sleep(BREAKER_OPEN_S * 1.25 + 0.02)
            outcomes.append(await engine.query(Query(target=48)))
            sampler.sample()  # interval 2: half_open -> closed land here
            await engine.stop()
            sampler.sample(final=True)
            sampler.close()
            return outcomes

        with faults.injected(plan):
            outcomes = asyncio.run(scenario())

        assert isinstance(outcomes[0], ServeError)
        assert isinstance(outcomes[1], ServeError)
        assert not isinstance(outcomes[2], BaseException)

        records = read_flight_records(tmp_path / "flight.jsonl")
        for record in records:
            assert_valid(record, TELEMETRY_SCHEMA, "telemetry record")
        baseline, opened, recovered, final = records
        assert baseline["transitions"] == []
        # the open happened between samples 1 and 2 — and only there
        assert opened["transitions"] == [f"{tag}:open"]
        assert opened["breakers"] == {tag: "open"}
        assert opened["gauges"][f"serve.breaker.{tag}"] == 1.0
        # the half-open probe and close happened in the next interval
        assert recovered["transitions"] == [
            f"{tag}:half_open", f"{tag}:closed"
        ]
        assert recovered["breakers"] == {tag: "closed"}
        assert final["transitions"] == []
        # telescoping: post-baseline deltas equal the engine's tallies
        totals = sum_counters(records[1:])
        assert totals["serve.queries"] == engine.stats.queries == 3
        assert totals["serve.answered"] == engine.stats.answered == 1
        assert totals["serve.failed"] == engine.stats.failed == 2
        for name, before in counters_before.items():
            assert (
                REGISTRY.counters.get(name, 0) - before
                == totals.get(name, 0)
            ), name
        # the slow-query log saw the answered probe
        slow = [e for r in records for e in r.get("slow_queries", [])]
        assert any(e["target"] == 48 for e in slow)
