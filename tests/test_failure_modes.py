"""Failure-injection tests: the library must fail loudly and precisely."""

import json

import numpy as np
import pytest

from repro.cache.configs import blue_waters_p1
from repro.core.extrapolate import extrapolate_trace
from repro.instrument.builder import ProgramBuilder
from repro.instrument.collector import collect_trace
from repro.instrument.pebil import InstrumentedProgram
from repro.instrument.program import Program
from repro.memstream.patterns import StridedPattern
from repro.trace.features import FeatureSchema
from repro.trace.records import BasicBlockRecord, InstructionRecord, SourceLocation
from repro.trace.signature import ApplicationSignature
from repro.trace.tracefile import TraceFile

SCHEMA = FeatureSchema(["L1", "L2", "L3"])


def minimal_trace(n_ranks=8, app="fail", target="tgt"):
    trace = TraceFile(app=app, rank=0, n_ranks=n_ranks, target=target, schema=SCHEMA)
    block = BasicBlockRecord(block_id=0, location=SourceLocation(function="f"))
    block.instructions.append(
        InstructionRecord(
            instr_id=0,
            kind="load",
            features=SCHEMA.vector_from_dict(
                {"exec_count": 10.0 * n_ranks, "mem_ops": 10.0 * n_ranks}
            ),
        )
    )
    trace.add_block(block)
    return trace


class TestTraceFileCorruption:
    def test_npz_bad_version(self, tmp_path):
        trace = minimal_trace()
        path = tmp_path / "t.npz"
        trace.save_npz(path)
        # rewrite the meta with a bogus version
        data = dict(np.load(path, allow_pickle=False))
        meta = json.loads(bytes(data["meta"]).decode())
        meta["version"] = 99
        data["meta"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez(path, **data)
        with pytest.raises(ValueError, match="version"):
            TraceFile.load_npz(path)

    def test_jsonl_missing_header(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"not": "a header"}\n')
        with pytest.raises(ValueError, match="header"):
            TraceFile.load_jsonl(path)

    def test_jsonl_blank_lines_tolerated(self, tmp_path):
        trace = minimal_trace()
        path = tmp_path / "t.jsonl"
        trace.save_jsonl(path)
        path.write_text(path.read_text() + "\n\n")
        loaded = TraceFile.load_jsonl(path)
        assert loaded.n_blocks == 1

    def test_signature_dir_missing_sidecar(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ApplicationSignature.load_dir(tmp_path / "nope")


class TestExtrapolationInputErrors:
    def test_empty_trace_list(self):
        with pytest.raises(ValueError):
            extrapolate_trace([], 128)

    def test_nan_features_rejected(self):
        a, b = minimal_trace(8), minimal_trace(16)
        b.blocks[0].instructions[0].features[0] = np.nan
        with pytest.raises(Exception):
            extrapolate_trace([a, b], 64)

    def test_all_zero_trace_extrapolates_to_zero(self):
        traces = []
        for n in (8, 16, 32):
            t = TraceFile(
                app="z", rank=0, n_ranks=n, target="tgt", schema=SCHEMA
            )
            block = BasicBlockRecord(
                block_id=0, location=SourceLocation(function="f")
            )
            block.instructions.append(
                InstructionRecord(
                    instr_id=0, kind="load", features=SCHEMA.empty_vector()
                )
            )
            t.add_block(block)
            traces.append(t)
        res = extrapolate_trace(traces, 128)
        np.testing.assert_array_equal(
            res.trace.blocks[0].instructions[0].features, 0.0
        )


class TestInstrumentationEdgeCases:
    def test_zero_exec_block(self):
        prog = (
            ProgramBuilder("zero")
            .block("idle")
            .load(StridedPattern(region_bytes=4096))
            .executes(0)
            .done()
            .build()
        )
        trace = collect_trace(
            prog, blue_waters_p1(), app="z", rank=0, n_ranks=1
        )
        ins = trace.blocks[0].instructions[0]
        assert ins.feature(trace.schema, "mem_ops") == 0.0
        np.testing.assert_array_equal(trace.schema.hit_rates(ins.features), 0.0)

    def test_fp_only_program(self):
        prog = (
            ProgramBuilder("fp-only")
            .block("math")
            .fp({"fp_fma": 10})
            .executes(100)
            .done()
            .build()
        )
        trace = collect_trace(
            prog, blue_waters_p1(), app="fp", rank=0, n_ranks=1
        )
        ins = trace.blocks[0].instructions[0]
        assert ins.kind == "fp"
        assert ins.feature(trace.schema, "fp_fma") == 1000.0

    def test_empty_program(self):
        prog = Program(name="empty")
        prog.layout()
        trace = collect_trace(
            prog, blue_waters_p1(), app="e", rank=0, n_ranks=1
        )
        assert trace.n_blocks == 0

    def test_single_access_block(self):
        prog = (
            ProgramBuilder("one")
            .block("single")
            .load(StridedPattern(region_bytes=64))
            .executes(1)
            .done()
            .build()
        )
        report = InstrumentedProgram(prog, blue_waters_p1()).run()
        obs = report.observation(0)
        assert obs.accesses.sum() == 1
