"""The crash-consistent content-addressed pipeline DAG (DESIGN.md §7.12).

The contract under test: node keys cover exactly what a node's output
depends on (so incremental runs recompute only dirty cones), node
completions are durable the moment they land (so a SIGKILL at any
instant loses at most in-flight nodes), artifacts commit atomically
(so resume reproduces an uninterrupted run bit-identically), and a
failing node poisons only its downstream cone while independent
branches keep going.

The sweep spec here is deliberately tiny (two training counts, two
targets, reduced probe/sample budgets): a cold 15-node run takes a few
seconds serial, and warm/incremental assertions are near-instant.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.exec import faults
from repro.exec.faults import FaultPlan, FaultSpec
from repro.exec.resilience import ResilienceConfig
from repro.pipeline.dag import (
    STATE_FILE,
    SweepSpec,
    _load_fit,
    build_dag,
    dag_status,
    node_key,
    run_dag,
)
from repro.util.errors import DagError

SPEC_KW = dict(
    app="jacobi",
    train_counts=(4, 8),
    targets=(16, 32),
    accesses_per_probe=2000,
    sample_accesses=20_000,
    max_sample_accesses=200_000,
    code_version="test",
)

#: the 15 nodes of the SPEC_KW graph, in topological order
NODE_NAMES = [
    "collect:4", "collect:8", "collect:16", "fit",
    "extrapolate:16", "convolve:extrap:16", "predict:extrap:16",
    "extrapolate:32", "convolve:extrap:32", "predict:extrap:32",
    "convolve:coll:16", "predict:coll:16", "measure:16",
    "report:table1", "report:whatif",
]


def _spec(**overrides) -> SweepSpec:
    return SweepSpec(**{**SPEC_KW, **overrides})


def _fast(max_retries=0):
    return ResilienceConfig(
        max_retries=max_retries, backoff_base_s=0.001, backoff_max_s=0.01
    )


@pytest.fixture(scope="module")
def cold_run(tmp_path_factory):
    """One cold serial run shared (read-only) by the tests below."""
    root = tmp_path_factory.mktemp("dag-cold")
    result = run_dag(_spec(), root, resilience=_fast())
    assert result.ok, result.errors
    return root, result


@pytest.fixture()
def warm_root(cold_run, tmp_path):
    """A private copy of the cold root, safe to mutate."""
    root, _result = cold_run
    dest = tmp_path / "dagroot"
    shutil.copytree(root, dest)
    return dest


class TestGraphShape:
    def test_build_dag_names_and_topo_order(self):
        dag = build_dag(_spec())
        assert [n.name for n in dag.topo()] == NODE_NAMES
        seen = set()
        for node in dag.topo():
            assert all(p in seen for p in node.parents)
            seen.add(node.name)

    def test_no_table1_drops_validation_arm(self):
        dag = build_dag(_spec(table1=False))
        names = set(dag.nodes)
        assert "report:table1" not in names
        assert "measure:16" not in names
        assert "collect:16" not in names  # only needed for the arm

    def test_spec_canonicalizes_counts(self):
        spec = _spec(train_counts=(8, 4, 8), targets=(32, 16))
        assert spec.train_counts == (4, 8)
        assert spec.targets == (16, 32)

    def test_spec_round_trips_through_dict(self):
        spec = _spec()
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("overrides", [
        dict(train_counts=(4,)),
        dict(targets=()),
        dict(cache_engine="no-such-engine"),
        dict(forms="no-such-forms"),
    ])
    def test_invalid_specs_rejected(self, overrides):
        with pytest.raises(DagError):
            _spec(**overrides)

    def test_run_in_workers_matches_serial(self, cold_run, tmp_path):
        root, cold = cold_run
        result = run_dag(
            _spec(), tmp_path / "pool", workers=2, resilience=_fast()
        )
        assert result.ok and result.stats.executed == len(NODE_NAMES)
        assert result.digests == cold.digests


class TestNodeKeys:
    def test_identity_exclusions_scope_dirtiness(self):
        """Spec fields dirty exactly the cones they feed.

        Adding a target must not re-key collection or fitting; changing
        the rate trust factor must re-key only extrapolation; changing
        the probe budget must re-key everything.
        """
        base = _spec()
        fake = {name: f"digest-{name}" for name in NODE_NAMES}

        def key(spec, name):
            return node_key(build_dag(spec).nodes[name], spec, fake)

        more_targets = _spec(targets=(16, 32, 64))
        for name in ("collect:4", "fit", "extrapolate:16"):
            assert key(base, name) == key(more_targets, name)

        rtf = _spec(rate_trust_factor=3.0)
        assert key(base, "collect:4") == key(rtf, "collect:4")
        assert key(base, "fit") == key(rtf, "fit")
        assert key(base, "extrapolate:16") != key(rtf, "extrapolate:16")

        probe = _spec(accesses_per_probe=4000)
        for name in ("collect:4", "fit", "extrapolate:16"):
            assert key(base, name) != key(probe, name)

    def test_parent_digests_flow_into_keys(self):
        spec = _spec()
        dag = build_dag(spec)
        fake = {name: f"digest-{name}" for name in NODE_NAMES}
        changed = dict(fake, **{"collect:4": "different"})
        assert (
            node_key(dag.nodes["fit"], spec, fake)
            != node_key(dag.nodes["fit"], spec, changed)
        )
        # a node not downstream of the change keeps its key
        assert (
            node_key(dag.nodes["measure:16"], spec, fake)
            == node_key(dag.nodes["measure:16"], spec, changed)
        )


class TestColdWarmIncremental:
    def test_cold_run_executes_everything(self, cold_run):
        _root, result = cold_run
        assert sorted(result.statuses) == sorted(NODE_NAMES)
        assert set(result.statuses.values()) == {"executed"}
        assert result.stats.executed == len(NODE_NAMES)
        assert result.stats.failed == 0 and result.stats.poisoned == 0
        for name in NODE_NAMES:
            assert Path(result.artifacts[name]).exists()
            assert len(result.digests[name]) == 64
        assert "Table" in result.artifact_json("report:table1")["text"]
        assert "What-if" in result.artifact_json("report:whatif")["text"]

    def test_warm_run_is_a_noop_with_identical_digests(self, cold_run):
        root, cold = cold_run
        warm = run_dag(_spec(), root, resilience=_fast())
        assert warm.ok
        assert warm.stats.executed == 0
        assert warm.stats.clean == len(NODE_NAMES)
        assert warm.digests == cold.digests

    def test_adding_a_target_recomputes_only_its_cone(self, warm_root, cold_run):
        _root, cold = cold_run
        result = run_dag(
            _spec(targets=(16, 32, 64)), warm_root, resilience=_fast()
        )
        assert result.ok
        executed = {
            n for n, s in result.statuses.items() if s == "executed"
        }
        # the new target's extrapolation cone, plus the cross-target
        # what-if report — and nothing else
        assert executed == {
            "extrapolate:64", "convolve:extrap:64", "predict:extrap:64",
            "report:whatif",
        }
        # untouched nodes kept their digests
        for name in NODE_NAMES:
            if name != "report:whatif":
                assert result.digests[name] == cold.digests[name]

    def test_deleted_artifact_is_recomputed_bit_identically(
        self, warm_root, cold_run
    ):
        _root, cold = cold_run
        victim = "predict:extrap:32"
        os.remove(cold.artifacts[victim].replace(str(_root), str(warm_root)))
        result = run_dag(_spec(), warm_root, resilience=_fast())
        assert result.ok
        executed = {n for n, s in result.statuses.items() if s == "executed"}
        # identical bytes -> early cutoff: the downstream report stays
        # clean because the recomputed artifact hashes the same
        assert executed == {victim}
        assert result.digests == cold.digests

    def test_fit_bundle_round_trips(self, cold_run):
        _root, result = cold_run
        report = _load_fit(Path(result.artifacts["fit"]))
        assert list(report.core_counts) == [4, 8]
        prediction = report.predict_many([16], rate_trust_factor=2.0)
        assert prediction is not None


class TestFaultIsolation:
    def test_failed_node_poisons_only_its_cone(self, tmp_path):
        plan = FaultPlan(specs=(
            FaultSpec(key="dag:extrapolate:16", kind="raise",
                      attempts=(1,)),
        ))
        with faults.injected(plan):
            result = run_dag(
                _spec(), tmp_path / "root", resilience=_fast(max_retries=0)
            )
        assert not result.ok
        assert result.statuses["extrapolate:16"] == "failed"
        poisoned = {
            n for n, s in result.statuses.items() if s == "poisoned"
        }
        assert poisoned == {
            "convolve:extrap:16", "predict:extrap:16",
            "report:table1", "report:whatif",
        }
        # independent branches were isolated from the failure
        for name in ("extrapolate:32", "predict:extrap:32",
                     "predict:coll:16", "measure:16"):
            assert result.statuses[name] == "executed"
        assert result.stats.failed == 1 and result.stats.poisoned == 4
        # one violation per failed/poisoned node, typed by cause
        checks = sorted(v.check for v in result.violations)
        assert checks == ["node-failed"] + ["upstream-failed"] * 4
        assert all(v.boundary == "dag" for v in result.violations)

        # the next run heals: only the failed cone recomputes
        healed = run_dag(_spec(), tmp_path / "root", resilience=_fast())
        assert healed.ok
        assert healed.stats.executed == 5 and healed.stats.clean == 10

    def test_node_crash_retries_to_success(self, warm_root, cold_run):
        _root, cold = cold_run
        victim = "extrapolate:16"
        os.remove(cold.artifacts[victim].replace(str(_root), str(warm_root)))
        plan = FaultPlan(specs=(
            FaultSpec(key=f"dag:{victim}", kind="node-crash",
                      attempts=(1,)),
        ))
        with faults.injected(plan):
            result = run_dag(
                _spec(), warm_root, resilience=_fast(max_retries=1)
            )
        assert result.ok
        assert result.statuses[victim] == "executed"
        assert result.stats.node_crashes == 1
        assert result.digests == cold.digests

    def test_corrupt_artifact_is_quarantined_and_recomputed(
        self, warm_root, cold_run
    ):
        _root, cold = cold_run
        victim = "predict:extrap:16"
        plan = FaultPlan(specs=(
            FaultSpec(key=f"dag:{victim}", kind="corrupt-node-artifact",
                      attempts=(1,)),
        ))
        with faults.injected(plan):
            result = run_dag(_spec(), warm_root, resilience=_fast())
        assert result.ok
        assert result.statuses[victim] == "executed"
        assert result.stats.quarantined == 1
        # forensics first: the damaged bytes were moved, not deleted
        quarantined = list((warm_root / "quarantine").iterdir())
        assert len(quarantined) == 1
        assert result.digests == cold.digests
        # and the store converged: the follow-up run is a no-op
        again = run_dag(_spec(), warm_root, resilience=_fast())
        assert again.stats.executed == 0 and again.stats.quarantined == 0

    def test_stale_lock_is_taken_over(self, warm_root, cold_run):
        _root, cold = cold_run
        victim = "report:whatif"
        os.remove(cold.artifacts[victim].replace(str(_root), str(warm_root)))
        plan = FaultPlan(specs=(
            FaultSpec(key=f"dag:{victim}", kind="stale-lock",
                      attempts=(1,)),
        ))
        with faults.injected(plan):
            result = run_dag(
                _spec(), warm_root, resilience=_fast(),
                lock_stale_s=5.0, lock_poll_s=0.01,
            )
        assert result.ok
        assert result.statuses[victim] == "executed"
        assert result.stats.lock_takeovers == 1
        assert result.stats.lock_waits >= 1
        assert result.digests == cold.digests


def _done_records(state: Path) -> int:
    """Committed (status=done) records in a state store, torn tail and
    all — what a concurrent observer of a live run can actually see."""
    if not state.exists():
        return 0
    done = 0
    for line in state.read_text().splitlines():
        try:
            entry = json.loads(line)
        except ValueError:
            continue  # torn tail of a live writer
        if (entry.get("meta") or {}).get("status") == "done":
            done += 1
    return done


class TestKillAndResume:
    def test_sigkill_mid_run_resumes_bit_identically(
        self, cold_run, tmp_path
    ):
        """The acceptance scenario: SIGKILL a run mid-flight, resume,
        and get an uninterrupted run's outputs bit-for-bit.

        A hang fault parks the victim run on the two report nodes once
        all 13 upstream nodes have committed; SIGKILL then models a
        crash at an arbitrary instant (lockfiles still planted, store
        mid-life).  The resumed run must execute exactly the two lost
        nodes and converge to the reference digests.
        """
        root = tmp_path / "dagroot"
        plan = FaultPlan(specs=(
            FaultSpec(key="dag:report:*", kind="hang", seconds=600.0),
        ))
        script = (
            "import sys\n"
            "from repro.pipeline.dag import SweepSpec, run_dag\n"
            "from repro.exec.resilience import ResilienceConfig\n"
            f"spec = SweepSpec(**{SPEC_KW!r})\n"
            f"run_dag(spec, {str(root)!r}, resilience=ResilienceConfig("
            "max_retries=0, backoff_base_s=0.001, backoff_max_s=0.01))\n"
        )
        env = dict(
            os.environ,
            PYTHONPATH="src",
            REPRO_FAULT_PLAN=plan.to_json(),
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            cwd=Path(__file__).resolve().parents[1], env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            state = root / STATE_FILE
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if _done_records(state) >= 13:  # all but the reports
                    break
                assert proc.poll() is None, "victim run exited early"
                time.sleep(0.05)
            else:
                pytest.fail("victim run never reached the report nodes")
            proc.kill()
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait()

        # resume (no fault plan): exactly the in-flight nodes redo,
        # taking over the locks the killed process left planted
        _ref_root, reference = cold_run
        resumed = run_dag(
            _spec(), root, resilience=_fast(),
            lock_stale_s=2.0, lock_poll_s=0.02,
        )
        assert resumed.ok
        executed = {n for n, s in resumed.statuses.items() if s == "executed"}
        assert executed == {"report:table1", "report:whatif"}
        assert resumed.stats.clean == 13
        assert resumed.stats.lock_takeovers == 2
        # bit-identical to an uninterrupted run
        assert resumed.digests == reference.digests
        # convergence: one more run is a no-op and status is all-clean
        again = run_dag(_spec(), root, resilience=_fast())
        assert again.stats.executed == 0
        assert all(s.state == "clean" for s in dag_status(_spec(), root))


class TestDagStatus:
    def test_never_built(self, tmp_path):
        statuses = dag_status(_spec(), tmp_path / "empty")
        assert [s.name for s in statuses] == NODE_NAMES
        nodes = build_dag(_spec()).nodes
        for s in statuses:
            if nodes[s.name].parents:
                assert s.state == "blocked"
                assert "not clean" in s.reason
            else:
                assert s.state == "stale"
                assert s.reason == "never built"

    def test_all_clean_after_run(self, cold_run):
        root, result = cold_run
        statuses = dag_status(_spec(), root)
        assert all(s.state == "clean" for s in statuses)
        by_name = {s.name: s for s in statuses}
        # status keys resolve to the same content addresses the run used
        for name in NODE_NAMES:
            art = Path(result.artifacts[name])
            assert art.stem == by_name[name].key

    def test_missing_artifact_blocks_descendants(self, warm_root, cold_run):
        _root, cold = cold_run
        victim = "extrapolate:32"
        os.remove(cold.artifacts[victim].replace(str(_root), str(warm_root)))
        by_name = {s.name: s for s in dag_status(_spec(), warm_root)}
        assert by_name[victim].state == "stale"
        assert by_name[victim].reason == "artifact missing"
        assert by_name["convolve:extrap:32"].state == "blocked"
        assert by_name["report:table1"].state == "clean"  # other cone

    def test_corrupt_artifact_reported(self, warm_root, cold_run):
        _root, cold = cold_run
        victim = "predict:coll:16"
        art = Path(cold.artifacts[victim].replace(str(_root), str(warm_root)))
        art.write_bytes(art.read_bytes()[:10])
        by_name = {s.name: s for s in dag_status(_spec(), warm_root)}
        assert by_name[victim].state == "stale"
        assert "corrupt" in by_name[victim].reason

    def test_config_change_explained(self, warm_root):
        by_name = {
            s.name: s
            for s in dag_status(_spec(rate_trust_factor=9.0), warm_root)
        }
        assert by_name["collect:4"].state == "clean"
        assert by_name["fit"].state == "clean"
        assert by_name["extrapolate:16"].state == "stale"
        assert by_name["extrapolate:16"].reason == "inputs or config changed"
        assert by_name["convolve:extrap:16"].state == "blocked"
