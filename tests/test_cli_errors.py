"""CLI input validation: bad input fails fast with exit code 2.

The contract under test — taxonomy errors (``UsageError`` and friends)
surface as one actionable ``repro: error:`` line on stderr, never a
traceback; malformed argument *syntax* stays argparse's job and exits 2
via ``SystemExit``.  Collection never starts on invalid input.
"""

import os

import pytest

from repro.cli import main


def _run(capsys, argv):
    rc = main(argv)
    captured = capsys.readouterr()
    return rc, captured.out, captured.err


class TestUnknownNames:
    def test_unknown_app(self, capsys):
        rc, _, err = _run(capsys, ["measure", "--app", "miniFE", "--ranks", "4"])
        assert rc == 2
        assert "unknown application 'miniFE'" in err
        assert "jacobi" in err  # actionable: lists what IS known
        assert "Traceback" not in err

    def test_unknown_machine(self, capsys):
        rc, _, err = _run(
            capsys,
            ["measure", "--app", "jacobi", "--ranks", "4",
             "--machine", "summit"],
        )
        assert rc == 2
        assert "unknown machine 'summit'" in err
        assert "blue_waters_p1" in err
        assert "Traceback" not in err

    def test_unknown_app_checked_before_collection(self, tmp_path, capsys):
        # collect validates every input up front: nothing is written
        out = tmp_path / "sig"
        rc, _, err = _run(
            capsys,
            ["collect", "--app", "nope", "--ranks", "4", "--out", str(out)],
        )
        assert rc == 2 and "unknown application" in err
        assert not out.exists()


class TestMalformedCounts:
    def test_non_numeric_target(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["extrapolate", "--trace", "t.npz", "--target", "8x",
                  "--out", str(tmp_path / "o.npz")])
        assert excinfo.value.code == 2

    def test_non_positive_target(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["extrapolate", "--trace", "t.npz", "--target", "64,-8",
                  "--out", str(tmp_path / "o.npz")])
        assert excinfo.value.code == 2

    def test_empty_train_list(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--app", "jacobi", "--train", ",",
                  "--target", "64"])
        assert excinfo.value.code == 2


class TestWritability:
    @pytest.fixture()
    def denied_dir(self, tmp_path, monkeypatch):
        """An existing directory for which os.access denies W_OK.

        chmod-based setups are useless here: the suite may run as root,
        for whom access(2) grants everything — so the denial is
        simulated at the exact call the CLI makes.
        """
        denied = tmp_path / "denied"
        denied.mkdir()
        real_access = os.access

        def fake_access(path, mode, **kwargs):
            if mode & os.W_OK and str(path).startswith(str(denied)):
                return False
            return real_access(path, mode, **kwargs)

        monkeypatch.setattr(os, "access", fake_access)
        return denied

    def test_unwritable_out_dir(self, denied_dir, capsys):
        out = denied_dir / "sig"
        rc, _, err = _run(
            capsys,
            ["collect", "--app", "jacobi", "--ranks", "4",
             "--out", str(out)],
        )
        assert rc == 2
        assert "--out" in err and "not writable" in err
        assert "Traceback" not in err
        assert not out.exists()  # validation really is up-front

    def test_unwritable_cache_dir(self, tmp_path, denied_dir, capsys):
        rc, _, err = _run(
            capsys,
            ["collect", "--app", "jacobi", "--ranks", "4",
             "--out", str(tmp_path / "sig"),
             "--cache-dir", str(denied_dir / "cache")],
        )
        assert rc == 2
        assert "--cache-dir" in err and "not writable" in err

    def test_out_file_is_a_directory(self, tmp_path, capsys):
        rc, _, err = _run(
            capsys,
            ["extrapolate", "--trace", "t.npz", "--target", "64",
             "--out", str(tmp_path)],
        )
        assert rc == 2
        assert "is a directory, not a file" in err

    def test_missing_trace_file(self, tmp_path, capsys):
        rc, _, err = _run(
            capsys,
            ["extrapolate", "--trace", str(tmp_path / "ghost.npz"),
             "--target", "64", "--out", str(tmp_path / "o.npz")],
        )
        assert rc == 2
        assert "does not exist" in err


class TestGuardFlags:
    def test_negative_trust_threshold_exits_2(self, tmp_path, capsys):
        # ValidationError (a ValueError, not a ReproError) must route
        # through the same exit-2 one-liner path as the taxonomy errors
        rc, _, err = _run(
            capsys,
            ["extrapolate", "--trace", "t.npz", "--target", "64",
             "--out", str(tmp_path / "o.npz"), "--trust-threshold", "-1"],
        )
        assert rc == 2
        assert "repro: error:" in err
        assert "trust_threshold must be positive" in err
        assert "Traceback" not in err

    def test_unknown_guard_policy_is_argparse_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["extrapolate", "--trace", "t.npz", "--target", "64",
                  "--out", str(tmp_path / "o.npz"), "--guard", "panic"])
        assert excinfo.value.code == 2

    def test_unwritable_degradation_out(self, tmp_path, capsys):
        target = tmp_path / "isafile"
        target.write_text("x")
        rc, _, err = _run(
            capsys,
            ["table1", "--app", "jacobi", "--train", "4,8", "--target", "16",
             "--degradation-out", str(target / "d.json")],
        )
        assert rc == 2
        assert "--degradation-out" in err and "not writable" in err


class TestResilienceFlags:
    def test_resume_without_cache_rejected(self, tmp_path, capsys):
        rc, _, err = _run(
            capsys,
            ["collect", "--app", "jacobi", "--ranks", "4",
             "--out", str(tmp_path / "sig"), "--no-cache", "--resume"],
        )
        assert rc == 2
        assert "--resume" in err and "--no-cache" in err

    def test_resume_with_checkpoint_dir_still_needs_cache(
        self, tmp_path, capsys
    ):
        rc, _, err = _run(
            capsys,
            ["collect", "--app", "jacobi", "--ranks", "4",
             "--out", str(tmp_path / "sig"), "--no-cache", "--resume",
             "--checkpoint-dir", str(tmp_path / "ckpt")],
        )
        assert rc == 2
        assert "--no-cache" in err

    def test_non_positive_task_timeout(self, tmp_path, capsys):
        rc, _, err = _run(
            capsys,
            ["collect", "--app", "jacobi", "--ranks", "4",
             "--out", str(tmp_path / "sig"), "--task-timeout", "0"],
        )
        assert rc == 2
        assert "--task-timeout must be positive" in err

    def test_negative_max_retries(self, tmp_path, capsys):
        rc, _, err = _run(
            capsys,
            ["collect", "--app", "jacobi", "--ranks", "4",
             "--out", str(tmp_path / "sig"), "--max-retries", "-1"],
        )
        assert rc == 2
        assert "--max-retries must be >= 0" in err
