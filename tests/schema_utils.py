"""A tiny JSON-Schema validator for the observability artifact tests.

The container deliberately has no ``jsonschema`` package, and the
artifacts only need a small, stable subset of the spec, so this module
implements exactly that subset:

``type`` (incl. type lists), ``properties``, ``required``, ``items``,
``additionalProperties`` (bool or schema), ``enum``, ``minimum``, and
``pattern``.

``validate(instance, schema)`` returns a list of human-readable error
strings (empty = valid); ``assert_valid`` raises ``AssertionError`` with
all of them.  Booleans are deliberately *not* numbers, matching the JSON
Schema spec.
"""

from __future__ import annotations

import re
from typing import Any, List

_TYPES = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _check_type(value: Any, expected, path: str, errors: List[str]) -> bool:
    names = expected if isinstance(expected, list) else [expected]
    for name in names:
        checker = _TYPES.get(name)
        if checker is None:
            errors.append(f"{path}: unsupported schema type {name!r}")
            return False
        if checker(value):
            return True
    errors.append(
        f"{path}: expected type {'/'.join(names)}, "
        f"got {type(value).__name__}"
    )
    return False


def _validate(value: Any, schema: dict, path: str, errors: List[str]) -> None:
    if "enum" in schema:
        if value not in schema["enum"]:
            errors.append(f"{path}: {value!r} not in enum {schema['enum']}")
        return
    if "type" in schema:
        if not _check_type(value, schema["type"], path, errors):
            return
    if isinstance(value, dict):
        for name in schema.get("required", []):
            if name not in value:
                errors.append(f"{path}: missing required property {name!r}")
        props = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for key, item in value.items():
            child = f"{path}.{key}"
            if key in props:
                _validate(item, props[key], child, errors)
            elif additional is False:
                errors.append(f"{path}: unexpected property {key!r}")
            elif isinstance(additional, dict):
                _validate(item, additional, child, errors)
    elif isinstance(value, list):
        items = schema.get("items")
        if isinstance(items, dict):
            for i, item in enumerate(value):
                _validate(item, items, f"{path}[{i}]", errors)
    elif isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(
                f"{path}: {value} below minimum {schema['minimum']}"
            )
    elif isinstance(value, str):
        pattern = schema.get("pattern")
        if pattern is not None and re.search(pattern, value) is None:
            errors.append(f"{path}: {value!r} does not match {pattern!r}")


def validate(instance: Any, schema: dict) -> List[str]:
    """All schema violations in ``instance`` (empty list = valid)."""
    errors: List[str] = []
    _validate(instance, schema, "$", errors)
    return errors


def assert_valid(instance: Any, schema: dict, label: str = "document") -> None:
    errors = validate(instance, schema)
    assert not errors, f"{label} failed schema validation:\n" + "\n".join(errors)
