"""Unit tests: per-element fitting, influence filtering, trace extrapolation."""

import numpy as np
import pytest

from repro.core.canonical import EXTENDED_FORMS, PAPER_FORMS
from repro.core.errors import abs_rel_error, percent, signed_rel_error
from repro.core.extrapolate import extrapolate_trace, extrapolate_trace_many
from repro.core.fitting import fit_feature_series
from repro.core.influence import influential_instructions
from repro.trace.features import FeatureSchema
from repro.trace.records import BasicBlockRecord, InstructionRecord, SourceLocation
from repro.trace.tracefile import TraceFile

SCHEMA = FeatureSchema(["L1", "L2"])


def synthetic_trace(n_ranks, *, base=1e9, hit_slope=2e-5):
    """A trace whose features follow known scaling laws."""
    trace = TraceFile(
        app="synt", rank=0, n_ranks=n_ranks, target="tgt", schema=SCHEMA
    )
    block = BasicBlockRecord(block_id=0, location=SourceLocation(function="hot"))
    exec_count = base / n_ranks  # strong scaling
    block.instructions.append(
        InstructionRecord(
            instr_id=0,
            kind="load",
            features=SCHEMA.vector_from_dict(
                {
                    "exec_count": exec_count,
                    "mem_ops": 5 * exec_count,
                    "loads": 5 * exec_count,
                    "ref_bytes": 8.0,
                    "working_set_bytes": 8 * base / n_ranks,
                    "hit_rate_L1": 0.875,  # constant
                    "hit_rate_L2": min(0.875 + hit_slope * n_ranks, 1.0),
                }
            ),
        )
    )
    # a log-growing block (reduction stages)
    block2 = BasicBlockRecord(block_id=1, location=SourceLocation(function="reduce"))
    block2.instructions.append(
        InstructionRecord(
            instr_id=0,
            kind="load",
            features=SCHEMA.vector_from_dict(
                {
                    "exec_count": 1000 * np.log2(n_ranks),
                    "mem_ops": 2000 * np.log2(n_ranks),
                    "loads": 2000 * np.log2(n_ranks),
                    "ref_bytes": 8.0,
                    "working_set_bytes": 32768.0,
                    "hit_rate_L1": 0.99,
                    "hit_rate_L2": 1.0,
                }
            ),
        )
    )
    trace.add_block(block)
    trace.add_block(block2)
    return trace


TRAIN = [synthetic_trace(p) for p in (1024, 2048, 4096)]


class TestFitFeatureSeries:
    def test_histogram_and_lookup(self):
        series = {
            (0, 0): np.stack(
                [t.blocks[0].instructions[0].features for t in TRAIN]
            )
        }
        report = fit_feature_series(SCHEMA, [1024, 2048, 4096], series)
        assert sum(report.form_histogram().values()) == SCHEMA.n_features
        fit = report.fit_for(0, 0, "hit_rate_L1")
        assert fit.fit.form.name == "constant"
        with pytest.raises(KeyError):
            report.fit_for(9, 9, "mem_ops")

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            fit_feature_series(
                SCHEMA, [8, 16, 32], {(0, 0): np.zeros((2, SCHEMA.n_features))}
            )

    def test_counts_must_ascend(self):
        with pytest.raises(ValueError):
            fit_feature_series(
                SCHEMA, [32, 16, 8], {(0, 0): np.zeros((3, SCHEMA.n_features))}
            )


class TestExtrapolateTrace:
    def test_structure_preserved(self):
        res = extrapolate_trace(TRAIN, 8192)
        assert res.trace.extrapolated is True
        assert res.trace.n_ranks == 8192
        assert sorted(res.trace.blocks) == [0, 1]
        assert res.trace.blocks[0].n_instructions == 1
        assert res.trace.blocks[0].location.function == "hot"

    def test_constant_hit_rate_exact(self):
        res = extrapolate_trace(TRAIN, 8192)
        vec = res.trace.blocks[0].instructions[0].features
        assert vec[SCHEMA.index("hit_rate_L1")] == pytest.approx(0.875)

    def test_rising_hit_rate_tracked(self):
        res = extrapolate_trace(TRAIN, 8192)
        vec = res.trace.blocks[0].instructions[0].features
        true = 0.875 + 2e-5 * 8192
        assert vec[SCHEMA.index("hit_rate_L2")] == pytest.approx(min(true, 1.0), rel=0.02)

    def test_log_growth_tracked(self):
        res = extrapolate_trace(TRAIN, 8192)
        vec = res.trace.blocks[1].instructions[0].features
        assert vec[SCHEMA.index("mem_ops")] == pytest.approx(
            2000 * np.log2(8192), rel=0.02
        )

    def test_hit_rates_within_bounds_and_monotone(self):
        res = extrapolate_trace(TRAIN, 65536)
        for block in res.trace.blocks.values():
            for ins in block.instructions:
                rates = SCHEMA.hit_rates(ins.features)
                assert np.all(rates >= 0.0) and np.all(rates <= 1.0)
                assert np.all(np.diff(rates) >= 0)

    def test_counts_never_negative(self):
        res = extrapolate_trace(TRAIN, 10**6)
        for block in res.trace.blocks.values():
            for ins in block.instructions:
                for f in ("exec_count", "mem_ops", "loads", "stores"):
                    assert ins.features[SCHEMA.index(f)] >= 0.0

    def test_ratio_preservation_under_strong_scaling(self):
        """mem_ops / exec_count must survive extrapolation intact."""
        res = extrapolate_trace(TRAIN, 8192)
        vec = res.trace.blocks[0].instructions[0].features
        exec_count = vec[SCHEMA.index("exec_count")]
        mem_ops = vec[SCHEMA.index("mem_ops")]
        assert exec_count > 0
        assert mem_ops / exec_count == pytest.approx(5.0, rel=1e-6)

    def test_extended_forms_fix_absolute_counts(self):
        res_paper = extrapolate_trace(TRAIN, 8192, forms=PAPER_FORMS)
        res_ext = extrapolate_trace(TRAIN, 8192, forms=EXTENDED_FORMS)
        true = 5 * 1e9 / 8192
        idx = SCHEMA.index("mem_ops")
        err_paper = abs_rel_error(true, res_paper.trace.blocks[0].instructions[0].features[idx])
        err_ext = abs_rel_error(true, res_ext.trace.blocks[0].instructions[0].features[idx])
        assert err_ext < 0.01
        assert err_ext <= err_paper

    def test_needs_two_traces(self):
        with pytest.raises(ValueError):
            extrapolate_trace(TRAIN[:1], 8192)

    def test_duplicate_counts_rejected(self):
        with pytest.raises(ValueError):
            extrapolate_trace([TRAIN[0], synthetic_trace(1024)], 8192)

    def test_inconsistent_structure_rejected(self):
        other = synthetic_trace(2048)
        del other.blocks[1]
        with pytest.raises(ValueError):
            extrapolate_trace([TRAIN[0], other, TRAIN[2]], 8192)

    def test_mismatched_apps_rejected(self):
        other = synthetic_trace(2048)
        other.app = "different"
        with pytest.raises(ValueError):
            extrapolate_trace([TRAIN[0], other], 8192)

    def test_traces_sorted_automatically(self):
        res = extrapolate_trace([TRAIN[2], TRAIN[0], TRAIN[1]], 8192)
        assert res.report.core_counts == [1024, 2048, 4096]

    def test_bad_target(self):
        with pytest.raises(ValueError):
            extrapolate_trace(TRAIN, 0)

    @pytest.mark.parametrize("engine", ["batched", "reference"])
    def test_saturating_rate_series_stays_bounded(self, engine):
        """Regression: the rate trust region must not resurrect
        out-of-bounds values.

        A loaded trace can carry rate values slightly above 1 (nothing
        validates them at load time).  The bounds clamp fixes the
        prediction to 1.0, but the trust region's lower edge
        ``last - factor*spread`` sits *above* 1 for such a series, so
        the cap used to push the value back out of range — and
        ``np.maximum.accumulate`` then propagated it outward through
        the hierarchy.  Both engines must re-clamp after the cap and
        after monotonization.
        """
        train = []
        for p in (1024, 2048, 4096):
            t = synthetic_trace(p)
            for block in t.blocks.values():
                for ins in block.instructions:
                    # constant saturating series just above the bound:
                    # spread = 0, so the trust region degenerates to
                    # {1.05}, above the [0, 1] range
                    ins.features[SCHEMA.index("hit_rate_L1")] = 1.05
            train.append(t)
        res = extrapolate_trace(train, 8192, engine=engine)
        for block in res.trace.blocks.values():
            for ins in block.instructions:
                rates = SCHEMA.hit_rates(ins.features)
                assert np.all(rates >= 0.0) and np.all(rates <= 1.0)
                assert np.all(np.diff(rates) >= 0)

    def test_selection_is_pure(self):
        """Regression: predicting at a target must not change diagnostics."""
        res = extrapolate_trace(TRAIN, 8192)
        before = res.report.form_histogram()
        fit = res.report.fit_for(0, 0, "exec_count")
        errs_before = fit.training_max_rel_error()
        # predictions at adversarial targets used to mutate the stored
        # selection; the histogram and residuals must not move
        for target in (2, 8192, 10**9):
            fit.predict(target, SCHEMA.bounds("exec_count"))
            fit.select_for_target(target, SCHEMA.bounds("exec_count"))
        assert res.report.form_histogram() == before
        assert fit.training_max_rel_error() == errs_before
        assert fit.fit is fit.candidates[0]


class TestExtrapolateTraceMany:
    def test_sweep_matches_single_calls(self):
        targets = [8192, 16384, 32768]
        sweep = extrapolate_trace_many(TRAIN, targets)
        assert sweep.targets == targets
        for target in targets:
            single = extrapolate_trace(TRAIN, target).trace
            multi = sweep.trace_for(target)
            assert multi.n_ranks == target
            assert multi.extrapolated is True
            for bid in multi.blocks:
                for a, b in zip(
                    multi.blocks[bid].instructions,
                    single.blocks[bid].instructions,
                ):
                    assert np.array_equal(a.features, b.features)

    def test_one_report_shared(self):
        sweep = extrapolate_trace_many(TRAIN, [8192, 16384])
        assert all(r.report is sweep.report for r in sweep.results)

    def test_unknown_target_rejected(self):
        sweep = extrapolate_trace_many(TRAIN, [8192])
        with pytest.raises(KeyError):
            sweep.trace_for(999)

    def test_empty_targets_rejected(self):
        with pytest.raises(ValueError):
            extrapolate_trace_many(TRAIN, [])

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            extrapolate_trace_many(TRAIN, [8192, -1])


class TestInfluence:
    def test_threshold_filters_tiny_instructions(self):
        trace = synthetic_trace(1024)
        # add a negligible instruction to block 0
        trace.blocks[0].instructions.append(
            InstructionRecord(
                instr_id=1,
                kind="load",
                features=SCHEMA.vector_from_dict(
                    {"exec_count": 1.0, "mem_ops": 1.0, "loads": 1.0}
                ),
            )
        )
        report = influential_instructions(trace, threshold=0.001)
        assert (0, 0) in report.influential_set()
        assert (0, 1) not in report.influential_set()
        assert report.total_instructions == 3
        assert 0 < report.coverage() < 1

    def test_fp_only_instruction_judged_by_fp_share(self):
        trace = synthetic_trace(1024)
        trace.blocks[0].instructions.append(
            InstructionRecord(
                instr_id=1,
                kind="fp",
                features=SCHEMA.vector_from_dict(
                    {"exec_count": 100.0, "fp_fma": 1e9}
                ),
            )
        )
        report = influential_instructions(trace)
        assert (0, 1) in report.influential_set()

    def test_all_influential_when_threshold_zero(self):
        trace = synthetic_trace(1024)
        report = influential_instructions(trace, threshold=0.0)
        assert report.n_influential == trace.n_instructions


class TestErrors:
    def test_abs_rel_error(self):
        assert abs_rel_error(100.0, 95.0) == pytest.approx(0.05)
        assert abs_rel_error(0.0, 0.0) == 0.0
        assert abs_rel_error(0.0, 1.0) == np.inf

    def test_signed(self):
        assert signed_rel_error(100.0, 110.0) == pytest.approx(0.1)
        assert signed_rel_error(100.0, 90.0) == pytest.approx(-0.1)

    def test_percent(self):
        assert percent(0.05) == 5.0
