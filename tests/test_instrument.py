"""Unit tests: synthetic executable IR, PEBIL-like instrumentation, collection."""

import numpy as np
import pytest

from repro.cache.configs import blue_waters_p1
from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import CacheHierarchy
from repro.instrument.builder import ProgramBuilder
from repro.instrument.collector import CollectorConfig, collect_trace
from repro.instrument.pebil import InstrumentedProgram
from repro.instrument.program import (
    BasicBlockSpec,
    FpInstructionSpec,
    MemInstructionSpec,
    Program,
)
from repro.memstream.patterns import RandomPattern, StridedPattern
from repro.trace.records import SourceLocation
from repro.util.units import KB, MB


def small_hierarchy():
    return CacheHierarchy(
        [
            CacheGeometry(4 * KB, line_size=64, associativity=2, name="L1"),
            CacheGeometry(32 * KB, line_size=64, associativity=8, name="L2"),
        ],
        name="small",
    )


def demo_program(exec_count=2000):
    return (
        ProgramBuilder("demo")
        .block("alpha", file="a.f90", line=1)
        .load(StridedPattern(region_bytes=2 * KB), per_iteration=3)
        .store(StridedPattern(region_bytes=2 * KB))
        .fp({"fp_add": 2, "fp_fma": 1}, ilp=2.0, dep_chain=3.0)
        .executes(exec_count)
        .done()
        .block("beta", file="a.f90", line=40)
        .load(RandomPattern(region_bytes=1 * MB))
        .executes(exec_count // 2)
        .done()
        .build()
    )


class TestProgramIR:
    def test_block_requires_instructions(self):
        with pytest.raises(ValueError):
            BasicBlockSpec(
                block_id=0, location=SourceLocation(function="empty")
            )

    def test_mem_kind_validated(self):
        with pytest.raises(ValueError):
            MemInstructionSpec(kind="move", pattern=StridedPattern(region_bytes=64))

    def test_fp_op_classes_validated(self):
        with pytest.raises(ValueError):
            FpInstructionSpec(op_counts={"fp_sqrt": 1})
        with pytest.raises(ValueError):
            FpInstructionSpec(op_counts={})

    def test_counts(self):
        prog = demo_program(exec_count=100)
        b = prog.blocks[0]
        assert b.mem_accesses_per_iteration == 4
        assert b.total_mem_accesses == 400
        assert b.total_fp_ops == 300
        assert prog.total_mem_accesses == 400 + 50

    def test_duplicate_block_id_rejected(self):
        pb = ProgramBuilder("dup")
        pb.block("a", block_id=7).load(StridedPattern(region_bytes=64)).done()
        with pytest.raises(ValueError):
            pb.block("b", block_id=7).load(StridedPattern(region_bytes=64)).done()

    def test_layout_assigns_disjoint_regions(self):
        prog = demo_program()
        assert prog.laid_out
        regions = [
            (m.pattern.base, m.pattern.base + m.pattern.region_bytes)
            for b in prog.blocks
            for m in b.mem_instructions
        ]
        regions.sort()
        assert regions[0][0] > 0  # page zero unmapped
        for (lo1, hi1), (lo2, hi2) in zip(regions, regions[1:]):
            assert hi1 <= lo2  # no overlap

    def test_block_lookup(self):
        prog = demo_program()
        assert prog.block(0).location.function == "alpha"
        with pytest.raises(KeyError):
            prog.block(99)

    def test_footprint(self):
        prog = demo_program()
        assert prog.footprint_bytes() == 2 * KB + 2 * KB + 1 * MB


class TestInstrumentedProgram:
    def test_requires_layout(self):
        prog = Program(name="raw")
        prog.add_block(
            BasicBlockSpec(
                block_id=0,
                location=SourceLocation(function="f"),
                mem_instructions=(
                    MemInstructionSpec(
                        kind="load", pattern=StridedPattern(region_bytes=64)
                    ),
                ),
                exec_count=1,
            )
        )
        with pytest.raises(ValueError):
            InstrumentedProgram(prog, small_hierarchy())

    def test_observations_cover_all_blocks(self):
        prog = demo_program()
        report = InstrumentedProgram(
            prog, small_hierarchy(), sample_accesses=5_000
        ).run()
        assert set(report.observations) == {0, 1}

    def test_sampling_caps_and_scales(self):
        prog = demo_program(exec_count=10_000_000)
        ip = InstrumentedProgram(
            prog, small_hierarchy(), sample_accesses=4_000, max_sample_accesses=50_000
        )
        obs = ip.run().observation(0)
        assert obs.sampled_iterations < 10_000_000
        assert obs.full_iterations == 10_000_000
        assert obs.scale == pytest.approx(10_000_000 / obs.sampled_iterations)

    def test_small_blocks_fully_sampled(self):
        prog = demo_program(exec_count=50)
        obs = (
            InstrumentedProgram(prog, small_hierarchy(), sample_accesses=5_000)
            .run()
            .observation(0)
        )
        assert obs.sampled_iterations == 50
        assert obs.scale == 1.0

    def test_coverage_faithful_sampling(self):
        """Sample must cover region-or-cache even with a tiny base budget."""
        prog = (
            ProgramBuilder("big-sweep")
            .block("sweep")
            .load(StridedPattern(region_bytes=256 * KB))
            .executes(10_000_000)
            .done()
            .build()
        )
        h = small_hierarchy()  # largest cache: 32KB
        ip = InstrumentedProgram(prog, h, sample_accesses=100)
        obs = ip.run().observation(0)
        # coverage rule: at least 2 * 32KB / 8B = 8192 accesses sampled
        assert obs.accesses.sum() >= 2 * 32 * KB // 8

    def test_hit_rates_sane(self):
        prog = demo_program()
        obs = (
            InstrumentedProgram(prog, small_hierarchy(), sample_accesses=20_000)
            .run()
            .observation(0)
        )
        rates = obs.cumulative_hit_rates()
        assert rates.shape == (2, 2)
        assert np.all(rates >= 0) and np.all(rates <= 1)
        assert np.all(np.diff(rates, axis=1) >= 0)
        # 2KB strided region fits L1 after warm-up: near-perfect L1 rate
        assert rates[0, 0] > 0.95

    def test_served_counts_partition_accesses(self):
        prog = demo_program()
        obs = (
            InstrumentedProgram(prog, small_hierarchy(), sample_accesses=20_000)
            .run()
            .observation(1)
        )
        served = obs.served_counts()
        np.testing.assert_array_equal(served.sum(axis=1), obs.accesses)

    def test_deterministic(self):
        a = InstrumentedProgram(demo_program(), small_hierarchy()).run()
        b = InstrumentedProgram(demo_program(), small_hierarchy()).run()
        for bid in a.observations:
            np.testing.assert_array_equal(
                a.observation(bid).level_hits, b.observation(bid).level_hits
            )

    def test_missing_block_raises(self):
        report = InstrumentedProgram(demo_program(), small_hierarchy()).run()
        with pytest.raises(KeyError):
            report.observation(42)


class TestCollector:
    @pytest.fixture(scope="class")
    def trace(self):
        return collect_trace(
            demo_program(),
            small_hierarchy(),
            app="demo",
            rank=3,
            n_ranks=16,
            config=CollectorConfig(sample_accesses=20_000),
        )

    def test_metadata(self, trace):
        assert trace.app == "demo"
        assert trace.rank == 3
        assert trace.n_ranks == 16
        assert trace.target == "small"
        assert not trace.extrapolated

    def test_structure(self, trace):
        assert trace.n_blocks == 2
        b0 = trace.blocks[0]
        assert b0.n_instructions == 3  # load, store, fp
        kinds = [i.kind for i in b0.instructions]
        assert kinds == ["load", "store", "fp"]

    def test_counts_are_full_magnitudes(self, trace):
        schema = trace.schema
        load = trace.blocks[0].instructions[0]
        assert load.feature(schema, "mem_ops") == 3 * 2000
        assert load.feature(schema, "loads") == 3 * 2000
        assert load.feature(schema, "stores") == 0
        assert load.feature(schema, "exec_count") == 2000
        store = trace.blocks[0].instructions[1]
        assert store.feature(schema, "stores") == 2000

    def test_fp_features(self, trace):
        schema = trace.schema
        fp = trace.blocks[0].instructions[2]
        assert fp.feature(schema, "fp_add") == 2 * 2000
        assert fp.feature(schema, "fp_fma") == 2000
        assert fp.feature(schema, "mem_ops") == 0
        assert fp.feature(schema, "ilp") == 2.0

    def test_working_set_recorded(self, trace):
        schema = trace.schema
        beta_load = trace.blocks[1].instructions[0]
        assert beta_load.feature(schema, "working_set_bytes") == 1 * MB

    def test_hit_rates_recorded(self, trace):
        schema = trace.schema
        rates = schema.hit_rates(trace.blocks[0].instructions[0].features)
        assert rates[0] > 0.9  # 2KB region in 4KB L1

    def test_collect_against_bigger_target(self):
        """Cross-architectural: same program, different target hierarchy."""
        t_small = collect_trace(
            demo_program(), small_hierarchy(), app="d", rank=0, n_ranks=1,
            config=CollectorConfig(sample_accesses=20_000),
        )
        t_big = collect_trace(
            demo_program(), blue_waters_p1(), app="d", rank=0, n_ranks=1,
            config=CollectorConfig(sample_accesses=20_000),
        )
        s, b = t_small.schema, t_big.schema
        # 1MB random region: poor in 32KB L2, much better in 4MB L3
        small_l2 = t_small.blocks[1].instructions[0].features[s.index("hit_rate_L2")]
        big_l3 = t_big.blocks[1].instructions[0].features[b.index("hit_rate_L3")]
        assert big_l3 > small_l2
