"""Unit tests: the shared atomic-commit helpers (``repro.util.atomic``).

The contract every consumer (manifests, registry, DAG artifacts) leans
on: a destination file either holds the old bytes or the new bytes,
never a torn mix; a failed write changes nothing; temporaries never
survive; and the tmp naming preserves the real filename's suffix so
suffix-sniffing writers (``np.savez``) commit where they are told.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.util.atomic import (
    _tmp_name,
    atomic_dir,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    atomic_writer,
)


class TestAtomicWriter:
    def test_commit_replaces_destination(self, tmp_path):
        dest = tmp_path / "out.txt"
        dest.write_text("old")
        with atomic_writer(dest) as tmp:
            tmp.write_text("new")
        assert dest.read_text() == "new"

    def test_exception_leaves_destination_untouched(self, tmp_path):
        dest = tmp_path / "out.txt"
        dest.write_text("old")
        with pytest.raises(RuntimeError):
            with atomic_writer(dest) as tmp:
                tmp.write_text("half-written")
                raise RuntimeError("writer died")
        assert dest.read_text() == "old"

    def test_no_temporaries_survive(self, tmp_path):
        dest = tmp_path / "out.txt"
        with atomic_writer(dest) as tmp:
            tmp.write_text("x")
        with pytest.raises(ValueError):
            with atomic_writer(dest) as tmp:
                tmp.write_text("y")
                raise ValueError
        leftovers = [p for p in tmp_path.iterdir() if p.name != "out.txt"]
        assert leftovers == []

    def test_creates_missing_parent_dirs(self, tmp_path):
        dest = tmp_path / "a" / "b" / "out.txt"
        with atomic_writer(dest) as tmp:
            tmp.write_text("deep")
        assert dest.read_text() == "deep"

    def test_tmp_name_is_sibling_pid_unique_and_suffix_preserving(
        self, tmp_path
    ):
        dest = tmp_path / "trace.npz"
        tmp = _tmp_name(dest)
        assert tmp.parent == dest.parent  # same-fs os.replace
        assert str(os.getpid()) in tmp.name  # no cross-process clobber
        assert tmp.name.endswith(dest.name)  # suffix sniffing stays put

    def test_npz_writer_commits_at_destination(self, tmp_path):
        # np.savez appends ".npz" to any path lacking it; the suffix-
        # preserving tmp naming means the commit still lands on dest
        dest = tmp_path / "arrays.npz"
        with atomic_writer(dest) as tmp:
            np.savez_compressed(tmp, a=np.arange(4))
        with np.load(dest) as data:
            np.testing.assert_array_equal(data["a"], np.arange(4))
        assert [p.name for p in tmp_path.iterdir()] == ["arrays.npz"]


class TestAtomicWriteHelpers:
    def test_write_bytes(self, tmp_path):
        dest = atomic_write_bytes(tmp_path / "b.bin", b"\x00\x01")
        assert dest.read_bytes() == b"\x00\x01"

    def test_write_text(self, tmp_path):
        dest = atomic_write_text(tmp_path / "t.txt", "hello\n")
        assert dest.read_text() == "hello\n"

    def test_write_json_is_byte_stable(self, tmp_path):
        # same doc -> identical bytes (the digest-stability contract)
        doc = {"b": 2, "a": [1, {"z": None}]}
        p1 = atomic_write_json(tmp_path / "one.json", doc)
        p2 = atomic_write_json(tmp_path / "two.json", dict(reversed(doc.items())))
        assert p1.read_bytes() == p2.read_bytes()
        assert json.loads(p1.read_text()) == doc
        assert p1.read_text().endswith("\n")


class TestAtomicDir:
    def test_commit_renames_tree_into_place(self, tmp_path):
        dest = tmp_path / "entry"
        with atomic_dir(dest) as tmp:
            (tmp / "part.txt").write_text("data")
        assert (dest / "part.txt").read_text() == "data"

    def test_exception_discards_tmp_tree(self, tmp_path):
        dest = tmp_path / "entry"
        with pytest.raises(RuntimeError):
            with atomic_dir(dest) as tmp:
                (tmp / "part.txt").write_text("data")
                raise RuntimeError
        assert not dest.exists()
        assert list(tmp_path.iterdir()) == []

    def test_concurrent_winner_keeps_its_tree(self, tmp_path):
        # destination appearing mid-build means a concurrent writer won;
        # under content addressing the loser's tree is discarded free
        dest = tmp_path / "entry"
        with atomic_dir(dest) as tmp:
            (tmp / "part.txt").write_text("loser")
            dest.mkdir()
            (dest / "part.txt").write_text("winner")
        assert (dest / "part.txt").read_text() == "winner"
        assert [p.name for p in tmp_path.iterdir()] == ["entry"]
