"""Unit tests: feature schema, records, trace files, signatures, diffs."""

import numpy as np
import pytest

from repro.trace.diff import compare_traces
from repro.trace.features import BASE_FIELDS, FeatureSchema
from repro.trace.records import BasicBlockRecord, InstructionRecord, SourceLocation
from repro.trace.signature import ApplicationSignature
from repro.trace.tracefile import TraceFile


@pytest.fixture
def schema():
    return FeatureSchema(["L1", "L2", "L3"])


def make_instruction(schema, instr_id=0, kind="load", **features):
    return InstructionRecord(
        instr_id=instr_id, kind=kind, features=schema.vector_from_dict(features)
    )


def make_trace(schema, rank=0, n_ranks=8, blocks=2, instrs=2, scale=1.0):
    trace = TraceFile(
        app="test", rank=rank, n_ranks=n_ranks, target="tgt", schema=schema
    )
    for b in range(blocks):
        block = BasicBlockRecord(
            block_id=b, location=SourceLocation(function=f"f{b}", line=b)
        )
        for k in range(instrs):
            block.instructions.append(
                make_instruction(
                    schema,
                    instr_id=k,
                    exec_count=100.0 * scale,
                    mem_ops=700.0 * scale,
                    loads=700.0 * scale,
                    ref_bytes=8.0,
                    working_set_bytes=4096.0,
                    hit_rate_L1=0.9,
                    hit_rate_L2=0.95,
                    hit_rate_L3=1.0,
                )
            )
        trace.add_block(block)
    return trace


class TestFeatureSchema:
    def test_fields_layout(self, schema):
        assert schema.fields[: len(BASE_FIELDS)] == BASE_FIELDS
        assert schema.fields[-3:] == (
            "hit_rate_L1",
            "hit_rate_L2",
            "hit_rate_L3",
        )
        assert schema.n_features == len(BASE_FIELDS) + 3

    def test_index_and_unknown(self, schema):
        assert schema.index("mem_ops") == BASE_FIELDS.index("mem_ops")
        with pytest.raises(KeyError):
            schema.index("nope")

    def test_hit_rate_slice(self, schema):
        vec = schema.empty_vector()
        vec[schema.hit_rate_slice] = [0.1, 0.2, 0.3]
        np.testing.assert_allclose(schema.hit_rates(vec), [0.1, 0.2, 0.3])

    def test_bounds(self, schema):
        assert schema.bounds("hit_rate_L1") == (0.0, 1.0)
        lo, hi = schema.bounds("mem_ops")
        assert lo == 0.0 and hi == np.inf

    def test_vector_dict_round_trip(self, schema):
        vec = schema.vector_from_dict({"mem_ops": 5.0, "hit_rate_L2": 0.5})
        d = schema.dict_from_vector(vec)
        assert d["mem_ops"] == 5.0
        assert d["hit_rate_L2"] == 0.5
        assert d["fp_add"] == 0.0

    def test_dict_from_wrong_width(self, schema):
        with pytest.raises(ValueError):
            schema.dict_from_vector(np.zeros(3))

    def test_needs_a_level(self):
        with pytest.raises(ValueError):
            FeatureSchema([])

    def test_count_and_rate_classification(self, schema):
        assert schema.is_count_field("mem_ops")
        assert not schema.is_count_field("ilp")
        assert schema.is_rate_field("hit_rate_L3")
        assert not schema.is_rate_field("ref_bytes")


class TestRecords:
    def test_block_aggregate_counts_sum(self, schema):
        trace = make_trace(schema, instrs=3)
        agg = trace.blocks[0].aggregate(schema)
        assert agg["mem_ops"] == 3 * 700.0
        assert agg["hit_rate_L1"] == pytest.approx(0.9)

    def test_block_totals(self, schema):
        trace = make_trace(schema)
        assert trace.blocks[0].memory_ops(schema) == 1400.0
        assert trace.blocks[0].fp_ops(schema) == 0.0

    def test_empty_block_aggregate(self, schema):
        block = BasicBlockRecord(block_id=0, location=SourceLocation(function="f"))
        agg = block.aggregate(schema)
        assert all(v == 0.0 for v in agg.values())

    def test_source_location_str(self):
        loc = SourceLocation(function="solve", file="a.f90", line=10)
        assert "solve" in str(loc) and "a.f90:10" in str(loc)


class TestTraceFile:
    def test_duplicate_block_rejected(self, schema):
        trace = make_trace(schema)
        with pytest.raises(ValueError):
            trace.add_block(
                BasicBlockRecord(block_id=0, location=SourceLocation(function="f"))
            )

    def test_counts(self, schema):
        trace = make_trace(schema, blocks=3, instrs=2)
        assert trace.n_blocks == 3
        assert trace.n_instructions == 6
        assert trace.total_memory_ops() == 6 * 700.0

    def test_npz_round_trip(self, schema, tmp_path):
        trace = make_trace(schema)
        path = tmp_path / "t.npz"
        trace.save_npz(path)
        loaded = TraceFile.load_npz(path)
        assert loaded.app == trace.app
        assert loaded.n_ranks == trace.n_ranks
        assert loaded.schema.fields == trace.schema.fields
        assert loaded.n_instructions == trace.n_instructions
        for b1, b2 in zip(trace.sorted_blocks(), loaded.sorted_blocks()):
            assert b1.location == b2.location
            for i1, i2 in zip(b1.instructions, b2.instructions):
                assert i1.kind == i2.kind
                np.testing.assert_array_equal(i1.features, i2.features)

    def test_jsonl_round_trip(self, schema, tmp_path):
        trace = make_trace(schema, blocks=2)
        trace.extrapolated = True
        path = tmp_path / "t.jsonl"
        trace.save_jsonl(path)
        loaded = TraceFile.load_jsonl(path)
        assert loaded.extrapolated is True
        assert loaded.n_blocks == 2
        for b1, b2 in zip(trace.sorted_blocks(), loaded.sorted_blocks()):
            for i1, i2 in zip(b1.instructions, b2.instructions):
                np.testing.assert_allclose(i1.features, i2.features)

    def test_formats_agree(self, schema, tmp_path):
        trace = make_trace(schema)
        trace.save_npz(tmp_path / "t.npz")
        trace.save_jsonl(tmp_path / "t.jsonl")
        a = TraceFile.load_npz(tmp_path / "t.npz")
        b = TraceFile.load_jsonl(tmp_path / "t.jsonl")
        for b1, b2 in zip(a.sorted_blocks(), b.sorted_blocks()):
            for i1, i2 in zip(b1.instructions, b2.instructions):
                np.testing.assert_allclose(i1.features, i2.features)

    def test_empty_trace_round_trip(self, schema, tmp_path):
        trace = TraceFile(
            app="e", rank=0, n_ranks=1, target="tgt", schema=schema
        )
        trace.save_npz(tmp_path / "e.npz")
        loaded = TraceFile.load_npz(tmp_path / "e.npz")
        assert loaded.n_blocks == 0


class TestApplicationSignature:
    def test_add_trace_validations(self, schema):
        sig = ApplicationSignature(app="test", n_ranks=8, target="tgt")
        sig.add_trace(make_trace(schema, rank=0))
        with pytest.raises(ValueError):
            sig.add_trace(make_trace(schema, rank=0))  # duplicate rank
        with pytest.raises(ValueError):
            sig.add_trace(make_trace(schema, rank=1, n_ranks=16))
        bad_app = make_trace(schema, rank=2)
        bad_app.app = "other"
        with pytest.raises(ValueError):
            sig.add_trace(bad_app)

    def test_slowest_by_profile(self, schema):
        sig = ApplicationSignature(
            app="test",
            n_ranks=8,
            target="tgt",
            compute_times={0: 1.0, 3: 5.0, 7: 2.0},
        )
        assert sig.slowest_rank() == 3

    def test_slowest_ties_break_low(self, schema):
        sig = ApplicationSignature(
            app="test", n_ranks=8, target="tgt", compute_times={2: 5.0, 1: 5.0}
        )
        assert sig.slowest_rank() == 1

    def test_slowest_fallback_memops(self, schema):
        sig = ApplicationSignature(app="test", n_ranks=8, target="tgt")
        sig.add_trace(make_trace(schema, rank=0, scale=1.0))
        sig.add_trace(make_trace(schema, rank=1, scale=2.0))
        assert sig.slowest_rank() == 1

    def test_slowest_trace_missing(self, schema):
        sig = ApplicationSignature(
            app="test", n_ranks=8, target="tgt", compute_times={5: 9.0}
        )
        with pytest.raises(KeyError):
            sig.slowest_trace()

    def test_dir_round_trip(self, schema, tmp_path):
        sig = ApplicationSignature(
            app="test", n_ranks=8, target="tgt", compute_times={0: 1.5, 1: 2.5}
        )
        sig.add_trace(make_trace(schema, rank=0))
        sig.add_trace(make_trace(schema, rank=1, scale=2.0))
        sig.save_dir(tmp_path / "sig")
        loaded = ApplicationSignature.load_dir(tmp_path / "sig")
        assert loaded.ranks == [0, 1]
        assert loaded.compute_times == {0: 1.5, 1: 2.5}
        assert loaded.slowest_rank() == 1


class TestTraceDiff:
    def test_identical_traces_zero_error(self, schema):
        a, b = make_trace(schema), make_trace(schema)
        diff = compare_traces(a, b)
        assert diff.max_abs_rel_error() == 0.0

    def test_scaled_trace_error(self, schema):
        a = make_trace(schema, scale=1.0)
        b = make_trace(schema, scale=1.1)
        diff = compare_traces(a, b, fields=["mem_ops"])
        assert diff.max_abs_rel_error() == pytest.approx(0.1)
        assert diff.median_abs_rel_error() == pytest.approx(0.1)

    def test_zero_expected_nonzero_actual_is_inf(self, schema):
        a, b = make_trace(schema), make_trace(schema)
        b.blocks[0].instructions[0].features[schema.index("fp_add")] = 5.0
        diff = compare_traces(a, b, fields=["fp_add"])
        assert diff.max_abs_rel_error() == np.inf

    def test_block_filter(self, schema):
        a = make_trace(schema, blocks=3)
        b = make_trace(schema, blocks=3, scale=2.0)
        diff = compare_traces(a, b, block_ids=[1], fields=["mem_ops"])
        assert all(e.block_id == 1 for e in diff.errors)

    def test_structure_mismatch_rejected(self, schema):
        a = make_trace(schema, blocks=2)
        b = make_trace(schema, blocks=1)
        with pytest.raises(KeyError):
            compare_traces(a, b)

    def test_worst_sorted(self, schema):
        a = make_trace(schema)
        b = make_trace(schema)
        b.blocks[0].instructions[0].features[schema.index("mem_ops")] *= 2
        b.blocks[1].instructions[0].features[schema.index("mem_ops")] *= 1.5
        worst = compare_traces(a, b, fields=["mem_ops"]).worst(2)
        assert worst[0].abs_rel_error >= worst[1].abs_rel_error
