"""``repro serve`` end-to-end: validation, load-gen, JSONL protocol.

Flag validation must exit 2 with one actionable line *before* any
fitting starts; the load-gen path must print the service-rate summary
and leave a persisted model behind; the stdin protocol must answer
well-formed requests and reject malformed ones per line without dying.
"""

from __future__ import annotations

import io
import json
import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.cli import main

BASE = ["serve", "--app", "jacobi", "--train", "4,8,16"]

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run(capsys, argv):
    rc = main(argv)
    captured = capsys.readouterr()
    return rc, captured.out, captured.err


class TestServeValidation:
    def test_unwritable_registry_dir(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory must go")
        rc, _, err = _run(
            capsys, BASE + ["--registry", str(blocker / "models")]
        )
        assert rc == 2
        assert "--registry" in err and "not writable" in err
        assert "Traceback" not in err

    @pytest.mark.parametrize("window", ["0", "-1.5"])
    def test_non_positive_batch_window(self, tmp_path, capsys, window):
        rc, _, err = _run(
            capsys,
            BASE + ["--registry", str(tmp_path), "--batch-window", window],
        )
        assert rc == 2
        assert "--batch-window must be positive" in err

    @pytest.mark.parametrize(
        "flag,value,needle",
        [
            ("--batch-max", "0", "--batch-max"),
            ("--queue-depth", "0", "--queue-depth"),
            ("--mem-models", "0", "--mem-models"),
            ("--load-gen", "0", "--load-gen"),
        ],
    )
    def test_non_positive_knobs(self, tmp_path, capsys, flag, value, needle):
        rc, _, err = _run(
            capsys, BASE + ["--registry", str(tmp_path), flag, value]
        )
        assert rc == 2 and needle in err

    def test_unknown_app_checked_before_fitting(self, tmp_path, capsys):
        rc, _, err = _run(
            capsys,
            ["serve", "--app", "nope", "--train", "4,8,16",
             "--registry", str(tmp_path / "reg")],
        )
        assert rc == 2 and "unknown application" in err
        # validation failed before the registry was even created
        assert not (tmp_path / "reg").exists()


class TestServeLoadGen:
    def test_load_gen_reports_and_persists(self, tmp_path, capsys):
        registry = tmp_path / "reg"
        manifest = tmp_path / "run_manifest.json"
        rc, out, _ = _run(
            capsys,
            BASE
            + [
                "--registry", str(registry),
                "--load-gen", "120",
                "--load-targets", "32,64,128",
                "--manifest-out", str(manifest),
            ],
        )
        assert rc == 0
        line = next(
            ln for ln in out.splitlines() if ln.startswith("serve-load:")
        )
        assert "qps=" in line and "p95_ms=" in line and "mean_batch=" in line
        assert "rejected=0" in line
        # one model landed in the registry's sharded tree
        assert len(list(registry.glob("*/*/meta.json"))) == 1
        # the manifest digests the serve summary artifact
        doc = json.loads(manifest.read_text())
        assert "serve_summary.json" in doc["outputs"]

    def test_second_run_reuses_the_registry(self, tmp_path, capsys):
        registry = tmp_path / "reg"
        argv = BASE + [
            "--registry", str(registry),
            "--load-gen", "40",
            "--load-targets", "32,64",
        ]
        assert _run(capsys, argv)[0] == 0
        assert _run(capsys, argv)[0] == 0
        # same spec, same digest: still exactly one persisted model
        assert len(list(registry.glob("*/*/meta.json"))) == 1


class TestServeSummaryOut:
    def test_summary_out_records_every_layer(self, tmp_path, capsys):
        summary_path = tmp_path / "serve_summary.json"
        rc, _, _ = _run(
            capsys,
            BASE
            + [
                "--registry", str(tmp_path / "reg"),
                "--load-gen", "40",
                "--load-targets", "32,64",
                "--summary-out", str(summary_path),
            ],
        )
        assert rc == 0
        doc = json.loads(summary_path.read_text())
        assert set(doc) >= {
            "engine", "batcher", "registry", "latency", "resilience", "load"
        }
        assert doc["load"]["n_queries"] == 40
        assert doc["load"]["rejected"] == 0 and doc["load"]["errors"] == 0
        # a clean run: the resilience tally is all zeros
        res = doc["resilience"]
        assert res["batch_failures"] == 0 and res["breaker_opens"] == 0
        assert res["deadline_expired"] == 0 and res["transitions"] == []
        # accounting closes: every generated query is accounted for
        eng = doc["engine"]
        assert eng["queries"] == (
            eng["answered"] + eng["failed"] + eng["rejected"]
        )
        assert eng["answered"] == 40

    def test_unwritable_summary_out_exits_2(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("file, not dir")
        rc, _, err = _run(
            capsys,
            BASE
            + [
                "--registry", str(tmp_path / "reg"),
                "--load-gen", "8",
                "--summary-out", str(blocker / "summary.json"),
            ],
        )
        assert rc == 2
        assert "--summary-out" in err and "Traceback" not in err


class TestServeTelemetry:
    def test_flight_recorder_books_close_exactly(self, tmp_path, capsys):
        """The acceptance contract: interval-summed recorder counters
        equal the serve summary's end-of-run tallies *exactly*."""
        from repro.obs.telemetry import (
            merged_hist, read_flight_records, sum_counters,
        )
        from tests.check_obs_artifacts import check_artifacts

        flight = tmp_path / "flight.jsonl"
        prom = tmp_path / "metrics.prom"
        summary = tmp_path / "serve_summary.json"
        manifest = tmp_path / "run_manifest.json"
        rc, out, _ = _run(
            capsys,
            BASE
            + [
                "--registry", str(tmp_path / "reg"),
                "--load-gen", "80",
                "--load-targets", "32,64,128",
                "--telemetry-out", str(flight),
                "--prom-out", str(prom),
                "--telemetry-interval", "25",
                "--summary-out", str(summary),
                "--manifest-out", str(manifest),
            ],
        )
        assert rc == 0
        records = read_flight_records(flight)
        assert records and records[-1]["final"]
        assert check_artifacts(telemetry=flight) == []
        # exact telescoping against the summary document
        totals = sum_counters(records)
        eng = json.loads(summary.read_text())["engine"]
        for field in ("queries", "answered", "failed", "rejected"):
            assert totals.get(f"serve.{field}", 0) == eng[field], field
        # every answered query's latency landed in exactly one interval
        assert merged_hist(records, "serve.latency_s").count == (
            eng["answered"]
        )
        # the Prometheus scrape file was left behind, parseable
        text = prom.read_text()
        assert "# TYPE repro_serve_queries_total counter" in text
        assert "# TYPE repro_serve_latency_seconds histogram" in text
        assert f"repro_serve_queries_total {eng['queries']}" in text
        # both artifacts are digested into the manifest
        outputs = json.loads(manifest.read_text())["outputs"]
        assert "telemetry.jsonl" in outputs and "metrics.prom" in outputs

    def test_unwritable_telemetry_out_exits_2(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("file, not dir")
        rc, _, err = _run(
            capsys,
            BASE
            + [
                "--registry", str(tmp_path / "reg"),
                "--load-gen", "8",
                "--telemetry-out", str(blocker / "flight.jsonl"),
            ],
        )
        assert rc == 2
        assert "--telemetry-out" in err and "Traceback" not in err

    @pytest.mark.parametrize("interval", ["0", "-5"])
    def test_non_positive_interval_exits_2(self, tmp_path, capsys, interval):
        rc, _, err = _run(
            capsys,
            BASE
            + [
                "--registry", str(tmp_path / "reg"),
                "--load-gen", "8",
                "--telemetry-out", str(tmp_path / "flight.jsonl"),
                "--telemetry-interval", interval,
            ],
        )
        assert rc == 2
        assert "--telemetry-interval" in err and "Traceback" not in err


class TestServeDrain:
    def _spawn_serve(self, registry, *extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--app", "jacobi", "--train", "4,8,16",
                "--registry", str(registry), *extra,
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            cwd=str(REPO_ROOT),
            env=env,
        )

    @staticmethod
    def _readline(proc, timeout_s=240.0):
        """One stdout line, or kill the subprocess and fail loudly."""
        box = {}

        def read():
            box["line"] = proc.stdout.readline()

        t = threading.Thread(target=read, daemon=True)
        t.start()
        t.join(timeout_s)
        if t.is_alive():
            proc.kill()
            _, err = proc.communicate()
            raise AssertionError(f"serve produced no answer; stderr:\n{err}")
        return box["line"]

    def test_sigterm_answers_inflight_and_exits_zero(self, tmp_path, capsys, monkeypatch):
        registry = tmp_path / "reg"
        # warm the registry in-process so the subprocess loads, not fits
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        assert main(BASE + ["--registry", str(registry)]) == 0
        capsys.readouterr()

        summary_path = tmp_path / "summary.json"
        proc = self._spawn_serve(
            registry, "--summary-out", str(summary_path)
        )
        try:
            proc.stdin.write('{"id": 1, "target": 64}\n')
            proc.stdin.flush()
            doc = json.loads(self._readline(proc))
            assert doc["ok"] and doc["id"] == 1
            proc.send_signal(signal.SIGTERM)
            # wait WITHOUT closing stdin: an EOF would race the signal
            # and exit through the non-drain path
            proc.wait(timeout=120)
            err = proc.stderr.read()
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdin.close()
            proc.stdout.close()
            proc.stderr.close()
        # the drain contract: exit 0, with a final stderr summary line
        assert proc.returncode == 0
        drain = next(
            ln for ln in err.splitlines() if ln.startswith("serve-drain:")
        )
        assert "answered=1" in drain
        assert "deadline_expired=0" in drain
        # and the summary artifact still lands on the way out
        summary = json.loads(summary_path.read_text())
        assert summary["engine"]["answered"] == 1


class TestServeStdin:
    def _serve_stdin(self, tmp_path, capsys, monkeypatch, lines):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("".join(f"{ln}\n" for ln in lines))
        )
        rc, out, err = _run(
            capsys, BASE + ["--registry", str(tmp_path / "reg")]
        )
        return rc, [json.loads(ln) for ln in out.splitlines() if ln]

    def test_answers_requests_and_isolates_bad_lines(
        self, tmp_path, capsys, monkeypatch
    ):
        rc, docs = self._serve_stdin(
            tmp_path,
            capsys,
            monkeypatch,
            [
                '{"id": 1, "target": 64}',
                "not json at all",
                '{"id": 3, "target": -5}',
                '{"id": 4, "target": 128, "tenant": "t2"}',
            ],
        )
        assert rc == 0
        by_id = {doc["id"]: doc for doc in docs}
        assert by_id[1]["ok"] and by_id[1]["target"] == 64
        assert set(by_id[1]["mean_hit_rates"]) == {"L1", "L2", "L3"}
        assert len(by_id[1]["features_sha256"]) == 64
        assert by_id[4]["ok"]
        assert not by_id[3]["ok"] and "positive" in by_id[3]["error"]
        bad = [d for d in docs if d["id"] is None]
        assert len(bad) == 1 and not bad[0]["ok"]

    def test_answers_are_bit_identical_across_runs(
        self, tmp_path, capsys, monkeypatch
    ):
        lines = ['{"id": 1, "target": 64}']
        _, first = self._serve_stdin(tmp_path, capsys, monkeypatch, lines)
        rc, second = self._serve_stdin(tmp_path, capsys, monkeypatch, lines)
        assert rc == 0
        # run 1 fitted the model, run 2 served it from the registry:
        # the feature digests must agree bit for bit
        assert (
            first[0]["features_sha256"] == second[0]["features_sha256"]
        )
