"""``repro serve`` end-to-end: validation, load-gen, JSONL protocol.

Flag validation must exit 2 with one actionable line *before* any
fitting starts; the load-gen path must print the service-rate summary
and leave a persisted model behind; the stdin protocol must answer
well-formed requests and reject malformed ones per line without dying.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main

BASE = ["serve", "--app", "jacobi", "--train", "4,8,16"]


def _run(capsys, argv):
    rc = main(argv)
    captured = capsys.readouterr()
    return rc, captured.out, captured.err


class TestServeValidation:
    def test_unwritable_registry_dir(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory must go")
        rc, _, err = _run(
            capsys, BASE + ["--registry", str(blocker / "models")]
        )
        assert rc == 2
        assert "--registry" in err and "not writable" in err
        assert "Traceback" not in err

    @pytest.mark.parametrize("window", ["0", "-1.5"])
    def test_non_positive_batch_window(self, tmp_path, capsys, window):
        rc, _, err = _run(
            capsys,
            BASE + ["--registry", str(tmp_path), "--batch-window", window],
        )
        assert rc == 2
        assert "--batch-window must be positive" in err

    @pytest.mark.parametrize(
        "flag,value,needle",
        [
            ("--batch-max", "0", "--batch-max"),
            ("--queue-depth", "0", "--queue-depth"),
            ("--mem-models", "0", "--mem-models"),
            ("--load-gen", "0", "--load-gen"),
        ],
    )
    def test_non_positive_knobs(self, tmp_path, capsys, flag, value, needle):
        rc, _, err = _run(
            capsys, BASE + ["--registry", str(tmp_path), flag, value]
        )
        assert rc == 2 and needle in err

    def test_unknown_app_checked_before_fitting(self, tmp_path, capsys):
        rc, _, err = _run(
            capsys,
            ["serve", "--app", "nope", "--train", "4,8,16",
             "--registry", str(tmp_path / "reg")],
        )
        assert rc == 2 and "unknown application" in err
        # validation failed before the registry was even created
        assert not (tmp_path / "reg").exists()


class TestServeLoadGen:
    def test_load_gen_reports_and_persists(self, tmp_path, capsys):
        registry = tmp_path / "reg"
        manifest = tmp_path / "run_manifest.json"
        rc, out, _ = _run(
            capsys,
            BASE
            + [
                "--registry", str(registry),
                "--load-gen", "120",
                "--load-targets", "32,64,128",
                "--manifest-out", str(manifest),
            ],
        )
        assert rc == 0
        line = next(
            ln for ln in out.splitlines() if ln.startswith("serve-load:")
        )
        assert "qps=" in line and "p95_ms=" in line and "mean_batch=" in line
        assert "rejected=0" in line
        # one model landed in the registry's sharded tree
        assert len(list(registry.glob("*/*/meta.json"))) == 1
        # the manifest digests the serve summary artifact
        doc = json.loads(manifest.read_text())
        assert "serve_summary.json" in doc["outputs"]

    def test_second_run_reuses_the_registry(self, tmp_path, capsys):
        registry = tmp_path / "reg"
        argv = BASE + [
            "--registry", str(registry),
            "--load-gen", "40",
            "--load-targets", "32,64",
        ]
        assert _run(capsys, argv)[0] == 0
        assert _run(capsys, argv)[0] == 0
        # same spec, same digest: still exactly one persisted model
        assert len(list(registry.glob("*/*/meta.json"))) == 1


class TestServeStdin:
    def _serve_stdin(self, tmp_path, capsys, monkeypatch, lines):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO("".join(f"{ln}\n" for ln in lines))
        )
        rc, out, err = _run(
            capsys, BASE + ["--registry", str(tmp_path / "reg")]
        )
        return rc, [json.loads(ln) for ln in out.splitlines() if ln]

    def test_answers_requests_and_isolates_bad_lines(
        self, tmp_path, capsys, monkeypatch
    ):
        rc, docs = self._serve_stdin(
            tmp_path,
            capsys,
            monkeypatch,
            [
                '{"id": 1, "target": 64}',
                "not json at all",
                '{"id": 3, "target": -5}',
                '{"id": 4, "target": 128, "tenant": "t2"}',
            ],
        )
        assert rc == 0
        by_id = {doc["id"]: doc for doc in docs}
        assert by_id[1]["ok"] and by_id[1]["target"] == 64
        assert set(by_id[1]["mean_hit_rates"]) == {"L1", "L2", "L3"}
        assert len(by_id[1]["features_sha256"]) == 64
        assert by_id[4]["ok"]
        assert not by_id[3]["ok"] and "positive" in by_id[3]["error"]
        bad = [d for d in docs if d["id"] is None]
        assert len(bad) == 1 and not bad[0]["ok"]

    def test_answers_are_bit_identical_across_runs(
        self, tmp_path, capsys, monkeypatch
    ):
        lines = ['{"id": 1, "target": 64}']
        _, first = self._serve_stdin(tmp_path, capsys, monkeypatch, lines)
        rc, second = self._serve_stdin(tmp_path, capsys, monkeypatch, lines)
        assert rc == 0
        # run 1 fitted the model, run 2 served it from the registry:
        # the feature digests must agree bit for bit
        assert (
            first[0]["features_sha256"] == second[0]["features_sha256"]
        )
