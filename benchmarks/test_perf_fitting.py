"""Throughput benchmarks of the batched fitting & extrapolation engine.

Guards the PR's two headline wins against regression:

- **fit+extrapolate**: the batched engine must beat the per-element
  scalar reference by >= 10x on the Table I SPECFEM3D trace series;
- **multi-target sweep**: a 16-target what-if sweep through
  ``predict_many`` must beat 16 independent ``extrapolate_trace`` calls
  by >= 5x;

and, inseparable from the speed claims, the agreement contract: every
synthesized feature value within 1e-9 relative of the reference path
with exact ties on form selection.

Set ``REPRO_BENCH_SMOKE=1`` (the CI default) to run on a synthetic
trace series instead of collecting SPECFEM3D, with thresholds relaxed
for noisy shared runners.  Numbers are merged into
``results/BENCH_pipeline.json`` next to the PR-1 substrate metrics.
"""

import os
import time

import numpy as np
import pytest

from repro.core.extrapolate import extrapolate_trace, extrapolate_trace_many
from repro.core.fitting import fit_feature_series
from repro.trace.features import FeatureSchema
from repro.trace.records import BasicBlockRecord, InstructionRecord, SourceLocation
from repro.trace.tracefile import TraceFile

from benchmarks.conftest import (
    SPECFEM_TARGET,
    SPECFEM_TRAIN,
    merge_bench,
    slowest_trace,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: speedup floors; CI smoke runners are noisy and the synthetic series
#: is smaller than the real trace, so smoke mode relaxes them
MIN_FIT_SPEEDUP = 3.0 if SMOKE else 10.0
MIN_SWEEP_SPEEDUP = 1.5 if SMOKE else 5.0

SWEEP_TARGETS = [SPECFEM_TARGET * (i + 1) for i in range(16)]


def _synthetic_training(n_blocks=120):
    """A collection-free training series with varied scaling shapes."""
    schema = FeatureSchema(["L1", "L2", "L3"])
    rng = np.random.default_rng(42)
    shapes = rng.integers(0, 4, size=n_blocks)
    traces = []
    for n_ranks in (96, 384, 1536):
        trace = TraceFile(
            app="synt", rank=0, n_ranks=n_ranks, target="tgt", schema=schema
        )
        for b in range(n_blocks):
            block = BasicBlockRecord(
                block_id=b, location=SourceLocation(function=f"f{b}")
            )
            base = 1e7 * (1 + b % 7)
            if shapes[b] == 0:
                count = base / n_ranks
            elif shapes[b] == 1:
                count = base * np.log2(n_ranks)
            elif shapes[b] == 2:
                count = base
            else:
                count = base / np.sqrt(n_ranks)
            block.instructions.append(
                InstructionRecord(
                    instr_id=0,
                    kind="load",
                    features=schema.vector_from_dict(
                        {
                            "exec_count": count,
                            "mem_ops": 4 * count,
                            "loads": 3 * count,
                            "stores": count,
                            "ref_bytes": 8.0,
                            "working_set_bytes": 8 * base / n_ranks,
                            "hit_rate_L1": 0.80 + 1e-5 * n_ranks * (b % 3),
                            "hit_rate_L2": min(0.90 + 2e-5 * n_ranks, 1.0),
                            "hit_rate_L3": 1.0,
                        }
                    ),
                )
            )
            trace.add_block(block)
        traces.append(trace)
    return traces


@pytest.fixture(scope="module")
def training_traces():
    if SMOKE:
        return _synthetic_training()
    return [
        slowest_trace("specfem3d", p, "blue_waters_p1") for p in SPECFEM_TRAIN
    ]


def _best_of(fn, repeats=3):
    best = np.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _n_elements(trace):
    return trace.n_instructions * trace.schema.n_features


def test_batched_fit_extrapolate_speedup(training_traces):
    """Tentpole criterion: batched fit+extrapolate >= 10x the reference."""
    target = SPECFEM_TARGET
    t_batched, res_b = _best_of(
        lambda: extrapolate_trace(training_traces, target, engine="batched")
    )
    t_reference, res_r = _best_of(
        lambda: extrapolate_trace(training_traces, target, engine="reference")
    )

    # the speed claim is meaningless without the agreement contract
    tb, tr = res_b.trace, res_r.trace
    for bid in tb.blocks:
        for ib, ir in zip(
            tb.blocks[bid].instructions, tr.blocks[bid].instructions
        ):
            np.testing.assert_allclose(
                ib.features, ir.features, rtol=1e-9, atol=1e-300
            )
    assert res_b.report.form_histogram() == res_r.report.form_histogram()

    n_el = _n_elements(training_traces[0])
    speedup = t_reference / t_batched
    merge_bench(
        "BENCH_pipeline",
        {
            "fitting_smoke": SMOKE,
            "fit_elements": n_el,
            "fit_batched_elements_per_s": round(n_el / t_batched, 1),
            "fit_reference_elements_per_s": round(n_el / t_reference, 1),
            "fit_speedup": round(speedup, 1),
        },
    )
    assert speedup >= MIN_FIT_SPEEDUP, (
        f"batched fit+extrapolate only {speedup:.1f}x faster than the "
        f"reference (need >= {MIN_FIT_SPEEDUP}x)"
    )


def test_multi_target_sweep_speedup(training_traces):
    """Sweep criterion: 16 targets via predict_many >= 5x 16 single calls."""
    t_sweep, sweep = _best_of(
        lambda: extrapolate_trace_many(training_traces, SWEEP_TARGETS)
    )

    def independent():
        return [
            extrapolate_trace(training_traces, t) for t in SWEEP_TARGETS
        ]

    t_independent, singles = _best_of(independent)

    # the sweep must synthesize the same traces the single calls do
    for single, target in zip(singles, SWEEP_TARGETS):
        multi = sweep.trace_for(target)
        for bid in multi.blocks:
            for a, b in zip(
                multi.blocks[bid].instructions,
                single.trace.blocks[bid].instructions,
            ):
                assert np.array_equal(a.features, b.features)

    speedup = t_independent / t_sweep
    merge_bench(
        "BENCH_pipeline",
        {
            "sweep_targets": len(SWEEP_TARGETS),
            "sweep_targets_per_s": round(len(SWEEP_TARGETS) / t_sweep, 1),
            "sweep_speedup_vs_independent": round(speedup, 1),
        },
    )
    assert speedup >= MIN_SWEEP_SPEEDUP, (
        f"16-target sweep only {speedup:.1f}x faster than independent "
        f"calls (need >= {MIN_SWEEP_SPEEDUP}x)"
    )


def test_predict_many_matrix_throughput(training_traces):
    """The matrix-only sweep path (no TraceFile assembly) in targets/s."""
    schema = training_traces[0].schema
    template = training_traces[0]
    series = {}
    for bid in sorted(template.blocks):
        for k in range(template.blocks[bid].n_instructions):
            series[(bid, k)] = np.stack(
                [
                    t.blocks[bid].instructions[k].features
                    for t in sorted(training_traces, key=lambda t: t.n_ranks)
                ]
            )
    counts = sorted(t.n_ranks for t in training_traces)
    report = fit_feature_series(schema, counts, series)
    t_eval, _ = _best_of(lambda: report.predict_many(SWEEP_TARGETS))
    merge_bench(
        "BENCH_pipeline",
        {
            "predict_many_targets_per_s": round(
                len(SWEEP_TARGETS) / t_eval, 1
            ),
        },
    )
    assert t_eval < 1.0  # 16 whole-trace evaluations stay interactive
