"""Throughput microbenchmarks of the two hot substrates.

Not a paper table — these guard the engineering properties the pipeline
depends on: the vectorized cache simulator (addresses/second) and the
replay engine (events/second).  Regressions here directly inflate every
experiment's wall-clock.
"""

import numpy as np
import pytest

from repro.cache.configs import blue_waters_p1
from repro.cache.simulator import HierarchySimulator
from repro.machine.network import NetworkParameters
from repro.memstream.patterns import RandomPattern, StridedPattern
from repro.psins.replay import ComputationTimer, replay_job
from repro.simmpi.runtime import run_job
from repro.util.rng import stream
from repro.util.units import MB


@pytest.mark.benchmark(group="perf-cache")
@pytest.mark.parametrize(
    "pattern_name,pattern",
    [
        ("strided", StridedPattern(region_bytes=8 * MB)),
        ("random", RandomPattern(region_bytes=8 * MB)),
    ],
)
def test_cache_simulator_throughput(benchmark, pattern_name, pattern):
    addrs = pattern.addresses(0, 1 << 18, stream("perf", pattern_name))
    sim = HierarchySimulator(blue_waters_p1())

    def run():
        sim.process(addrs)

    benchmark(run)
    assert sim.result().total_accesses > 0


@pytest.mark.benchmark(group="perf-replay")
def test_replay_engine_throughput(benchmark):
    class NullTimer(ComputationTimer):
        def time_s(self, rank, block_id, iterations):
            return 1e-6

    def fn(comm):
        left = (comm.rank - 1) % comm.size
        right = (comm.rank + 1) % comm.size
        for step in range(5):
            comm.compute(0, 100)
            comm.send(right, 1024, tag=0)
            comm.recv(left, 1024, tag=0)
            comm.allreduce(8)

    job = run_job("perf", 512, fn)
    net = NetworkParameters()

    result = benchmark(lambda: replay_job(job, NullTimer(), net))
    assert result.n_events == 512 * 5 * 4


# ----------------------------------------------------------------------
# end-to-end collection throughput: cold vs memoized

from repro.apps.jacobi import JacobiParams, JacobiProxy  # noqa: E402
from repro.exec.sigcache import SignatureCache  # noqa: E402
from repro.instrument.collector import CollectorConfig  # noqa: E402
from repro.pipeline.collect import CollectionSettings, collect_signature  # noqa: E402

_COLLECT_APP = JacobiProxy(JacobiParams(global_cells=(64, 64, 64), n_steps=2))
_COLLECT_RANKS = 16
_COLLECT_SETTINGS = CollectionSettings(
    collector=CollectorConfig(
        sample_accesses=50_000, max_sample_accesses=500_000
    ),
    workers=0,
)


@pytest.mark.benchmark(group="perf-collect")
def test_collect_signature_cold(benchmark, bw_machine):
    """Full collection every round: profile + trace + cache simulation."""

    def run():
        return collect_signature(
            _COLLECT_APP, _COLLECT_RANKS, bw_machine.hierarchy, _COLLECT_SETTINGS
        )

    signature = benchmark(run)
    assert signature.slowest_trace().n_blocks > 0


@pytest.mark.benchmark(group="perf-collect")
def test_collect_signature_memoized(benchmark, bw_machine, tmp_path):
    """Warm-cache path: every round is a disk hit, no recollection."""
    cache = SignatureCache(tmp_path)
    warm = collect_signature(
        _COLLECT_APP,
        _COLLECT_RANKS,
        bw_machine.hierarchy,
        _COLLECT_SETTINGS,
        cache=cache,
    )

    def run():
        return collect_signature(
            _COLLECT_APP,
            _COLLECT_RANKS,
            bw_machine.hierarchy,
            _COLLECT_SETTINGS,
            cache=cache,
        )

    signature = benchmark(run)
    assert cache.stats.hits >= 1
    assert signature.slowest_trace().n_blocks == warm.slowest_trace().n_blocks


def test_record_pipeline_baseline(bw_machine, tmp_path):
    """Measure the pipeline's perf substrates and persist a trajectory.

    Not a pass/fail benchmark: it writes ``results/BENCH_pipeline.json``
    so future PRs can diff cache-simulator throughput and collection
    cold/memoized wall-clock against this PR's numbers.
    """
    import time

    from repro.util.units import MB

    entry = {"schema": 1, "accesses": 1 << 18}

    for name, pattern in [
        ("strided", StridedPattern(region_bytes=8 * MB)),
        ("random", RandomPattern(region_bytes=8 * MB)),
    ]:
        addrs = pattern.addresses(0, 1 << 18, stream("perf", name))
        sim = HierarchySimulator(blue_waters_p1())
        sim.process(addrs)  # warm the state like the throughput bench
        best = min(
            _timed(lambda: sim.process(addrs), time) for _ in range(5)
        )
        entry[f"cache_sim_{name}_maccess_per_s"] = round(
            (1 << 18) / best / 1e6, 3
        )

    cache = SignatureCache(tmp_path / "sigcache")
    t0 = time.perf_counter()
    collect_signature(
        _COLLECT_APP,
        _COLLECT_RANKS,
        bw_machine.hierarchy,
        _COLLECT_SETTINGS,
        cache=cache,
    )
    entry["collect_cold_s"] = round(time.perf_counter() - t0, 4)
    t0 = time.perf_counter()
    collect_signature(
        _COLLECT_APP,
        _COLLECT_RANKS,
        bw_machine.hierarchy,
        _COLLECT_SETTINGS,
        cache=cache,
    )
    entry["collect_memoized_s"] = round(time.perf_counter() - t0, 4)
    entry["memoization_speedup"] = round(
        entry["collect_cold_s"] / max(entry["collect_memoized_s"], 1e-9), 1
    )

    from benchmarks.conftest import merge_bench

    merge_bench("BENCH_pipeline", entry)


def _timed(fn, time_mod):
    t0 = time_mod.perf_counter()
    fn()
    return time_mod.perf_counter() - t0
