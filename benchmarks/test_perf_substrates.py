"""Throughput microbenchmarks of the two hot substrates.

Not a paper table — these guard the engineering properties the pipeline
depends on: the vectorized cache simulator (addresses/second) and the
replay engine (events/second).  Regressions here directly inflate every
experiment's wall-clock.
"""

import numpy as np
import pytest

from repro.cache.configs import blue_waters_p1
from repro.cache.simulator import HierarchySimulator
from repro.machine.network import NetworkParameters
from repro.memstream.patterns import RandomPattern, StridedPattern
from repro.psins.replay import ComputationTimer, replay_job
from repro.simmpi.runtime import run_job
from repro.util.rng import stream
from repro.util.units import MB


@pytest.mark.benchmark(group="perf-cache")
@pytest.mark.parametrize(
    "pattern_name,pattern",
    [
        ("strided", StridedPattern(region_bytes=8 * MB)),
        ("random", RandomPattern(region_bytes=8 * MB)),
    ],
)
def test_cache_simulator_throughput(benchmark, pattern_name, pattern):
    addrs = pattern.addresses(0, 1 << 18, stream("perf", pattern_name))
    sim = HierarchySimulator(blue_waters_p1())

    def run():
        sim.process(addrs)

    benchmark(run)
    assert sim.result().total_accesses > 0


@pytest.mark.benchmark(group="perf-replay")
def test_replay_engine_throughput(benchmark):
    class NullTimer(ComputationTimer):
        def time_s(self, rank, block_id, iterations):
            return 1e-6

    def fn(comm):
        left = (comm.rank - 1) % comm.size
        right = (comm.rank + 1) % comm.size
        for step in range(5):
            comm.compute(0, 100)
            comm.send(right, 1024, tag=0)
            comm.recv(left, 1024, tag=0)
            comm.allreduce(8)

    job = run_job("perf", 512, fn)
    net = NetworkParameters()

    result = benchmark(lambda: replay_job(job, NullTimer(), net))
    assert result.n_events == 512 * 5 * 4
