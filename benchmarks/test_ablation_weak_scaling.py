"""Ablation (§VI): applying the methodology to weak scaling.

The paper evaluates strong scaling only and notes that weak-scaled
problems "may pose additional challenges".  Here we run the same
extrapolation protocol on the Jacobi proxy in both modes and compare
end-to-end prediction gaps.

Expected shape: weak scaling is *easier* for the computation model —
per-rank working sets and counts are constant, so the constant form
fits nearly everything — while strong scaling exercises the full form
set.  The §VI challenge is not the per-element fitting but the growing
communication share, which the replay's event skeleton covers.
"""

from collections import Counter

import pytest

from benchmarks.conftest import publish
from repro.apps.base import ScalingMode
from repro.apps.jacobi import JacobiParams, JacobiProxy
from repro.core.errors import abs_rel_error
from repro.core.extrapolate import extrapolate_trace
from repro.pipeline.collect import collect_signature
from repro.pipeline.predict import predict_runtime
from repro.util.tables import Table

TRAIN = (8, 16, 32)
TARGET = 64


@pytest.mark.benchmark(group="ablation-weak")
def test_weak_vs_strong_scaling(benchmark, bw_machine):
    def run():
        rows = {}
        for mode in (ScalingMode.STRONG, ScalingMode.WEAK):
            app = JacobiProxy(
                JacobiParams(
                    global_cells=(96, 96, 96),
                    weak_cells_per_rank=(24, 24, 24),
                ),
                scaling=mode,
            )
            traces = [
                collect_signature(app, p, bw_machine.hierarchy).slowest_trace()
                for p in TRAIN
            ]
            res = extrapolate_trace(traces, TARGET)
            coll = collect_signature(
                app, TARGET, bw_machine.hierarchy
            ).slowest_trace()
            job = app.build_job(TARGET)
            pred_e = predict_runtime(app, TARGET, res.trace, bw_machine, job=job)
            pred_c = predict_runtime(app, TARGET, coll, bw_machine, job=job)
            rows[mode.value] = (
                pred_e.runtime_s,
                pred_c.runtime_s,
                abs_rel_error(pred_c.runtime_s, pred_e.runtime_s),
                Counter(res.report.form_histogram()),
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        columns=["Scaling", "Extrap pred (s)", "Coll pred (s)", "Gap"],
        title=f"Ablation: strong vs weak scaling (jacobi, target {TARGET})",
        float_fmt=".5f",
    )
    for mode in ("strong", "weak"):
        pred_e, pred_c, gap, _ = rows[mode]
        table.add_row(mode, pred_e, pred_c, gap)
    hists = "\n".join(
        f"{mode} winning forms: {dict(rows[mode][3])}" for mode in ("strong", "weak")
    )
    publish("ablation_weak_scaling", table.render() + "\n" + hists)

    # weak scaling: constant-dominated fits, small gap
    weak_gap = rows["weak"][2]
    assert weak_gap < 0.10
    weak_forms = rows["weak"][3]
    assert weak_forms["constant"] > sum(weak_forms.values()) * 0.5
