"""§IV's element-error evaluation and the influence-threshold sweep.

The paper: "every extrapolated element within all of the influential
instructions had an absolute relative error of less than 20%", where
influential means >0.1% of the task's memory (or fp) operations.

We regenerate this per application, reporting error quantiles for
influential elements, split into *intensive* elements (hit rates, ref
sizes, per-iteration structure — what the runtime prediction actually
consumes) and *count* elements.  Count elements decay like 1/P under
strong scaling, which none of the paper's four forms represents; the
paper's §VI extension forms repair exactly this (see the forms
ablation), while intensive elements meet the 20% bound with the paper's
forms alone.
"""

import numpy as np
import pytest

from benchmarks.conftest import (
    SPECFEM_TARGET,
    UH3D_TARGET,
    publish,
)
from repro.core.extrapolate import extrapolate_trace
from repro.core.influence import influential_instructions
from repro.trace.diff import compare_traces
from repro.util.tables import Table

INTENSIVE_FIELDS = (
    "ref_bytes",
    "ilp",
    "dep_chain",
    "hit_rate_L1",
    "hit_rate_L2",
    "hit_rate_L3",
)
#: extensive elements: absolute magnitudes that scale with per-rank data
COUNT_FIELDS = (
    "exec_count",
    "mem_ops",
    "loads",
    "stores",
    "fp_add",
    "fp_fma",
    "working_set_bytes",
)


def _influential_errors(training, target_trace, target_count, fields):
    res = extrapolate_trace(training, target_count)
    influential = influential_instructions(target_trace).influential_set()
    diff = compare_traces(target_trace, res.trace, fields=list(fields))
    errors = [
        e.abs_rel_error
        for e in diff.errors
        if (e.block_id, e.instr_id) in influential
        and np.isfinite(e.abs_rel_error)
        and abs(e.expected) > 1e-9
    ]
    return np.array(errors)


@pytest.mark.benchmark(group="influence")
@pytest.mark.parametrize("app_name", ["specfem3d", "uh3d"])
def test_influential_element_errors(
    benchmark,
    app_name,
    request,
):
    if app_name == "specfem3d":
        training = request.getfixturevalue("specfem_training_traces")
        target_trace = request.getfixturevalue("specfem_target_trace")
        target = SPECFEM_TARGET
    else:
        training = request.getfixturevalue("uh3d_training_traces")
        target_trace = request.getfixturevalue("uh3d_target_trace")
        target = UH3D_TARGET

    def run():
        intensive = _influential_errors(
            training, target_trace, target, INTENSIVE_FIELDS
        )
        counts = _influential_errors(training, target_trace, target, COUNT_FIELDS)
        return intensive, counts

    intensive, counts = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        columns=["Element class", "n", "median", "p90", "max", "share <20%"],
        title=f"Influential-element extrapolation errors ({app_name}, "
        f"paper forms, target {target})",
        float_fmt=".3f",
    )
    for label, errs in (("intensive", intensive), ("counts", counts)):
        table.add_row(
            label,
            len(errs),
            float(np.median(errs)),
            float(np.percentile(errs, 90)),
            float(errs.max()),
            float(np.mean(errs < 0.20)),
        )
    publish(f"influence_errors_{app_name}", table.render())

    # the paper's <20% claim holds for the intensive elements the
    # prediction consumes
    assert np.median(intensive) < 0.20
    assert np.mean(intensive < 0.20) > 0.9


@pytest.mark.benchmark(group="influence")
def test_influence_threshold_sweep(benchmark, uh3d_target_trace):
    """Ablation: how the 0.1% threshold trades coverage for work."""

    def run():
        rows = []
        for threshold in (0.0, 1e-4, 1e-3, 1e-2, 1e-1):
            report = influential_instructions(uh3d_target_trace, threshold)
            rows.append((threshold, report.n_influential, report.coverage()))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        columns=["Threshold", "influential instrs", "coverage"],
        title="Influence-threshold sweep (uh3d, target trace)",
        float_fmt=".4f",
    )
    for threshold, n, coverage in rows:
        table.add_row(threshold, n, coverage)
    publish("influence_threshold_sweep", table.render())
    # coverage shrinks monotonically with the threshold
    coverages = [r[2] for r in rows]
    assert all(a >= b for a, b in zip(coverages, coverages[1:]))
    assert coverages[0] == 1.0
