"""Table III: L1 hit rate of one SPECFEM3D block on two what-if targets.

The paper compares a single basic block's L1 hit rate on two target
systems identical except for L1 size (12KB vs 56KB), at 96/384/1536/6144
cores — all without either system existing, because the hit rates come
from simulating each target's hierarchy during collection on the base
system (cross-architectural prediction, §III-A).

Our subject is the element kernel's constant-footprint scratch sweep
(derivative matrices + element-local buffers, ~20KB): its working set
does not scale with core count, so its hit rate is flat across counts —
low on the 12KB L1, near-perfect on the 56KB L1.  That is exactly the
paper's Table III pattern (85.6 vs 99.6, flat).
"""

import numpy as np
import pytest

from benchmarks.conftest import SPECFEM_TARGET, SPECFEM_TRAIN, publish, slowest_trace
from repro.apps.specfem3d import BLOCK_ELEMENT_KERNEL
from repro.util.tables import Table

PAPER_TABLE3 = """\
Paper's Table III (for comparison; L1 hit rate in %):
System        | 96 cores | 384 cores | 1536 cores | 6144 cores
A (12 KB L1)  | 85.6     | 85.6      | 85.8       | 85.8
B (56 KB L1)  | 99.6     | 99.6      | 99.6       | 99.6"""

#: instruction index of the constant-footprint scratch load within the
#: element kernel (load #1: blocked element data is #0)
SCRATCH_INSTR = 1

COUNTS = (*SPECFEM_TRAIN, SPECFEM_TARGET)


@pytest.mark.benchmark(group="table3")
def test_table3_l1_size_whatif(benchmark):
    def run():
        rows = {}
        for system in ("system_a", "system_b"):
            rates = []
            for count in COUNTS:
                trace = slowest_trace("specfem3d", count, system)
                schema = trace.schema
                vec = trace.blocks[BLOCK_ELEMENT_KERNEL].instructions[
                    SCRATCH_INSTR
                ].features
                rates.append(100.0 * vec[schema.index("hit_rate_L1")])
            rows[system] = rates
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        columns=["System", *(f"{c} cores" for c in COUNTS)],
        title="Table III: L1 hit rate of the SPECFEM3D element-kernel "
        "scratch access on two what-if targets",
        float_fmt=".1f",
    )
    table.add_row("A (12 KB L1)", *rows["system_a"])
    table.add_row("B (56 KB L1)", *rows["system_b"])
    publish("table3_l1_whatif", table.render() + "\n\n" + PAPER_TABLE3)

    a = np.array(rows["system_a"])
    b = np.array(rows["system_b"])
    # shape: flat across core counts on both systems...
    assert np.ptp(a) < 3.0
    assert np.ptp(b) < 3.0
    # ...and the bigger L1 captures the scratch working set
    assert b.min() > 97.0
    assert a.max() < 92.0
