"""Table III: L1 hit rate of one SPECFEM3D block on two what-if targets.

The paper compares a single basic block's L1 hit rate on two target
systems identical except for L1 size (12KB vs 56KB), at 96/384/1536/6144
cores — all without either system existing, because the hit rates come
from simulating each target's hierarchy during collection on the base
system (cross-architectural prediction, §III-A).

Our subject is the element kernel's constant-footprint scratch sweep
(derivative matrices + element-local buffers, ~20KB): its working set
does not scale with core count, so its hit rate is flat across counts —
low on the 12KB L1, near-perfect on the 56KB L1.  That is exactly the
paper's Table III pattern (85.6 vs 99.6, flat).

The 6144-core column is reported both ways per system: collected (the
expensive run the methodology avoids) and extrapolated from the three
training counts via the sweep API — the two must agree, which is the
whole point of §IV.

What-if sweeps default to the analytical reuse-distance engine (the
serving path); the exact LRU simulator remains the cross-check — the
collected 6144-core rows are exact, and the smallest count is collected
on both engines per system and compared.
"""

import numpy as np
import pytest

from benchmarks.conftest import SPECFEM_TARGET, SPECFEM_TRAIN, publish, slowest_trace
from repro.apps.specfem3d import BLOCK_ELEMENT_KERNEL
from repro.core.extrapolate import extrapolate_trace_many
from repro.util.tables import Table

PAPER_TABLE3 = """\
Paper's Table III (for comparison; L1 hit rate in %):
System        | 96 cores | 384 cores | 1536 cores | 6144 cores
A (12 KB L1)  | 85.6     | 85.6      | 85.8       | 85.8
B (56 KB L1)  | 99.6     | 99.6      | 99.6       | 99.6"""

#: instruction index of the constant-footprint scratch load within the
#: element kernel (load #1: blocked element data is #0)
SCRATCH_INSTR = 1

COUNTS = (*SPECFEM_TRAIN, SPECFEM_TARGET)


def _l1_rate(trace):
    vec = trace.blocks[BLOCK_ELEMENT_KERNEL].instructions[
        SCRATCH_INSTR
    ].features
    return 100.0 * vec[trace.schema.index("hit_rate_L1")]


@pytest.mark.benchmark(group="table3")
def test_table3_l1_size_whatif(benchmark):
    def run():
        rows = {}
        extrap = {}
        cross = {}
        for system in ("system_a", "system_b"):
            # the what-if path runs on the analytical reuse engine
            training = [
                slowest_trace("specfem3d", count, system, engine="reuse")
                for count in SPECFEM_TRAIN
            ]
            rates = [_l1_rate(t) for t in training]
            # ...while the expensive collected target row stays exact
            rates.append(
                _l1_rate(slowest_trace("specfem3d", SPECFEM_TARGET, system))
            )
            rows[system] = rates
            # engine cross-check at the cheapest count
            cross[system] = _l1_rate(
                slowest_trace("specfem3d", SPECFEM_TRAIN[0], system)
            )
            # what-if question answered without the 6144-core run: one
            # fit over the training trio, evaluated via the sweep API
            sweep = extrapolate_trace_many(training, [SPECFEM_TARGET])
            extrap[system] = _l1_rate(sweep.trace_for(SPECFEM_TARGET))
        return rows, extrap, cross

    rows, extrap, cross = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        columns=["System", *(f"{c} cores" for c in COUNTS)],
        title="Table III: L1 hit rate of the SPECFEM3D element-kernel "
        "scratch access on two what-if targets",
        float_fmt=".1f",
    )
    table.add_row("A (12 KB L1)", *rows["system_a"])
    table.add_row("B (56 KB L1)", *rows["system_b"])
    table.add_row(
        f"A ({SPECFEM_TARGET} extrap.)", "-", "-", "-", extrap["system_a"]
    )
    table.add_row(
        f"B ({SPECFEM_TARGET} extrap.)", "-", "-", "-", extrap["system_b"]
    )
    publish("table3_l1_whatif", table.render() + "\n\n" + PAPER_TABLE3)

    a = np.array(rows["system_a"])
    b = np.array(rows["system_b"])
    # shape: flat across core counts on both systems...
    assert np.ptp(a) < 3.0
    assert np.ptp(b) < 3.0
    # ...and the bigger L1 captures the scratch working set
    assert b.min() > 97.0
    assert a.max() < 92.0
    # the reuse-engine extrapolated 6144 rate matches the *exact*
    # collected one per system
    assert abs(extrap["system_a"] - rows["system_a"][-1]) < 2.0
    assert abs(extrap["system_b"] - rows["system_b"][-1]) < 2.0
    # engine cross-check: analytical vs exact at the smallest count
    assert abs(rows["system_a"][0] - cross["system_a"]) < 2.0
    assert abs(rows["system_b"][0] - cross["system_b"]) < 2.0
