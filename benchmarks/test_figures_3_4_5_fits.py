"""Figures 3, 4 and 5: per-element canonical fitting.

- Fig. 3 (schematic): one instruction's feature-vector elements are each
  extrapolated independently — we print the per-element winning forms.
- Fig. 4: an L2 hit rate that rises with core count, with all four
  canonical model curves; the linear form should be the best fit.
- Fig. 5: a memory-operation count that grows like log(cores), with all
  four model curves; the log form should be the best fit.

The series come from the UH3D proxy's traces at the paper's core counts
(1024/2048/4096 training, 8192 held out), so "measured" points are real
simulator output, not hand-made curves.
"""

import numpy as np
import pytest

from benchmarks.conftest import UH3D_TRAIN, UH3D_TARGET, publish
from repro.apps.uh3d import BLOCK_DIV_CLEAN, BLOCK_FIELD_GATHER
from repro.core.canonical import PAPER_FORMS, fit_all
from repro.util.tables import Table


def _series(traces, block_id, instr_id, field):
    schema = traces[0].schema
    return np.array(
        [t.blocks[block_id].instructions[instr_id].features[schema.index(field)]
         for t in traces]
    )


@pytest.mark.benchmark(group="figure3")
def test_figure3_per_element_extrapolation(
    benchmark, uh3d_training_traces, uh3d_target_trace
):
    """One instruction, each feature element extrapolated on its own."""
    from repro.core.extrapolate import extrapolate_trace

    result = benchmark.pedantic(
        lambda: extrapolate_trace(uh3d_training_traces, UH3D_TARGET),
        rounds=1,
        iterations=1,
    )
    schema = uh3d_training_traces[0].schema
    block_id, instr_id = BLOCK_FIELD_GATHER, 0
    table = Table(
        columns=["Element", "Form", *(str(c) for c in UH3D_TRAIN),
                 f"pred@{UH3D_TARGET}", f"true@{UH3D_TARGET}"],
        title="Figure 3: independent per-element extrapolation of one "
        "instruction's feature vector (uh3d field_gather load)",
        float_fmt=".4g",
    )
    for field in ("mem_ops", "working_set_bytes", "hit_rate_L2", "hit_rate_L3"):
        fit = result.report.fit_for(block_id, instr_id, field)
        pred = result.trace.blocks[block_id].instructions[instr_id].features[
            schema.index(field)
        ]
        true = uh3d_target_trace.blocks[block_id].instructions[instr_id].features[
            schema.index(field)
        ]
        table.add_row(field, fit.fit.name, *fit.train_y, pred, true)
    publish("figure3_per_element", table.render())
    # elements are fitted independently: at least two different forms win
    forms = {
        result.report.fit_for(block_id, instr_id, f).fit.name
        for f in ("mem_ops", "working_set_bytes", "hit_rate_L2", "hit_rate_L3")
    }
    assert len(forms) >= 2


def _fit_figure(traces, target_trace, block_id, instr_id, field, title, name):
    counts = np.array([t.n_ranks for t in traces], dtype=np.float64)
    y = _series(traces, block_id, instr_id, field)
    fits = fit_all(counts, y, PAPER_FORMS)
    best = fits[0]
    all_counts = np.append(counts, target_trace.n_ranks)
    measured = np.append(
        y, _series([target_trace], block_id, instr_id, field)
    )
    table = Table(
        columns=["Cores", "measured", *(f.form.name for f in fits)],
        title=title,
        float_fmt=".5g",
    )
    for i, c in enumerate(all_counts):
        preds = [float(f.predict(np.array([c]))[0]) for f in fits]
        table.add_row(int(c), measured[i], *preds)
    footer = "best fit: " + best.describe()
    publish(name, table.render() + "\n" + footer)
    return best, measured, fits


@pytest.mark.benchmark(group="figure4")
def test_figure4_l2_hit_rate_linearish(
    benchmark, uh3d_training_traces, uh3d_target_trace
):
    """L2 hit rate rising with core count (Fig. 4's shape)."""

    def run():
        return _fit_figure(
            uh3d_training_traces,
            uh3d_target_trace,
            BLOCK_FIELD_GATHER,
            0,
            "hit_rate_L2",
            "Figure 4: L2 hit rate vs cores with the four canonical fits "
            "(uh3d field_gather load)",
            "figure4_l2_hit_rate",
        )

    best, measured, fits = benchmark.pedantic(run, rounds=1, iterations=1)
    # shape: the rate rises with core count (strong scaling shrinks the
    # field arrays into L2), and the winning fit tracks the held-out point
    assert measured[-1] > measured[0]
    pred_at_target = float(best.predict(np.array([UH3D_TARGET]))[0])
    assert abs(min(pred_at_target, 1.0) - measured[-1]) < 0.15


@pytest.mark.benchmark(group="figure5")
def test_figure5_memops_logarithmic(
    benchmark, uh3d_training_traces, uh3d_target_trace
):
    """Memory-op count growing like log(cores) (Fig. 5's shape)."""

    def run():
        return _fit_figure(
            uh3d_training_traces,
            uh3d_target_trace,
            BLOCK_DIV_CLEAN,
            0,
            "mem_ops",
            "Figure 5: memory operations vs cores with the four canonical "
            "fits (uh3d div_clean_stages load)",
            "figure5_memops",
        )

    best, measured, fits = benchmark.pedantic(run, rounds=1, iterations=1)
    assert best.form.name in ("log", "linear")
    assert measured[-1] > measured[0]  # grows with core count
    # the log model must beat exp on this series (Fig. 5's point)
    by_name = {f.form.name: f.sse for f in fits}
    if "exp" in by_name and "log" in by_name:
        assert by_name["log"] <= by_name["exp"]
    # held-out accuracy of the winning fit
    pred = float(best.predict(np.array([UH3D_TARGET]))[0])
    assert abs(pred - measured[-1]) / measured[-1] < 0.10
