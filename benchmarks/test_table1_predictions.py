"""Table I: runtime predictions from extrapolated vs collected traces.

The paper's protocol (§V), run at the paper's core counts for both
applications:

- SPECFEM3D: train on {96, 384, 1536}, predict at 6144;
- UH3D: train on {1024, 2048, 4096}, predict at 8192;

comparing, for each app, the predicted runtime using the extrapolated
trace vs a really-collected trace at the target count, against the
ground-truth "measured" runtime.

Expected shape (the paper's claim): both trace types predict within 5%
absolute relative error, and the two predictions are close to each
other.  Absolute seconds differ from the paper (our proxies run a few
time steps of a scaled problem on a simulated machine; the paper ran
production inputs on Blue Waters).
"""

import pytest

from benchmarks.conftest import (
    SPECFEM_TARGET,
    SPECFEM_TRAIN,
    UH3D_TARGET,
    UH3D_TRAIN,
    publish,
)
from repro.pipeline.experiment import run_table1
from repro.pipeline.report import table1_report

#: The paper's Table I, for side-by-side reporting.
PAPER_TABLE1 = """\
Paper's Table I (for comparison):
Application | Core Count | Trace Type | Predicted Runtime (s) | % Error
SPECFEM3D   | 6144       | Extrap.    | 139                   | 1%
SPECFEM3D   | 6144       | Coll.      | 139                   | 1%
UH3D        | 8192       | Extrap.    | 537                   | 5%
UH3D        | 8192       | Coll.      | 536                   | 5%"""


@pytest.mark.benchmark(group="table1")
def test_table1_specfem3d(benchmark, specfem_app):
    result = benchmark.pedantic(
        lambda: run_table1(specfem_app, SPECFEM_TRAIN, SPECFEM_TARGET),
        rounds=1,
        iterations=1,
    )
    text = (
        table1_report(result.rows)
        + f"\nmeasured runtime: {result.measured_runtime_s:.4f}s"
        + f"\nextrap-vs-collected gap: {100 * result.extrap_vs_collected_gap():.2f}%"
        + "\n\n"
        + PAPER_TABLE1
    )
    publish("table1_specfem3d", text)
    # paper band: <5% for both trace types; allow a point of slack on the
    # extrapolated side (saturation asymptotes are irreducible, see
    # EXPERIMENTS.md)
    for row in result.rows:
        limit = 7.0 if row.trace_type == "Extrap." else 5.0
        assert row.pct_error < limit, f"{row.trace_type}: {row.pct_error:.1f}%"
    assert result.extrap_vs_collected_gap() < 0.08


@pytest.mark.benchmark(group="table1")
def test_table1_uh3d(benchmark, uh3d_app):
    result = benchmark.pedantic(
        lambda: run_table1(uh3d_app, UH3D_TRAIN, UH3D_TARGET),
        rounds=1,
        iterations=1,
    )
    text = (
        table1_report(result.rows)
        + f"\nmeasured runtime: {result.measured_runtime_s:.4f}s"
        + f"\nextrap-vs-collected gap: {100 * result.extrap_vs_collected_gap():.2f}%"
        + "\n\n"
        + PAPER_TABLE1
    )
    publish("table1_uh3d", text)
    for row in result.rows:
        limit = 7.0 if row.trace_type == "Extrap." else 5.0
        assert row.pct_error < limit, f"{row.trace_type}: {row.pct_error:.1f}%"
    assert result.extrap_vs_collected_gap() < 0.08
