"""Ablation: how many training core counts are needed?

The paper: "using more than three core counts could improve the quality
of the fit but it became evident during testing that three generally
provided adequate accuracy."

We train the UH3D extrapolation on 2, 3 and 4 core counts and compare
the end-to-end prediction gap against the collected-trace prediction at
8192.  Expected shape: two points are noticeably worse; three is
adequate; four helps only marginally.
"""

import pytest

from benchmarks.conftest import publish, slowest_trace
from repro.core.errors import abs_rel_error
from repro.core.extrapolate import extrapolate_trace
from repro.pipeline.predict import predict_runtime
from repro.util.tables import Table

TRAIN_SETS = {
    2: (2048, 4096),
    3: (1024, 2048, 4096),
    4: (512, 1024, 2048, 4096),
}
TARGET = 8192


@pytest.mark.benchmark(group="ablation-training")
def test_training_point_count(benchmark, uh3d_app, uh3d_target_trace, bw_machine):
    def run():
        job = uh3d_app.build_job(TARGET)
        pred_coll = predict_runtime(
            uh3d_app, TARGET, uh3d_target_trace, bw_machine, job=job
        )
        rows = []
        for n_points, counts in TRAIN_SETS.items():
            training = [
                slowest_trace("uh3d", p, "blue_waters_p1") for p in counts
            ]
            res = extrapolate_trace(training, TARGET)
            pred = predict_runtime(
                uh3d_app, TARGET, res.trace, bw_machine, job=job
            )
            gap = abs_rel_error(pred_coll.runtime_s, pred.runtime_s)
            rows.append((n_points, counts, pred.runtime_s, gap))
        return rows, pred_coll.runtime_s

    rows, coll_runtime = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        columns=["Training counts", "Predicted (s)", "Gap vs collected"],
        title=f"Ablation: training-point count (uh3d, target {TARGET}; "
        f"collected-trace prediction {coll_runtime:.4f}s)",
        float_fmt=".4f",
    )
    for n_points, counts, runtime, gap in rows:
        table.add_row("/".join(str(c) for c in counts), runtime, gap)
    publish("ablation_training_points", table.render())

    gaps = {n: gap for n, _, _, gap in rows}
    # three points are adequate (the paper's observation)...
    assert gaps[3] < 0.10
    # ...and adding a fourth doesn't break anything
    assert gaps[4] < 0.12
