"""Extension experiment: Table I's protocol, for energy instead of time.

The paper motivates its feature set as "important for both performance
and energy" (§I) and builds on PMaC's power models (refs [23], [24]).
This bench runs the Table I comparison on the energy axis: whole-job
energy at the target count predicted from the extrapolated trace vs the
collected trace.

Expected shape: the two energy predictions agree about as closely as the
runtime predictions do — energy inherits the extrapolation's fidelity
because it is computed from the same per-block features.
"""

import pytest

from benchmarks.conftest import UH3D_TARGET, publish
from repro.core.errors import abs_rel_error
from repro.core.extrapolate import extrapolate_trace
from repro.energy import EnergyModel, plan_dvfs
from repro.pipeline.predict import predict_runtime
from repro.util.tables import Table


@pytest.mark.benchmark(group="energy")
def test_energy_prediction_extrap_vs_collected(
    benchmark, uh3d_app, uh3d_training_traces, uh3d_target_trace, bw_machine
):
    def run():
        job = uh3d_app.build_job(UH3D_TARGET)
        rows = {}
        extrap = extrapolate_trace(uh3d_training_traces, UH3D_TARGET)
        for label, trace in (
            ("Extrap.", extrap.trace),
            ("Coll.", uh3d_target_trace),
        ):
            pred = predict_runtime(
                uh3d_app, UH3D_TARGET, trace, bw_machine, job=job
            )
            model = EnergyModel(pred.model)
            result = model.job_energy(job, pred.replay)
            plan = plan_dvfs(model, max_slowdown=0.05)
            rows[label] = (result, plan)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        columns=[
            "Trace type",
            "Energy (kJ)",
            "Compute (kJ)",
            "Idle (kJ)",
            "DVFS savings",
        ],
        title=f"Energy prediction at {UH3D_TARGET} cores: extrapolated vs "
        "collected trace (uh3d)",
        float_fmt=".3f",
    )
    for label in ("Extrap.", "Coll."):
        result, plan = rows[label]
        table.add_row(
            label,
            result.total_energy_j / 1e3,
            result.compute_energy_j / 1e3,
            result.idle_energy_j / 1e3,
            f"{100 * plan.energy_savings():.1f}%",
        )
    publish("energy_extrapolation", table.render())

    e_extrap = rows["Extrap."][0].total_energy_j
    e_coll = rows["Coll."][0].total_energy_j
    assert abs_rel_error(e_coll, e_extrap) < 0.08
    # both DVFS plans find real savings on this memory-heavy code
    for label in ("Extrap.", "Coll."):
        assert rows[label][1].energy_savings() > 0.02
