"""Ablation: closing the loop with communication trace extrapolation.

The paper extrapolates computation behavior and cites Wu & Mueller's
ScalaExtrap [22] as the complementary technique for the communication
side.  Everywhere else in this reproduction the target-count event
timeline comes from the application model; here we *synthesize* it from
the small-count event traces too (:mod:`repro.commextrap`) and compare
predictions:

- computation trace: extrapolated (paper's method),
- event timeline: app-generated vs synthesized (ScalaExtrap-style).

Expected shape: the two predictions agree closely — with both halves
extrapolated, the 8192-core prediction uses *no* information gathered
beyond 4096 cores.  The residual gap is concentrated at the particle-
density peak: the finer target grid resolves the peak more sharply than
any training grid, so position-matched representatives slightly
over-state the hottest ranks' load (conservative direction); uniform-
load apps synthesize to <1%.
"""

import pytest

from benchmarks.conftest import UH3D_TARGET, UH3D_TRAIN, publish
from repro.commextrap import extrapolate_job, infer_topology
from repro.core.errors import abs_rel_error
from repro.core.extrapolate import extrapolate_trace
from repro.pipeline.predict import predict_runtime
from repro.util.tables import Table


@pytest.mark.benchmark(group="ablation-commextrap")
def test_fully_extrapolated_prediction(
    benchmark, uh3d_app, uh3d_training_traces, bw_machine
):
    def run():
        training_jobs = [uh3d_app.build_job(p) for p in UH3D_TRAIN]
        topo = infer_topology(training_jobs[-1])
        synth_job = extrapolate_job(training_jobs, UH3D_TARGET)
        true_job = uh3d_app.build_job(UH3D_TARGET)
        comp = extrapolate_trace(uh3d_training_traces, UH3D_TARGET)
        pred_true = predict_runtime(
            uh3d_app, UH3D_TARGET, comp.trace, bw_machine, job=true_job
        )
        pred_synth = predict_runtime(
            uh3d_app, UH3D_TARGET, comp.trace, bw_machine, job=synth_job
        )
        return topo, pred_true.runtime_s, pred_synth.runtime_s

    topo, true_rt, synth_rt = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        columns=["Event timeline", "Predicted runtime (s)", "Gap"],
        title=f"Ablation: app-generated vs synthesized communication trace "
        f"(uh3d @ {UH3D_TARGET}, extrapolated computation trace)",
        float_fmt=".5f",
    )
    table.add_row("app-generated", true_rt, 0.0)
    table.add_row("synthesized", synth_rt, abs_rel_error(true_rt, synth_rt))
    publish(
        "ablation_comm_extrapolation",
        table.render()
        + f"\ninferred topology at {UH3D_TRAIN[-1]} ranks: grid={topo.grid} "
        f"periodic={topo.periodic} (edges explained: {topo.explained:.0%})",
    )

    assert topo.explained == pytest.approx(1.0)
    assert abs_rel_error(true_rt, synth_rt) < 0.12
