"""Throughput benchmark of the prediction-serving query engine.

Guards the serving PR's headline claim: coalescing compatible queries
through the micro-batcher must beat an unbatched engine (``max_batch=1``,
one ``predict_many`` array pass per query) by >= 10x on a replayable
synthetic load — and, inseparable from the speed claim, the identity
contract: every batched answer bit-identical to a sequential
single-target ``predict_many`` call.

The load itself comes from :mod:`repro.serve.loadgen`'s keyed RNG, so
every run replays the *identical* query trace (targets, tenants, and
arrival order), making the queries/s and p95 numbers comparable across
runs.  Results are merged into ``results/BENCH_pipeline.json``.

Set ``REPRO_BENCH_SMOKE=1`` (the CI default) to serve a model fitted on
the synthetic trace series instead of collecting SPECFEM3D, with the
query count scaled down and the speedup floor relaxed for noisy shared
runners.
"""

import asyncio
import gc
import os

import numpy as np
import pytest

from repro.core.extrapolate import fit_traces
from repro.obs.metrics import REGISTRY
from repro.obs.telemetry import (
    TelemetryConfig,
    TelemetrySampler,
    merged_hist,
    read_flight_records,
    sum_counters,
)
from repro.serve import (
    FittedModel,
    LoadSpec,
    ModelRegistry,
    ModelSpec,
    QueryEngine,
    ServeConfig,
    run_load,
    synthetic_queries,
)

from benchmarks.conftest import SPECFEM_TRAIN, merge_bench, slowest_trace
from benchmarks.test_perf_fitting import _synthetic_training

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: speedup floor for micro-batching vs. the unbatched baseline; smoke
#: mode serves a smaller model on noisy runners, so the floor relaxes
MIN_SERVE_SPEEDUP = 4.0 if SMOKE else 10.0

N_QUERIES = 256 if SMOKE else 2048

LOAD = LoadSpec(
    n_queries=N_QUERIES,
    targets=(512, 1024, 2048, 4096, 8192),
    skew=1.0,
    name="perf-serve",
)


@pytest.fixture(scope="module")
def served_model():
    if SMOKE:
        traces = _synthetic_training()
        app = "synt"
    else:
        traces = [
            slowest_trace("specfem3d", p, "blue_waters_p1", engine="reuse")
            for p in SPECFEM_TRAIN
        ]
        app = "specfem3d"
    report, template = fit_traces(traces)
    spec = ModelSpec(
        app=app,
        machine="blue_waters_p1",
        train_counts=tuple(t.n_ranks for t in traces),
        cache_engine="reuse" if not SMOKE else "exact",
        code_version="bench",
    )
    return FittedModel(spec=spec, report=report, template=template)


def _serve(
    model: FittedModel,
    queries,
    *,
    max_batch: int,
    telemetry_cfg=None,
    **config,
):
    """Run one load against a fresh engine; return (report, answers)."""

    async def main():
        registry = ModelRegistry(root=None)
        registry.put(model)
        engine = QueryEngine(
            registry,
            default_model=model.digest,
            config=ServeConfig(
                max_batch=max_batch, window_s=0.002, **config
            ),
        )
        sampler = (
            TelemetrySampler(engine, telemetry_cfg)
            if telemetry_cfg is not None
            else None
        )
        await engine.start()
        if sampler is not None:
            await sampler.start()
        report, answers = await run_load(engine, queries)
        await engine.stop()
        if sampler is not None:
            await sampler.stop()
        return report, answers

    # a serve run is a ~15ms measured window; pay any inherited gen-2
    # collection debt (a heap-proportional ~30ms pause in a full bench
    # process) before the clock starts, not mid-dispatch
    gc.collect()
    return asyncio.run(main())


def test_replayable_load_is_identical_across_runs():
    """The keyed-RNG generator must replay the exact same query trace."""
    first = synthetic_queries(LOAD)
    second = synthetic_queries(LOAD)
    assert first == second
    assert len(first) == N_QUERIES
    # the Zipf skew actually skews: the hottest target dominates
    counts = {t: 0 for t in LOAD.targets}
    for q in first:
        counts[q.target] += 1
    assert counts[LOAD.targets[0]] == max(counts.values())


def test_micro_batched_throughput_vs_unbatched(served_model):
    """Tentpole criterion: micro-batching >= 10x the unbatched engine."""
    queries = synthetic_queries(LOAD)

    # warm both paths once so neither pays first-call setup in the
    # measured run, then measure batched and unbatched service rates
    _serve(served_model, queries[:8], max_batch=64)
    batched, answers = _serve(served_model, queries, max_batch=64)
    unbatched, _ = _serve(served_model, queries, max_batch=1)

    # the speed claim is meaningless without the identity contract:
    # every coalesced answer equals a sequential per-query predict_many
    expected = {
        t: served_model.predict([t]).values[0] for t in LOAD.targets
    }
    for q, a in zip(queries, answers):
        assert a is not None
        assert np.array_equal(a.values, expected[q.target])
    assert max(a.batch_size for a in answers) > 1

    speedup = batched.qps / unbatched.qps
    merge_bench(
        "BENCH_pipeline",
        {
            "serve_smoke": SMOKE,
            "serve_queries": N_QUERIES,
            "serve_qps": round(batched.qps, 1),
            "serve_p95_ms": round(batched.p95_ms, 3),
            "serve_mean_batch": round(batched.mean_batch, 1),
            "serve_unbatched_qps": round(unbatched.qps, 1),
            "serve_speedup_vs_unbatched": round(speedup, 1),
        },
    )
    assert batched.rejected == 0 and unbatched.rejected == 0
    assert speedup >= MIN_SERVE_SPEEDUP, (
        f"micro-batched serving only {speedup:.1f}x faster than the "
        f"unbatched engine (need >= {MIN_SERVE_SPEEDUP}x)"
    )


def test_resilience_overhead_within_budget(served_model):
    """Resilience must be nearly free on the clean path: <= 5% qps cost.

    ``hardened=False`` strips the deadline checks, breaker bookkeeping,
    and offload decision from the hot path; the hardened default (with
    no faults injected and no deadlines set) must stay within 5% of
    that bare engine's throughput.  Best-of-2 per side damps scheduler
    noise; the assertion is skipped in smoke mode where shared runners
    make a single-digit-percent bound meaningless, but the measured
    number is still merged into the bench record either way.
    """
    queries = synthetic_queries(LOAD)

    def best_qps(**config):
        return max(
            _serve(served_model, queries, max_batch=64, **config)[0].qps
            for _ in range(2)
        )

    _serve(served_model, queries[:8], max_batch=64)  # warm
    hardened_qps = best_qps(hardened=True)
    bare_qps = best_qps(hardened=False)
    overhead_pct = (bare_qps - hardened_qps) / bare_qps * 100.0

    merge_bench(
        "BENCH_pipeline",
        {
            "serve_hardened_qps": round(hardened_qps, 1),
            "serve_bare_qps": round(bare_qps, 1),
            "serve_resilience_overhead_pct": round(overhead_pct, 2),
        },
    )
    if not SMOKE:
        assert overhead_pct <= 5.0, (
            f"hardened serving costs {overhead_pct:.1f}% throughput "
            f"vs the bare engine (budget: 5%)"
        )


def test_telemetry_overhead_within_budget(served_model, tmp_path):
    """Live telemetry must be nearly free: <= 5% qps cost when sampling.

    One dedicated instrumented run first pins the correctness half of
    the claim — answers bit-identical to an uninstrumented engine, and
    the flight recorder's interval deltas telescoping to the load's
    exact query count — then best-of-2 per side measures the
    throughput cost of ticking the sampler at a deliberately hostile
    20 Hz (the CLI default is 1 Hz).  As with resilience, the bound is
    only asserted off smoke, but the number is always merged.
    """
    queries = synthetic_queries(LOAD)

    def run(tag=None):
        cfg = None
        if tag is not None:
            cfg = TelemetryConfig(
                interval_s=0.05,
                out=tmp_path / f"flight-{tag}.jsonl",
                prom_out=tmp_path / f"metrics-{tag}.prom",
            )
        return _serve(
            served_model, queries, max_batch=64, telemetry_cfg=cfg
        )

    _serve(served_model, queries[:8], max_batch=64)  # warm
    # -- correctness: identical answers, exactly-telescoping books ------
    REGISTRY.reset()  # so the recorder's books cover this run alone
    _, on_answers = run(tag="books")
    _, off_answers = run()
    for a, b in zip(on_answers, off_answers):
        assert np.array_equal(a.values, b.values)
        assert a.runtime_s == b.runtime_s
    records = read_flight_records(tmp_path / "flight-books.jsonl")
    assert records[-1]["final"]
    totals = sum_counters(records)
    assert totals["serve.queries"] == N_QUERIES
    assert totals["serve.answered"] == N_QUERIES
    assert merged_hist(records, "serve.latency_s").count == N_QUERIES

    # -- cost: best-of-2 per side ---------------------------------------
    on_qps = max(run(tag=i)[0].qps for i in (1, 2))
    off_qps = max(run()[0].qps for _ in range(2))
    overhead_pct = (off_qps - on_qps) / off_qps * 100.0

    merge_bench(
        "BENCH_pipeline",
        {
            "serve_telemetry_on_qps": round(on_qps, 1),
            "serve_telemetry_off_qps": round(off_qps, 1),
            "serve_telemetry_overhead_pct": round(overhead_pct, 2),
        },
    )
    if not SMOKE:
        assert overhead_pct <= 5.0, (
            f"telemetry sampling costs {overhead_pct:.1f}% throughput "
            f"(budget: 5%)"
        )
