"""Ablation (§VI): slowest-task-only vs clustered extrapolation.

The paper's main method extrapolates only the most computationally
demanding task and uses it "as a base to scale the data in the trace
files"; §VI proposes clustering MPI tasks and extrapolating per-cluster
centroid traces instead.

We run the UH3D proxy at small core counts with *full* per-rank
signatures, and compare how well each strategy predicts the
whole-application compute-time distribution at the target count:

- slowest-only: every rank priced with the slowest task's trace;
- clustered (k=3): each rank priced with its cluster's centroid trace.

Expected shape: slowest-only grossly over-estimates aggregate compute
(it prices light ranks like the heaviest), while clustering tracks the
aggregate closely — supporting §VI's conjecture.  At these small scales
the slowest task's own trajectory is also noisy (the finer process grid
resolves the density peak more sharply, so the heaviest rank's relative
load *grows* with the core count — §VI's "the longest task may not be
sufficient" caveat made visible), so the critical-path estimate is only
asserted to the right order of magnitude.
"""

import numpy as np
import pytest

from benchmarks.conftest import publish
from repro.apps.uh3d import UH3DParams, UH3DProxy
from repro.core.canonical import EXTENDED_FORMS
from repro.core.clustering import extrapolate_signature_clustered
from repro.core.errors import abs_rel_error
from repro.core.extrapolate import extrapolate_trace
from repro.pipeline.collect import CollectionSettings, collect_signature
from repro.psins.convolution import ComputationModel
from repro.util.tables import Table

TRAIN = (16, 32, 64)
TARGET = 128
K = 3


@pytest.mark.benchmark(group="ablation-clustering")
def test_clustered_vs_slowest_extrapolation(benchmark, bw_machine):
    app = UH3DProxy(
        UH3DParams(global_cells=(64, 64, 64), particles_per_cell=4.0)
    )
    settings = CollectionSettings(ranks="all")

    def run():
        sigs = [
            collect_signature(app, p, bw_machine.hierarchy, settings)
            for p in TRAIN
        ]
        target_sig = collect_signature(
            app, TARGET, bw_machine.hierarchy, settings
        )
        # ground reference: per-rank compute times from collected traces
        per_rank = np.array(
            [
                ComputationModel(
                    target_sig.traces[r], bw_machine
                ).total_compute_time_s()
                for r in range(TARGET)
            ]
        )
        # slowest-only strategy.  Both strategies use the extended form
        # set: aggregate compute depends on absolute count elements,
        # which the paper's four forms cannot extrapolate under strong
        # scaling (see the forms ablation) — the comparison here is
        # about *which tasks* to extrapolate, not which forms.
        slowest = extrapolate_trace(
            [s.slowest_trace() for s in sigs], TARGET, forms=EXTENDED_FORMS
        )
        slowest_time = ComputationModel(
            slowest.trace, bw_machine
        ).total_compute_time_s()
        est_slowest_total = slowest_time * TARGET
        # clustered strategy
        clustered = extrapolate_signature_clustered(
            sigs, TARGET, k=K, forms=EXTENDED_FORMS
        )
        est_cluster_total = TARGET * clustered.weighted_total_compute(
            lambda t: ComputationModel(t, bw_machine).total_compute_time_s()
        )
        return per_rank, slowest_time, est_slowest_total, est_cluster_total

    per_rank, slowest_time, est_slowest, est_cluster = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    true_total = float(per_rank.sum())
    true_max = float(per_rank.max())

    table = Table(
        columns=["Strategy", "Aggregate compute (s)", "Agg. error", "Max-rank (s)"],
        title=f"Ablation: slowest-only vs clustered (k={K}) extrapolation "
        f"(uh3d-small, target {TARGET})",
        float_fmt=".4f",
    )
    table.add_row("collected (truth)", true_total, 0.0, true_max)
    table.add_row(
        "slowest-only",
        est_slowest,
        abs_rel_error(true_total, est_slowest),
        slowest_time,
    )
    table.add_row(
        f"clustered k={K}",
        est_cluster,
        abs_rel_error(true_total, est_cluster),
        slowest_time,  # critical path still the heaviest cluster
    )
    publish("ablation_clustering", table.render())

    # §VI's conjecture: clustering improves whole-signature fidelity
    err_slowest = abs_rel_error(true_total, est_slowest)
    err_cluster = abs_rel_error(true_total, est_cluster)
    assert err_cluster < err_slowest
    assert err_cluster < 0.15
    # slowest-only over-estimates the aggregate (prices every rank at max)
    assert est_slowest > true_total
    # critical path right to within ~2x despite the peak-resolution noise
    assert 0.5 < slowest_time / true_max < 2.0
