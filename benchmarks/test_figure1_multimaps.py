"""Figure 1: MultiMAPS bandwidth surface for a two-cache-level Opteron.

The paper plots measured memory bandwidth against the L1/L2 hit rates
induced by each (working set, stride) probe.  This bench regenerates the
surface against the Opteron-like machine model and prints the series:
working set, stride, induced hit rates, achieved bandwidth.

Expected shape (not absolute numbers): bandwidth is highest when both
hit rates approach 1 (small working sets), falls off as working sets
spill each cache level, and large strides depress it further — the
characteristic MultiMAPS staircase of Fig. 1.
"""

import numpy as np
import pytest

from benchmarks.conftest import publish
from repro.machine.multimaps import run_multimaps
from repro.machine.systems import get_spec
from repro.util.tables import Table
from repro.util.units import KB, bytes_to_human


@pytest.mark.benchmark(group="figure1")
def test_figure1_multimaps_surface(benchmark):
    spec = get_spec("opteron_2level")

    def run():
        return run_multimaps(
            spec.hierarchy,
            spec.timing,
            working_sets=[int(4 * KB * 2**i) for i in range(0, 14)],
            strides=(1, 2, 4, 8),
            accesses_per_probe=100_000,
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        columns=["Working set", "Stride", "L1 HR", "L2 HR", "BW (GB/s)"],
        title="Figure 1: MultiMAPS surface, Opteron-2L (bandwidth vs hit rates)",
        float_fmt=".3f",
    )
    for ws, stride, l1, l2, bw in sweep.table_rows():
        table.add_row(bytes_to_human(ws), stride, l1, l2, bw)
    publish("figure1_multimaps", table.render())

    rows = sweep.table_rows()
    by_key = {(ws, s): (l1, l2, bw) for ws, s, l1, l2, bw in rows}
    smallest = min(ws for ws, _, _, _, _ in rows)
    largest = max(ws for ws, _, _, _, _ in rows)
    # shape checks: in-cache fast, out-of-cache slow, stride hurts
    assert by_key[(smallest, 1)][2] > 5 * by_key[(largest, 1)][2]
    assert by_key[(largest, 8)][2] < by_key[(largest, 1)][2]
    # bandwidth correlates with hit rates across the sweep
    l1s = np.array([r[2] for r in rows])
    bws = np.array([r[4] for r in rows])
    assert np.corrcoef(l1s, bws)[0, 1] > 0.5
