"""Table II: target-system cache hit rates of one block vs core count.

The paper shows, for a given basic block, L1/L2/L3 hit rates at 1024,
2048, 4096 and 8192 cores: L1 stays flat while the data "slowly moves
into the L3 and L2 cache" as strong scaling shrinks the per-rank working
set.

We regenerate this with the UH3D proxy's field_gather block (collected
at the three training counts; the 8192-core row from the extrapolated
trace, with the really-collected row printed alongside for validation).
The extrapolation rides the multi-target sweep API — one fit also
yields a 16384-core projection row beyond the paper's table for free.

The what-if sweep runs on the analytical reuse-distance cache engine by
default — the fast path a what-if service takes — while the exact LRU
simulator stays in the loop as the cross-check: the collected 8192-core
row is exact, and the smallest training count is collected both ways
and compared.
"""

import numpy as np
import pytest

from benchmarks.conftest import UH3D_TARGET, UH3D_TRAIN, publish, slowest_trace
from repro.apps.uh3d import BLOCK_FIELD_GATHER
from repro.core.extrapolate import extrapolate_trace_many
from repro.util.tables import Table

PAPER_TABLE2 = """\
Paper's Table II (for comparison; hit rates in %):
Core Count | L1 HR | L2 HR | L3 HR
1024       | 87.4  | 87.5  | 87.5
2048       | 87.4  | 87.5  | 90.7
4096       | 87.4  | 88.4  | 91.6
8192       | 87.4  | 89.0  | 95.0"""

#: one fit, two evaluations: the paper's 8192 row plus a projection
SWEEP_TARGETS = (UH3D_TARGET, 2 * UH3D_TARGET)


@pytest.mark.benchmark(group="table2")
def test_table2_hit_rates_vs_core_count(
    benchmark, uh3d_training_traces_reuse, uh3d_target_trace
):
    sweep = benchmark.pedantic(
        lambda: extrapolate_trace_many(
            uh3d_training_traces_reuse, SWEEP_TARGETS
        ),
        rounds=1,
        iterations=1,
    )
    schema = uh3d_training_traces_reuse[0].schema
    instr = 0  # the indirect field load

    def rates_of(trace):
        vec = trace.blocks[BLOCK_FIELD_GATHER].instructions[instr].features
        return 100.0 * schema.hit_rates(vec)

    table = Table(
        columns=["Core Count", "L1 HR", "L2 HR", "L3 HR"],
        title="Table II: hit rates of the uh3d field_gather block on the "
        "target system as core count increases",
        float_fmt=".1f",
    )
    series = []
    for trace in uh3d_training_traces_reuse:
        r = rates_of(trace)
        series.append(r)
        table.add_row(trace.n_ranks, *r)
    extrap_rates = rates_of(sweep.trace_for(UH3D_TARGET))
    series.append(extrap_rates)
    table.add_row(f"{UH3D_TARGET} (extrap.)", *extrap_rates)
    coll_rates = rates_of(uh3d_target_trace)
    table.add_row(f"{UH3D_TARGET} (coll.)", *coll_rates)
    proj_rates = rates_of(sweep.trace_for(2 * UH3D_TARGET))
    table.add_row(f"{2 * UH3D_TARGET} (extrap.)", *proj_rates)
    publish("table2_hitrates", table.render() + "\n\n" + PAPER_TABLE2)

    series = np.array(series)
    # shape checks matching the paper's narrative:
    # L1 rate roughly flat (spatial locality only)...
    assert np.ptp(series[:, 0]) < 5.0
    # ...while the outer-level rates climb with core count
    assert series[-1, 2] > series[0, 2] + 2.0
    assert np.all(np.diff(series[:, 2]) >= -0.5)
    # the reuse-engine extrapolated 8192 row is close to the *exact*
    # collected one — the cross-architecture cross-check stays on the
    # LRU simulator
    assert np.all(np.abs(extrap_rates - coll_rates) < 5.0)
    # engine cross-check at the cheapest count: analytical vs exact
    exact_rates = rates_of(
        slowest_trace("uh3d", UH3D_TRAIN[0], "blue_waters_p1")
    )
    assert np.all(np.abs(series[0] - exact_rates) < 2.0)
    # the projection row stays physical and keeps the trend direction
    assert np.all((proj_rates >= 0.0) & (proj_rates <= 100.0))
    assert proj_rates[2] >= extrap_rates[2] - 0.5
