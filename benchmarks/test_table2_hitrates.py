"""Table II: target-system cache hit rates of one block vs core count.

The paper shows, for a given basic block, L1/L2/L3 hit rates at 1024,
2048, 4096 and 8192 cores: L1 stays flat while the data "slowly moves
into the L3 and L2 cache" as strong scaling shrinks the per-rank working
set.

We regenerate this with the UH3D proxy's field_gather block (collected
at the three training counts; the 8192-core row from the extrapolated
trace, with the really-collected row printed alongside for validation).
"""

import numpy as np
import pytest

from benchmarks.conftest import UH3D_TARGET, UH3D_TRAIN, publish
from repro.apps.uh3d import BLOCK_FIELD_GATHER
from repro.core.extrapolate import extrapolate_trace
from repro.util.tables import Table

PAPER_TABLE2 = """\
Paper's Table II (for comparison; hit rates in %):
Core Count | L1 HR | L2 HR | L3 HR
1024       | 87.4  | 87.5  | 87.5
2048       | 87.4  | 87.5  | 90.7
4096       | 87.4  | 88.4  | 91.6
8192       | 87.4  | 89.0  | 95.0"""


@pytest.mark.benchmark(group="table2")
def test_table2_hit_rates_vs_core_count(
    benchmark, uh3d_training_traces, uh3d_target_trace
):
    result = benchmark.pedantic(
        lambda: extrapolate_trace(uh3d_training_traces, UH3D_TARGET),
        rounds=1,
        iterations=1,
    )
    schema = uh3d_training_traces[0].schema
    instr = 0  # the indirect field load

    def rates_of(trace):
        vec = trace.blocks[BLOCK_FIELD_GATHER].instructions[instr].features
        return 100.0 * schema.hit_rates(vec)

    table = Table(
        columns=["Core Count", "L1 HR", "L2 HR", "L3 HR"],
        title="Table II: hit rates of the uh3d field_gather block on the "
        "target system as core count increases",
        float_fmt=".1f",
    )
    series = []
    for trace in uh3d_training_traces:
        r = rates_of(trace)
        series.append(r)
        table.add_row(trace.n_ranks, *r)
    extrap_rates = rates_of(result.trace)
    series.append(extrap_rates)
    table.add_row(f"{UH3D_TARGET} (extrap.)", *extrap_rates)
    coll_rates = rates_of(uh3d_target_trace)
    table.add_row(f"{UH3D_TARGET} (coll.)", *coll_rates)
    publish("table2_hitrates", table.render() + "\n\n" + PAPER_TABLE2)

    series = np.array(series)
    # shape checks matching the paper's narrative:
    # L1 rate roughly flat (spatial locality only)...
    assert np.ptp(series[:, 0]) < 5.0
    # ...while the outer-level rates climb with core count
    assert series[-1, 2] > series[0, 2] + 2.0
    assert np.all(np.diff(series[:, 2]) >= -0.5)
    # the extrapolated 8192 row is close to the collected one
    assert np.all(np.abs(extrap_rates - coll_rates) < 5.0)
