"""Per-stage span timings and the observability overhead budget.

Runs the small Table I protocol (jacobi, train 4,8 -> target 16) twice —
once plain, once under span tracing — and records into
``results/BENCH_pipeline.json``:

- ``stages``: per-span ``{count, total_s}`` wall-clock aggregates from
  one traced run, showing where pipeline time actually goes;
- ``obs_overhead_pct``: the tracing wall-clock cost relative to the
  plain run, which must stay under the budget (spans read the clock and
  append to a list; they must never become a measurable tax).

Thresholds follow the REPRO_BENCH_SMOKE convention of the other perf
modules: shared CI runners are noisy, so smoke mode relaxes the
overhead ceiling.
"""

import os
import time

import numpy as np

from repro.apps.registry import get_app
from repro.obs import trace as obs_trace
from repro.pipeline.collect import CollectionSettings
from repro.pipeline.experiment import Table1Config, run_table1

from benchmarks.conftest import merge_bench

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: observability overhead ceiling (percent of plain wall-clock)
MAX_OVERHEAD_PCT = 15.0 if SMOKE else 5.0

#: the acceptance floor on trace coverage: distinct pipeline stages
MIN_STAGES = 6

TRAIN = (4, 8)
TARGET = 16


def _run_table1():
    config = Table1Config(collection=CollectionSettings(workers=0))
    return run_table1(get_app("jacobi"), list(TRAIN), TARGET, config)


def _best_of(fn, repeats=3):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_stage_timings_and_tracing_overhead():
    obs_trace.disable()
    _run_table1()  # warm-up: imports, machine-profile memoization

    t_plain = _best_of(_run_table1)

    tracer = obs_trace.enable()
    try:
        t_traced = _best_of(_run_table1)
        tracer.drain()  # keep only one run's spans in the recorded table
        _run_table1()
        stages = tracer.stage_durations()
        stage_names = tracer.stages()
    finally:
        obs_trace.disable()

    overhead_pct = 100.0 * (t_traced - t_plain) / t_plain
    merge_bench(
        "BENCH_pipeline",
        {
            "stages_smoke": SMOKE,
            "stages": stages,
            "obs_overhead_pct": round(overhead_pct, 2),
        },
    )

    assert len(stage_names) >= MIN_STAGES, (
        f"traced run covered only {stage_names}, expected >= {MIN_STAGES} "
        "distinct pipeline stages"
    )
    assert overhead_pct < MAX_OVERHEAD_PCT, (
        f"span tracing cost {overhead_pct:.1f}% wall-clock on the smoke "
        f"row (budget {MAX_OVERHEAD_PCT}%)"
    )
