"""Per-stage span timings and the observability overhead budget.

Runs the small Table I protocol (jacobi, train 4,8 -> target 16) twice —
once plain, once under span tracing — and records into
``results/BENCH_pipeline.json``:

- ``stages``: per-span ``{count, total_s}`` wall-clock aggregates from
  one traced run, showing where pipeline time actually goes;
- ``obs_overhead_pct``: the tracing wall-clock cost relative to the
  plain run, which must stay under the budget (spans read the clock and
  append to a list; they must never become a measurable tax).

Thresholds follow the REPRO_BENCH_SMOKE convention of the other perf
modules: shared CI runners are noisy, so smoke mode relaxes the
overhead ceiling.
"""

import os
import time

import numpy as np

from repro.apps.registry import get_app
from repro.obs import trace as obs_trace
from repro.pipeline.collect import CollectionSettings
from repro.pipeline.experiment import Table1Config, run_table1

from benchmarks.conftest import merge_bench

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: observability overhead ceiling (percent of plain wall-clock)
MAX_OVERHEAD_PCT = 15.0 if SMOKE else 5.0

#: the acceptance floor on trace coverage: distinct pipeline stages
MIN_STAGES = 6

TRAIN = (4, 8)
TARGET = 16


def _run_table1():
    config = Table1Config(collection=CollectionSettings(workers=0))
    return run_table1(get_app("jacobi"), list(TRAIN), TARGET, config)


def _best_of(fn, repeats=3):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_stage_timings_and_tracing_overhead():
    obs_trace.disable()
    _run_table1()  # warm-up: imports, machine-profile memoization

    t_plain = _best_of(_run_table1)

    tracer = obs_trace.enable()
    try:
        t_traced = _best_of(_run_table1)
        tracer.drain()  # keep only one run's spans in the recorded table
        _run_table1()
        stages = tracer.stage_durations()
        stage_names = tracer.stages()
    finally:
        obs_trace.disable()

    overhead_pct = 100.0 * (t_traced - t_plain) / t_plain
    merge_bench(
        "BENCH_pipeline",
        {
            "stages_smoke": SMOKE,
            "stages": stages,
            "obs_overhead_pct": round(overhead_pct, 2),
        },
    )

    assert len(stage_names) >= MIN_STAGES, (
        f"traced run covered only {stage_names}, expected >= {MIN_STAGES} "
        "distinct pipeline stages"
    )
    assert overhead_pct < MAX_OVERHEAD_PCT, (
        f"span tracing cost {overhead_pct:.1f}% wall-clock on the smoke "
        f"row (budget {MAX_OVERHEAD_PCT}%)"
    )


# ----------------------------------------------------------------------
# cache engines: exact replay vs analytical reuse profiles


def _random_workload():
    """A Table III-style L1 what-if sweep over random-stream blocks.

    Random streams are the reuse engine's fast path (no congruence
    passes), and the regime the paper-scale sweeps live in.  The target
    hierarchies vary the L1 (and one L2) around a fixed outer level, so
    every geometry samples the identical streams: the analytical sweep
    profiles each block *once* and re-evaluates per geometry, while the
    exact engine replays the full streams per geometry.
    """
    from repro.cache.geometry import CacheGeometry
    from repro.cache.hierarchy import CacheHierarchy
    from repro.instrument.program import (
        BasicBlockSpec,
        MemInstructionSpec,
        Program,
    )
    from repro.memstream.patterns import RandomPattern
    from repro.trace.records import SourceLocation

    region = (2 if SMOKE else 8) * 1024 * 1024
    execs = 200_000 if SMOKE else 600_000
    program = Program(name="bench-random")
    for bid in range(3):
        program.add_block(
            BasicBlockSpec(
                block_id=bid,
                location=SourceLocation(f"blk{bid}", file="bench.c", line=bid),
                mem_instructions=(
                    MemInstructionSpec(
                        "load", RandomPattern(region_bytes=region), 2
                    ),
                    MemInstructionSpec(
                        "store", RandomPattern(region_bytes=region // 2), 1
                    ),
                ),
                exec_count=execs,
            )
        )
    big = 1 << 21  # shared largest level: identical sampled streams
    l1_variants = [
        (size * 1024, assoc)
        for size in (8, 16, 32, 64, 128)
        for assoc in (2, 8)
    ]
    hierarchies = [
        CacheHierarchy(
            [
                CacheGeometry(size_bytes=size, associativity=assoc, name="L1"),
                CacheGeometry(size_bytes=big, associativity=16, name="L2"),
            ],
            name=f"l1-{size // 1024}k-{assoc}w",
        )
        for size, assoc in l1_variants
    ]
    hierarchies.append(
        CacheHierarchy(
            [
                CacheGeometry(size_bytes=16 * 1024, associativity=4, name="L1"),
                CacheGeometry(size_bytes=256 * 1024, associativity=8, name="L2"),
                CacheGeometry(size_bytes=big, associativity=16, name="L3"),
            ],
            name="three-level",
        )
    )
    if SMOKE:
        hierarchies = hierarchies[::3]
    return program.layout(), hierarchies


#: the tentpole's speedup floor: analytical sweep vs exact replay.
#: Smoke mode shrinks the workload until replay overheads dominate, so
#: it only sanity-checks direction, not the full-scale ratio.
MIN_SPEEDUP = 3.0 if SMOKE else 20.0


def test_collect_exact_vs_reuse():
    from repro.cache.reuse import configure_profile_cache
    from repro.instrument.collector import CollectorConfig, collect_trace

    program, hierarchies = _random_workload()

    def sweep(engine):
        traces = []
        t0 = time.perf_counter()
        for hierarchy in hierarchies:
            traces.append(
                collect_trace(
                    program,
                    hierarchy,
                    app="bench-random",
                    rank=0,
                    n_ranks=4,
                    config=CollectorConfig(engine=engine),
                )
            )
        return time.perf_counter() - t0, traces

    configure_profile_cache(None)  # fresh in-memory profile store
    t_exact, exact_traces = sweep("exact")
    t_reuse, reuse_traces = sweep("reuse")

    max_err = 0.0
    for te, tr in zip(exact_traces, reuse_traces):
        schema = te.schema
        for bid in sorted(te.blocks):
            for ie, ia in zip(
                te.blocks[bid].instructions, tr.blocks[bid].instructions
            ):
                he = np.asarray(ie.features[schema.hit_rate_slice])
                ha = np.asarray(ia.features[schema.hit_rate_slice])
                max_err = max(max_err, float(np.abs(ha - he).max()))

    speedup = t_exact / t_reuse
    merge_bench(
        "BENCH_pipeline",
        {
            "collect_exact_vs_reuse": {
                "smoke": SMOKE,
                "hierarchies": len(hierarchies),
                "exact_s": round(t_exact, 3),
                "reuse_s": round(t_reuse, 3),
                "speedup": round(speedup, 1),
                "max_abs_hit_rate_err": round(max_err, 5),
            }
        },
    )
    assert max_err <= 0.02, (
        f"reuse engine off by {max_err:.4f} from exact on the "
        "random-stream workload (budget 0.02 per instruction and level)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"analytical sweep only {speedup:.1f}x faster than exact replay "
        f"(floor {MIN_SPEEDUP}x)"
    )


# ----------------------------------------------------------------------
# pipeline DAG: incremental recomputation vs cold full sweep


#: content-addressed reuse must make the warm no-op run at least this
#: much faster than the cold sweep; smoke mode only checks direction
MIN_DAG_SPEEDUP = 2.0 if SMOKE else 5.0


def test_dag_incremental_speedup(tmp_path):
    """Cold full sweep vs warm no-op vs one-dirty-leaf re-run.

    The tentpole's payoff, measured: a second ``dag run`` over an
    unchanged spec revalidates 15 committed artifacts instead of
    recomputing them, and dirtying one leaf (deleting the what-if
    report) recomputes exactly that leaf.  Results land in
    ``BENCH_pipeline.json`` under ``dag_incremental_speedup``.
    """
    from repro.exec.resilience import ResilienceConfig
    from repro.pipeline.dag import SweepSpec, run_dag

    spec = SweepSpec(
        app="jacobi", train_counts=TRAIN, targets=(16, 32),
        accesses_per_probe=2000, sample_accesses=20_000,
        max_sample_accesses=200_000, code_version="bench",
    )
    root = tmp_path / "dagroot"
    resilience = ResilienceConfig(
        max_retries=0, backoff_base_s=0.001, backoff_max_s=0.01
    )

    t0 = time.perf_counter()
    cold = run_dag(spec, root, resilience=resilience)
    t_cold = time.perf_counter() - t0
    assert cold.ok and cold.stats.executed == len(cold.statuses)

    t0 = time.perf_counter()
    warm = run_dag(spec, root, resilience=resilience)
    t_warm = time.perf_counter() - t0
    assert warm.stats.executed == 0
    assert warm.digests == cold.digests

    os.remove(cold.artifacts["report:whatif"])
    t0 = time.perf_counter()
    dirty = run_dag(spec, root, resilience=resilience)
    t_dirty = time.perf_counter() - t0
    assert dirty.stats.executed == 1
    assert dirty.digests == cold.digests

    warm_speedup = t_cold / t_warm
    leaf_speedup = t_cold / t_dirty
    merge_bench(
        "BENCH_pipeline",
        {
            "dag_incremental_speedup": {
                "smoke": SMOKE,
                "nodes": len(cold.statuses),
                "cold_s": round(t_cold, 3),
                "warm_noop_s": round(t_warm, 4),
                "one_dirty_leaf_s": round(t_dirty, 4),
                "warm_speedup": round(warm_speedup, 1),
                "one_dirty_leaf_speedup": round(leaf_speedup, 1),
            }
        },
    )
    assert warm_speedup >= MIN_DAG_SPEEDUP, (
        f"warm no-op run only {warm_speedup:.1f}x faster than the cold "
        f"sweep (floor {MIN_DAG_SPEEDUP}x)"
    )
    assert leaf_speedup >= MIN_DAG_SPEEDUP, (
        f"one-dirty-leaf run only {leaf_speedup:.1f}x faster than the "
        f"cold sweep (floor {MIN_DAG_SPEEDUP}x)"
    )
