"""Ablation (§VI): does adding canonical forms reduce element error?

The paper conjectures that "increasing the number of forms used within
this methodology has a strong chance of driving down this error".  We
extrapolate the UH3D trace with the paper's four forms and with the
extended set (power / inverse / quadratic) and compare influential-
element errors and end-to-end prediction.

Expected shape: the extended set dramatically reduces *count*-element
error (strong-scaled counts are power laws, which exp-in-P cannot
represent), confirming §VI; intensive elements are already well fitted.
"""

import numpy as np
import pytest

from benchmarks.conftest import UH3D_TARGET, publish
from repro.core.canonical import EXTENDED_FORMS, PAPER_FORMS
from repro.core.extrapolate import extrapolate_trace
from repro.core.influence import influential_instructions
from repro.trace.diff import compare_traces
from repro.util.tables import Table

COUNT_FIELDS = ["exec_count", "mem_ops", "loads", "stores"]
RATE_FIELDS = ["hit_rate_L1", "hit_rate_L2", "hit_rate_L3"]


@pytest.mark.benchmark(group="ablation-forms")
def test_extended_forms_reduce_count_error(
    benchmark, uh3d_training_traces, uh3d_target_trace
):
    def run():
        out = {}
        for label, forms in (("paper", PAPER_FORMS), ("extended", EXTENDED_FORMS)):
            res = extrapolate_trace(
                uh3d_training_traces, UH3D_TARGET, forms=forms
            )
            influential = influential_instructions(
                uh3d_target_trace
            ).influential_set()
            errors = {}
            for group, fields in (("counts", COUNT_FIELDS), ("rates", RATE_FIELDS)):
                diff = compare_traces(
                    uh3d_target_trace, res.trace, fields=fields
                )
                errs = [
                    e.abs_rel_error
                    for e in diff.errors
                    if (e.block_id, e.instr_id) in influential
                    and np.isfinite(e.abs_rel_error)
                    and abs(e.expected) > 1e-9
                ]
                errors[group] = np.array(errs)
            out[label] = (errors, res.report.form_histogram())
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        columns=["Form set", "count median", "count max", "rate median", "rate max"],
        title="Ablation: paper forms vs extended forms (uh3d, influential "
        f"elements, target {UH3D_TARGET})",
        float_fmt=".4f",
    )
    for label in ("paper", "extended"):
        errors, _hist = out[label]
        table.add_row(
            label,
            float(np.median(errors["counts"])),
            float(errors["counts"].max()),
            float(np.median(errors["rates"])),
            float(errors["rates"].max()),
        )
    hist_lines = [
        f"{label} winning-form histogram: {dict(out[label][1])}"
        for label in ("paper", "extended")
    ]
    publish(
        "ablation_forms",
        table.render() + "\n" + "\n".join(hist_lines),
    )

    paper_counts = out["paper"][0]["counts"]
    ext_counts = out["extended"][0]["counts"]
    # §VI confirmed: extended forms collapse count-element error
    assert np.median(ext_counts) < 0.05
    assert np.median(ext_counts) < np.median(paper_counts)
    # and every influential element now meets the paper's 20% bound
    assert np.median(out["extended"][0]["rates"]) < 0.20
