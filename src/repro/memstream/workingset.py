"""Working-set analysis of address streams and patterns.

The feature vector the paper extrapolates includes a per-block *working
set size*; these helpers compute it both analytically (from patterns) and
empirically (from sampled streams), and the tests cross-check the two.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.memstream.patterns import AccessPattern


def unique_lines(addresses: np.ndarray, line_size: int = 64) -> int:
    """Number of distinct cache lines touched by ``addresses``."""
    if line_size <= 0:
        raise ValueError(f"line_size must be positive, got {line_size}")
    if addresses.size == 0:
        return 0
    lines = np.unique(np.asarray(addresses, dtype=np.int64) // line_size)
    return int(lines.size)


def footprint_bytes(
    patterns: Sequence[AccessPattern],
    *,
    line_size: int = 64,
) -> int:
    """Analytic upper bound on bytes touched by a set of patterns.

    Patterns occupy disjoint regions (layout guarantees this), so the
    block footprint is the sum of per-pattern footprints rounded up to
    whole cache lines.
    """
    total = 0
    for p in patterns:
        fp = p.footprint_bytes()
        total += ((fp + line_size - 1) // line_size) * line_size
    return total


def measured_footprint_bytes(
    chunks: Iterable[np.ndarray], line_size: int = 64, max_lines: int = 1 << 24
) -> int:
    """Empirical footprint of a chunked stream, in bytes.

    Uses a set of line indices; bails out at ``max_lines`` distinct lines
    to bound memory (returning a lower bound in that case).
    """
    seen: set = set()
    for chunk in chunks:
        lines = np.unique(np.asarray(chunk, dtype=np.int64) // line_size)
        seen.update(lines.tolist())
        if len(seen) >= max_lines:
            break
    return len(seen) * line_size
