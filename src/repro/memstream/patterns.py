"""Access-pattern primitives.

Each pattern models one *static memory instruction*'s dynamic address
sequence: where in its data region the instruction's successive dynamic
instances fall.  Patterns are deliberately simple and composable — the
realism of an application proxy comes from mixing patterns with
decomposition-derived working-set sizes, not from any single pattern.

All patterns produce **byte addresses** (``int64``) relative to their own
``base`` address.  Regions of distinct patterns are laid out
non-overlapping by the program builder (:mod:`repro.instrument.builder`),
mimicking distinct arrays in a real address space.

Address sequences are *deterministic functions of (pattern, rng path,
position)*: asking for addresses ``[k, k+n)`` twice yields identical
output, which the chunked generator relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import RngStream
from repro.util.validation import check_in_range, check_positive

#: Cache-line-sized default element; most HPC codes move 8-byte doubles.
DEFAULT_ELEMENT_SIZE = 8


@dataclass(frozen=True)
class AccessPattern:
    """Base class for access patterns.

    Parameters
    ----------
    region_bytes:
        Size of the data region (working set) this instruction sweeps.
    element_size:
        Bytes per access (4 for float32/int32, 8 for float64...).
    base:
        Base byte address of the region; assigned by the program layout
        pass so that distinct arrays never alias.
    """

    region_bytes: int
    element_size: int = DEFAULT_ELEMENT_SIZE
    base: int = 0

    def __post_init__(self):
        check_positive("region_bytes", self.region_bytes)
        check_positive("element_size", self.element_size)
        check_in_range("base", self.base, low=0)
        if self.region_bytes < self.element_size:
            raise ValueError(
                f"region_bytes={self.region_bytes} smaller than "
                f"element_size={self.element_size}"
            )

    @property
    def n_elements(self) -> int:
        """Number of addressable elements in the region."""
        return self.region_bytes // self.element_size

    def with_base(self, base: int) -> "AccessPattern":
        """Return a copy relocated to ``base`` (used by region layout)."""
        import dataclasses

        return dataclasses.replace(self, base=base)

    # -- interface -----------------------------------------------------

    def addresses(self, start: int, count: int, rng: RngStream) -> np.ndarray:
        """Return byte addresses for dynamic instances ``[start, start+count)``.

        Must be deterministic in ``(self, rng.path, start, count)`` and
        consistent across different chunkings of the same range.
        """
        raise NotImplementedError

    # -- analysis helpers used by proxies and tests --------------------

    def footprint_bytes(self) -> int:
        """Upper bound on the bytes this pattern can touch."""
        return self.region_bytes


@dataclass(frozen=True)
class ConstantPattern(AccessPattern):
    """All instances hit the same element (e.g. a scalar accumulator)."""

    def addresses(self, start: int, count: int, rng: RngStream) -> np.ndarray:
        return np.full(count, self.base, dtype=np.int64)

    def footprint_bytes(self) -> int:
        return self.element_size


@dataclass(frozen=True)
class StridedPattern(AccessPattern):
    """Fixed-stride sweep over the region, wrapping around.

    ``stride_elements=1`` is the classic unit-stride streaming access;
    larger strides model column-major traversals of row-major data and
    struct-of-array walks.  Wrap-around models the outer loop repeating
    the sweep every pass.
    """

    stride_elements: int = 1

    def __post_init__(self):
        super().__post_init__()
        check_positive("stride_elements", self.stride_elements)

    def addresses(self, start: int, count: int, rng: RngStream) -> np.ndarray:
        idx = (np.arange(start, start + count, dtype=np.int64) * self.stride_elements) % self.n_elements
        return self.base + idx * self.element_size


@dataclass(frozen=True)
class BlockedPattern(AccessPattern):
    """Tiled traversal: unit-stride within a tile, tiles visited in order.

    Models cache-blocked kernels: the instruction streams through
    ``tile_elements`` contiguous elements, then jumps to the next tile.
    When ``revisits > 1`` each tile is swept that many times before
    moving on, concentrating reuse (higher hit rates in the level that
    holds a tile).
    """

    tile_elements: int = 512
    revisits: int = 1

    def __post_init__(self):
        super().__post_init__()
        check_positive("tile_elements", self.tile_elements)
        check_positive("revisits", self.revisits)

    def addresses(self, start: int, count: int, rng: RngStream) -> np.ndarray:
        tile = min(self.tile_elements, self.n_elements)
        per_tile = tile * self.revisits
        n_tiles = max(1, self.n_elements // tile)
        pos = np.arange(start, start + count, dtype=np.int64)
        tile_idx = (pos // per_tile) % n_tiles
        within = (pos % per_tile) % tile
        idx = tile_idx * tile + within
        return self.base + idx * self.element_size


@dataclass(frozen=True)
class RandomPattern(AccessPattern):
    """Uniformly random accesses over the region.

    The sequence is generated from a counter-based construction so that
    the address of dynamic instance *k* depends only on *k* and the rng
    path — chunk boundaries do not change the stream.
    """

    def addresses(self, start: int, count: int, rng: RngStream) -> np.ndarray:
        pos = np.arange(start, start + count, dtype=np.uint64)
        mixed = _splitmix64(pos + np.uint64(_path_salt(rng)))
        idx = (mixed % np.uint64(self.n_elements)).astype(np.int64)
        return self.base + idx * self.element_size


@dataclass(frozen=True)
class GatherScatterPattern(AccessPattern):
    """Indirect access through an index array with tunable locality.

    Models PIC gather/scatter: particles sorted by cell give clustered
    accesses, unsorted particles give near-random accesses.
    ``locality`` in ``[0, 1]``: 0 is fully random over the region, 1 is
    fully sequential.  Intermediate values pick a random cluster start
    and stream ``cluster_elements`` contiguous elements from it.
    """

    locality: float = 0.5
    cluster_elements: int = 64

    def __post_init__(self):
        super().__post_init__()
        check_in_range("locality", self.locality, 0.0, 1.0)
        check_positive("cluster_elements", self.cluster_elements)

    def addresses(self, start: int, count: int, rng: RngStream) -> np.ndarray:
        n = np.uint64(self.n_elements)
        pos = np.arange(start, start + count, dtype=np.uint64)
        salt = np.uint64(_path_salt(rng))
        cluster = max(1, int(round(self.cluster_elements * self.locality)) or 1)
        if self.locality <= 0.0:
            cluster = 1
        cluster_u = np.uint64(cluster)
        cluster_id = pos // cluster_u
        offset = pos % cluster_u
        cluster_base = _splitmix64(cluster_id + salt) % n
        idx = ((cluster_base + offset) % n).astype(np.int64)
        return self.base + idx * self.element_size


@dataclass(frozen=True)
class StencilPattern(AccessPattern):
    """Structured-grid stencil sweep.

    Sweeps the region in unit stride while also touching neighbor
    offsets (e.g. ``(-1, +1, -nx, +nx, -nx*ny, +nx*ny)`` for a 7-point
    3-D stencil).  Dynamic instance *k* accesses point
    ``(k // len(offsets))`` at offset ``offsets[k % len(offsets)]``, so a
    run of ``len(offsets)`` consecutive instances is one stencil
    application.
    """

    offsets: tuple = (0,)

    def __post_init__(self):
        super().__post_init__()
        if not self.offsets:
            raise ValueError("offsets must be non-empty")

    def addresses(self, start: int, count: int, rng: RngStream) -> np.ndarray:
        n_off = len(self.offsets)
        offsets = np.asarray(self.offsets, dtype=np.int64)
        pos = np.arange(start, start + count, dtype=np.int64)
        center = (pos // n_off) % self.n_elements
        idx = (center + offsets[pos % n_off]) % self.n_elements
        return self.base + idx * self.element_size


@dataclass(frozen=True)
class PointerChasePattern(AccessPattern):
    """Dependent-load chain through a pseudo-random cycle.

    Models linked-list traversal: each access's address is a
    pseudo-random function of the previous position.  Implemented as a
    fixed permutation-free random walk (counter-based, like
    :class:`RandomPattern`, but with a hop-length distribution biased to
    short hops so TLB/cache behavior differs measurably from uniform
    random).
    """

    hop_elements: int = 4096

    def __post_init__(self):
        super().__post_init__()
        check_positive("hop_elements", self.hop_elements)

    def addresses(self, start: int, count: int, rng: RngStream) -> np.ndarray:
        n = np.uint64(self.n_elements)
        salt = np.uint64(_path_salt(rng))
        pos = np.arange(start, start + count, dtype=np.uint64)
        hops = _splitmix64(pos + salt) % np.uint64(min(self.hop_elements, self.n_elements))
        # cumulative position of instance k = sum of hops 0..k; to keep the
        # function counter-based (chunk-stable) we use a closed form:
        # position(k) = mix(k) scaled into a window that slides with k.
        window = _splitmix64((pos // np.uint64(64)) * np.uint64(0x9E3779B9) + salt) % n
        idx = ((window + hops) % n).astype(np.int64)
        return self.base + idx * self.element_size


# ----------------------------------------------------------------------
# counter-based hashing helpers


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 mix function (stateless, chunk-stable)."""
    with np.errstate(over="ignore"):
        z = (x + np.uint64(0x9E3779B97F4A7C15)).astype(np.uint64)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))


def _path_salt(rng: RngStream) -> int:
    """A 64-bit salt derived from the stream's path (not its state).

    Using the path rather than the generator state keeps pattern output
    independent of how many draws other components made from the stream.
    """
    from repro.util.rng import derive_seed

    return derive_seed(*rng.path, "pattern-salt", root=rng.root)
