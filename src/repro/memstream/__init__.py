"""Parametric memory address-stream generators.

In the paper, PEBIL instruments every memory access of a real binary and
feeds the resulting address stream through a cache simulator on the fly.
Here the "binary" is a synthetic executable IR (:mod:`repro.instrument`)
whose instructions carry an *access pattern* — a compact, parametric
description of the addresses the instruction touches.  This package
defines those patterns and turns them into concrete numpy address arrays,
generated lazily in chunks so that arbitrarily long streams never
materialize in memory (the paper notes a single process can generate over
2 TB of address data per hour; chunked on-the-fly processing is the same
mitigation the paper uses).
"""

from repro.memstream.patterns import (
    AccessPattern,
    BlockedPattern,
    ConstantPattern,
    GatherScatterPattern,
    PointerChasePattern,
    RandomPattern,
    StencilPattern,
    StridedPattern,
)
from repro.memstream.generator import StreamGenerator, interleave_streams
from repro.memstream.workingset import footprint_bytes, unique_lines

__all__ = [
    "AccessPattern",
    "StridedPattern",
    "BlockedPattern",
    "RandomPattern",
    "GatherScatterPattern",
    "StencilPattern",
    "PointerChasePattern",
    "ConstantPattern",
    "StreamGenerator",
    "interleave_streams",
    "footprint_bytes",
    "unique_lines",
]
