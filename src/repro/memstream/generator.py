"""Chunked address-stream generation and interleaving.

A basic block executes several memory instructions per iteration; the
dynamic address stream interleaves their accesses.  :class:`StreamGenerator`
yields ``(instruction_index, addresses)`` chunks in program order without
materializing the full stream, mirroring the paper's on-the-fly
processing (Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.memstream.patterns import AccessPattern
from repro.util.rng import RngStream
from repro.util.validation import check_positive

#: Default number of addresses per generated chunk.  Large enough to
#: amortize numpy call overhead, small enough to stay cache-resident.
DEFAULT_CHUNK = 1 << 16


@dataclass
class StreamGenerator:
    """Generates the address stream of one instruction lazily.

    Parameters
    ----------
    pattern:
        The instruction's access pattern.
    total:
        Total number of dynamic instances to generate.
    rng:
        Stream seeding any stochastic pattern decisions.
    chunk:
        Chunk length.
    """

    pattern: AccessPattern
    total: int
    rng: RngStream
    chunk: int = DEFAULT_CHUNK

    def __post_init__(self):
        if self.total < 0:
            raise ValueError(f"total must be >= 0, got {self.total}")
        check_positive("chunk", self.chunk)

    def __iter__(self) -> Iterator[np.ndarray]:
        produced = 0
        while produced < self.total:
            n = min(self.chunk, self.total - produced)
            yield self.pattern.addresses(produced, n, self.rng)
            produced += n

    def all_addresses(self) -> np.ndarray:
        """Materialize the whole stream (tests / small streams only)."""
        parts = list(self)
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)


def interleave_streams(
    patterns: Sequence[AccessPattern],
    counts: Sequence[int],
    rng: RngStream,
    *,
    chunk: int = DEFAULT_CHUNK,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Interleave several instructions' streams in round-robin program order.

    Yields ``(instr_idx, addresses)`` chunk pairs where ``instr_idx[i]``
    identifies the instruction that issued ``addresses[i]``.  Within a
    chunk, accesses follow the per-iteration issue order: iteration 0 of
    every instruction, then iteration 1, etc., weighted by each
    instruction's relative count — the order a simple loop body would
    produce.  This interleaving matters: cache behavior of instruction A
    depends on the lines B and C touch in between A's accesses.
    """
    if len(patterns) != len(counts):
        raise ValueError("patterns and counts must have the same length")
    if not patterns:
        return
    counts = [int(c) for c in counts]
    if any(c < 0 for c in counts):
        raise ValueError("counts must be non-negative")
    total = sum(counts)
    if total == 0:
        return
    max_count = max(counts)
    # per-iteration issue ratio of instruction i
    ratios = np.array([c / max_count for c in counts])
    produced = [0] * len(patterns)
    emitted = 0
    # iterate in "super-iterations"; in each one, instruction i issues
    # round(ratio_i * span) accesses.  Build index/addr chunks of ~chunk.
    span = max(1, chunk // max(1, len(patterns)))
    iteration = 0
    while emitted < total:
        idx_parts: List[np.ndarray] = []
        addr_parts: List[np.ndarray] = []
        for i, (pattern, count) in enumerate(zip(patterns, counts)):
            target = min(count, int(round(ratios[i] * (iteration + 1) * span)))
            n = target - produced[i]
            if n <= 0:
                continue
            addr = pattern.addresses(produced[i], n, rng.child("instr", i))
            idx_parts.append(np.full(n, i, dtype=np.int32))
            addr_parts.append(addr)
            produced[i] += n
            emitted += n
        iteration += 1
        if not idx_parts:
            # ratio rounding stalled; flush remaining instructions directly
            for i, (pattern, count) in enumerate(zip(patterns, counts)):
                n = count - produced[i]
                if n <= 0:
                    continue
                addr = pattern.addresses(produced[i], n, rng.child("instr", i))
                idx_parts.append(np.full(n, i, dtype=np.int32))
                addr_parts.append(addr)
                produced[i] += n
                emitted += n
            if not idx_parts:
                break
        # interleave the per-instruction runs element-wise to approximate
        # issue order within the super-iteration
        order = np.argsort(
            np.concatenate(
                [np.linspace(0, 1, len(p), endpoint=False) for p in idx_parts]
            ),
            kind="stable",
        )
        instr_idx = np.concatenate(idx_parts)[order]
        addrs = np.concatenate(addr_parts)[order]
        yield instr_idx, addrs
