"""Event-trace replay: "replays the entire execution of the HPC
application on the target/predicted system" (§III).

A cooperative discrete-event scheduler advances per-rank virtual clocks
through each rank's event script:

- **compute** events take time from a :class:`ComputationTimer`;
- **sends** are buffered: the sender pays only a posting overhead and the
  message becomes available at that moment;
- **recvs** block until the matching ``(src, dest, tag)`` message is
  available, then pay the network transfer time;
- **collectives** synchronize all ranks; completion is the latest arrival
  plus the collective's cost model.

The scheduler is work-queue driven (a rank is revisited only when
something it waits for happens), so replay is O(events) not
O(events x ranks).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Tuple

import numpy as np

from repro.machine.network import NetworkParameters
from repro.obs.trace import span
from repro.simmpi.events import CollectiveEvent, ComputeEvent, RecvEvent, SendEvent
from repro.simmpi.runtime import Job


class ComputationTimer:
    """Maps (rank, block, iterations) to seconds.  Subclass or wrap."""

    def time_s(self, rank: int, block_id: int, iterations: int) -> float:
        raise NotImplementedError


class UniformTimer(ComputationTimer):
    """Every rank uses the same per-iteration block costs.

    This is the slowest-task-as-base strategy the paper uses (§VI): the
    traced (or extrapolated) task's per-iteration costs apply to every
    rank; per-rank workload differences enter via each rank's own
    iteration counts in its event script.
    """

    def __init__(self, iteration_time_s: Callable[[int], float]):
        self._iteration_time_s = iteration_time_s

    def time_s(self, rank: int, block_id: int, iterations: int) -> float:
        return self._iteration_time_s(block_id) * iterations


class PerRankTimer(ComputationTimer):
    """Per-rank (or per-equivalence-class) block costs."""

    def __init__(self, timers: Dict[int, Callable[[int], float]]):
        self._timers = timers

    def time_s(self, rank: int, block_id: int, iterations: int) -> float:
        try:
            fn = self._timers[rank]
        except KeyError:
            raise KeyError(f"no computation timer for rank {rank}") from None
        return fn(block_id) * iterations


class ReplayDeadlockError(RuntimeError):
    """Raised when no rank can make progress before completion."""


@dataclass
class ReplayResult:
    """Outcome of one replay."""

    app: str
    n_ranks: int
    runtime_s: float
    compute_time_s: np.ndarray
    comm_time_s: np.ndarray
    n_events: int

    @property
    def max_compute_s(self) -> float:
        return float(self.compute_time_s.max()) if self.compute_time_s.size else 0.0

    def comm_fraction(self) -> float:
        """Communication share of the critical path's rank."""
        critical = int(np.argmax(self.compute_time_s + self.comm_time_s))
        total = self.compute_time_s[critical] + self.comm_time_s[critical]
        return float(self.comm_time_s[critical] / total) if total > 0 else 0.0


_COLLECTIVE_COST = {
    "barrier": lambda net, p, b: net.barrier_time_s(p),
    "allreduce": lambda net, p, b: net.allreduce_time_s(p, b),
    "reduce": lambda net, p, b: net.reduce_time_s(p, b),
    "broadcast": lambda net, p, b: net.broadcast_time_s(p, b),
    "alltoall": lambda net, p, b: net.alltoall_time_s(p, b),
    "allgather": lambda net, p, b: net.allgather_time_s(p, b),
}


class ReplayEngine:
    """One replay's scheduler state, inspectable after :meth:`run`.

    All transient bookkeeping lives in plain dicts whose entries are
    removed as soon as they drain — a matched send deletes its emptied
    mailbox slot, a satisfied recv its waiter queue, a completed
    collective both its arrival map and its spec.  On a clean replay
    every one of ``mailbox``, ``recv_waiters``, ``coll_arrivals``, and
    ``coll_spec`` ends empty (unmatched sends legitimately leave mailbox
    residue), so long replays don't accumulate dead entries and tests
    can assert the bookkeeping drained.
    """

    def __init__(
        self,
        job: Job,
        timer: ComputationTimer,
        network: NetworkParameters,
    ):
        self.job = job
        self.timer = timer
        self.network = network
        n = job.n_ranks
        self.scripts = [s.events for s in job.scripts]
        self.pc = [0] * n
        self.clock = np.zeros(n)
        self.compute_time = np.zeros(n)
        self.comm_time = np.zeros(n)
        #: (src, dest, tag) -> deque of (available_time, nbytes)
        self.mailbox: Dict[Tuple[int, int, int], Deque[Tuple[float, int]]] = {}
        #: ranks blocked on a recv key
        self.recv_waiters: Dict[Tuple[int, int, int], Deque[int]] = {}
        #: collective synchronization: per-index arrivals and spec
        self.coll_index = [0] * n
        self.coll_arrivals: Dict[int, Dict[int, float]] = {}
        self.coll_spec: Dict[int, Tuple[str, int]] = {}

    def run(self) -> ReplayResult:
        job, timer, network = self.job, self.timer, self.network
        n = job.n_ranks
        scripts = self.scripts
        pc = self.pc
        clock = self.clock
        compute_time = self.compute_time
        comm_time = self.comm_time
        mailbox = self.mailbox
        recv_waiters = self.recv_waiters
        coll_index = self.coll_index
        coll_arrivals = self.coll_arrivals
        coll_spec = self.coll_spec

        runnable: Deque[int] = deque(range(n))
        queued = [True] * n
        done_count = 0
        n_events = sum(len(s) for s in scripts)
        send_overhead = network.send_overhead_us * 1e-6

        def wake(rank: int) -> None:
            if not queued[rank]:
                queued[rank] = True
                runnable.append(rank)

        while runnable:
            r = runnable.popleft()
            queued[r] = False
            script = scripts[r]
            while pc[r] < len(script):
                ev = script[pc[r]]
                if isinstance(ev, ComputeEvent):
                    dt = timer.time_s(r, ev.block_id, ev.iterations)
                    clock[r] += dt
                    compute_time[r] += dt
                    pc[r] += 1
                elif isinstance(ev, SendEvent):
                    key = (r, ev.dest, ev.tag)
                    clock[r] += send_overhead
                    comm_time[r] += send_overhead
                    mailbox.setdefault(key, deque()).append(
                        (clock[r], ev.nbytes)
                    )
                    pc[r] += 1
                    waiters = recv_waiters.get(key)
                    if waiters:
                        wake(waiters.popleft())
                        if not waiters:
                            del recv_waiters[key]
                elif isinstance(ev, RecvEvent):
                    key = (ev.src, r, ev.tag)
                    box = mailbox.get(key)
                    if not box:
                        recv_waiters.setdefault(key, deque()).append(r)
                        break
                    avail, nbytes = box.popleft()
                    if not box:
                        del mailbox[key]
                    if nbytes != ev.nbytes:
                        raise ValueError(
                            f"message size mismatch on {key}: sent {nbytes}, "
                            f"receiving {ev.nbytes}"
                        )
                    start = clock[r]
                    finish = max(start, avail) + network.p2p_time_s(nbytes)
                    comm_time[r] += finish - start
                    clock[r] = finish
                    pc[r] += 1
                elif isinstance(ev, CollectiveEvent):
                    idx = coll_index[r]
                    spec = (ev.op, ev.nbytes)
                    if idx in coll_spec and coll_spec[idx] != spec:
                        raise ValueError(
                            f"collective #{idx} mismatch: rank {r} issues "
                            f"{spec}, others issued {coll_spec[idx]}"
                        )
                    coll_spec[idx] = spec
                    arrivals = coll_arrivals.setdefault(idx, {})
                    arrivals[r] = clock[r]
                    coll_index[r] += 1
                    if len(arrivals) < n:
                        break  # blocked until the last rank arrives
                    cost = _COLLECTIVE_COST[ev.op](network, n, ev.nbytes)
                    finish = max(arrivals.values()) + cost
                    for rank, arrived in arrivals.items():
                        comm_time[rank] += finish - arrived
                        clock[rank] = finish
                        pc[rank] += 1
                        if rank != r:
                            wake(rank)
                    # every rank has passed this collective; its
                    # bookkeeping can never be consulted again
                    del coll_arrivals[idx]
                    del coll_spec[idx]
                else:  # pragma: no cover - defensive
                    raise TypeError(f"unknown event type {type(ev)!r}")
            else:
                done_count += 1

        if done_count < n:
            stuck = [r for r in range(n) if pc[r] < len(scripts[r])]
            detail = ", ".join(
                f"rank {r} at event {pc[r]}/{len(scripts[r])} "
                f"({type(scripts[r][pc[r]]).__name__})"
                for r in stuck[:5]
            )
            raise ReplayDeadlockError(
                f"replay of {job.app} deadlocked with {len(stuck)} rank(s) "
                f"blocked: {detail}"
            )

        return ReplayResult(
            app=job.app,
            n_ranks=n,
            runtime_s=float(clock.max()) if n else 0.0,
            compute_time_s=compute_time,
            comm_time_s=comm_time,
            n_events=n_events,
        )


def replay_job(
    job: Job,
    timer: ComputationTimer,
    network: NetworkParameters,
) -> ReplayResult:
    """Replay a job's event traces; return the predicted runtime."""
    with span("replay.job", n_ranks=job.n_ranks):
        return ReplayEngine(job, timer, network).run()
