"""PSiNS-style replay simulation and the PMaC convolution.

The convolution (:mod:`repro.psins.convolution`) maps an application
signature onto a machine profile — Eq. 1 of the paper — yielding
per-basic-block computation times.  The replay engine
(:mod:`repro.psins.replay`) then replays the entire execution's event
trace with those times plus the communication model, producing the
predicted runtime.

:mod:`repro.psins.ground_truth` is *not* part of the prediction
framework: it is the stand-in for "actually running the application on
the target machine", using the machine's hardware truth plus
second-order effects the convolution deliberately ignores.  Table I's %
errors compare predictions against its output.
"""

from repro.psins.convolution import (
    BlockTimeBreakdown,
    ComputationModel,
    ConvolutionConfig,
)
from repro.psins.replay import ReplayResult, replay_job
from repro.psins.ground_truth import GroundTruthConfig, GroundTruthTimer, measure_job

__all__ = [
    "ConvolutionConfig",
    "BlockTimeBreakdown",
    "ComputationModel",
    "ReplayResult",
    "replay_job",
    "GroundTruthConfig",
    "GroundTruthTimer",
    "measure_job",
]
