"""Ground-truth execution: the stand-in for running the app for real.

Table I compares predicted runtimes against the *real measured runtime*
of the application on the target system.  We cannot run SPECFEM3D on
Blue Waters; instead this module executes the proxy application on the
target machine's *hardware truth* at instruction-block granularity, with
second-order effects the prediction framework's convolution deliberately
abstracts away:

- per-iteration loop overhead (branch/address arithmetic),
- dependence-chain stalls reducing effective fp issue width,
- TLB misses for large, poorly-localized working sets.

Because the predictor ignores these, its error against this ground truth
is small but structurally non-zero — the same relationship the paper's
predictions have to wall-clock measurements.  Nothing from this module
feeds the prediction path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence


from repro.cache.hierarchy import CacheHierarchy
from repro.instrument.pebil import InstrumentedProgram
from repro.instrument.program import Program
from repro.machine.network import NetworkParameters
from repro.machine.timing import FP_OP_KINDS, HardwareTiming
from repro.memstream.patterns import (
    AccessPattern,
    BlockedPattern,
    ConstantPattern,
    GatherScatterPattern,
    PointerChasePattern,
    RandomPattern,
    StencilPattern,
    StridedPattern,
)
from repro.psins.convolution import combine_with_overlap
from repro.psins.replay import PerRankTimer, ReplayResult, replay_job
from repro.simmpi.runtime import Job
from repro.util.rng import stream
from repro.util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class GroundTruthConfig:
    """Second-order effect parameters of the detailed simulator."""

    loop_overhead_cycles: float = 0.5
    dep_penalty: float = 0.015
    tlb_entries: int = 512
    page_bytes: int = 4096
    tlb_miss_ns: float = 12.0
    sample_accesses: int = 200_000
    max_sample_accesses: int = 3_000_000

    def __post_init__(self):
        check_in_range("loop_overhead_cycles", self.loop_overhead_cycles, low=0.0)
        check_in_range("dep_penalty", self.dep_penalty, low=0.0)
        check_positive("tlb_entries", self.tlb_entries)
        check_positive("page_bytes", self.page_bytes)
        check_in_range("tlb_miss_ns", self.tlb_miss_ns, low=0.0)

    @property
    def tlb_coverage_bytes(self) -> int:
        return self.tlb_entries * self.page_bytes


def _pattern_randomness(pattern: AccessPattern) -> float:
    """How page-unfriendly a pattern's successive accesses are, [0, 1]."""
    if isinstance(pattern, RandomPattern):
        return 1.0
    if isinstance(pattern, GatherScatterPattern):
        return 1.0 - pattern.locality
    if isinstance(pattern, PointerChasePattern):
        return 0.8
    if isinstance(pattern, ConstantPattern):
        return 0.0
    if isinstance(pattern, StridedPattern):
        step = pattern.stride_elements * pattern.element_size
        return min(1.0, step / 4096.0)
    if isinstance(pattern, (BlockedPattern, StencilPattern)):
        return 0.05
    return 0.2


class GroundTruthTimer:
    """Per-iteration block times for one rank's program on real hardware.

    Instruments the program against the target hierarchy (its own run,
    independent of any prediction-path collection) and prices each block
    from the hardware truth plus second-order effects.
    """

    def __init__(
        self,
        program: Program,
        hierarchy: CacheHierarchy,
        timing: HardwareTiming,
        config: Optional[GroundTruthConfig] = None,
    ):
        if timing.n_levels != hierarchy.n_levels:
            raise ValueError("timing/hierarchy level count mismatch")
        self.config = config or GroundTruthConfig()
        self.timing = timing
        rng = stream("ground-truth", program.name, hierarchy.name)
        report = InstrumentedProgram(
            program,
            hierarchy,
            sample_accesses=self.config.sample_accesses,
            max_sample_accesses=self.config.max_sample_accesses,
        ).run(rng)
        self._iteration_ns: Dict[int, float] = {}
        service = timing.service_times_ns()
        for block in program.blocks:
            obs = report.observation(block.block_id)
            mem_ns = 0.0
            if obs.sampled_iterations > 0 and obs.accesses.size:
                # per-iteration served counts from the sample
                served = obs.served_counts() / obs.sampled_iterations
                mem_ns += float(served.sum(axis=0) @ service)
                # TLB penalties per instruction
                for i, instr in enumerate(block.mem_instructions):
                    footprint = instr.pattern.footprint_bytes()
                    if footprint <= self.config.tlb_coverage_bytes:
                        continue
                    miss_rate = (
                        1.0 - self.config.tlb_coverage_bytes / footprint
                    ) * _pattern_randomness(instr.pattern)
                    per_iter_accesses = instr.per_iteration
                    mem_ns += (
                        per_iter_accesses * miss_rate * self.config.tlb_miss_ns
                    )
            fp_ns = 0.0
            for fp in block.fp_instructions:
                width = min(max(fp.ilp, 1.0), 4.0)
                dep_factor = 1.0 + self.config.dep_penalty * max(
                    fp.dep_chain - 1.0, 0.0
                )
                for kind in FP_OP_KINDS:
                    count = fp.op_counts.get(kind, 0.0)
                    if count > 0:
                        fp_ns += (
                            count * timing.fp_time_ns[kind] / width * dep_factor
                        )
            total_ns = combine_with_overlap(mem_ns, fp_ns, timing.overlap)
            total_ns += self.config.loop_overhead_cycles / timing.frequency_ghz
            self._iteration_ns[block.block_id] = total_ns

    def iteration_time_s(self, block_id: int) -> float:
        try:
            return self._iteration_ns[block_id] * 1e-9
        except KeyError:
            raise KeyError(f"ground truth has no block {block_id}") from None


def measure_job(
    job: Job,
    program_for_rank: Callable[[int], Program],
    equivalence_classes: Sequence[Sequence[int]],
    hierarchy: CacheHierarchy,
    timing: HardwareTiming,
    network: NetworkParameters,
    config: Optional[GroundTruthConfig] = None,
) -> ReplayResult:
    """"Run" the job on the target machine; return its measured timeline.

    ``equivalence_classes`` partition ranks into groups with identical
    programs (from the app's decomposition); one representative per
    class is simulated in detail and its per-iteration costs shared by
    the class — the detailed simulation stays tractable at 8192 ranks
    while every rank still gets workload-appropriate timings.
    """
    covered = sorted(r for cls in equivalence_classes for r in cls)
    if covered != list(range(job.n_ranks)):
        raise ValueError("equivalence classes must partition all ranks")
    timers: Dict[int, Callable[[int], float]] = {}
    for cls in equivalence_classes:
        representative = min(cls)
        timer = GroundTruthTimer(
            program_for_rank(representative),
            hierarchy,
            timing,
            config,
        )
        for rank in cls:
            timers[rank] = timer.iteration_time_s
    return replay_job(job, PerRankTimer(timers), network)
