"""The PMaC convolution: application signature x machine profile -> time.

Implements Eq. 1 of the paper:

    memory_time = sum over basic blocks i, reference types j of
                  (memory_ref[i, j] * size_of_ref) / memory_BW[j]

where a reference's *type* j is its position on the MultiMAPS surface —
its cache hit rates — so ``memory_BW[j]`` is the surface evaluated at the
instruction's hit-rate vector.  Floating-point time is modeled similarly
from per-class op counts and issue rates, with partial overlap between
memory and floating-point work (§III-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


from repro.machine.profile import MachineProfile
from repro.machine.timing import FP_OP_KINDS
from repro.trace.records import BasicBlockRecord
from repro.trace.tracefile import TraceFile
from repro.util.validation import check_in_range


@dataclass(frozen=True)
class ConvolutionConfig:
    """Model constants of the convolution.

    Parameters
    ----------
    overlap:
        Fraction of the smaller of (memory time, fp time) hidden under
        the larger:  ``time = max(m, f) + (1 - overlap) * min(m, f)``.
    max_issue_width:
        Cap on exploitable ILP when scaling fp issue time.
    """

    overlap: float = 0.8
    max_issue_width: float = 4.0

    def __post_init__(self):
        check_in_range("overlap", self.overlap, 0.0, 1.0)
        check_in_range("max_issue_width", self.max_issue_width, low=1.0)


@dataclass
class BlockTimeBreakdown:
    """Predicted time of one basic block's full execution."""

    block_id: int
    memory_time_s: float
    fp_time_s: float
    total_time_s: float
    exec_count: float

    @property
    def per_iteration_s(self) -> float:
        if self.exec_count <= 0:
            return 0.0
        return self.total_time_s / self.exec_count


def combine_with_overlap(memory_s: float, fp_s: float, overlap: float) -> float:
    """Combine memory and fp time with partial overlap."""
    hi, lo = (memory_s, fp_s) if memory_s >= fp_s else (fp_s, memory_s)
    return hi + (1.0 - overlap) * lo


class ComputationModel:
    """Per-block computation times for one (trace, machine) pair.

    This is the computation half of the PMaC prediction: the replay
    engine queries :meth:`iteration_time_s` for every compute event.
    """

    def __init__(
        self,
        trace: TraceFile,
        machine: MachineProfile,
        config: Optional[ConvolutionConfig] = None,
    ):
        if trace.target != machine.hierarchy.name:
            raise ValueError(
                f"trace was collected against {trace.target!r} but machine "
                f"is {machine.hierarchy.name!r}"
            )
        self.trace = trace
        self.machine = machine
        self.config = config or ConvolutionConfig()
        self._breakdowns: Dict[int, BlockTimeBreakdown] = {}
        self._compute_all()

    def _block_breakdown(self, block: BasicBlockRecord) -> BlockTimeBreakdown:
        schema = self.trace.schema
        memory_ns = 0.0
        fp_ns = 0.0
        exec_count = 0.0
        for ins in block.instructions:
            vec = ins.features
            exec_count = max(exec_count, float(vec[schema.index("exec_count")]))
            mem_ops = float(vec[schema.index("mem_ops")])
            if mem_ops > 0:
                ref_bytes = float(vec[schema.index("ref_bytes")])
                rates = schema.hit_rates(vec)
                bw_gbs = float(self.machine.memory_bandwidth_gbs(rates))
                # bytes / (bytes/ns) == ns
                memory_ns += mem_ops * ref_bytes / max(bw_gbs, 1e-9)
            ilp = float(vec[schema.index("ilp")])
            width = min(max(ilp, 1.0), self.config.max_issue_width)
            for kind in FP_OP_KINDS:
                count = float(vec[schema.index(kind)])
                if count > 0:
                    rate_gflops = self.machine.fp_rates_gflops[kind]
                    fp_ns += count / max(rate_gflops, 1e-9) / width
        total_ns = combine_with_overlap(memory_ns, fp_ns, self.config.overlap)
        return BlockTimeBreakdown(
            block_id=block.block_id,
            memory_time_s=memory_ns * 1e-9,
            fp_time_s=fp_ns * 1e-9,
            total_time_s=total_ns * 1e-9,
            exec_count=exec_count,
        )

    def _compute_all(self) -> None:
        for block in self.trace.blocks.values():
            self._breakdowns[block.block_id] = self._block_breakdown(block)

    def breakdown(self, block_id: int) -> BlockTimeBreakdown:
        try:
            return self._breakdowns[block_id]
        except KeyError:
            raise KeyError(
                f"trace for {self.trace.app!r} has no block {block_id}"
            ) from None

    def iteration_time_s(self, block_id: int) -> float:
        """Predicted time of one iteration of a block."""
        return self.breakdown(block_id).per_iteration_s

    def total_compute_time_s(self) -> float:
        """Predicted computation time of the traced task's full execution."""
        return sum(b.total_time_s for b in self._breakdowns.values())

    def memory_fraction(self) -> float:
        """Fraction of computation time spent in memory (sanity metric)."""
        total = self.total_compute_time_s()
        if total <= 0:
            return 0.0
        mem = sum(b.memory_time_s for b in self._breakdowns.values())
        return mem / total
