"""SPECFEM3D_GLOBE proxy: spectral-element seismic wave propagation.

Structure follows the real code's time loop (see Carrington et al.,
SC'08, ref [28] of the paper):

1. ``element_kernel`` — the dominant kernel: per spectral element, dense
   small-tensor contractions over the element's GLL points.  Element
   field data streams through blocked/reused tiles, while a
   constant-size scratch region (derivative matrices + element-local
   buffers) is re-swept every element: that scratch instruction's cache
   behavior is *insensitive to core count* — Table III's subject.
2. ``update_vectors`` — global displacement/velocity/acceleration vector
   updates, accessed through the ``ibool`` local-to-global indirection
   as in the real code: mostly-sequential but scattered, so hit rates
   respond *smoothly* as the per-rank arrays shrink 1/P.
3. ``assembly_gather`` — summing element contributions on shared points:
   indirect but clustered access over the global points array.
4. ``halo_pack`` — packing boundary points for neighbor exchange;
   surface work, scales like (1/P)^(2/3) per rank.
5. ``absorbing_boundary`` — extra work on physical-boundary ranks only:
   the source of load imbalance that defines the slowest task.
6. ``norm_stages`` — local combine stages of the stability-check
   reduction; one stage per tree level, so its dynamic counts grow
   ~log2(P): the naturally logarithmic element (Fig. 5's shape).

The default global mesh (96x96x96 elements) divides evenly over the
paper's core counts {96, 384, 1536, 6144}, so local element counts are
uniform and rank classes differ only by boundary role.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

from repro.apps.base import AppModel, ScalingMode
from repro.apps.decomposition import CartesianDecomposition, factor3
from repro.instrument.builder import ProgramBuilder
from repro.instrument.program import Program
from repro.memstream.patterns import BlockedPattern, GatherScatterPattern, StridedPattern
from repro.simmpi.comm import SimComm

BLOCK_ELEMENT_KERNEL = 0
BLOCK_UPDATE_VECTORS = 1
BLOCK_ASSEMBLY = 2
BLOCK_HALO_PACK = 3
BLOCK_ABSORBING = 4
BLOCK_NORM_STAGES = 5

#: GLL points per element edge (NGLL=5 in SPECFEM3D_GLOBE).
_NGLL = 5
_POINTS_PER_ELEMENT = _NGLL ** 3  # 125
_POINTS_PER_FACE = _NGLL ** 2  # 25
#: bytes of field data per element (disp/veloc/accel x 3 comps + material)
_BYTES_PER_ELEMENT = _POINTS_PER_ELEMENT * 8 * 9
_BYTES_PER_POINT = 8 * 3
#: element-local scratch: hprime/hprimewgll derivative matrices plus
#: temporary tensors — constant size regardless of core count
_SCRATCH_BYTES = 16 * 1024


@dataclass(frozen=True)
class SpecFEMParams:
    """Workload parameters (defaults sized for 96..6144 ranks)."""

    global_elements: Tuple[int, int, int] = (96, 96, 96)
    n_steps: int = 4
    norm_buffer_points: int = 2048
    weak_elements_per_rank: Tuple[int, int, int] = (8, 8, 8)


class SpecFEM3DProxy(AppModel):
    """Strong-scaled spectral-element wave-propagation proxy."""

    name = "specfem3d"

    def __init__(
        self,
        params: SpecFEMParams = SpecFEMParams(),
        scaling: ScalingMode = ScalingMode.STRONG,
    ):
        self.params = params
        self.scaling = scaling

    @lru_cache(maxsize=32)
    def decomposition(self, n_ranks: int) -> CartesianDecomposition:
        if self.scaling is ScalingMode.STRONG:
            elements = self.params.global_elements
        else:
            grid = factor3(n_ranks)
            elements = tuple(
                e * g for e, g in zip(self.params.weak_elements_per_rank, grid)
            )
        return CartesianDecomposition(elements, n_ranks)

    # ------------------------------------------------------------------
    # per-step iteration counts (shared by program and script)

    def _counts(self, rank: int, n_ranks: int) -> dict:
        geom = self.decomposition(n_ranks).geometry(rank)
        n_elements = geom.n_cells
        n_points = n_elements * _POINTS_PER_ELEMENT
        halo_points = geom.halo_cells() * _POINTS_PER_FACE
        boundary_points = geom.boundary_cells() * _POINTS_PER_FACE
        tree_depth = max(1, math.ceil(math.log2(max(n_ranks, 2))))
        return {
            "geom": geom,
            "elements": n_elements,
            "points": n_points,
            "halo_points": halo_points,
            "boundary_points": boundary_points,
            "norm_iters": self.params.norm_buffer_points * tree_depth,
        }

    def rank_program(self, rank: int, n_ranks: int) -> Program:
        c = self._counts(rank, n_ranks)
        steps = self.params.n_steps
        element_bytes = max(c["elements"] * _BYTES_PER_ELEMENT, 4096)
        vector_bytes = max(c["points"] * _BYTES_PER_POINT, 4096)
        halo_bytes = max(c["halo_points"] * 8, 512)
        boundary_bytes = max(c["boundary_points"] * 8, 512)
        norm_bytes = self.params.norm_buffer_points * 8
        nx, ny, _nz = c["geom"].local_cells
        return (
            ProgramBuilder(f"{self.name}-r{rank}-p{n_ranks}")
            # 1. dense element kernel: blocked reuse of element data
            .block(
                "compute_element_forces",
                file="compute_forces_crust_mantle.f90",
                line=210,
                block_id=BLOCK_ELEMENT_KERNEL,
            )
            .load(
                BlockedPattern(
                    region_bytes=element_bytes,
                    tile_elements=_BYTES_PER_ELEMENT // 8,
                    revisits=3,
                ),
                per_iteration=24,
            )
            .load(
                # constant-footprint scratch sweep (Table III's subject):
                # derivative matrices + element-local tensors
                StridedPattern(region_bytes=_SCRATCH_BYTES),
                per_iteration=320,
            )
            .store(
                BlockedPattern(
                    region_bytes=element_bytes,
                    tile_elements=_BYTES_PER_ELEMENT // 8,
                    revisits=1,
                ),
                per_iteration=8,
            )
            .fp(
                {"fp_fma": 340, "fp_add": 120, "fp_mul": 90},
                ilp=3.2,
                dep_chain=4.0,
            )
            .executes(c["elements"] * steps)
            .done()
            # 2. global vector updates through the ibool indirection:
            # mostly-sequential gather/scatter over the shrinking arrays
            .block(
                "update_displacement",
                file="update_displacement_scheme.f90",
                line=88,
                block_id=BLOCK_UPDATE_VECTORS,
            )
            .load(
                GatherScatterPattern(
                    region_bytes=vector_bytes, locality=0.9, cluster_elements=125
                ),
                per_iteration=3,
            )
            .store(
                GatherScatterPattern(
                    region_bytes=vector_bytes, locality=0.9, cluster_elements=125
                ),
                per_iteration=2,
            )
            .fp({"fp_fma": 3, "fp_mul": 1}, ilp=3.5, dep_chain=2.0)
            .executes(c["points"] * steps)
            .done()
            # 3. assembly on shared points: clustered indirect access
            .block(
                "assemble_boundary",
                file="assemble_MPI_vector.f90",
                line=131,
                block_id=BLOCK_ASSEMBLY,
            )
            .load(
                GatherScatterPattern(
                    region_bytes=vector_bytes,
                    locality=0.85,
                    cluster_elements=_POINTS_PER_FACE,
                ),
                per_iteration=2,
            )
            .store(
                GatherScatterPattern(
                    region_bytes=vector_bytes,
                    locality=0.85,
                    cluster_elements=_POINTS_PER_FACE,
                ),
            )
            .fp({"fp_add": 3}, ilp=2.0, dep_chain=2.0)
            .executes(max(c["halo_points"], 1) * steps)
            .done()
            # 4. halo pack/unpack: strided copies into comm buffers
            .block(
                "halo_pack",
                file="assemble_MPI_vector.f90",
                line=203,
                block_id=BLOCK_HALO_PACK,
            )
            .load(
                # boundary points are scattered through the global array
                GatherScatterPattern(
                    region_bytes=vector_bytes,
                    locality=0.75,
                    cluster_elements=_POINTS_PER_FACE,
                ),
            )
            .store(StridedPattern(region_bytes=halo_bytes))
            .executes(max(c["halo_points"], 1) * steps)
            .done()
            # 5. absorbing boundary (Stacey): physical-boundary ranks only
            .block(
                "absorbing_boundary",
                file="compute_stacey_crust_mantle.f90",
                line=59,
                block_id=BLOCK_ABSORBING,
            )
            .load(
                GatherScatterPattern(
                    region_bytes=boundary_bytes,
                    locality=0.7,
                    cluster_elements=_POINTS_PER_FACE,
                ),
                per_iteration=4,
            )
            .store(StridedPattern(region_bytes=boundary_bytes), per_iteration=2)
            .fp({"fp_fma": 9, "fp_mul": 6}, ilp=2.5, dep_chain=3.0)
            .executes(c["boundary_points"] * steps)
            .done()
            # 6. norm-check combine stages: one per reduction tree level
            .block(
                "norm_stages",
                file="check_stability.f90",
                line=41,
                block_id=BLOCK_NORM_STAGES,
            )
            .load(StridedPattern(region_bytes=norm_bytes), per_iteration=2)
            .store(StridedPattern(region_bytes=norm_bytes))
            .fp({"fp_add": 1, "fp_mul": 1}, ilp=4.0, dep_chain=1.5)
            .executes(c["norm_iters"] * steps)
            .done()
            .build()
        )

    def rank_script(self, comm: SimComm) -> None:
        c = self._counts(comm.rank, comm.size)
        geom = c["geom"]
        for _step in range(self.params.n_steps):
            comm.compute(BLOCK_ELEMENT_KERNEL, c["elements"])
            comm.compute(BLOCK_UPDATE_VECTORS, c["points"])
            if c["boundary_points"]:
                comm.compute(BLOCK_ABSORBING, c["boundary_points"])
            comm.compute(BLOCK_HALO_PACK, max(c["halo_points"], 1))
            for (dim, _direction), neighbor in sorted(geom.neighbors.items()):
                nbytes = geom.face_cells(dim) * _POINTS_PER_FACE * 8
                comm.send(neighbor, nbytes, tag=dim)
            for (dim, _direction), neighbor in sorted(geom.neighbors.items()):
                nbytes = geom.face_cells(dim) * _POINTS_PER_FACE * 8
                comm.recv(neighbor, nbytes, tag=dim)
            comm.compute(BLOCK_ASSEMBLY, max(c["halo_points"], 1))
            comm.compute(BLOCK_NORM_STAGES, c["norm_iters"])
            comm.allreduce(8)

    def equivalence_classes(self, n_ranks: int) -> List[List[int]]:
        return self.decomposition(n_ranks).equivalence_classes()
