"""The application-proxy interface.

An :class:`AppModel` is everything the pipeline needs from a workload:

- per-rank :class:`~repro.instrument.program.Program`\\ s (what the task
  computes, for instrumentation/tracing),
- per-rank event scripts via a SimMPI rank function (when it computes
  vs. communicates, for replay),
- rank equivalence classes (for tractable ground-truth simulation).

Strong vs. weak scaling (§V: "Each application was scaled using strong
scaling"; §VI flags weak scaling as future work) is a mode on the model:
strong keeps the global problem fixed, weak grows it with the core
count.
"""

from __future__ import annotations

import enum
from typing import Callable, List

from repro.instrument.program import Program
from repro.simmpi.comm import SimComm
from repro.simmpi.runtime import Job, run_job


class ScalingMode(enum.Enum):
    """How the global problem size responds to the core count."""

    STRONG = "strong"
    WEAK = "weak"


class AppModel:
    """Base class for application proxies."""

    #: Application name used in traces, signatures and reports.
    name: str = "app"

    # -- the contract ----------------------------------------------------

    def rank_program(self, rank: int, n_ranks: int) -> Program:
        """Build the (laid-out) program of one rank at one core count."""
        raise NotImplementedError

    def rank_script(self, comm: SimComm) -> None:
        """Emit one rank's events (the SPMD rank function)."""
        raise NotImplementedError

    def equivalence_classes(self, n_ranks: int) -> List[List[int]]:
        """Partition ranks into identical-program groups."""
        raise NotImplementedError

    # -- provided --------------------------------------------------------

    def build_job(self, n_ranks: int) -> Job:
        """Record every rank's event script at one core count."""
        return run_job(self.name, n_ranks, self.rank_script)

    def program_factory(self, n_ranks: int) -> Callable[[int], Program]:
        """Rank -> program callable bound to one core count."""

        def factory(rank: int) -> Program:
            return self.rank_program(rank, n_ranks)

        return factory
