"""3-D Cartesian domain decomposition.

Both proxies decompose a global structured grid over a 3-D process grid.
The decomposition determines everything that scales: local cell counts
(volume work), face areas (halo exchange sizes and boundary work), and
which ranks sit on the physical domain boundary (extra work, hence load
imbalance and a well-defined "most computationally demanding task").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.util.validation import check_positive


def factor3(p: int) -> Tuple[int, int, int]:
    """Factor ``p`` into three near-equal factors (largest first).

    The classic MPI_Dims_create-style balanced factorization: repeatedly
    peel the largest prime factor onto the currently-smallest dimension.
    """
    check_positive("p", p)
    dims = [1, 1, 1]
    remaining = p
    factors: List[int] = []
    d = 2
    while d * d <= remaining:
        while remaining % d == 0:
            factors.append(d)
            remaining //= d
        d += 1
    if remaining > 1:
        factors.append(remaining)
    for f in sorted(factors, reverse=True):
        dims.sort()
        dims[0] *= f
    dims.sort(reverse=True)
    return (dims[0], dims[1], dims[2])


@dataclass(frozen=True)
class RankGeometry:
    """One rank's share of the global grid."""

    rank: int
    coords: Tuple[int, int, int]
    local_cells: Tuple[int, int, int]
    #: face neighbors: (dim, direction) -> neighbor rank, absent at
    #: non-periodic physical boundaries
    neighbors: Dict[Tuple[int, int], int]
    #: number of faces on the physical domain boundary (0..6)
    boundary_faces: int

    @property
    def n_cells(self) -> int:
        nx, ny, nz = self.local_cells
        return nx * ny * nz

    def face_cells(self, dim: int) -> int:
        """Cells on a face perpendicular to ``dim``."""
        nx, ny, nz = self.local_cells
        if dim == 0:
            return ny * nz
        if dim == 1:
            return nx * nz
        if dim == 2:
            return nx * ny
        raise ValueError(f"dim must be 0..2, got {dim}")

    def halo_cells(self) -> int:
        """Total cells exchanged with all present neighbors."""
        return sum(self.face_cells(dim) for (dim, _d) in self.neighbors)

    def boundary_cells(self) -> int:
        """Cells on physical-boundary faces (extra-work surface)."""
        total = 0
        for dim in range(3):
            for direction in (-1, +1):
                if (dim, direction) not in self.neighbors:
                    total += self.face_cells(dim)
        return total


class CartesianDecomposition:
    """Decompose ``global_cells`` over ``n_ranks`` processes.

    Cells that do not divide evenly are distributed to the
    lowest-coordinate ranks (one extra layer each), producing the mild,
    realistic load imbalance that makes one task the slowest.

    Parameters
    ----------
    global_cells:
        Global grid dimensions (nx, ny, nz).
    n_ranks:
        Process count; factored into a 3-D grid automatically.
    periodic:
        Whether each dimension wraps (no physical boundary).
    """

    def __init__(
        self,
        global_cells: Tuple[int, int, int],
        n_ranks: int,
        *,
        periodic: Tuple[bool, bool, bool] = (False, False, False),
    ):
        check_positive("n_ranks", n_ranks)
        for i, n in enumerate(global_cells):
            check_positive(f"global_cells[{i}]", n)
        self.global_cells = tuple(int(c) for c in global_cells)
        self.n_ranks = int(n_ranks)
        self.periodic = tuple(periodic)
        self.grid = factor3(self.n_ranks)
        for dim in range(3):
            if self.grid[dim] > self.global_cells[dim]:
                raise ValueError(
                    f"cannot split {self.global_cells[dim]} cells over "
                    f"{self.grid[dim]} ranks in dim {dim} (n_ranks={n_ranks})"
                )

    # ------------------------------------------------------------------

    def coords_of(self, rank: int) -> Tuple[int, int, int]:
        """Process-grid coordinates of a rank (x fastest)."""
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range")
        px, py, _pz = self.grid
        return (rank % px, (rank // px) % py, rank // (px * py))

    def rank_of(self, coords: Tuple[int, int, int]) -> int:
        px, py, pz = self.grid
        x, y, z = coords
        return x + y * px + z * px * py

    def _local_extent(self, dim: int, coord: int) -> int:
        total = self.global_cells[dim]
        parts = self.grid[dim]
        base, extra = divmod(total, parts)
        return base + (1 if coord < extra else 0)

    def geometry(self, rank: int) -> RankGeometry:
        """Full geometry of one rank."""
        coords = self.coords_of(rank)
        local = tuple(self._local_extent(d, coords[d]) for d in range(3))
        neighbors: Dict[Tuple[int, int], int] = {}
        boundary = 0
        for dim in range(3):
            for direction in (-1, +1):
                c = coords[dim] + direction
                if 0 <= c < self.grid[dim]:
                    ncoords = list(coords)
                    ncoords[dim] = c
                    neighbors[(dim, direction)] = self.rank_of(tuple(ncoords))
                elif self.periodic[dim] and self.grid[dim] > 1:
                    ncoords = list(coords)
                    ncoords[dim] = c % self.grid[dim]
                    neighbors[(dim, direction)] = self.rank_of(tuple(ncoords))
                else:
                    boundary += 1
        return RankGeometry(
            rank=rank,
            coords=coords,
            local_cells=local,
            neighbors=neighbors,
            boundary_faces=boundary,
        )

    def equivalence_classes(self) -> List[List[int]]:
        """Group ranks whose geometry implies identical programs.

        The key is (local extents, halo cells, boundary cells): proxies
        build their programs from exactly these quantities, so ranks in
        a class have identical programs by construction.
        """
        classes: Dict[Tuple, List[int]] = {}
        for rank in range(self.n_ranks):
            geom = self.geometry(rank)
            key = (geom.local_cells, geom.halo_cells(), geom.boundary_cells())
            classes.setdefault(key, []).append(rank)
        return [sorted(v) for v in sorted(classes.values(), key=lambda c: c[0])]
