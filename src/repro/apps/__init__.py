"""Application proxies: the workloads the methodology is evaluated on.

Real SPECFEM3D_GLOBE and UH3D runs at 96–8192 cores are not available
here; these proxies stand in for them (see DESIGN.md's substitution
table).  Each proxy derives per-rank programs (basic blocks with access
patterns and op counts) and event scripts (halo exchanges, collectives)
from an explicit domain decomposition, so *how every feature scales with
core count is an emergent property of the decomposition*, not something
hand-coded to match a canonical form — the extrapolation is fitted
against honest curves.

- :class:`~repro.apps.specfem3d.SpecFEM3DProxy` — spectral-element
  seismic-wave proxy (structured 3-D grid, dense element kernels,
  surface-dominated halo exchange, absorbing-boundary imbalance).
- :class:`~repro.apps.uh3d.UH3DProxy` — hybrid particle-in-cell
  magnetosphere proxy (gather/scatter-dominated, spatially non-uniform
  particle density driving load imbalance).
- :class:`~repro.apps.jacobi.JacobiProxy` — minimal 7-point stencil
  teaching app used by the quickstart and tests.
"""

from repro.apps.base import AppModel, ScalingMode
from repro.apps.decomposition import CartesianDecomposition, factor3
from repro.apps.jacobi import JacobiProxy
from repro.apps.specfem3d import SpecFEM3DProxy
from repro.apps.uh3d import UH3DProxy
from repro.apps.registry import get_app, APP_BUILDERS

__all__ = [
    "AppModel",
    "ScalingMode",
    "CartesianDecomposition",
    "factor3",
    "JacobiProxy",
    "SpecFEM3DProxy",
    "UH3DProxy",
    "get_app",
    "APP_BUILDERS",
]
