"""UH3D proxy: hybrid particle-in-cell magnetosphere simulation.

UH3D (Karimabadi et al., ref [3] of the paper) treats ions as particles
and electrons as a fluid on a 3-D grid.  The proxy's time loop:

1. ``particle_push`` — Boris push over particle SoA arrays: pure
   streaming, FMA-rich; work scales with local particle count.
2. ``field_gather`` — interpolate E/B to particle positions: indirect
   reads into the field arrays with partial locality (particles are
   quasi-sorted by cell).  Field arrays shrink 1/P under strong scaling,
   so the hit rates of this block climb with the core count — the
   behavior Table II reports.
3. ``current_scatter`` — charge/current deposition: indirect
   read-modify-write into grid arrays.
4. ``field_solve`` — electromagnetic field update: 7-point stencil
   sweeps over the local grid.
5. ``electron_fluid`` — fluid electron pressure/momentum update:
   streaming over grid arrays.
6. ``exchange_pack`` — packing boundary-crossing particles.
7. ``div_clean_stages`` — local combine stages of the divergence-clean
   reduction: grows ~log2(P).

Load imbalance comes from a spatially non-uniform particle density
(dayside compression peak), quantized to a small number of levels so the
ground-truth simulator's per-class detailed runs stay tractable.  The
domain is periodic (no physical-boundary work), so rank classes are
density classes alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

from repro.apps.base import AppModel, ScalingMode
from repro.apps.decomposition import CartesianDecomposition, factor3
from repro.instrument.builder import ProgramBuilder
from repro.instrument.program import Program
from repro.memstream.patterns import (
    GatherScatterPattern,
    StencilPattern,
    StridedPattern,
)
from repro.simmpi.comm import SimComm

BLOCK_PARTICLE_PUSH = 0
BLOCK_FIELD_GATHER = 1
BLOCK_CURRENT_SCATTER = 2
BLOCK_FIELD_SOLVE = 3
BLOCK_ELECTRON_FLUID = 4
BLOCK_EXCHANGE_PACK = 5
BLOCK_DIV_CLEAN = 6

#: bytes per particle: position(3) + velocity(3) doubles
_BYTES_PER_PARTICLE = 6 * 8
#: bytes per grid cell per field array (one double component)
_BYTES_PER_CELL = 8
#: number of field arrays gathered per particle (E and B, 3 comps each)
_FIELD_ARRAYS = 6


@dataclass(frozen=True)
class UH3DParams:
    """Workload parameters (defaults sized for 1024..8192 ranks)."""

    global_cells: Tuple[int, int, int] = (512, 512, 512)
    particles_per_cell: float = 16.0
    #: dayside density enhancement factor at the peak
    density_peak: float = 2.5
    #: number of quantized density levels (rank equivalence classes)
    density_levels: int = 6
    n_steps: int = 4
    field_solve_iters: int = 3
    #: fraction of local particles crossing rank boundaries per step
    exchange_fraction: float = 0.05
    div_clean_buffer: int = 2048
    weak_cells_per_rank: Tuple[int, int, int] = (32, 32, 32)


class UH3DProxy(AppModel):
    """Strong-scaled hybrid PIC magnetosphere proxy."""

    name = "uh3d"

    def __init__(
        self,
        params: UH3DParams = UH3DParams(),
        scaling: ScalingMode = ScalingMode.STRONG,
    ):
        self.params = params
        self.scaling = scaling

    @lru_cache(maxsize=32)
    def decomposition(self, n_ranks: int) -> CartesianDecomposition:
        if self.scaling is ScalingMode.STRONG:
            cells = self.params.global_cells
        else:
            grid = factor3(n_ranks)
            cells = tuple(
                c * g for c, g in zip(self.params.weak_cells_per_rank, grid)
            )
        return CartesianDecomposition(cells, n_ranks, periodic=(True, True, True))

    # ------------------------------------------------------------------
    # particle density model

    def density_level(self, rank: int, n_ranks: int) -> int:
        """Quantized density level (0..levels-1) at a rank's position.

        The density field is a fixed function of *normalized* domain
        position — a Gaussian enhancement centered on the dayside
        (x=0.25 plane) — so a rank's level depends on where its subdomain
        sits, not on the core count: the same physical region is always
        the busiest, giving the slowest task a consistent identity
        across core counts.
        """
        dec = self.decomposition(n_ranks)
        coords = dec.coords_of(rank)
        pos = tuple(
            (coords[d] + 0.5) / dec.grid[d] for d in range(3)
        )
        dx = pos[0] - 0.25
        dy = pos[1] - 0.5
        dz = pos[2] - 0.5
        enhancement = math.exp(-(dx * dx + dy * dy + dz * dz) / 0.08)
        density = 1.0 + (self.params.density_peak - 1.0) * enhancement
        # quantize into [1, density_peak]
        levels = self.params.density_levels
        frac = (density - 1.0) / max(self.params.density_peak - 1.0, 1e-12)
        return min(int(frac * levels), levels - 1)

    def _density_of_level(self, level: int) -> float:
        levels = self.params.density_levels
        frac = (level + 0.5) / levels
        return 1.0 + (self.params.density_peak - 1.0) * frac

    def local_particles(self, rank: int, n_ranks: int) -> int:
        """Particle count of one rank (density-quantized)."""
        geom = self.decomposition(n_ranks).geometry(rank)
        level = self.density_level(rank, n_ranks)
        return int(
            geom.n_cells * self.params.particles_per_cell * self._density_of_level(level)
        )

    # ------------------------------------------------------------------

    @lru_cache(maxsize=65536)
    def _counts(self, rank: int, n_ranks: int) -> dict:
        geom = self.decomposition(n_ranks).geometry(rank)
        particles = self.local_particles(rank, n_ranks)
        tree_depth = max(1, math.ceil(math.log2(max(n_ranks, 2))))
        return {
            "geom": geom,
            "cells": geom.n_cells,
            "particles": particles,
            "exchange_particles": max(
                1, int(particles * self.params.exchange_fraction)
            ),
            "div_iters": self.params.div_clean_buffer * tree_depth,
        }

    def rank_program(self, rank: int, n_ranks: int) -> Program:
        c = self._counts(rank, n_ranks)
        steps = self.params.n_steps
        particle_bytes = max(c["particles"] * _BYTES_PER_PARTICLE, 4096)
        field_bytes = max(c["cells"] * _BYTES_PER_CELL * _FIELD_ARRAYS, 4096)
        grid_bytes = max(c["cells"] * _BYTES_PER_CELL, 4096)
        exchange_bytes = max(c["exchange_particles"] * _BYTES_PER_PARTICLE, 512)
        div_bytes = self.params.div_clean_buffer * 8
        nx, ny, _nz = c["geom"].local_cells
        stencil = (-nx * ny, -nx, -1, 0, 1, nx, nx * ny)
        return (
            ProgramBuilder(f"{self.name}-r{rank}-p{n_ranks}")
            # 1. Boris push: streaming over particle SoA
            .block("particle_push", file="push_ions.f90", line=120,
                   block_id=BLOCK_PARTICLE_PUSH)
            .load(StridedPattern(region_bytes=particle_bytes), per_iteration=6)
            .store(StridedPattern(region_bytes=particle_bytes), per_iteration=6)
            .fp({"fp_fma": 24, "fp_add": 9, "fp_mul": 9}, ilp=3.0, dep_chain=5.0)
            .executes(c["particles"] * steps)
            .done()
            # 2. field gather: indirect reads into shrinking field arrays
            .block("field_gather", file="gather_fields.f90", line=64,
                   block_id=BLOCK_FIELD_GATHER)
            .load(
                GatherScatterPattern(
                    region_bytes=field_bytes, locality=0.55, cluster_elements=48
                ),
                per_iteration=8,
            )
            .load(StridedPattern(region_bytes=particle_bytes), per_iteration=3)
            .fp({"fp_fma": 30, "fp_add": 6}, ilp=2.8, dep_chain=4.0)
            .executes(c["particles"] * steps)
            .done()
            # 3. current deposition: indirect read-modify-write
            .block("current_scatter", file="deposit_current.f90", line=88,
                   block_id=BLOCK_CURRENT_SCATTER)
            .load(
                GatherScatterPattern(
                    region_bytes=grid_bytes, locality=0.55, cluster_elements=48
                ),
                per_iteration=4,
            )
            .store(
                GatherScatterPattern(
                    region_bytes=grid_bytes, locality=0.55, cluster_elements=48
                ),
                per_iteration=4,
            )
            .fp({"fp_fma": 12, "fp_add": 4}, ilp=2.2, dep_chain=3.5)
            .executes(c["particles"] * steps)
            .done()
            # 4. field solve: stencil sweeps
            .block("field_solve", file="field_solver.f90", line=150,
                   block_id=BLOCK_FIELD_SOLVE)
            .load(
                StencilPattern(region_bytes=grid_bytes, offsets=stencil),
                per_iteration=7,
            )
            .store(StridedPattern(region_bytes=grid_bytes))
            .fp({"fp_fma": 8, "fp_add": 6}, ilp=3.0, dep_chain=3.0)
            .executes(c["cells"] * self.params.field_solve_iters * steps)
            .done()
            # 5. electron fluid update: streaming over grid arrays
            .block("electron_fluid", file="electron_fluid.f90", line=97,
                   block_id=BLOCK_ELECTRON_FLUID)
            .load(StridedPattern(region_bytes=field_bytes), per_iteration=4)
            .store(StridedPattern(region_bytes=grid_bytes), per_iteration=2)
            .fp({"fp_fma": 10, "fp_mul": 4, "fp_div": 0.5}, ilp=2.5, dep_chain=4.5)
            .executes(c["cells"] * steps)
            .done()
            # 6. particle-exchange packing
            .block("exchange_pack", file="exchange_particles.f90", line=41,
                   block_id=BLOCK_EXCHANGE_PACK)
            .load(StridedPattern(region_bytes=particle_bytes, stride_elements=16),
                  per_iteration=6)
            .store(StridedPattern(region_bytes=exchange_bytes), per_iteration=6)
            .executes(c["exchange_particles"] * steps)
            .done()
            # 7. divergence-clean combine stages (grows ~log2 P)
            .block("div_clean_stages", file="divergence_clean.f90", line=73,
                   block_id=BLOCK_DIV_CLEAN)
            .load(StridedPattern(region_bytes=div_bytes), per_iteration=2)
            .store(StridedPattern(region_bytes=div_bytes))
            .fp({"fp_add": 2}, ilp=4.0, dep_chain=1.5)
            .executes(c["div_iters"] * steps)
            .done()
            .build()
        )

    def rank_script(self, comm: SimComm) -> None:
        c = self._counts(comm.rank, comm.size)
        geom = c["geom"]
        field_halo = {
            dim: geom.face_cells(dim) * _BYTES_PER_CELL * _FIELD_ARRAYS
            for dim in range(3)
        }
        particle_msg = max(
            1, c["exchange_particles"] // max(len(geom.neighbors), 1)
        ) * _BYTES_PER_PARTICLE
        for _step in range(self.params.n_steps):
            comm.compute(BLOCK_FIELD_GATHER, c["particles"])
            comm.compute(BLOCK_PARTICLE_PUSH, c["particles"])
            comm.compute(BLOCK_EXCHANGE_PACK, c["exchange_particles"])
            # particle exchange: sizes depend on the *sender's* load, so
            # post sends first, then receive what each neighbor sent.
            for (dim, direction), neighbor in sorted(geom.neighbors.items()):
                comm.send(neighbor, particle_msg, tag=10 + dim)
            for (dim, direction), neighbor in sorted(geom.neighbors.items()):
                their = self._counts(neighbor, comm.size)
                their_msg = max(
                    1,
                    their["exchange_particles"]
                    // max(len(their["geom"].neighbors), 1),
                ) * _BYTES_PER_PARTICLE
                comm.recv(neighbor, their_msg, tag=10 + dim)
            comm.compute(BLOCK_CURRENT_SCATTER, c["particles"])
            comm.compute(
                BLOCK_FIELD_SOLVE, c["cells"] * self.params.field_solve_iters
            )
            # field halo exchange
            for (dim, direction), neighbor in sorted(geom.neighbors.items()):
                comm.send(neighbor, field_halo[dim], tag=20 + dim)
            for (dim, direction), neighbor in sorted(geom.neighbors.items()):
                comm.recv(neighbor, field_halo[dim], tag=20 + dim)
            comm.compute(BLOCK_ELECTRON_FLUID, c["cells"])
            comm.compute(BLOCK_DIV_CLEAN, c["div_iters"])
            comm.allreduce(16)

    def equivalence_classes(self, n_ranks: int) -> List[List[int]]:
        """Group ranks by (geometry class, density level)."""
        base = self.decomposition(n_ranks).equivalence_classes()
        classes: Dict[Tuple[int, int], List[int]] = {}
        for gi, group in enumerate(base):
            for rank in group:
                key = (gi, self.density_level(rank, n_ranks))
                classes.setdefault(key, []).append(rank)
        return [sorted(v) for v in sorted(classes.values(), key=lambda c: c[0])]
