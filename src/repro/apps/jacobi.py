"""Jacobi 7-point stencil proxy: the minimal teaching workload.

A fixed 3-D grid, one sweep + residual per time step, face halo
exchanges, and an allreduce on the residual.  Small enough to trace at
every rank in tests, yet it exercises every pipeline stage the big
proxies do.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

from repro.apps.base import AppModel, ScalingMode
from repro.apps.decomposition import CartesianDecomposition
from repro.instrument.builder import ProgramBuilder
from repro.instrument.program import Program
from repro.memstream.patterns import StencilPattern, StridedPattern
from repro.simmpi.comm import SimComm

#: Block ids (stable across core counts, as extrapolation requires).
BLOCK_SWEEP = 0
BLOCK_RESIDUAL = 1
BLOCK_HALO_PACK = 2

_BYTES_PER_CELL = 8


@dataclass(frozen=True)
class JacobiParams:
    """Workload parameters."""

    global_cells: Tuple[int, int, int] = (192, 192, 192)
    n_steps: int = 4
    #: per-rank cells in weak-scaling mode
    weak_cells_per_rank: Tuple[int, int, int] = (48, 48, 48)


class JacobiProxy(AppModel):
    """7-point Jacobi relaxation over a 3-D grid."""

    name = "jacobi"

    def __init__(
        self,
        params: JacobiParams = JacobiParams(),
        scaling: ScalingMode = ScalingMode.STRONG,
    ):
        self.params = params
        self.scaling = scaling

    # ------------------------------------------------------------------

    @lru_cache(maxsize=32)
    def decomposition(self, n_ranks: int) -> CartesianDecomposition:
        if self.scaling is ScalingMode.STRONG:
            cells = self.params.global_cells
        else:
            from repro.apps.decomposition import factor3

            grid = factor3(n_ranks)
            cells = tuple(
                c * g for c, g in zip(self.params.weak_cells_per_rank, grid)
            )
        return CartesianDecomposition(cells, n_ranks)

    def rank_program(self, rank: int, n_ranks: int) -> Program:
        geom = self.decomposition(n_ranks).geometry(rank)
        n_cells = geom.n_cells
        nx, ny, _nz = geom.local_cells
        grid_bytes = max(n_cells * _BYTES_PER_CELL, 64)
        halo_bytes = max(geom.halo_cells() * _BYTES_PER_CELL, 64)
        steps = self.params.n_steps
        offsets = (-nx * ny, -nx, -1, 0, 1, nx, nx * ny)
        return (
            ProgramBuilder(f"{self.name}-r{rank}-p{n_ranks}")
            .block("jacobi_sweep", file="jacobi.f90", line=42, block_id=BLOCK_SWEEP)
            .load(
                StencilPattern(region_bytes=grid_bytes, offsets=offsets),
                per_iteration=7,
            )
            .store(StridedPattern(region_bytes=grid_bytes))
            .fp({"fp_add": 6, "fp_mul": 1}, ilp=2.5, dep_chain=3.0)
            .executes(n_cells * steps)
            .done()
            .block("residual", file="jacobi.f90", line=77, block_id=BLOCK_RESIDUAL)
            .load(StridedPattern(region_bytes=grid_bytes), per_iteration=2)
            .fp({"fp_add": 2, "fp_mul": 1}, ilp=3.0, dep_chain=2.0)
            .executes(n_cells * steps)
            .done()
            .block("halo_pack", file="jacobi.f90", line=103, block_id=BLOCK_HALO_PACK)
            .load(StridedPattern(region_bytes=grid_bytes, stride_elements=4))
            .store(StridedPattern(region_bytes=halo_bytes))
            .executes(max(geom.halo_cells(), 1) * steps)
            .done()
            .build()
        )

    def rank_script(self, comm: SimComm) -> None:
        geom = self.decomposition(comm.size).geometry(comm.rank)
        n_cells = geom.n_cells
        for _step in range(self.params.n_steps):
            comm.compute(BLOCK_SWEEP, n_cells)
            comm.compute(BLOCK_HALO_PACK, max(geom.halo_cells(), 1))
            for (dim, _direction), neighbor in sorted(geom.neighbors.items()):
                nbytes = geom.face_cells(dim) * _BYTES_PER_CELL
                comm.send(neighbor, nbytes, tag=dim)
            for (dim, _direction), neighbor in sorted(geom.neighbors.items()):
                nbytes = geom.face_cells(dim) * _BYTES_PER_CELL
                comm.recv(neighbor, nbytes, tag=dim)
            comm.compute(BLOCK_RESIDUAL, n_cells)
            comm.allreduce(8)

    def equivalence_classes(self, n_ranks: int) -> List[List[int]]:
        return self.decomposition(n_ranks).equivalence_classes()
