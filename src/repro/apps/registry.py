"""App registry: look proxies up by name (CLI-ish convenience)."""

from __future__ import annotations

from typing import Callable, Dict

from repro.apps.base import AppModel, ScalingMode
from repro.apps.jacobi import JacobiProxy
from repro.apps.specfem3d import SpecFEM3DProxy
from repro.apps.uh3d import UH3DProxy

APP_BUILDERS: Dict[str, Callable[..., AppModel]] = {
    "jacobi": JacobiProxy,
    "specfem3d": SpecFEM3DProxy,
    "uh3d": UH3DProxy,
}


def get_app(name: str, *, scaling: ScalingMode = ScalingMode.STRONG) -> AppModel:
    """Build a proxy application by name with default parameters."""
    try:
        builder = APP_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(APP_BUILDERS))
        raise KeyError(f"unknown app {name!r}; known: {known}") from None
    return builder(scaling=scaling)
