"""The async query engine: admission, fair queueing, batched answers.

Prediction-as-a-service front-end over the model registry.  A
:class:`QueryEngine` accepts thousands of concurrent :class:`Query`
coroutine calls and answers them through three stages:

1. **Admission** — each tenant owns a bounded FIFO queue.  When a
   tenant's queue is full, ``admission="wait"`` applies backpressure
   (the caller's coroutine suspends until the dispatcher drains a
   slot) while ``admission="reject"`` fails fast with
   :class:`~repro.util.errors.AdmissionError` — the load-shedding
   contract clients can retry against.
2. **Fair dispatch** — a single dispatcher task round-robins across
   tenant queues, taking at most one query per tenant per cycle, so a
   tenant flooding its queue cannot starve a light tenant (dispatch
   order is recorded in :attr:`QueryEngine.dispatch_log` and asserted
   by the fairness tests).
3. **Micro-batched execution** — dispatched queries enter the
   :class:`~repro.serve.batcher.MicroBatcher` keyed by (model digest,
   query kind); compatible queries coalesce into one
   ``predict_many`` array pass and fan back out.  Batched answers are
   bit-identical to what a sequential per-query ``predict_many`` would
   return — ``predict_many`` computes each target column independently,
   and the bit-identity tests hold the engine to it.

``kind="features"`` answers with the synthesized (n_pairs, n_features)
matrix of the target.  ``kind="runtime"`` additionally synthesizes the
target trace and replays it through
:func:`~repro.pipeline.predict.predict_runtime`; synthesis+prediction
amortize per *distinct* target in the batch, the replay itself is
per-query work.

Fault discipline (see :mod:`repro.serve.resilience`):

- a query may carry ``deadline_ms``; an expired query is answered with
  :class:`~repro.util.errors.DeadlineExceededError` at whichever of
  the three boundaries — admission wait, dispatch, batch flush —
  catches it first, and is never computed nor left hanging;
- each model gets a :class:`~repro.serve.resilience.CircuitBreaker`:
  after ``breaker_threshold`` consecutive batch failures its queries
  are shed fast with :class:`~repro.util.errors.CircuitOpenError`
  until a half-open probe succeeds;
- when ``hardened`` (the default), ``kind="runtime"`` replay — and any
  batch with at least ``offload_batch_size`` queries — runs off the
  event loop: prediction in a worker thread, replay through
  :func:`~repro.exec.resilience.run_tasks_resilient` so crashes,
  hangs, and retries get the batch pipeline's recovery treatment
  while the loop keeps serving other tenants;
- every recovery event lands in the engine's
  :class:`~repro.serve.resilience.ServeReport` (mirrored to
  ``serve.resilience.*`` metrics and the run manifest).
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, replace
from functools import partial
from time import perf_counter
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.exec import faults
from repro.exec.resilience import run_tasks_resilient
from repro.obs.metrics import REGISTRY, TimerState
from repro.obs.trace import span
from repro.serve.batcher import MicroBatcher
from repro.serve.registry import FittedModel, ModelRegistry
from repro.serve.resilience import (
    BREAKER_OPEN_S,
    BREAKER_THRESHOLD,
    CircuitBreaker,
    ServeReport,
    replay_runtime_task,
)
from repro.util.errors import (
    AdmissionError,
    CircuitOpenError,
    DeadlineExceededError,
    ServeError,
)

ADMISSION_POLICIES = ("wait", "reject")
QUERY_KINDS = ("features", "runtime")


@dataclass(frozen=True)
class Query:
    """One prediction request.

    ``model`` is a registry digest (``None`` = the engine's default
    model).  ``target`` is the core count to synthesize.  Queries with
    the same (model, kind) are batchable; anything else never co-batches.
    ``deadline_ms`` bounds admission-to-answer wall clock: past it the
    engine answers :class:`~repro.util.errors.DeadlineExceededError`
    instead of computing.
    """

    target: int
    model: Optional[str] = None
    tenant: str = "default"
    kind: str = "features"
    deadline_ms: Optional[float] = None

    def __post_init__(self):
        if int(self.target) <= 0:
            raise ServeError(
                f"query target must be positive, got {self.target}",
                stage="serve",
            )
        if self.kind not in QUERY_KINDS:
            raise ServeError(
                f"unknown query kind {self.kind!r}; known: {QUERY_KINDS}",
                stage="serve",
            )
        if self.deadline_ms is not None and not self.deadline_ms > 0:
            raise ServeError(
                f"query deadline must be positive, got {self.deadline_ms}",
                stage="serve",
            )


@dataclass
class Answer:
    """One resolved query: the synthesized features plus serving facts."""

    target: int
    kind: str
    model: str
    tenant: str
    #: (n_pairs, n_features) synthesized features — a read-only array,
    #: shared by every query for the same target in the same batch
    values: np.ndarray
    runtime_s: Optional[float]  #: predicted runtime (kind="runtime" only)
    batch_size: int  #: how many queries shared this answer's array pass
    latency_s: float  #: admission-to-answer wall clock


@dataclass
class ServeConfig:
    """Engine knobs: batching window, queue bounds, admission policy.

    ``hardened`` is the resilience master switch (the overhead
    benchmark's baseline toggle): off disables breakers and worker
    offload, leaving PR 7's bare engine.  ``runtime_workers=0`` replays
    runtime queries serially *in the offload thread* — the loop is
    still never blocked, and crash faults are retried in place; >0 uses
    a process pool with the full kill/rebuild ladder.
    """

    max_batch: int = 64
    window_s: float = 0.002
    queue_depth: int = 256
    admission: str = "wait"
    rate_trust_factor: float = 2.0
    hardened: bool = True
    breaker_threshold: int = BREAKER_THRESHOLD
    breaker_open_s: float = BREAKER_OPEN_S
    runtime_workers: int = 0
    offload_batch_size: int = 256

    def __post_init__(self):
        if self.admission not in ADMISSION_POLICIES:
            raise ServeError(
                f"unknown admission policy {self.admission!r}; "
                f"known: {ADMISSION_POLICIES}",
                stage="serve",
            )
        if self.queue_depth < 1:
            raise ServeError(
                f"queue depth must be >= 1, got {self.queue_depth}",
                stage="serve",
            )
        if self.breaker_threshold < 1:
            raise ServeError(
                f"breaker threshold must be >= 1, got "
                f"{self.breaker_threshold}",
                stage="serve",
            )
        if not self.breaker_open_s > 0:
            raise ServeError(
                f"breaker open window must be positive, got "
                f"{self.breaker_open_s}",
                stage="serve",
            )
        if self.runtime_workers < 0:
            raise ServeError(
                f"runtime workers must be >= 0, got {self.runtime_workers}",
                stage="serve",
            )
        if self.offload_batch_size < 1:
            raise ServeError(
                f"offload batch size must be >= 1, got "
                f"{self.offload_batch_size}",
                stage="serve",
            )
        # max_batch / window_s are validated by MicroBatcher


@dataclass
class EngineStats:
    """Per-engine tallies (metrics land under ``serve.*`` too)."""

    queries: int = 0
    answered: int = 0
    failed: int = 0
    rejected: int = 0
    backpressure_waits: int = 0

    def bump(self, name: str, n: int = 1) -> None:
        setattr(self, name, getattr(self, name) + n)
        REGISTRY.inc(f"serve.{name}", n)

    def to_dict(self) -> dict:
        return {
            "queries": self.queries,
            "answered": self.answered,
            "failed": self.failed,
            "rejected": self.rejected,
            "backpressure_waits": self.backpressure_waits,
        }


class QueryEngine:
    """Asyncio prediction server over a :class:`ModelRegistry`.

    Usage::

        engine = QueryEngine(registry, default_model=digest)
        await engine.start()
        answer = await engine.query(Query(target=4096))
        await engine.stop()

    Queries may be enqueued before :meth:`start`; they are dispatched
    once the engine runs.  :meth:`stop` drains by default: queued and
    in-flight queries are answered (open batches are deadline-flushed
    immediately) before the dispatcher shuts down.
    :meth:`stop_admission` closes the front door first — the graceful
    drain sequence the CLI runs on SIGTERM/SIGINT.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        default_model: Optional[str] = None,
        config: Optional[ServeConfig] = None,
    ):
        self.registry = registry
        self.default_model = default_model
        self.config = config or ServeConfig()
        self.batcher = MicroBatcher(
            self._run_batch,
            max_batch=self.config.max_batch,
            window_s=self.config.window_s,
            on_expire=self._expire_in_batch,
        )
        self.stats = EngineStats()
        self.report = ServeReport()
        self.draining = False
        #: an attached TelemetrySampler (slow-query hook); None = no-op
        self.telemetry = None
        #: tenant name per dispatch, in dispatch order — the fairness
        #: tests assert round-robin interleaving on this
        self.dispatch_log: List[str] = []
        self._queues: Dict[str, Deque[tuple]] = {}
        self._space: Dict[str, asyncio.Event] = {}
        self._latencies = TimerState()
        self._inflight_by_tenant: Dict[str, int] = {}
        # metric names are interned per (family, tenant): building one
        # f-string (and a Gauge handle) per query raises the allocation
        # rate enough to drag GC pauses into the dispatch hot loop
        self._metric_names: Dict[tuple, str] = {}
        self._runtime_ctx: Dict[str, tuple] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._inflight: set = set()
        self._wake: Optional[asyncio.Event] = None
        self._dispatcher: Optional[asyncio.Task] = None

    # -- lifecycle ------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._dispatcher is not None and not self._dispatcher.done()

    async def start(self) -> None:
        if self.started:
            return
        loop = asyncio.get_running_loop()
        if self._wake is None:
            self._wake = asyncio.Event()
        if any(self._queues.values()):
            self._wake.set()
        self._dispatcher = loop.create_task(
            self._dispatch_loop(), name="serve-dispatcher"
        )

    def stop_admission(self) -> None:
        """Close the front door: new queries fail fast with AdmissionError.

        In-queue and in-flight queries are unaffected; pair with
        :meth:`stop` to drain them (the SIGTERM sequence).
        """
        self.draining = True

    async def stop(self, *, drain: bool = True) -> None:
        if drain:
            while any(self._queues.values()) or self._inflight:
                if self._wake is not None:
                    self._wake.set()
                await asyncio.sleep(0)
                if not any(self._queues.values()):
                    # every remaining query is parked in an open batch or
                    # an offloaded execution — flush batches immediately
                    # and park until the in-flight answers land
                    self.batcher.flush_all()
                    pending = [f for f in self._inflight if not f.done()]
                    if pending:
                        await asyncio.wait(pending, timeout=0.1)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None

    # -- query path -----------------------------------------------------

    def _breaker(self, digest: str) -> Optional[CircuitBreaker]:
        if not self.config.hardened:
            return None
        breaker = self._breakers.get(digest)
        if breaker is None:
            breaker = CircuitBreaker(
                digest,
                threshold=self.config.breaker_threshold,
                open_s=self.config.breaker_open_s,
                report=self.report,
            )
            self._breakers[digest] = breaker
        return breaker

    def _metric_name(self, family: str, tenant: str) -> str:
        key = (family, tenant)
        name = self._metric_names.get(key)
        if name is None:
            name = self._metric_names[key] = f"{family}.{tenant}"
        return name

    def _tenant_inc(self, name: str, tenant: str) -> None:
        key = (name, tenant)
        metric = self._metric_names.get(key)
        if metric is None:
            metric = self._metric_names[key] = (
                f"serve.tenant.{name}.{tenant}"
            )
        REGISTRY.inc(metric)

    def _queue_depth_set(self, tenant: str, depth: int) -> None:
        REGISTRY.set_gauge(
            self._metric_name("serve.queue_depth", tenant), float(depth)
        )

    def _track_inflight(self, tenant: str, delta: int) -> None:
        n = self._inflight_by_tenant.get(tenant, 0) + delta
        self._inflight_by_tenant[tenant] = n
        REGISTRY.set_gauge(
            self._metric_name("serve.inflight", tenant), float(n)
        )

    def breaker_states(self) -> Dict[str, str]:
        """Current per-model breaker states, keyed by short digest."""
        return {
            digest[:12]: breaker.state
            for digest, breaker in sorted(self._breakers.items())
        }

    def _deadline_error(self, q: Query, boundary: str) -> DeadlineExceededError:
        return DeadlineExceededError(
            f"deadline of {q.deadline_ms:g}ms expired at {boundary}",
            stage="serve",
            task_key=f"serve:{q.tenant}",
        )

    def _expire_in_batch(self, q: Query) -> DeadlineExceededError:
        """Batcher callback: a parked query's deadline passed before its
        batch ran (the batch-flush boundary)."""
        self.report.bump("deadline_flush")
        return self._deadline_error(q, "batch flush")

    async def query(self, q: Query) -> Answer:
        """Submit one query; resolves with its :class:`Answer`."""
        if self.draining:
            self.stats.bump("rejected")
            self._tenant_inc("rejected", q.tenant)
            raise AdmissionError(
                "engine is draining; admission is closed",
                stage="serve",
                task_key=f"serve:{q.tenant}",
            )
        digest = q.model or self.default_model
        if digest is None:
            raise ServeError(
                "query names no model and the engine has no default",
                stage="serve",
            )
        if digest not in self.registry:
            raise ServeError(
                f"model {digest[:12]} is not in the registry",
                stage="serve",
                task_key=f"serve:{q.tenant}",
            )
        if q.model != digest:
            q = replace(q, model=digest)
        t0 = perf_counter()
        expiry = (
            t0 + q.deadline_ms / 1000.0 if q.deadline_ms is not None else None
        )
        self.stats.bump("queries")
        self._tenant_inc("queries", q.tenant)
        breaker = self._breaker(digest)
        if breaker is not None and not breaker.admit(t0):
            self.report.bump("breaker_rejected")
            self.stats.bump("failed")
            self._tenant_inc("failed", q.tenant)
            raise CircuitOpenError(
                f"model {digest[:12]} breaker is open; query shed",
                stage="serve",
                task_key=f"serve:{q.tenant}",
            )
        dq = self._queues.setdefault(q.tenant, deque())
        if len(dq) >= self.config.queue_depth:
            if self.config.admission == "reject":
                self.stats.bump("rejected")
                self._tenant_inc("rejected", q.tenant)
                raise AdmissionError(
                    f"tenant {q.tenant!r} queue is full "
                    f"({self.config.queue_depth} queries)",
                    stage="serve",
                    task_key=f"serve:{q.tenant}",
                )
            while len(dq) >= self.config.queue_depth:
                self.stats.bump("backpressure_waits")
                self._tenant_inc("waits", q.tenant)
                event = self._space.setdefault(q.tenant, asyncio.Event())
                event.clear()
                if expiry is None:
                    await event.wait()
                    continue
                remaining = expiry - perf_counter()
                if remaining > 0:
                    try:
                        await asyncio.wait_for(event.wait(), remaining)
                        continue
                    except asyncio.TimeoutError:
                        pass
                self.report.bump("deadline_admission")
                self.stats.bump("failed")
                self._tenant_inc("failed", q.tenant)
                raise self._deadline_error(q, "admission wait") from None
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        dq.append((q, fut, t0, expiry))
        self._queue_depth_set(q.tenant, len(dq))
        if self._wake is None:
            self._wake = asyncio.Event()
        self._wake.set()
        return await fut

    # -- dispatch -------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._wake is not None
        while True:
            await self._wake.wait()
            self._wake.clear()
            # one span per wake-to-drain dispatch cycle: with --trace-out
            # the serve loop's dispatch work shows up between the
            # serve.flush spans instead of being invisible loop time
            with span("serve.dispatch"):
                progress = True
                while progress:
                    progress = False
                    # one query per tenant per cycle: round-robin fairness
                    for tenant in list(self._queues):
                        dq = self._queues[tenant]
                        if not dq:
                            continue
                        progress = True
                        q, fut, t0, expiry = dq.popleft()
                        self._queue_depth_set(tenant, len(dq))
                        event = self._space.get(tenant)
                        if event is not None:
                            event.set()
                        self.dispatch_log.append(tenant)
                        now = perf_counter()
                        REGISTRY.observe("serve.queue_wait_s", now - t0)
                        if expiry is not None and now >= expiry:
                            # the query aged out in its tenant queue
                            self.report.bump("deadline_dispatch")
                            self.stats.bump("failed")
                            self._tenant_inc("failed", tenant)
                            if not fut.done():
                                fut.set_exception(
                                    self._deadline_error(q, "dispatch")
                                )
                            continue
                        breaker = self._breakers.get(q.model)
                        if breaker is not None and not breaker.allow_dispatch(
                            now
                        ):
                            self.report.bump("breaker_rejected")
                            self.stats.bump("failed")
                            self._tenant_inc("failed", tenant)
                            if not fut.done():
                                fut.set_exception(
                                    CircuitOpenError(
                                        f"model {q.model[:12]} breaker is "
                                        f"open; query shed",
                                        stage="serve",
                                        task_key=f"serve:{tenant}",
                                    )
                                )
                            continue
                        # no task per query: the batcher future's done
                        # callback finishes the answer — one object on the
                        # hot path instead of a scheduled coroutine
                        self._track_inflight(tenant, +1)
                        bfut = self.batcher.enqueue(
                            (q.model, q.kind), q, expiry
                        )
                        self._inflight.add(bfut)
                        bfut.add_done_callback(
                            partial(self._finish_one, q, fut, t0)
                        )

    def _finish_one(
        self,
        q: Query,
        fut: asyncio.Future,
        t0: float,
        bfut: asyncio.Future,
    ) -> None:
        """Resolve one caller future from its finished batch slice."""
        self._inflight.discard(bfut)
        self._track_inflight(q.tenant, -1)
        if bfut.cancelled():
            if not fut.done():
                fut.cancel()
            return
        exc = bfut.exception()
        if exc is not None:
            self.stats.bump("failed")
            self._tenant_inc("failed", q.tenant)
            if not fut.done():
                fut.set_exception(exc)
            return
        payload = bfut.result()
        latency = perf_counter() - t0
        self._latencies.observe(latency)
        REGISTRY.observe("serve.latency_s", latency)
        self.stats.bump("answered")
        self._tenant_inc("answered", q.tenant)
        if self.telemetry is not None:
            self.telemetry.record_query(q, latency)
        answer = Answer(
            target=q.target,
            kind=q.kind,
            model=q.model,
            tenant=q.tenant,
            latency_s=latency,
            **payload,
        )
        if not fut.done():
            fut.set_result(answer)

    # -- batch execution ------------------------------------------------

    def _model(self, digest: str) -> FittedModel:
        model = self.registry.get(digest)
        if model is None:
            raise ServeError(
                f"model {digest[:12]} vanished from the registry",
                stage="serve",
            )
        return model

    def _runtime_context(self, model: FittedModel) -> tuple:
        ctx = self._runtime_ctx.get(model.digest)
        if ctx is None:
            from repro.apps.registry import get_app
            from repro.machine.systems import get_machine

            ctx = (get_app(model.spec.app), get_machine(model.spec.machine))
            self._runtime_ctx[model.digest] = ctx
        return ctx

    @staticmethod
    def _batch_key(digest: str, kind: str) -> str:
        return f"serve:batch:{digest[:12]}:{kind}"

    def _run_batch(self, key: Tuple[str, str], queries: List[Query]):
        digest, kind = key
        if self.config.hardened and (
            kind == "runtime" or len(queries) >= self.config.offload_batch_size
        ):
            # coroutine: the batcher schedules it as a task and the
            # heavy work runs off-loop
            return self._run_batch_offloaded(digest, kind, queries)
        breaker = self._breakers.get(digest)
        try:
            spec = faults.apply_serve_fault(self._batch_key(digest, kind))
            if spec is not None and spec.kind == "slow-predict":
                self.report.bump("slow_predicts")
            results = self._execute_sync(digest, kind, queries)
        except Exception:
            self.report.bump("batch_failures")
            if breaker is not None:
                breaker.record_failure(perf_counter())
            raise
        if breaker is not None:
            breaker.record_success()
        return results

    async def _run_batch_offloaded(
        self, digest: str, kind: str, queries: List[Query]
    ) -> List[Any]:
        breaker = self._breakers.get(digest)
        self.report.bump("offloads")
        try:
            results = await self._execute_offloaded(digest, kind, queries)
        except Exception:
            self.report.bump("batch_failures")
            if breaker is not None:
                breaker.record_failure(perf_counter())
            raise
        if breaker is not None:
            # a per-item failure (one target's replay died for good)
            # counts against the model without failing its batch mates
            if any(isinstance(r, BaseException) for r in results):
                breaker.record_failure(perf_counter())
            else:
                breaker.record_success()
        return results

    def _execute_sync(
        self, digest: str, kind: str, queries: List[Query]
    ) -> List[dict]:
        model = self._model(digest)
        targets = sorted({int(q.target) for q in queries})
        sweep = model.predict(
            targets, rate_trust_factor=self.config.rate_trust_factor
        )
        runtimes: Dict[int, float] = {}
        if kind == "runtime":
            from repro.pipeline.predict import predict_runtime

            app, machine = self._runtime_context(model)
            for target in targets:
                trace = model.synthesize(target, prediction=sweep)
                runtimes[target] = predict_runtime(
                    app, target, trace, machine
                ).runtime_s
        matrices = self._matrices(sweep, targets)
        return self._payloads(queries, matrices, runtimes, {})

    async def _execute_offloaded(
        self, digest: str, kind: str, queries: List[Query]
    ) -> List[Any]:
        loop = asyncio.get_running_loop()
        model = self._model(digest)
        targets = sorted({int(q.target) for q in queries})
        batch_key = self._batch_key(digest, kind)
        rtf = self.config.rate_trust_factor

        def _predict():
            # fault hook runs off-loop with the prediction so an
            # injected slow-predict stalls this batch, not the server
            spec = faults.apply_serve_fault(batch_key)
            return spec, model.predict(targets, rate_trust_factor=rtf)

        spec, sweep = await loop.run_in_executor(None, _predict)
        if spec is not None and spec.kind == "slow-predict":
            self.report.bump("slow_predicts")
        runtimes: Dict[int, float] = {}
        failures: Dict[int, BaseException] = {}
        if kind == "runtime":
            app, machine = self._runtime_context(model)
            keys = [f"serve:replay:{digest[:12]}:{t}" for t in targets]

            def _replay():
                tasks = [
                    (app, machine, t, model.synthesize(t, prediction=sweep))
                    for t in targets
                ]
                return run_tasks_resilient(
                    replay_runtime_task,
                    tasks,
                    keys=keys,
                    workers=self.config.runtime_workers,
                    report=self.report.worker,
                    stage="serve",
                    collect_errors=True,
                )

            values, _ = await loop.run_in_executor(None, _replay)
            for target, value in zip(targets, values):
                if isinstance(value, BaseException):
                    failures[target] = value
                else:
                    runtimes[target] = float(value)
        matrices = self._matrices(sweep, targets)
        return self._payloads(queries, matrices, runtimes, failures)

    @staticmethod
    def _matrices(sweep, targets: List[int]) -> Dict[int, np.ndarray]:
        # one detached read-only matrix per *distinct* target, shared by
        # every query for it: copying per query would dominate the
        # amortized batch cost, and a view would pin the whole sweep
        matrices: Dict[int, np.ndarray] = {}
        for target in targets:
            m = sweep.matrix_for(target).copy()
            m.setflags(write=False)
            matrices[target] = m
        return matrices

    @staticmethod
    def _payloads(
        queries: List[Query],
        matrices: Dict[int, np.ndarray],
        runtimes: Dict[int, float],
        failures: Dict[int, BaseException],
    ) -> List[Any]:
        n = len(queries)
        out: List[Any] = []
        for q in queries:
            target = int(q.target)
            if target in failures:
                out.append(failures[target])
                continue
            out.append(
                {
                    "values": matrices[target],
                    "runtime_s": runtimes.get(target),
                    "batch_size": n,
                }
            )
        return out

    # -- reporting ------------------------------------------------------

    def latency_summary(self) -> Dict[str, float]:
        summary = self._latencies.summary()
        summary.pop("sum_s")
        return summary

    def summary(self) -> dict:
        return {
            "engine": self.stats.to_dict(),
            "batcher": self.batcher.stats.to_dict(),
            "registry": self.registry.stats.to_dict(),
            "latency": self.latency_summary(),
            "resilience": self.report.to_dict(),
        }
