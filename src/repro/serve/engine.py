"""The async query engine: admission, fair queueing, batched answers.

Prediction-as-a-service front-end over the model registry.  A
:class:`QueryEngine` accepts thousands of concurrent :class:`Query`
coroutine calls and answers them through three stages:

1. **Admission** — each tenant owns a bounded FIFO queue.  When a
   tenant's queue is full, ``admission="wait"`` applies backpressure
   (the caller's coroutine suspends until the dispatcher drains a
   slot) while ``admission="reject"`` fails fast with
   :class:`~repro.util.errors.AdmissionError` — the load-shedding
   contract clients can retry against.
2. **Fair dispatch** — a single dispatcher task round-robins across
   tenant queues, taking at most one query per tenant per cycle, so a
   tenant flooding its queue cannot starve a light tenant (dispatch
   order is recorded in :attr:`QueryEngine.dispatch_log` and asserted
   by the fairness tests).
3. **Micro-batched execution** — dispatched queries enter the
   :class:`~repro.serve.batcher.MicroBatcher` keyed by (model digest,
   query kind); compatible queries coalesce into one
   ``predict_many`` array pass and fan back out.  Batched answers are
   bit-identical to what a sequential per-query ``predict_many`` would
   return — ``predict_many`` computes each target column independently,
   and the bit-identity tests hold the engine to it.

``kind="features"`` answers with the synthesized (n_pairs, n_features)
matrix of the target.  ``kind="runtime"`` additionally synthesizes the
target trace and replays it through
:func:`~repro.pipeline.predict.predict_runtime`; synthesis+prediction
amortize per *distinct* target in the batch, the replay itself is
per-query work.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, replace
from functools import partial
from time import perf_counter
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import REGISTRY, _quantile
from repro.serve.batcher import MicroBatcher
from repro.serve.registry import FittedModel, ModelRegistry
from repro.util.errors import AdmissionError, ServeError

ADMISSION_POLICIES = ("wait", "reject")
QUERY_KINDS = ("features", "runtime")


@dataclass(frozen=True)
class Query:
    """One prediction request.

    ``model`` is a registry digest (``None`` = the engine's default
    model).  ``target`` is the core count to synthesize.  Queries with
    the same (model, kind) are batchable; anything else never co-batches.
    """

    target: int
    model: Optional[str] = None
    tenant: str = "default"
    kind: str = "features"

    def __post_init__(self):
        if int(self.target) <= 0:
            raise ServeError(
                f"query target must be positive, got {self.target}",
                stage="serve",
            )
        if self.kind not in QUERY_KINDS:
            raise ServeError(
                f"unknown query kind {self.kind!r}; known: {QUERY_KINDS}",
                stage="serve",
            )


@dataclass
class Answer:
    """One resolved query: the synthesized features plus serving facts."""

    target: int
    kind: str
    model: str
    tenant: str
    #: (n_pairs, n_features) synthesized features — a read-only array,
    #: shared by every query for the same target in the same batch
    values: np.ndarray
    runtime_s: Optional[float]  #: predicted runtime (kind="runtime" only)
    batch_size: int  #: how many queries shared this answer's array pass
    latency_s: float  #: admission-to-answer wall clock


@dataclass
class ServeConfig:
    """Engine knobs: batching window, queue bounds, admission policy."""

    max_batch: int = 64
    window_s: float = 0.002
    queue_depth: int = 256
    admission: str = "wait"
    rate_trust_factor: float = 2.0

    def __post_init__(self):
        if self.admission not in ADMISSION_POLICIES:
            raise ServeError(
                f"unknown admission policy {self.admission!r}; "
                f"known: {ADMISSION_POLICIES}",
                stage="serve",
            )
        if self.queue_depth < 1:
            raise ServeError(
                f"queue depth must be >= 1, got {self.queue_depth}",
                stage="serve",
            )
        # max_batch / window_s are validated by MicroBatcher


@dataclass
class EngineStats:
    """Per-engine tallies (metrics land under ``serve.*`` too)."""

    queries: int = 0
    answered: int = 0
    failed: int = 0
    rejected: int = 0
    backpressure_waits: int = 0

    def bump(self, name: str, n: int = 1) -> None:
        setattr(self, name, getattr(self, name) + n)
        REGISTRY.inc(f"serve.{name}", n)

    def to_dict(self) -> dict:
        return {
            "queries": self.queries,
            "answered": self.answered,
            "failed": self.failed,
            "rejected": self.rejected,
            "backpressure_waits": self.backpressure_waits,
        }


class QueryEngine:
    """Asyncio prediction server over a :class:`ModelRegistry`.

    Usage::

        engine = QueryEngine(registry, default_model=digest)
        await engine.start()
        answer = await engine.query(Query(target=4096))
        await engine.stop()

    Queries may be enqueued before :meth:`start`; they are dispatched
    once the engine runs.  :meth:`stop` drains by default: queued and
    in-flight queries are answered (open batches are deadline-flushed
    immediately) before the dispatcher shuts down.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        default_model: Optional[str] = None,
        config: Optional[ServeConfig] = None,
    ):
        self.registry = registry
        self.default_model = default_model
        self.config = config or ServeConfig()
        self.batcher = MicroBatcher(
            self._run_batch,
            max_batch=self.config.max_batch,
            window_s=self.config.window_s,
        )
        self.stats = EngineStats()
        #: tenant name per dispatch, in dispatch order — the fairness
        #: tests assert round-robin interleaving on this
        self.dispatch_log: List[str] = []
        self._queues: Dict[str, Deque[tuple]] = {}
        self._space: Dict[str, asyncio.Event] = {}
        self._latencies: List[float] = []
        self._runtime_ctx: Dict[str, tuple] = {}
        self._inflight: set = set()
        self._wake: Optional[asyncio.Event] = None
        self._dispatcher: Optional[asyncio.Task] = None

    # -- lifecycle ------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._dispatcher is not None and not self._dispatcher.done()

    async def start(self) -> None:
        if self.started:
            return
        loop = asyncio.get_running_loop()
        if self._wake is None:
            self._wake = asyncio.Event()
        if any(self._queues.values()):
            self._wake.set()
        self._dispatcher = loop.create_task(
            self._dispatch_loop(), name="serve-dispatcher"
        )

    async def stop(self, *, drain: bool = True) -> None:
        if drain:
            while any(self._queues.values()) or self._inflight:
                if self._wake is not None:
                    self._wake.set()
                await asyncio.sleep(0)
                if not any(self._queues.values()):
                    # every remaining query is parked in an open batch —
                    # don't wait out the deadline timer during shutdown
                    self.batcher.flush_all()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None

    # -- query path -----------------------------------------------------

    async def query(self, q: Query) -> Answer:
        """Submit one query; resolves with its :class:`Answer`."""
        digest = q.model or self.default_model
        if digest is None:
            raise ServeError(
                "query names no model and the engine has no default",
                stage="serve",
            )
        if digest not in self.registry:
            raise ServeError(
                f"model {digest[:12]} is not in the registry",
                stage="serve",
                task_key=f"serve:{q.tenant}",
            )
        if q.model != digest:
            q = replace(q, model=digest)
        t0 = perf_counter()
        self.stats.bump("queries")
        dq = self._queues.setdefault(q.tenant, deque())
        if len(dq) >= self.config.queue_depth:
            if self.config.admission == "reject":
                self.stats.bump("rejected")
                raise AdmissionError(
                    f"tenant {q.tenant!r} queue is full "
                    f"({self.config.queue_depth} queries)",
                    stage="serve",
                    task_key=f"serve:{q.tenant}",
                )
            while len(dq) >= self.config.queue_depth:
                self.stats.bump("backpressure_waits")
                event = self._space.setdefault(q.tenant, asyncio.Event())
                event.clear()
                await event.wait()
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        dq.append((q, fut, t0))
        if self._wake is None:
            self._wake = asyncio.Event()
        self._wake.set()
        return await fut

    # -- dispatch -------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._wake is not None
        while True:
            await self._wake.wait()
            self._wake.clear()
            progress = True
            while progress:
                progress = False
                # one query per tenant per cycle: round-robin fairness
                for tenant in list(self._queues):
                    dq = self._queues[tenant]
                    if not dq:
                        continue
                    progress = True
                    q, fut, t0 = dq.popleft()
                    event = self._space.get(tenant)
                    if event is not None:
                        event.set()
                    self.dispatch_log.append(tenant)
                    REGISTRY.observe(
                        "serve.queue_wait_s", perf_counter() - t0
                    )
                    # no task per query: the batcher future's done
                    # callback finishes the answer — one object on the
                    # hot path instead of a scheduled coroutine
                    bfut = self.batcher.enqueue((q.model, q.kind), q)
                    self._inflight.add(bfut)
                    bfut.add_done_callback(
                        partial(self._finish_one, q, fut, t0)
                    )

    def _finish_one(
        self,
        q: Query,
        fut: asyncio.Future,
        t0: float,
        bfut: asyncio.Future,
    ) -> None:
        """Resolve one caller future from its finished batch slice."""
        self._inflight.discard(bfut)
        if bfut.cancelled():
            if not fut.done():
                fut.cancel()
            return
        exc = bfut.exception()
        if exc is not None:
            self.stats.bump("failed")
            if not fut.done():
                fut.set_exception(exc)
            return
        payload = bfut.result()
        latency = perf_counter() - t0
        self._latencies.append(latency)
        REGISTRY.observe("serve.latency_s", latency)
        self.stats.bump("answered")
        answer = Answer(
            target=q.target,
            kind=q.kind,
            model=q.model,
            tenant=q.tenant,
            latency_s=latency,
            **payload,
        )
        if not fut.done():
            fut.set_result(answer)

    # -- batch execution ------------------------------------------------

    def _model(self, digest: str) -> FittedModel:
        model = self.registry.get(digest)
        if model is None:
            raise ServeError(
                f"model {digest[:12]} vanished from the registry",
                stage="serve",
            )
        return model

    def _runtime_context(self, model: FittedModel) -> tuple:
        ctx = self._runtime_ctx.get(model.digest)
        if ctx is None:
            from repro.apps.registry import get_app
            from repro.machine.systems import get_machine

            ctx = (get_app(model.spec.app), get_machine(model.spec.machine))
            self._runtime_ctx[model.digest] = ctx
        return ctx

    def _run_batch(
        self, key: Tuple[str, str], queries: List[Query]
    ) -> List[dict]:
        digest, kind = key
        model = self._model(digest)
        targets = sorted({int(q.target) for q in queries})
        sweep = model.predict(
            targets, rate_trust_factor=self.config.rate_trust_factor
        )
        n = len(queries)
        runtimes: Dict[int, float] = {}
        if kind == "runtime":
            from repro.pipeline.predict import predict_runtime

            app, machine = self._runtime_context(model)
            for target in targets:
                trace = model.synthesize(target, prediction=sweep)
                runtimes[target] = predict_runtime(
                    app, target, trace, machine
                ).runtime_s
        # one detached read-only matrix per *distinct* target, shared by
        # every query for it: copying per query would dominate the
        # amortized batch cost, and a view would pin the whole sweep
        matrices: Dict[int, np.ndarray] = {}
        for target in targets:
            m = sweep.matrix_for(target).copy()
            m.setflags(write=False)
            matrices[target] = m
        return [
            {
                "values": matrices[int(q.target)],
                "runtime_s": runtimes.get(int(q.target)),
                "batch_size": n,
            }
            for q in queries
        ]

    # -- reporting ------------------------------------------------------

    def latency_summary(self) -> Dict[str, float]:
        values = sorted(self._latencies)
        return {
            "count": len(values),
            "p50_s": _quantile(values, 0.50),
            "p95_s": _quantile(values, 0.95),
            "max_s": values[-1] if values else 0.0,
        }

    def summary(self) -> dict:
        return {
            "engine": self.stats.to_dict(),
            "batcher": self.batcher.stats.to_dict(),
            "registry": self.registry.stats.to_dict(),
            "latency": self.latency_summary(),
        }
