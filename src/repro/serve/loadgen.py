"""Replayable synthetic query-trace load generation.

Load tests are only evidence if they are repeatable: the generator
derives every choice (target, tenant) from the library's keyed RNG
(:func:`repro.util.rng.stream`), so the same :class:`LoadSpec` always
produces the same query trace, independent of how many other streams
exist — re-running a benchmark replays the *identical* load.

Targets are drawn with a Zipf-flavored skew (a few hot what-if targets,
a long tail), which is both the realistic shape for a what-if service
and the interesting one for a micro-batcher: hot targets co-batch,
cold ones ride along in the same window.

:func:`run_load` fires the whole trace as concurrent coroutines,
gathers the answers, and reduces them to a :class:`LoadReport` —
queries/s, latency percentiles, mean batch size — also mirrored into
the ``serve.qps`` / ``serve.p95_ms`` gauges.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.metrics import REGISTRY, _quantile
from repro.serve.engine import Answer, Query, QueryEngine
from repro.util.errors import ServeError
from repro.util.rng import DEFAULT_ROOT_SEED, stream


@dataclass(frozen=True)
class LoadSpec:
    """One replayable synthetic load: same spec, same query trace."""

    n_queries: int = 1000
    targets: Tuple[int, ...] = (512, 1024, 2048, 4096, 8192)
    tenants: Tuple[str, ...] = ("tenant0", "tenant1", "tenant2", "tenant3")
    kind: str = "features"
    #: Zipf-ish skew exponent over the target list (0 = uniform)
    skew: float = 1.0
    name: str = "default"

    def __post_init__(self):
        if self.n_queries < 1:
            raise ServeError(
                f"n_queries must be >= 1, got {self.n_queries}",
                stage="serve",
            )
        if not self.targets or not self.tenants:
            raise ServeError(
                "load spec needs at least one target and one tenant",
                stage="serve",
            )


def synthetic_queries(
    spec: LoadSpec,
    *,
    model: Optional[str] = None,
    root: int = DEFAULT_ROOT_SEED,
) -> List[Query]:
    """Materialize the spec's query trace (deterministic in (spec, root))."""
    rng = stream("serve", "loadgen", spec.name, spec.n_queries, root=root)
    weights = 1.0 / np.arange(1, len(spec.targets) + 1) ** spec.skew
    weights /= weights.sum()
    target_idx = rng.choice(len(spec.targets), size=spec.n_queries, p=weights)
    tenant_idx = rng.integers(0, len(spec.tenants), size=spec.n_queries)
    return [
        Query(
            target=int(spec.targets[t]),
            tenant=spec.tenants[u],
            kind=spec.kind,
            model=model,
        )
        for t, u in zip(target_idx, tenant_idx)
    ]


@dataclass
class LoadReport:
    """What one load run measured."""

    n_queries: int
    wall_s: float
    qps: float
    p50_ms: float
    p95_ms: float
    mean_batch: float
    rejected: int

    def to_dict(self) -> dict:
        return {
            "n_queries": self.n_queries,
            "wall_s": round(self.wall_s, 6),
            "qps": round(self.qps, 3),
            "p50_ms": round(self.p50_ms, 6),
            "p95_ms": round(self.p95_ms, 6),
            "mean_batch": round(self.mean_batch, 3),
            "rejected": self.rejected,
        }


async def run_load(
    engine: QueryEngine, queries: Sequence[Query]
) -> Tuple[LoadReport, List[Optional[Answer]]]:
    """Fire a query trace at a started engine; measure the service rate.

    Every query runs as its own coroutine (the all-at-once arrival that
    stresses batching and fairness hardest).  Admission rejections are
    counted, not raised — a load test observing its own backpressure is
    a result, not a failure.  Returns the report plus the per-query
    answers (``None`` where rejected) in submission order.
    """
    if not queries:
        raise ServeError("no queries to run", stage="serve")
    t0 = perf_counter()
    outcomes = await asyncio.gather(
        *(engine.query(q) for q in queries), return_exceptions=True
    )
    wall = perf_counter() - t0
    answers: List[Optional[Answer]] = []
    latencies: List[float] = []
    batch_sizes: List[int] = []
    rejected = 0
    for outcome in outcomes:
        if isinstance(outcome, Answer):
            answers.append(outcome)
            latencies.append(outcome.latency_s)
            batch_sizes.append(outcome.batch_size)
        elif isinstance(outcome, BaseException):
            from repro.util.errors import AdmissionError

            if isinstance(outcome, AdmissionError):
                rejected += 1
                answers.append(None)
            else:
                raise outcome
        else:
            answers.append(None)
    latencies.sort()
    report = LoadReport(
        n_queries=len(queries),
        wall_s=wall,
        qps=len(latencies) / wall if wall > 0 else 0.0,
        p50_ms=_quantile(latencies, 0.50) * 1e3,
        p95_ms=_quantile(latencies, 0.95) * 1e3,
        mean_batch=(
            float(np.mean(batch_sizes)) if batch_sizes else 0.0
        ),
        rejected=rejected,
    )
    REGISTRY.gauge("serve.qps").set(report.qps)
    REGISTRY.gauge("serve.p95_ms").set(report.p95_ms)
    return report, answers
