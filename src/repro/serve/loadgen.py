"""Replayable synthetic query-trace load generation.

Load tests are only evidence if they are repeatable: the generator
derives every choice (target, tenant) from the library's keyed RNG
(:func:`repro.util.rng.stream`), so the same :class:`LoadSpec` always
produces the same query trace, independent of how many other streams
exist — re-running a benchmark replays the *identical* load.

Targets are drawn with a Zipf-flavored skew (a few hot what-if targets,
a long tail), which is both the realistic shape for a what-if service
and the interesting one for a micro-batcher: hot targets co-batch,
cold ones ride along in the same window.

:func:`run_load` fires the whole trace as concurrent coroutines,
gathers the answers, and reduces them to a :class:`LoadReport` —
queries/s, latency percentiles, mean batch size — also mirrored into
the ``serve.qps`` / ``serve.p95_ms`` gauges.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.metrics import REGISTRY, _quantile
from repro.serve.engine import Answer, Query, QueryEngine
from repro.util.errors import ServeError
from repro.util.rng import DEFAULT_ROOT_SEED, stream


@dataclass(frozen=True)
class LoadSpec:
    """One replayable synthetic load: same spec, same query trace."""

    n_queries: int = 1000
    targets: Tuple[int, ...] = (512, 1024, 2048, 4096, 8192)
    tenants: Tuple[str, ...] = ("tenant0", "tenant1", "tenant2", "tenant3")
    kind: str = "features"
    #: Zipf-ish skew exponent over the target list (0 = uniform)
    skew: float = 1.0
    name: str = "default"
    #: per-query deadline stamped on every generated query (None = none)
    deadline_ms: Optional[float] = None
    #: >1 splits the trace into that many sequential arrival waves
    #: (chaos runs need quiet gaps for breakers to half-open and close)
    waves: int = 1
    wave_interval_s: float = 0.0

    def __post_init__(self):
        if self.n_queries < 1:
            raise ServeError(
                f"n_queries must be >= 1, got {self.n_queries}",
                stage="serve",
            )
        if not self.targets or not self.tenants:
            raise ServeError(
                "load spec needs at least one target and one tenant",
                stage="serve",
            )
        if self.deadline_ms is not None and not self.deadline_ms > 0:
            raise ServeError(
                f"load deadline must be positive, got {self.deadline_ms}",
                stage="serve",
            )
        if self.waves < 1:
            raise ServeError(
                f"waves must be >= 1, got {self.waves}", stage="serve"
            )
        if self.wave_interval_s < 0:
            raise ServeError(
                f"wave interval must be >= 0, got {self.wave_interval_s}",
                stage="serve",
            )


def synthetic_queries(
    spec: LoadSpec,
    *,
    model: Optional[str] = None,
    root: int = DEFAULT_ROOT_SEED,
) -> List[Query]:
    """Materialize the spec's query trace (deterministic in (spec, root))."""
    rng = stream("serve", "loadgen", spec.name, spec.n_queries, root=root)
    weights = 1.0 / np.arange(1, len(spec.targets) + 1) ** spec.skew
    weights /= weights.sum()
    target_idx = rng.choice(len(spec.targets), size=spec.n_queries, p=weights)
    tenant_idx = rng.integers(0, len(spec.tenants), size=spec.n_queries)
    return [
        Query(
            target=int(spec.targets[t]),
            tenant=spec.tenants[u],
            kind=spec.kind,
            model=model,
            deadline_ms=spec.deadline_ms,
        )
        for t, u in zip(target_idx, tenant_idx)
    ]


@dataclass
class LoadReport:
    """What one load run measured."""

    n_queries: int
    wall_s: float
    qps: float
    p50_ms: float
    p95_ms: float
    mean_batch: float
    rejected: int
    #: typed non-admission failures (deadline, breaker, serve errors) —
    #: under a fault plan these are results, not load-test bugs
    errors: int = 0
    error_kinds: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "n_queries": self.n_queries,
            "wall_s": round(self.wall_s, 6),
            "qps": round(self.qps, 3),
            "p50_ms": round(self.p50_ms, 6),
            "p95_ms": round(self.p95_ms, 6),
            "mean_batch": round(self.mean_batch, 3),
            "rejected": self.rejected,
            "errors": self.errors,
            "error_kinds": dict(self.error_kinds),
        }


async def run_load(
    engine: QueryEngine, queries: Sequence[Query], *, spec: Optional[LoadSpec] = None
) -> Tuple[LoadReport, List[Optional[Answer]]]:
    """Fire a query trace at a started engine; measure the service rate.

    Every query runs as its own coroutine (the all-at-once arrival that
    stresses batching and fairness hardest); with ``spec.waves > 1`` the
    trace is split into that many sequential arrival waves separated by
    ``spec.wave_interval_s`` of quiet — the cadence that lets an opened
    circuit breaker reach its half-open probe and close again under
    observation.  Admission rejections and typed serving errors
    (:class:`~repro.util.errors.ReproError`: deadline expiries, breaker
    sheds, injected faults) are counted, not raised — a load test
    observing the failure machinery it provoked is a result, not a
    failure.  Anything untyped still raises: that is a bug, not load.
    Returns the report plus the per-query answers (``None`` where
    rejected or failed) in submission order.
    """
    if not queries:
        raise ServeError("no queries to run", stage="serve")
    waves = spec.waves if spec is not None else 1
    interval = spec.wave_interval_s if spec is not None else 0.0
    per_wave = (len(queries) + waves - 1) // waves
    t0 = perf_counter()
    outcomes: List[object] = []
    for w in range(waves):
        wave = queries[w * per_wave : (w + 1) * per_wave]
        if not wave:
            break
        if w and interval:
            await asyncio.sleep(interval)
        outcomes.extend(
            await asyncio.gather(
                *(engine.query(q) for q in wave), return_exceptions=True
            )
        )
    wall = perf_counter() - t0
    answers: List[Optional[Answer]] = []
    latencies: List[float] = []
    batch_sizes: List[int] = []
    rejected = 0
    errors = 0
    error_kinds: Dict[str, int] = {}
    for outcome in outcomes:
        if isinstance(outcome, Answer):
            answers.append(outcome)
            latencies.append(outcome.latency_s)
            batch_sizes.append(outcome.batch_size)
        elif isinstance(outcome, BaseException):
            from repro.util.errors import AdmissionError, ReproError

            if isinstance(outcome, AdmissionError):
                rejected += 1
                answers.append(None)
            elif isinstance(outcome, ReproError):
                errors += 1
                kind = type(outcome).__name__
                error_kinds[kind] = error_kinds.get(kind, 0) + 1
                answers.append(None)
            else:
                raise outcome
        else:
            answers.append(None)
    latencies.sort()
    report = LoadReport(
        n_queries=len(queries),
        wall_s=wall,
        qps=len(latencies) / wall if wall > 0 else 0.0,
        p50_ms=_quantile(latencies, 0.50) * 1e3,
        p95_ms=_quantile(latencies, 0.95) * 1e3,
        mean_batch=(
            float(np.mean(batch_sizes)) if batch_sizes else 0.0
        ),
        rejected=rejected,
        errors=errors,
        error_kinds=error_kinds,
    )
    REGISTRY.gauge("serve.qps").set(report.qps)
    REGISTRY.gauge("serve.p95_ms").set(report.p95_ms)
    return report, answers
