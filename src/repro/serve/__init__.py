"""Prediction-as-a-service: answer what-if queries from fitted models.

The offline pipeline fits a model once per (app, machine, training
series); everything downstream — Tables II/III sweeps, capacity
planning, interactive what-ifs — is *evaluation* of that fit, which
:meth:`~repro.core.fitting.BatchedFitReport.predict_many` performs for
many targets in one array pass.  This package turns that asymmetry into
a service:

- :mod:`repro.serve.registry` — fitted models keyed by content digest,
  persisted mmap-friendly, LRU-cached in memory;
- :mod:`repro.serve.batcher` — micro-batching of compatible concurrent
  queries (size/deadline flush, per-query fan-out);
- :mod:`repro.serve.engine` — the asyncio front-end: admission control,
  per-tenant fair queueing, batched execution;
- :mod:`repro.serve.loadgen` — replayable keyed-RNG synthetic load for
  benchmarking the above;
- :mod:`repro.serve.resilience` — the serving fault discipline:
  per-model circuit breakers, the :class:`ServeReport` recovery tally,
  and the worker-offload replay task.

See DESIGN.md §7.9 for the keying, batching-window, and fairness
semantics, §7.10 for the serve fault model, and ``repro serve --help``
for the CLI.
"""

from repro.serve.batcher import BatcherStats, MicroBatcher
from repro.serve.engine import (
    Answer,
    EngineStats,
    Query,
    QueryEngine,
    ServeConfig,
)
from repro.serve.loadgen import (
    LoadReport,
    LoadSpec,
    run_load,
    synthetic_queries,
)
from repro.serve.registry import (
    FittedModel,
    ModelRegistry,
    ModelSpec,
    RegistryStats,
    fit_model,
)
from repro.serve.resilience import CircuitBreaker, ServeReport

__all__ = [
    "Answer",
    "BatcherStats",
    "CircuitBreaker",
    "EngineStats",
    "FittedModel",
    "LoadReport",
    "LoadSpec",
    "MicroBatcher",
    "ModelRegistry",
    "ModelSpec",
    "Query",
    "QueryEngine",
    "RegistryStats",
    "ServeConfig",
    "ServeReport",
    "fit_model",
    "run_load",
    "synthetic_queries",
]
