"""Micro-batching: coalesce compatible queries into one array pass.

The whole point of serving from :class:`~repro.core.fitting.
BatchedFitReport` is that ``predict_many`` answers *n* targets for
little more than the cost of one — but only if concurrent queries
actually arrive at it together.  The :class:`MicroBatcher` makes that
happen: queries submitted within a bounded window are grouped by a
*compatibility key* (same fitted model, same query kind — incompatible
keys are never co-batched) and flushed as one batch when either

- the batch reaches ``max_batch`` queries (size flush), or
- ``window_s`` elapses since the batch opened (deadline flush, so a
  lone query is never stuck waiting for company).

Each submitter gets back a future resolved with its own slice of the
batch result.  Cancelled futures are dropped at flush time — a caller
abandoning its query neither poisons nor delays the rest of the batch.
The batch executor runs synchronously on the event loop: it is a numpy
array pass over already-fitted matrices (microseconds to low
milliseconds), and keeping it on-loop preserves the bit-identity
contract — no cross-thread numpy state, one deterministic execution
per batch.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

from repro.obs.metrics import REGISTRY
from repro.obs.trace import span
from repro.util.errors import ServeError


@dataclass
class BatcherStats:
    """Flush accounting, mirrored into ``serve.batch.*`` metrics."""

    queries: int = 0
    batches: int = 0
    size_flushes: int = 0
    deadline_flushes: int = 0
    drain_flushes: int = 0
    cancelled: int = 0

    def bump(self, name: str, n: int = 1) -> None:
        setattr(self, name, getattr(self, name) + n)
        REGISTRY.inc(f"serve.batch.{name}", n)

    def to_dict(self) -> dict:
        return {
            "queries": self.queries,
            "batches": self.batches,
            "size_flushes": self.size_flushes,
            "deadline_flushes": self.deadline_flushes,
            "drain_flushes": self.drain_flushes,
            "cancelled": self.cancelled,
            "mean_batch": (
                self.queries / self.batches if self.batches else 0.0
            ),
        }


@dataclass
class _PendingBatch:
    items: List[Any] = field(default_factory=list)
    futures: List[asyncio.Future] = field(default_factory=list)
    timer: Optional[asyncio.TimerHandle] = None


class MicroBatcher:
    """Group submissions by key; flush on size or deadline.

    ``run_batch(key, items)`` executes one coalesced batch and must
    return one result per item, in order.  It is called on the event
    loop; exceptions it raises are fanned out to every live submitter
    of that batch.
    """

    def __init__(
        self,
        run_batch: Callable[[Hashable, List[Any]], Sequence[Any]],
        *,
        max_batch: int = 64,
        window_s: float = 0.002,
    ):
        if max_batch < 1:
            raise ServeError(
                f"max_batch must be >= 1, got {max_batch}", stage="serve"
            )
        if not window_s > 0:
            raise ServeError(
                f"batch window must be positive, got {window_s}",
                stage="serve",
            )
        self._run_batch = run_batch
        self.max_batch = max_batch
        self.window_s = window_s
        self._pending: Dict[Hashable, _PendingBatch] = {}
        self.stats = BatcherStats()

    @property
    def pending_keys(self) -> List[Hashable]:
        return list(self._pending)

    def enqueue(self, key: Hashable, item: Any) -> asyncio.Future:
        """Enqueue one query; return the future that resolves with its
        answer.

        Synchronous on purpose: the engine's dispatcher calls this in a
        tight loop, and a plain future keeps the per-query hot path free
        of task creation (a size flush may run the batch before this
        returns, in which case the future is already resolved).
        """
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        batch = self._pending.get(key)
        if batch is None:
            batch = _PendingBatch()
            self._pending[key] = batch
            batch.timer = loop.call_later(
                self.window_s, self._flush, key, "deadline_flushes"
            )
        batch.items.append(item)
        batch.futures.append(fut)
        self.stats.bump("queries")
        if len(batch.items) >= self.max_batch:
            self._flush(key, "size_flushes")
        return fut

    async def submit(self, key: Hashable, item: Any) -> Any:
        """Enqueue one query under its compatibility key; await its answer."""
        return await self.enqueue(key, item)

    def flush_all(self) -> None:
        """Flush every open batch immediately (drain/shutdown path)."""
        for key in list(self._pending):
            self._flush(key, "drain_flushes")

    def _flush(self, key: Hashable, reason: str) -> None:
        batch = self._pending.pop(key, None)
        if batch is None:
            return
        if batch.timer is not None:
            batch.timer.cancel()
        live = [
            (item, fut)
            for item, fut in zip(batch.items, batch.futures)
            if not fut.done()
        ]
        dropped = len(batch.items) - len(live)
        if dropped:
            self.stats.bump("cancelled", dropped)
        if not live:
            return
        self.stats.bump("batches")
        self.stats.bump(reason)
        REGISTRY.observe("serve.batch_size", float(len(live)))
        items = [item for item, _ in live]
        try:
            with span("serve.batch", key=str(key), size=len(live)):
                results = self._run_batch(key, items)
        except Exception as exc:  # noqa: BLE001 - fan the failure out
            for _, fut in live:
                if not fut.done():
                    fut.set_exception(exc)
            return
        if len(results) != len(items):
            exc = ServeError(
                f"batch executor returned {len(results)} results for "
                f"{len(items)} queries",
                stage="serve",
            )
            for _, fut in live:
                if not fut.done():
                    fut.set_exception(exc)
            return
        for (_, fut), result in zip(live, results):
            if not fut.done():
                fut.set_result(result)
