"""Micro-batching: coalesce compatible queries into one array pass.

The whole point of serving from :class:`~repro.core.fitting.
BatchedFitReport` is that ``predict_many`` answers *n* targets for
little more than the cost of one — but only if concurrent queries
actually arrive at it together.  The :class:`MicroBatcher` makes that
happen: queries submitted within a bounded window are grouped by a
*compatibility key* (same fitted model, same query kind — incompatible
keys are never co-batched) and flushed as one batch when either

- the batch reaches ``max_batch`` queries (size flush), or
- ``window_s`` elapses since the batch opened (deadline flush, so a
  lone query is never stuck waiting for company).

Each submitter gets back a future resolved with its own slice of the
batch result.  Cancelled futures are dropped at flush time — a caller
abandoning its query neither poisons nor delays the rest of the batch.
Items may carry an *expiry* (absolute ``perf_counter`` seconds): an
item whose expiry has passed by flush time is answered with the
engine-supplied ``on_expire`` exception instead of being computed —
the batch-flush boundary of the per-query deadline contract.

``run_batch`` may return either a sequence of results (executed
synchronously on the event loop — the cheap ``predict_many`` path) or
a coroutine (scheduled as a task — the worker-offload path for
runtime replay, which must never block the loop).  Either way, a
per-item result that is itself an exception instance is delivered to
that item's future as a failure, so one poisoned query inside an
otherwise healthy batch fails alone.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from functools import partial
from time import perf_counter
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.obs.metrics import REGISTRY
from repro.obs.trace import span
from repro.util.errors import ServeError


@dataclass
class BatcherStats:
    """Flush accounting, mirrored into ``serve.batch.*`` metrics."""

    queries: int = 0
    batches: int = 0
    size_flushes: int = 0
    deadline_flushes: int = 0
    drain_flushes: int = 0
    cancelled: int = 0
    expired: int = 0

    def bump(self, name: str, n: int = 1) -> None:
        setattr(self, name, getattr(self, name) + n)
        REGISTRY.inc(f"serve.batch.{name}", n)

    def to_dict(self) -> dict:
        return {
            "queries": self.queries,
            "batches": self.batches,
            "size_flushes": self.size_flushes,
            "deadline_flushes": self.deadline_flushes,
            "drain_flushes": self.drain_flushes,
            "cancelled": self.cancelled,
            "expired": self.expired,
            "mean_batch": (
                self.queries / self.batches if self.batches else 0.0
            ),
        }


@dataclass
class _PendingBatch:
    items: List[Any] = field(default_factory=list)
    futures: List[asyncio.Future] = field(default_factory=list)
    expiries: List[Optional[float]] = field(default_factory=list)
    timer: Optional[asyncio.TimerHandle] = None


class MicroBatcher:
    """Group submissions by key; flush on size or deadline.

    ``run_batch(key, items)`` executes one coalesced batch and must
    produce one result per item, in order (a per-item exception
    instance counts as that item's failed result).  A sequence return
    runs synchronously on the event loop; a coroutine return is
    scheduled as a task and fans out on completion.  Exceptions raised
    by either form are fanned out to every live submitter of that
    batch.  ``on_expire(item)`` builds the exception delivered to items
    whose expiry passed before the batch ran.
    """

    def __init__(
        self,
        run_batch: Callable[[Hashable, List[Any]], Any],
        *,
        max_batch: int = 64,
        window_s: float = 0.002,
        on_expire: Optional[Callable[[Any], BaseException]] = None,
    ):
        if max_batch < 1:
            raise ServeError(
                f"max_batch must be >= 1, got {max_batch}", stage="serve"
            )
        if not window_s > 0:
            raise ServeError(
                f"batch window must be positive, got {window_s}",
                stage="serve",
            )
        self._run_batch = run_batch
        self.max_batch = max_batch
        self.window_s = window_s
        self._on_expire = on_expire
        self._pending: Dict[Hashable, _PendingBatch] = {}
        self._tasks: set = set()
        self.stats = BatcherStats()

    @property
    def pending_keys(self) -> List[Hashable]:
        return list(self._pending)

    def enqueue(
        self,
        key: Hashable,
        item: Any,
        expiry: Optional[float] = None,
    ) -> asyncio.Future:
        """Enqueue one query; return the future that resolves with its
        answer.

        Synchronous on purpose: the engine's dispatcher calls this in a
        tight loop, and a plain future keeps the per-query hot path free
        of task creation (a size flush may run the batch before this
        returns, in which case the future is already resolved).
        ``expiry`` is an absolute ``perf_counter`` deadline; past-due
        items are expired (not computed) at flush time.
        """
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        batch = self._pending.get(key)
        if batch is None:
            batch = _PendingBatch()
            self._pending[key] = batch
            batch.timer = loop.call_later(
                self.window_s, self._flush, key, "deadline_flushes"
            )
        batch.items.append(item)
        batch.futures.append(fut)
        batch.expiries.append(expiry)
        self.stats.bump("queries")
        if len(batch.items) >= self.max_batch:
            self._flush(key, "size_flushes")
        return fut

    async def submit(
        self, key: Hashable, item: Any, expiry: Optional[float] = None
    ) -> Any:
        """Enqueue one query under its compatibility key; await its answer."""
        return await self.enqueue(key, item, expiry)

    def flush_all(self) -> None:
        """Flush every open batch immediately (drain/shutdown path)."""
        for key in list(self._pending):
            self._flush(key, "drain_flushes")

    # -- flush machinery ------------------------------------------------

    def _expire_exc(self, item: Any) -> BaseException:
        if self._on_expire is not None:
            return self._on_expire(item)
        return ServeError("query expired before its batch ran", stage="serve")

    def _flush(self, key: Hashable, reason: str) -> None:
        batch = self._pending.pop(key, None)
        if batch is None:
            return
        if batch.timer is not None:
            batch.timer.cancel()
        live = [
            (item, fut, expiry)
            for item, fut, expiry in zip(
                batch.items, batch.futures, batch.expiries
            )
            if not fut.done()
        ]
        dropped = len(batch.items) - len(live)
        if dropped:
            self.stats.bump("cancelled", dropped)
        now = perf_counter()
        fresh: List[Tuple[Any, asyncio.Future]] = []
        for item, fut, expiry in live:
            if expiry is not None and now >= expiry:
                self.stats.bump("expired")
                fut.set_exception(self._expire_exc(item))
            else:
                fresh.append((item, fut))
        if not fresh:
            return
        self.stats.bump("batches")
        self.stats.bump(reason)
        REGISTRY.observe("serve.batch_size", float(len(fresh)))
        # flush-reason mix, weighted by batch size: how many queries
        # each trigger (size / deadline / drain) actually carried
        REGISTRY.inc(f"serve.batch.queries_by.{reason}", len(fresh))
        items = [item for item, _ in fresh]
        try:
            # the flush span carries the reason so --trace-out shows
            # which trigger (size / deadline / drain) ran each batch
            with span(
                "serve.flush",
                key=str(key),
                reason=reason,
                size=len(items),
            ):
                results = self._run_batch(key, items)
        except Exception as exc:  # noqa: BLE001 - fan the failure out
            self._fail(fresh, exc)
            return
        if asyncio.iscoroutine(results):
            # worker-offload path: the batch runs off-loop; completion
            # fans out from the task's done callback
            task = asyncio.get_running_loop().create_task(
                results, name=f"serve-batch-{key}"
            )
            self._tasks.add(task)
            task.add_done_callback(partial(self._complete_async, fresh))
            return
        self._complete(fresh, results)

    def _fail(
        self, fresh: List[Tuple[Any, asyncio.Future]], exc: BaseException
    ) -> None:
        for _, fut in fresh:
            if not fut.done():
                fut.set_exception(exc)

    def _complete_async(
        self,
        fresh: List[Tuple[Any, asyncio.Future]],
        task: asyncio.Task,
    ) -> None:
        self._tasks.discard(task)
        if task.cancelled():
            for _, fut in fresh:
                if not fut.done():
                    fut.cancel()
            return
        exc = task.exception()
        if exc is not None:
            self._fail(fresh, exc)
            return
        self._complete(fresh, task.result())

    def _complete(
        self, fresh: List[Tuple[Any, asyncio.Future]], results: Any
    ) -> None:
        if len(results) != len(fresh):
            self._fail(
                fresh,
                ServeError(
                    f"batch executor returned {len(results)} results for "
                    f"{len(fresh)} queries",
                    stage="serve",
                ),
            )
            return
        for (_, fut), result in zip(fresh, results):
            if fut.done():
                continue
            if isinstance(result, BaseException):
                fut.set_exception(result)
            else:
                fut.set_result(result)
