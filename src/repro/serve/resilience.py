"""Fault discipline for the serving tier: breakers, deadlines, reports.

The batch pipeline earned its recovery machinery in PRs 3/5
(:mod:`repro.exec.resilience`, :mod:`repro.guard`); this module gives
the *serving* tier the equivalent discipline, tuned for a latency-bound
query path where the right failure answer is always *fast and typed*,
never a hang:

- :class:`CircuitBreaker` — per-model failure isolation.  ``closed``
  until ``threshold`` *consecutive* batch failures, then ``open``:
  queries for that model are shed at admission/dispatch with
  :class:`~repro.util.errors.CircuitOpenError` instead of queueing
  behind a poisoned model.  After a keyed-RNG-jittered open window the
  breaker goes ``half_open`` and admits exactly one probe; a healthy
  probe re-closes it, a failed probe re-opens with a fresh window.
  The jitter is drawn from ``stream("serve", "breaker", model, n)`` —
  deterministic per (model, open count), so two identical chaos runs
  probe on an identical schedule.
- :class:`ServeReport` — the serving analogue of
  :class:`~repro.exec.resilience.RunReport`: one tally per recovery
  event (deadline expiries by boundary, breaker transitions, batch
  failures, worker offloads), mirrored into ``serve.resilience.*``
  metrics by construction and embedding the worker-pool
  :class:`~repro.exec.resilience.RunReport` that runtime-replay offload
  accumulates into.  The chaos acceptance test holds the report, the
  metrics registry, and the run manifest to *exactly* the injected
  fault tallies.
- :func:`replay_runtime_task` — the module-level (hence picklable)
  unit of runtime-replay work the engine offloads through
  :func:`~repro.exec.resilience.run_tasks_resilient`, so MultiMAPS
  replay never blocks the event loop and a crashed or hung replay gets
  the existing retry/backoff/pool-rebuild treatment.

Deadline bookkeeping itself lives in the engine/batcher (it is a
property of a query's journey, not a standalone object); the typed
errors are :class:`~repro.util.errors.DeadlineExceededError` and
:class:`~repro.util.errors.CircuitOpenError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.exec.resilience import RunReport
from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY
from repro.util.rng import stream

log = get_logger("serve.resilience")

#: breaker defaults (overridable per engine via ServeConfig)
BREAKER_THRESHOLD = 5
BREAKER_OPEN_S = 0.25

#: breaker states, in the order a recovery walks them
BREAKER_STATES = ("closed", "open", "half_open")


@dataclass
class ServeReport:
    """Tally of every serving-tier recovery event (one per engine).

    Counter semantics:

    - ``deadline_admission`` / ``deadline_dispatch`` / ``deadline_flush``
      — queries cancelled with ``DeadlineExceededError`` at each of the
      three deadline boundaries;
    - ``breaker_opens`` / ``breaker_half_opens`` / ``breaker_closes`` —
      state transitions (also recorded, model-tagged and ordered, in
      :attr:`transitions`); ``breaker_rejected`` — queries shed while a
      breaker was open;
    - ``batch_failures`` — batch executions that raised (fanned out as
      typed errors to every co-batched query);
    - ``slow_predicts`` — injected ``slow-predict`` faults observed
      (chaos-harness bookkeeping so the report can be asserted against
      the plan);
    - ``offloads`` — batch executions routed through the worker path
      instead of running on the event loop.

    ``worker`` is the shared :class:`RunReport` every offloaded
    ``run_tasks_resilient`` call accumulates into — worker crashes,
    retries, and timeouts land there under the PR-3 taxonomy.
    """

    deadline_admission: int = 0
    deadline_dispatch: int = 0
    deadline_flush: int = 0
    breaker_opens: int = 0
    breaker_half_opens: int = 0
    breaker_closes: int = 0
    breaker_rejected: int = 0
    batch_failures: int = 0
    slow_predicts: int = 0
    offloads: int = 0
    #: model-tagged breaker transitions in event order: "ab12cd34ef56:open"
    transitions: List[str] = field(default_factory=list)
    #: worker-pool recovery tallies from offloaded runtime replay
    worker: RunReport = field(default_factory=RunReport)

    COUNTER_FIELDS = (
        "deadline_admission",
        "deadline_dispatch",
        "deadline_flush",
        "breaker_opens",
        "breaker_half_opens",
        "breaker_closes",
        "breaker_rejected",
        "batch_failures",
        "slow_predicts",
        "offloads",
    )

    def bump(self, name: str, n: int = 1) -> None:
        """Increment one tally, mirrored into ``serve.resilience.<name>``."""
        setattr(self, name, getattr(self, name) + n)
        REGISTRY.inc(f"serve.resilience.{name}", n)

    def transition(self, model: str, state: str) -> None:
        tag = f"{model[:12]}:{state}"
        self.transitions.append(tag)
        # live state gauge (closed=0 open=1 half_open=2): the telemetry
        # sampler and Prometheus exposition read breaker health from it
        REGISTRY.gauge(f"serve.breaker.{model[:12]}").set(
            float(BREAKER_STATES.index(state))
        )
        log.warning("breaker %s", tag)

    @property
    def deadline_expired(self) -> int:
        """Total queries cancelled by deadline, all boundaries."""
        return (
            self.deadline_admission
            + self.deadline_dispatch
            + self.deadline_flush
        )

    @property
    def clean(self) -> bool:
        """True when no serving recovery machinery fired."""
        return (
            not any(getattr(self, name) for name in self.COUNTER_FIELDS)
            and self.worker.clean
        )

    def to_dict(self) -> dict:
        doc = {name: getattr(self, name) for name in self.COUNTER_FIELDS}
        doc["deadline_expired"] = self.deadline_expired
        doc["transitions"] = list(self.transitions)
        doc["worker"] = self.worker.to_dict()
        return doc

    def summary(self) -> str:
        return (
            f"deadline_expired={self.deadline_expired} "
            f"breaker_opens={self.breaker_opens} "
            f"breaker_closes={self.breaker_closes} "
            f"breaker_rejected={self.breaker_rejected} "
            f"batch_failures={self.batch_failures} "
            f"offloads={self.offloads} "
            f"worker[{self.worker.summary()}]"
        )


class CircuitBreaker:
    """Per-model failure isolation: closed → open → half-open → closed.

    All methods take an explicit ``now`` (``perf_counter`` seconds) so
    the state machine is testable without sleeping.  The breaker is
    driven from exactly three call sites in the engine:

    - :meth:`admit` at query admission (fast shed while open);
    - :meth:`allow_dispatch` at dispatch (owns the open→half_open
      transition and the single-probe gate);
    - :meth:`record_success` / :meth:`record_failure` per batch
      execution outcome.
    """

    def __init__(
        self,
        model: str,
        *,
        threshold: int = BREAKER_THRESHOLD,
        open_s: float = BREAKER_OPEN_S,
        report: Optional[ServeReport] = None,
    ):
        if threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1, got {threshold}")
        if not open_s > 0:
            raise ValueError(f"breaker open window must be positive, got {open_s}")
        self.model = model
        self.threshold = threshold
        self.open_s = open_s
        self.report = report
        self.state = "closed"
        self.failures = 0  #: consecutive batch failures while closed
        self.opens = 0  #: total open transitions (the jitter key)
        self._probe_at = 0.0
        self._probe_inflight = False

    def _jittered_window(self) -> float:
        """Open-window length with keyed-RNG jitter (+0%..+25%).

        Keyed by (model, open count): independent of wall time and every
        other breaker, so identical chaos runs re-probe identically and
        a fleet of breakers opened by one incident don't probe in sync.
        """
        u = stream("serve", "breaker", self.model, self.opens).uniform(1.0, 1.25)
        return float(self.open_s * u)

    def _open(self, now: float) -> None:
        self.state = "open"
        self.opens += 1
        self._probe_at = now + self._jittered_window()
        self._probe_inflight = False
        if self.report is not None:
            self.report.bump("breaker_opens")
            self.report.transition(self.model, "open")

    # -- gates ----------------------------------------------------------

    def admit(self, now: float) -> bool:
        """Admission-time fast check; False = shed with CircuitOpenError."""
        if self.state == "closed":
            return True
        if self.state == "open":
            return now >= self._probe_at
        return not self._probe_inflight  # half_open: room for the probe?

    def allow_dispatch(self, now: float) -> bool:
        """Dispatch-time gate; owns the open→half_open probe transition."""
        if self.state == "closed":
            return True
        if self.state == "open":
            if now < self._probe_at:
                return False
            self.state = "half_open"
            self._probe_inflight = True
            if self.report is not None:
                self.report.bump("breaker_half_opens")
                self.report.transition(self.model, "half_open")
            return True
        # half_open: exactly one probe in flight at a time
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    # -- outcomes -------------------------------------------------------

    def record_success(self) -> None:
        self.failures = 0
        if self.state == "half_open":
            self.state = "closed"
            self._probe_inflight = False
            if self.report is not None:
                self.report.bump("breaker_closes")
                self.report.transition(self.model, "closed")
        # a straggler success while open (a pre-open batch landing late)
        # resets the failure streak but does not skip the probe

    def record_failure(self, now: float) -> None:
        self.failures += 1
        if self.state == "half_open":
            self._open(now)  # the probe failed: fresh open window
        elif self.state == "closed" and self.failures >= self.threshold:
            self._open(now)


def replay_runtime_task(app, machine, target, trace) -> float:
    """One offloadable runtime replay: pure in its arguments.

    Module-level so pool workers can pickle it; pure so a retry after a
    crash (or the serial in-thread fallback) replays bit-identically.
    """
    from repro.pipeline.predict import predict_runtime

    return predict_runtime(app, int(target), trace, machine).runtime_s
