"""Fitted-model registry: fit once, answer forever.

A *model* is everything needed to answer extrapolation queries without
touching the training pipeline again: the batched fit matrices
(:class:`~repro.core.batchfit.BatchFitResult` behind a
:class:`~repro.core.fitting.BatchedFitReport`) plus the synthesis
template trace.  Models are keyed by a SHA-256 **content digest** of
their identity — application, machine, training core counts, cache
engine, canonical-form set, and the code version that fitted them (the
same ``git_sha`` the run manifest records) — so a registry can never
serve a stale fit for changed inputs: a different identity is a
different digest is a different entry.

Persistence is mmap-friendly: each model lives in its own
``<digest>/`` directory holding one bare ``.npy`` file per fit matrix
(``np.load(mmap_mode="r")`` only maps bare ``.npy`` files, not ``.npz``
members), the template as a normal trace ``.npz``, and a ``meta.json``
carrying the spec and array manifest.  A warm serving process therefore
pages in only the matrix rows a query batch actually touches.  Writes
go to a temp directory renamed into place, so a crashed writer never
leaves a half-model loadable.

In front of the disk tier sits a small in-memory LRU (the
:class:`~repro.cache.reuse.ProfileCache` idiom), with per-tier
hit/miss/eviction counters exported as ``serve.registry.*`` metrics.

The disk tier is *self-healing and bounded*:

- every entry carries a ``files`` manifest (byte size + sha256 per
  artifact); a load that fails verification — or fails to parse at all
  — moves the whole entry to ``<root>/quarantine/`` (the PR-3 sigcache
  discipline) and reports a **miss**, so ``get_or_fit`` transparently
  refits.  Corruption never surfaces to serving code as an exception;
- an optional **size budget** (``budget_mb``) garbage-collects
  least-recently-used entries after each store: access time lives in a
  per-entry ``atime`` sidecar (touched on every disk hit, so GC order
  is usage order, not store order), deletes are rename-then-remove so
  a concurrent reader never sees a half-deleted entry;
- ``get_or_fit`` takes a per-digest advisory **lockfile** before
  fitting, so concurrent processes asked for the same model fit it
  once: the loser polls, then loads the winner's artifact (a lock
  older than ``lock_stale_s`` is taken over — a crashed fitter cannot
  wedge the registry).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cache.engine import ENGINE_NAMES
from repro.exec import faults
from repro.core.batchfit import BatchFitResult
from repro.core.canonical import EXTENDED_FORMS, PAPER_FORMS
from repro.core.extrapolate import fit_traces, synthesize_from_prediction
from repro.core.fitting import BatchedFitReport, SweepPrediction
from repro.obs.log import get_logger
from repro.obs.manifest import git_sha
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span
from repro.trace.features import FeatureSchema
from repro.trace.tracefile import TraceFile
from repro.util.atomic import atomic_dir
from repro.util.errors import ServeError

SCHEMA_VERSION = 1

log = get_logger("serve.registry")

#: named canonical-form sets a spec may select (names are part of the
#: content digest, so the mapping must stay append-only)
FORM_SETS = {"paper": PAPER_FORMS, "extended": EXTENDED_FORMS}

#: registry housekeeping directories (never valid shard names — shards
#: are two hex characters)
QUARANTINE_DIR = "quarantine"
LOCKS_DIR = "locks"

#: per-entry access-time sidecar (excluded from the files manifest:
#: it mutates on every read)
ATIME_FILE = "atime"

#: fault-plan ``feature`` → the entry file a ``corrupt-model-entry``
#: spec truncates
FAULT_FILES = {"meta": "meta.json", "matrix": "Y.npy", "template": "template.npz"}

#: the per-model fit matrices persisted as bare .npy files, in manifest
#: order: (filename stem, BatchFitResult attribute)
_ARRAY_FIELDS = (
    ("x", "x"),
    ("Y", "Y"),
    ("sse", "sse"),
    ("applicable", "applicable"),
    ("order", "order"),
    ("n_candidates", "n_candidates"),
)


def default_code_version() -> str:
    """The code-version token baked into new specs (manifest ``git_sha``)."""
    return git_sha() or "unversioned"


@dataclass(frozen=True)
class ModelSpec:
    """Identity of one fitted model — everything the fit depends on.

    ``train_counts`` are canonicalized (sorted, deduplicated) so the
    digest is insensitive to argument order.  ``code_version`` defaults
    to the current checkout's ``git_sha`` — pass it explicitly to query
    for a model fitted by an older build.
    """

    app: str
    machine: str = "blue_waters_p1"
    train_counts: Tuple[int, ...] = (64, 128, 256)
    cache_engine: str = "exact"
    forms: str = "paper"
    code_version: str = field(default_factory=default_code_version)

    def __post_init__(self):
        counts = tuple(sorted({int(c) for c in self.train_counts}))
        object.__setattr__(self, "train_counts", counts)
        if len(counts) < 2:
            raise ServeError(
                f"need at least 2 training counts, got {list(counts)}",
                stage="serve",
            )
        if self.cache_engine not in ENGINE_NAMES:
            raise ServeError(
                f"unknown cache engine {self.cache_engine!r}; "
                f"known engines: {ENGINE_NAMES}",
                stage="serve",
            )
        if self.forms not in FORM_SETS:
            raise ServeError(
                f"unknown form set {self.forms!r}; "
                f"known sets: {sorted(FORM_SETS)}",
                stage="serve",
            )

    def digest(self) -> str:
        """Content digest over the canonical identity tokens."""
        h = hashlib.sha256()
        for token in (
            f"v{SCHEMA_VERSION}",
            self.app,
            self.machine,
            ",".join(str(c) for c in self.train_counts),
            self.cache_engine,
            self.forms,
            self.code_version,
        ):
            h.update(token.encode("utf-8"))
            h.update(b"\x00")
        return h.hexdigest()

    def describe(self) -> str:
        return (
            f"{self.app}@{self.machine} train={list(self.train_counts)} "
            f"engine={self.cache_engine} forms={self.forms} "
            f"code={self.code_version[:12]}"
        )

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "machine": self.machine,
            "train_counts": list(self.train_counts),
            "cache_engine": self.cache_engine,
            "forms": self.forms,
            "code_version": self.code_version,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ModelSpec":
        return cls(
            app=doc["app"],
            machine=doc["machine"],
            train_counts=tuple(doc["train_counts"]),
            cache_engine=doc["cache_engine"],
            forms=doc["forms"],
            code_version=doc["code_version"],
        )


@dataclass
class FittedModel:
    """One registry entry: spec + fit report + synthesis template."""

    spec: ModelSpec
    report: BatchedFitReport
    template: TraceFile

    @property
    def digest(self) -> str:
        return self.spec.digest()

    def predict(
        self, targets: Sequence[int], *, rate_trust_factor: float = 2.0
    ) -> SweepPrediction:
        """Vectorized multi-target sweep (one array pass, no re-fit)."""
        return self.report.predict_many(
            targets, rate_trust_factor=rate_trust_factor
        )

    def synthesize(
        self,
        target: int,
        *,
        prediction: Optional[SweepPrediction] = None,
        rate_trust_factor: float = 2.0,
    ) -> TraceFile:
        """The synthetic trace of one target (for runtime replay)."""
        if prediction is None or target not in prediction.targets:
            prediction = self.predict(
                [target], rate_trust_factor=rate_trust_factor
            )
        return synthesize_from_prediction(self.template, prediction, target)


def fit_model(spec: ModelSpec, *, config=None, report=None) -> FittedModel:
    """Train the model a spec describes, through the pipeline's own path.

    Collection runs with the spec's cache engine (exact LRU replay or
    analytical reuse-distance), fitting through
    :func:`repro.core.extrapolate.fit_traces` on the batched engine —
    the identical code the offline sweep API uses, so served answers are
    bit-identical to what a fresh ``extrapolate_trace_many`` would
    produce.
    """
    # local imports: keep registry loading cheap and cycle-free
    from repro.apps.registry import get_app
    from repro.instrument.collector import CollectorConfig
    from repro.pipeline.collect import CollectionSettings
    from repro.pipeline.experiment import Table1Config, collect_training_traces

    if config is None:
        config = Table1Config(
            machine=spec.machine,
            collection=CollectionSettings(
                collector=CollectorConfig(engine=spec.cache_engine)
            ),
        )
    app = get_app(spec.app)
    with span("serve.fit", app=spec.app, counts=len(spec.train_counts)):
        traces = collect_training_traces(
            app, list(spec.train_counts), config, report=report
        )
        fit_report, template = fit_traces(
            traces, forms=FORM_SETS[spec.forms], engine="batched"
        )
    if not isinstance(fit_report, BatchedFitReport):
        raise ServeError(
            "registry models require the batched fitting engine",
            stage="serve",
        )
    return FittedModel(spec=spec, report=fit_report, template=template)


@dataclass
class RegistryStats:
    """Tiered hit/miss tallies, mirrored into ``serve.registry.*``."""

    mem_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    fits: int = 0
    quarantined: int = 0
    gc_evictions: int = 0
    lock_waits: int = 0
    lock_takeovers: int = 0

    def bump(self, name: str, n: int = 1) -> None:
        setattr(self, name, getattr(self, name) + n)
        REGISTRY.inc(f"serve.registry.{name}", n)
        if name in ("mem_hits", "disk_hits", "misses"):
            REGISTRY.gauge("serve.registry.hit_rate").set(self.hit_rate())

    def hit_rate(self) -> float:
        """Fraction of lookups served by either tier (mem or disk)."""
        lookups = self.mem_hits + self.disk_hits + self.misses
        if not lookups:
            return 0.0
        return (self.mem_hits + self.disk_hits) / lookups

    def to_dict(self) -> dict:
        return {
            "mem_hits": self.mem_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "fits": self.fits,
            "quarantined": self.quarantined,
            "gc_evictions": self.gc_evictions,
            "lock_waits": self.lock_waits,
            "lock_takeovers": self.lock_takeovers,
        }


class ModelRegistry:
    """Two-tier store of fitted models: in-memory LRU over a disk tree.

    ``root=None`` keeps everything in memory (tests, embedded use); with
    a root directory, :meth:`put` persists and :meth:`get` falls back to
    disk on a memory miss, loading fit matrices with
    ``np.load(mmap_mode="r")`` so a big registry costs page-cache, not
    heap.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        *,
        mem_entries: int = 8,
        budget_mb: Optional[float] = None,
        lock_stale_s: float = 30.0,
        lock_poll_s: float = 0.05,
    ):
        if mem_entries < 1:
            raise ServeError(
                f"mem_entries must be >= 1, got {mem_entries}", stage="serve"
            )
        if budget_mb is not None and not budget_mb > 0:
            raise ServeError(
                f"registry budget must be positive, got {budget_mb}",
                stage="serve",
            )
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        self.mem_entries = mem_entries
        self.budget_mb = budget_mb
        self.lock_stale_s = lock_stale_s
        self.lock_poll_s = lock_poll_s
        self._mem: "OrderedDict[str, FittedModel]" = OrderedDict()
        self.stats = RegistryStats()

    # -- keying ---------------------------------------------------------

    @staticmethod
    def _digest_of(key: Union[str, ModelSpec]) -> str:
        return key.digest() if isinstance(key, ModelSpec) else str(key)

    def _model_dir(self, digest: str) -> Path:
        assert self.root is not None
        return self.root / digest[:2] / digest

    # -- memory tier ----------------------------------------------------

    def _remember(self, digest: str, model: FittedModel) -> None:
        self._mem[digest] = model
        self._mem.move_to_end(digest)
        while len(self._mem) > self.mem_entries:
            self._mem.popitem(last=False)
            self.stats.bump("evictions")
        REGISTRY.gauge("serve.registry.mem_entries").set(
            float(len(self._mem))
        )

    # -- public API -----------------------------------------------------

    def __contains__(self, key: Union[str, ModelSpec]) -> bool:
        digest = self._digest_of(key)
        if digest in self._mem:
            return True
        return (
            self.root is not None
            and (self._model_dir(digest) / "meta.json").exists()
        )

    def __len__(self) -> int:
        return len(self.digests())

    def digests(self) -> List[str]:
        """Every digest the registry can answer for (both tiers)."""
        found = set(self._mem)
        if self.root is not None:
            for meta in self.root.glob("*/*/meta.json"):
                if meta.parent.parent.name == QUARANTINE_DIR:
                    continue
                found.add(meta.parent.name)
        return sorted(found)

    def get(self, key: Union[str, ModelSpec]) -> Optional[FittedModel]:
        digest = self._digest_of(key)
        model = self._mem.get(digest)
        if model is not None:
            self._mem.move_to_end(digest)
            self.stats.bump("mem_hits")
            return model
        if self.root is not None:
            model_dir = self._model_dir(digest)
            if (model_dir / "meta.json").exists():
                try:
                    model = self._load_dir(model_dir)
                except Exception as exc:  # noqa: BLE001 - any corruption
                    # self-healing: corruption is a quarantine + miss,
                    # never an exception surfaced to serving code
                    self._quarantine(model_dir, digest, exc)
                else:
                    self.stats.bump("disk_hits")
                    self._touch_atime(model_dir)
                    self._remember(digest, model)
                    return model
        self.stats.bump("misses")
        return None

    def put(self, model: FittedModel) -> str:
        digest = model.digest
        if self.root is not None:
            self._store_dir(model, self._model_dir(digest))
            spec_fault = faults.check_model_corrupt(digest)
            if spec_fault is not None:
                self._truncate_entry(digest, spec_fault.feature)
        self.stats.bump("stores")
        self._remember(digest, model)
        if self.root is not None and self.budget_mb is not None:
            self._gc(protect=digest)
        return digest

    def get_or_fit(
        self, spec: ModelSpec, *, config=None, report=None
    ) -> FittedModel:
        """Answer from either tier, fitting (and persisting) on a miss.

        With a disk root, the fit runs under a per-digest advisory
        lockfile: a second process asked for the same model waits for
        the first and loads its artifact instead of re-fitting.
        """
        model = self.get(spec)
        if model is not None:
            return model
        digest = spec.digest()
        if self.root is None:
            return self._fit_and_put(spec, config=config, report=report)
        while True:
            if self._try_lock(digest):
                try:
                    # double-check under the lock: the previous holder
                    # may have stored the artifact while we waited
                    model = self.get(spec)
                    if model is not None:
                        return model
                    return self._fit_and_put(spec, config=config, report=report)
                finally:
                    self._unlock(digest)
            self.stats.bump("lock_waits")
            time.sleep(self.lock_poll_s)
            model = self.get(spec)
            if model is not None:
                return model

    def _fit_and_put(self, spec, *, config=None, report=None) -> FittedModel:
        model = fit_model(spec, config=config, report=report)
        self.stats.bump("fits")
        self.put(model)
        return model

    def clear_memory(self) -> None:
        """Drop the memory tier (disk survives) — cold-start testing."""
        self._mem.clear()

    # -- self-healing ---------------------------------------------------

    def _quarantine(self, model_dir: Path, digest: str, exc: Exception) -> None:
        """Move a corrupt entry aside (atomically) and count it.

        The entry keeps its bytes under ``<root>/quarantine/<digest>-<n>``
        for post-mortems; the registry reports a miss, so the caller's
        ``get_or_fit`` refits transparently.
        """
        assert self.root is not None
        qdir = self.root / QUARANTINE_DIR
        qdir.mkdir(parents=True, exist_ok=True)
        n = 0
        while (qdir / f"{digest}-{n}").exists():
            n += 1
        try:
            os.replace(model_dir, qdir / f"{digest}-{n}")
        except OSError:  # pragma: no cover - cross-device fallback
            shutil.rmtree(model_dir, ignore_errors=True)
        self.stats.bump("quarantined")
        log.warning("quarantined corrupt model %s: %s", digest[:12], exc)

    def quarantined_digests(self) -> List[str]:
        """Digests with at least one quarantined copy (diagnostics)."""
        if self.root is None:
            return []
        found = {
            p.name.rsplit("-", 1)[0]
            for p in (self.root / QUARANTINE_DIR).glob("*")
            if p.is_dir()
        }
        return sorted(found)

    def _truncate_entry(self, digest: str, feature: str) -> None:
        """Apply one injected ``corrupt-model-entry`` fault in place."""
        name = FAULT_FILES.get(feature, "meta.json")
        path = self._model_dir(digest) / name
        try:
            data = path.read_bytes()
            path.write_bytes(data[: len(data) // 2])
        except OSError:  # pragma: no cover - entry raced away
            return
        log.warning(
            "injected corruption: truncated %s of model %s", name, digest[:12]
        )

    # -- fit locking ----------------------------------------------------

    def _lock_path(self, digest: str) -> Path:
        assert self.root is not None
        return self.root / LOCKS_DIR / f"{digest}.lock"

    def _try_lock(self, digest: str) -> bool:
        """O_EXCL advisory lock; False = somebody else is fitting.

        A lock older than ``lock_stale_s`` is presumed abandoned (the
        fitter crashed between acquire and release) and removed, so the
        next poll can take over.
        """
        path = self._lock_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                age = time.time() - path.stat().st_mtime
            except OSError:
                return False  # holder released between checks; re-poll
            if age > self.lock_stale_s:
                try:
                    os.remove(path)
                except OSError:  # pragma: no cover - lost the takeover race
                    pass
                else:
                    self.stats.bump("lock_takeovers")
                    log.warning(
                        "took over stale fit lock for %s (age %.1fs)",
                        digest[:12],
                        age,
                    )
            return False
        with os.fdopen(fd, "w") as fh:
            fh.write(f"{os.getpid()} {time.time():.6f}\n")
        return True

    def _unlock(self, digest: str) -> None:
        try:
            os.remove(self._lock_path(digest))
        except OSError:  # pragma: no cover - already taken over
            pass

    # -- disk GC --------------------------------------------------------

    def _entries(self) -> List[Path]:
        assert self.root is not None
        dirs = []
        for meta in self.root.glob("*/*/meta.json"):
            if meta.parent.parent.name == QUARANTINE_DIR:
                continue
            dirs.append(meta.parent)
        return dirs

    @staticmethod
    def _dir_bytes(model_dir: Path) -> int:
        try:
            return sum(
                p.stat().st_size for p in model_dir.iterdir() if p.is_file()
            )
        except OSError:  # pragma: no cover - concurrent delete
            return 0

    def disk_usage_bytes(self) -> int:
        """Total bytes of live (non-quarantined) disk entries."""
        if self.root is None:
            return 0
        return sum(self._dir_bytes(d) for d in self._entries())

    def _touch_atime(self, model_dir: Path) -> None:
        try:
            (model_dir / ATIME_FILE).write_text(f"{time.time():.6f}\n")
        except OSError:  # pragma: no cover - read-only registry is fine
            pass

    @staticmethod
    def _entry_atime(model_dir: Path) -> float:
        try:
            return float((model_dir / ATIME_FILE).read_text().strip())
        except (OSError, ValueError):
            try:
                return (model_dir / "meta.json").stat().st_mtime
            except OSError:  # pragma: no cover - concurrent delete
                return 0.0

    def _gc(self, protect: str) -> None:
        """Evict least-recently-used entries until under ``budget_mb``.

        Deletes are rename-then-remove: the entry vanishes from the
        namespace atomically, so a concurrent loader sees a miss, never
        a half-deleted directory.  The just-stored digest is protected —
        GC must not evict the entry whose store triggered it.
        """
        assert self.root is not None and self.budget_mb is not None
        budget = self.budget_mb * 1024 * 1024
        entries = [
            (self._entry_atime(d), self._dir_bytes(d), d)
            for d in self._entries()
        ]
        total = sum(nbytes for _, nbytes, _ in entries)
        for atime, nbytes, model_dir in sorted(entries, key=lambda e: e[0]):
            if total <= budget:
                break
            if model_dir.name == protect:
                continue
            doomed = model_dir.with_name(model_dir.name + ".gc")
            try:
                os.replace(model_dir, doomed)
            except OSError:  # pragma: no cover - concurrent eviction
                continue
            shutil.rmtree(doomed, ignore_errors=True)
            self._mem.pop(model_dir.name, None)
            total -= nbytes
            self.stats.bump("gc_evictions")
            log.warning(
                "registry GC evicted %s (%d bytes)", model_dir.name[:12], nbytes
            )
        REGISTRY.gauge("serve.registry.disk_mb").set(total / (1024 * 1024))

    # -- persistence ----------------------------------------------------

    def _store_dir(self, model: FittedModel, model_dir: Path) -> None:
        batch = model.report.batch
        # the shared tmp-sibling + os.replace commit discipline; a
        # concurrent writer winning the race discards our tmp tree
        # (same digest = same content)
        with atomic_dir(model_dir) as tmp:
            for stem, attr in _ARRAY_FIELDS:
                np.save(tmp / f"{stem}.npy", getattr(batch, attr))
            for f, params in enumerate(batch.params):
                np.save(tmp / f"params_{f}.npy", params)
            model.template.save_npz(tmp / "template.npz")
            files = {}
            for path in sorted(tmp.iterdir()):
                data = path.read_bytes()
                files[path.name] = {
                    "bytes": len(data),
                    "sha256": hashlib.sha256(data).hexdigest(),
                }
            meta = {
                "schema_version": SCHEMA_VERSION,
                "spec": model.spec.to_dict(),
                "core_counts": [int(c) for c in model.report.core_counts],
                "level_names": list(model.report.schema.level_names),
                "pair_keys": [[int(b), int(k)] for b, k in model.report.pair_keys],
                "form_names": [f.name for f in batch.forms],
                "files": files,
            }
            (tmp / "meta.json").write_text(
                json.dumps(meta, indent=2, sort_keys=True) + "\n"
            )
            (tmp / ATIME_FILE).write_text(f"{time.time():.6f}\n")

    def _load_dir(self, model_dir: Path) -> FittedModel:
        try:
            meta = json.loads((model_dir / "meta.json").read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ServeError(
                f"unreadable model metadata in {model_dir}: {exc}",
                stage="serve",
            )
        if meta.get("schema_version") != SCHEMA_VERSION:
            raise ServeError(
                f"unsupported model schema version "
                f"{meta.get('schema_version')!r} in {model_dir}",
                stage="serve",
            )
        # integrity gate: every manifest-listed artifact must exist at
        # its recorded size (truncation — the realistic partial-write /
        # injected corruption — always changes the byte count; content
        # hashes are kept in the manifest for forensics, not re-hashed
        # on the hot load path)
        for name, entry in meta.get("files", {}).items():
            path = model_dir / name
            if not path.exists():
                raise ServeError(
                    f"model artifact {name} missing from {model_dir}",
                    stage="serve",
                )
            actual = path.stat().st_size
            if actual != int(entry["bytes"]):
                raise ServeError(
                    f"model artifact {name} in {model_dir} is "
                    f"{actual} bytes, manifest says {entry['bytes']}",
                    stage="serve",
                )
        spec = ModelSpec.from_dict(meta["spec"])
        form_set = FORM_SETS[spec.forms]
        by_name = {f.name: f for f in form_set}
        try:
            forms = tuple(by_name[name] for name in meta["form_names"])
        except KeyError as exc:
            raise ServeError(
                f"model in {model_dir} references unknown form {exc}",
                stage="serve",
            )

        def _load(stem: str, *, mmap: bool = True) -> np.ndarray:
            return np.load(
                model_dir / f"{stem}.npy",
                mmap_mode="r" if mmap else None,
                allow_pickle=False,
            )

        arrays: Dict[str, np.ndarray] = {}
        for stem, attr in _ARRAY_FIELDS:
            # x / n_candidates are tiny and consulted per lookup — load
            # them eagerly; the big matrices stay memory-mapped
            arrays[attr] = _load(stem, mmap=stem in ("Y", "sse", "applicable", "order"))
        batch = BatchFitResult(
            x=np.asarray(arrays["x"], dtype=np.float64),
            Y=arrays["Y"],
            forms=forms,
            params=[_load(f"params_{f}") for f in range(len(forms))],
            sse=arrays["sse"],
            applicable=arrays["applicable"],
            order=arrays["order"],
            n_candidates=np.asarray(arrays["n_candidates"]),
        )
        template = TraceFile.load_npz(model_dir / "template.npz")
        schema = FeatureSchema(meta["level_names"])
        report = BatchedFitReport(
            core_counts=[int(c) for c in meta["core_counts"]],
            schema=schema,
            pair_keys=[(int(b), int(k)) for b, k in meta["pair_keys"]],
            batch=batch,
        )
        return FittedModel(spec=spec, report=report, template=template)
