"""Command-line interface: ``python -m repro <command>``.

Exposes the pipeline's workflows for shell-driven use:

=================  ====================================================
``list``           known apps and machines
``collect``        trace an app at one core count -> signature directory
``extrapolate``    small-count traces -> synthesized large-count trace
``predict``        trace + machine -> predicted runtime
``measure``        ground-truth runtime of an app on a machine
``table1``         the full Table I protocol for one app
``dag run``        the full sweep as a crash-consistent incremental DAG
``dag status``     what ``dag run`` would recompute right now, and why
``serve``          answer what-if queries from a fitted-model registry
=================  ====================================================

Examples::

    python -m repro collect --app uh3d --ranks 1024 --out sig1024
    python -m repro extrapolate --trace sig1024/rank*.npz --target 8192 \
        --out uh3d-8192.npz
    python -m repro extrapolate --trace sig1024/rank*.npz \
        --target 8192,16384,32768 --out uh3d-{target}.npz
    python -m repro predict --app uh3d --ranks 8192 \
        --trace uh3d-8192.npz
    python -m repro table1 --app uh3d --train 1024,2048,4096 --target 8192
    python -m repro dag run --app uh3d --train 1024,2048,4096 \
        --targets 8192,16384 --dag-root ./dagroot
    python -m repro dag status --app uh3d --train 1024,2048,4096 \
        --targets 8192,16384 --dag-root ./dagroot --explain
    python -m repro serve --app uh3d --train 1024,2048,4096 \
        --load-gen 2000
    echo '{"id": 1, "target": 8192}' | \
        python -m repro serve --app uh3d --train 1024,2048,4096

Robustness: ``--task-timeout``/``--max-retries`` switch collection to
the fault-tolerant executor, ``--checkpoint-dir``/``--resume``
checkpoint and resume multi-unit runs, and any recovery events are
summarized after the results.  Invalid inputs (unknown app or machine,
malformed count lists, unwritable output paths) exit with status 2 and
a one-line message — never a traceback.

Observability: every data command takes ``--log-level``/``--log-json``
(structured diagnostics on stderr; also via ``$REPRO_LOG``),
``--trace-out`` (Chrome-trace span timeline for chrome://tracing or
Perfetto), ``--metrics-out`` (counters and timer histograms as JSON),
and ``--manifest-out`` (a run manifest digesting every output artifact).
``--quiet`` silences everything except results and the artifacts
explicitly asked for.  Only result tables go to stdout; all diagnostics
go to stderr through the logger.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.apps.registry import APP_BUILDERS, get_app
from repro.cache import ENGINE_NAMES, configure_profile_cache
from repro.core.canonical import EXTENDED_FORMS, PAPER_FORMS
from repro.exec.resilience import ResilienceConfig, RunReport
from repro.exec.sigcache import SignatureCache
from repro.guard.config import GuardConfig, POLICIES
from repro.guard.degrade import DegradationReport
from repro.guard.engine import (
    check_prediction_inputs,
    check_signature,
    guarded_extrapolate_many,
)
from repro.guard.violations import GuardError, GuardViolation
from repro.instrument.collector import CollectorConfig
from repro.machine.systems import MACHINE_BUILDERS, get_machine, get_spec
from repro.obs import log as obs_log
from repro.obs import manifest as obs_manifest
from repro.obs import trace as obs_trace
from repro.obs.metrics import REGISTRY
from repro.pipeline.collect import CollectionSettings, collect_signatures
from repro.pipeline.dag import (
    SweepSpec,
    dag_status,
    default_code_version,
    run_dag,
)
from repro.pipeline.experiment import Table1Config, run_table1
from repro.pipeline.journal import RunJournal, default_journal_path
from repro.pipeline.predict import measure_runtime, predict_runtime
from repro.pipeline.report import table1_report
from repro.trace.tracefile import TraceFile
from repro.util.errors import ReproError, UsageError
from repro.util.tables import Table
from repro.util.validation import ValidationError

log = obs_log.get_logger("cli")


# ----------------------------------------------------------------------
# up-front input validation (exit 2, one line, no traceback)


def _resolve_app(name: str):
    try:
        return get_app(name)
    except KeyError:
        known = ", ".join(sorted(APP_BUILDERS))
        raise UsageError(
            f"unknown application {name!r}; known apps: {known} "
            "(see `repro list`)"
        )


def _check_machine(name: str) -> str:
    if name not in MACHINE_BUILDERS:
        known = ", ".join(sorted(MACHINE_BUILDERS))
        raise UsageError(
            f"unknown machine {name!r}; known machines: {known} "
            "(see `repro list`)"
        )
    return name


def _nearest_existing_dir(path: Path) -> Path:
    path = path.absolute()
    for candidate in [path, *path.parents]:
        if candidate.exists():
            return candidate
    return Path("/")  # pragma: no cover - "/" always exists


def _check_writable(flag: str, target: str, *, is_dir: bool) -> str:
    """Fail fast when ``target`` cannot possibly be written.

    For files the parent directory must be creatable/writable; for
    directories the nearest existing ancestor must be writable.
    """
    path = Path(target)
    probe = _nearest_existing_dir(path if is_dir else path.parent)
    if not probe.is_dir():
        raise UsageError(
            f"{flag} path {target!r} is not writable "
            f"({str(probe)!r} is a file, not a directory)"
        )
    if not os.access(probe, os.W_OK):
        raise UsageError(
            f"{flag} path {target!r} is not writable "
            f"(no write permission on {str(probe)!r})"
        )
    if not is_dir and path.exists() and path.is_dir():
        raise UsageError(f"{flag} path {target!r} is a directory, not a file")
    return target


def _parse_counts(text: str) -> List[int]:
    try:
        counts = [int(c) for c in text.split(",") if c.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad core-count list {text!r} (expected comma-separated "
            "integers, e.g. 1024,2048,4096)"
        )
    if not counts:
        raise argparse.ArgumentTypeError("empty core-count list")
    if any(c <= 0 for c in counts):
        raise argparse.ArgumentTypeError(
            f"core counts must be positive, got {counts}"
        )
    return counts


def _load_trace(path: str) -> TraceFile:
    p = Path(path)
    if not p.exists():
        raise UsageError(f"trace file {path!r} does not exist")
    if p.suffix == ".jsonl":
        return TraceFile.load_jsonl(p)
    return TraceFile.load_npz(p)


# ----------------------------------------------------------------------
# shared flag groups and their interpretation


def _add_exec_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool size for collection fan-out "
             "(default: one per CPU; 0 = serial)",
    )
    p.add_argument(
        "--cache-engine", choices=ENGINE_NAMES, default="exact",
        help="how block hit rates are obtained: 'exact' replays every "
             "address through the hierarchy simulator; 'reuse' evaluates "
             "analytical reuse-distance profiles (much faster, ~1e-2 "
             "accuracy, cross-checked against exact by a guard gate)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="always collect fresh, bypassing the signature cache",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="signature cache directory (default: $REPRO_SIGNATURE_CACHE "
             "or ~/.cache/repro/signatures)",
    )
    p.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock budget for a pooled collection task; "
             "a hung task is killed with its pool and re-attempted",
    )
    p.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="additional attempts per task after a crash, timeout, or "
             "transient error (enables the fault-tolerant executor; "
             "default 2 when --task-timeout is given)",
    )
    p.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="journal completed collection units here so an interrupted "
             "run can be resumed (default with --resume: <cache>/journal)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="skip units journaled by a previous run of this command "
             "(requires the signature cache that run wrote)",
    )


def _build_cache(args: argparse.Namespace) -> Optional[SignatureCache]:
    if args.no_cache:
        return None
    if args.cache_dir is not None:
        _check_writable("--cache-dir", args.cache_dir, is_dir=True)
    return SignatureCache(args.cache_dir)


def _build_collector(
    args: argparse.Namespace, cache: Optional[SignatureCache]
) -> CollectorConfig:
    """Collector knobs from flags.  With the analytical engine and a
    signature cache, reuse profiles persist next to the signatures so
    later geometries (and later runs) re-evaluate instead of re-profile."""
    engine = getattr(args, "cache_engine", "exact")
    if engine == "reuse" and cache is not None:
        configure_profile_cache(Path(cache.root) / "profiles")
    return CollectorConfig(engine=engine)


def _build_resilience(args: argparse.Namespace) -> Optional[ResilienceConfig]:
    if args.task_timeout is None and args.max_retries is None:
        return None
    if args.task_timeout is not None and args.task_timeout <= 0:
        raise UsageError(
            f"--task-timeout must be positive, got {args.task_timeout}"
        )
    if args.max_retries is not None and args.max_retries < 0:
        raise UsageError(
            f"--max-retries must be >= 0, got {args.max_retries}"
        )
    kwargs = {"task_timeout_s": args.task_timeout}
    if args.max_retries is not None:
        kwargs["max_retries"] = args.max_retries
    return ResilienceConfig(**kwargs)


def _build_journal(
    args: argparse.Namespace,
    cache: Optional[SignatureCache],
    run_name: str,
) -> Optional[RunJournal]:
    checkpoint_dir = args.checkpoint_dir
    if checkpoint_dir is None:
        if not args.resume:
            return None
        if cache is None:
            raise UsageError(
                "--resume needs a checkpoint journal: pass --checkpoint-dir "
                "(and do not combine --resume with --no-cache)"
            )
        checkpoint_dir = cache.root / "journal"
    else:
        _check_writable("--checkpoint-dir", str(checkpoint_dir), is_dir=True)
    if args.resume and cache is None:
        raise UsageError(
            "--resume replays completed units from the signature cache; "
            "it cannot be combined with --no-cache"
        )
    return RunJournal(
        default_journal_path(checkpoint_dir, run_name), resume=args.resume
    )


def _add_guard_flags(
    p: argparse.ArgumentParser, *, trust_help: str, trust_default=0.2
) -> None:
    g = p.add_argument_group("guardrails")
    g.add_argument(
        "--guard", choices=POLICIES, default="degrade",
        help="stage-boundary guardrails: 'strict' refuses on the first "
             "violation with an element-addressed message, 'degrade' "
             "(default) repairs what it can (hold nearest-collected "
             "values, substitute the largest collected trace) and "
             "refuses only as a last resort, 'off' disables all checks",
    )
    g.add_argument(
        "--trust-threshold", type=float, default=trust_default,
        metavar="FRAC", help=trust_help,
    )
    g.add_argument(
        "--degradation-out", default=None, metavar="FILE",
        help="write the degradation report (violations, gate flags, "
             "repairs, refusals) here as JSON",
    )


def _build_guard(args: argparse.Namespace) -> Optional[GuardConfig]:
    """Interpret the guard flags; ``None`` when the policy is off.

    Threshold validation runs through :mod:`repro.util.validation`, so a
    bad ``--trust-threshold`` exits 2 with one line like every other
    invalid input.
    """
    if getattr(args, "degradation_out", None):
        _check_writable("--degradation-out", args.degradation_out, is_dir=False)
    policy = getattr(args, "guard", "off")
    if policy == "off":
        return None
    threshold = getattr(args, "trust_threshold", None)
    if threshold is None:
        return GuardConfig(policy=policy)
    return GuardConfig(policy=policy, trust_threshold=threshold)


def _new_degradation(guard: Optional[GuardConfig]) -> DegradationReport:
    if guard is None:
        return DegradationReport(policy="off")
    return DegradationReport.for_config(guard)


def _write_degradation(
    args: argparse.Namespace, degradation: DegradationReport
) -> None:
    path = getattr(args, "degradation_out", None)
    if not path:
        return
    Path(path).write_text(
        json.dumps(degradation.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    log.info("wrote degradation report: %s", path)


def _log_guard(degradation: DegradationReport) -> None:
    if not degradation.clean:
        log.warning("%s", degradation.summary())


QUALITY_SIDECAR_SUFFIX = ".quality.json"


def _write_quality_sidecar(
    out_path: str, degradation: DegradationReport
) -> Path:
    """Write the extrapolation-quality sidecar next to a synthesized
    trace.  Trust data lives here, not in the trace itself, so the trace
    bytes stay bit-identical with guards on or off."""
    doc = {
        "schema_version": 1,
        "policy": degradation.policy,
        "clean": degradation.clean,
        "trust_threshold": degradation.trust_threshold,
        "trust_fraction": degradation.trust_fraction,
        "crossval_median_error": degradation.crossval_median_error,
        "flagged_elements": degradation.n_crossval_flagged,
        "degraded_elements": [
            d.to_dict() for d in degradation.degraded_elements
        ],
        "degraded_traces": [d.to_dict() for d in degradation.degraded_traces],
    }
    path = Path(str(out_path) + QUALITY_SIDECAR_SUFFIX)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def _load_quality_sidecar(trace_path: str) -> Optional[dict]:
    path = Path(str(trace_path) + QUALITY_SIDECAR_SUFFIX)
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):  # unreadable sidecar = absent
        return None


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    g = p.add_argument_group("observability")
    g.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"),
        default=None,
        help="diagnostic verbosity on stderr (default: warning, "
             "or $REPRO_LOG)",
    )
    g.add_argument(
        "--log-json", action="store_true",
        help="emit diagnostics as JSON lines instead of console text",
    )
    g.add_argument(
        "--quiet", action="store_true",
        help="results only: silence every diagnostic below error",
    )
    g.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write a Chrome-trace span timeline here "
             "(open in chrome://tracing or Perfetto)",
    )
    g.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write counters and timer histograms here as JSON",
    )
    g.add_argument(
        "--manifest-out", default=None, metavar="FILE",
        help="write a run manifest (config, git SHA, output digests) here",
    )


def _check_obs_paths(args: argparse.Namespace) -> None:
    for flag, attr in (
        ("--trace-out", "trace_out"),
        ("--metrics-out", "metrics_out"),
        ("--manifest-out", "manifest_out"),
    ):
        value = getattr(args, attr, None)
        if value:
            _check_writable(flag, value, is_dir=False)


def _manifest_config(args: argparse.Namespace) -> dict:
    return {k: v for k, v in vars(args).items() if k != "fn"}


def _write_manifest(
    args: argparse.Namespace,
    *,
    command: str,
    outputs: dict,
    app: Optional[str] = None,
    machine: Optional[str] = None,
    cache: Optional[SignatureCache] = None,
    report: Optional[RunReport] = None,
    journal: Optional[RunJournal] = None,
    guard: Optional[DegradationReport] = None,
    serve=None,
    dag=None,
    path: Optional[str] = None,
) -> None:
    """Write the run manifest when a path was requested (or defaulted)."""
    path = path or getattr(args, "manifest_out", None)
    if not path:
        return
    profile_cache = None
    if getattr(args, "cache_engine", None) == "reuse":
        from repro.cache.reuse import profile_cache as current_profile_cache

        profile_cache = current_profile_cache()
    doc = obs_manifest.build_manifest(
        command=command,
        config=_manifest_config(args),
        outputs=outputs,
        app=app,
        machine=machine,
        cache=cache,
        report=report,
        journal=journal,
        guard=guard,
        tracer=obs_trace.current() if obs_trace.is_enabled() else None,
        profile_cache=profile_cache,
        serve=serve,
        dag=dag,
    )
    obs_manifest.write_manifest(path, doc)
    log.info("wrote run manifest: %s", path)


def _log_cache_stats(cache: Optional[SignatureCache]) -> None:
    if cache is not None:
        log.info("signature cache [%s]: %s", cache.root, cache.stats)


def _log_run_health(
    report: Optional[RunReport], journal: Optional[RunJournal]
) -> None:
    if journal is not None:
        log.info("checkpoint journal [%s]: %s", journal.path, journal.stats)
    if report is not None and not report.clean:
        log.warning("resilience: %s", report.summary())
        for event in report.events:
            log.warning("  - %s", event)


# ----------------------------------------------------------------------
# commands


def cmd_list(args: argparse.Namespace) -> int:
    print("applications:")
    for name in sorted(APP_BUILDERS):
        print(f"  {name}")
    print("machines:")
    for name in sorted(MACHINE_BUILDERS):
        print(f"  {name}")
    return 0


def cmd_collect(args: argparse.Namespace) -> int:
    app = _resolve_app(args.app)
    machine = get_machine(_check_machine(args.machine))
    _check_writable("--out", args.out, is_dir=True)
    guard = _build_guard(args)
    cache = _build_cache(args)
    journal = _build_journal(
        args, cache, f"collect-{args.app}-{args.machine}-{args.ranks}"
    )
    report = RunReport()
    degradation = _new_degradation(guard)
    settings = CollectionSettings(
        collector=_build_collector(args, cache),
        workers=args.workers,
        resilience=_build_resilience(args),
    )
    try:
        signature = collect_signatures(
            app, [args.ranks], machine.hierarchy, settings,
            cache=cache, journal=journal, report=report,
        )[0]
        check_signature(signature, config=guard, report=degradation)
    finally:
        _write_degradation(args, degradation)
    signature.save_dir(args.out)
    _log_cache_stats(cache)
    _log_run_health(report, journal)
    _log_guard(degradation)
    outputs = {
        p.name: p
        for p in sorted(Path(args.out).iterdir())
        if p.is_file() and p.name != obs_manifest.MANIFEST_NAME
    }
    _write_manifest(
        args,
        command="collect",
        outputs=outputs,
        app=args.app,
        machine=args.machine,
        cache=cache,
        report=report,
        journal=journal,
        guard=degradation,
        path=getattr(args, "manifest_out", None)
        or str(Path(args.out) / obs_manifest.MANIFEST_NAME),
    )
    trace = signature.slowest_trace()
    print(
        f"collected {args.app} @ {args.ranks} ranks against {args.machine}: "
        f"slowest rank {trace.rank}, {trace.n_blocks} blocks -> {args.out}"
    )
    return 0


def _out_path(template: str, target: int, n_targets: int) -> str:
    """Resolve --out for one target of a sweep.

    With multiple targets the template must contain a ``{target}``
    placeholder so each synthesized trace gets its own file.
    """
    if "{target}" in template:
        return template.replace("{target}", str(target))
    if n_targets > 1:
        raise SystemExit(
            "--out must contain a {target} placeholder when --target "
            "lists multiple core counts"
        )
    return template


def cmd_extrapolate(args: argparse.Namespace) -> int:
    _check_writable("--out", args.out, is_dir=False)
    guard = _build_guard(args)
    traces = [_load_trace(p) for p in args.trace]
    forms = EXTENDED_FORMS if args.extended_forms else PAPER_FORMS
    degradation = _new_degradation(guard)
    try:
        sweep, degradation = guarded_extrapolate_many(
            traces, args.target, forms=forms, engine=args.engine,
            config=guard, report=degradation,
        )
    finally:
        _write_degradation(args, degradation)
    hist = dict(sweep.report.form_histogram())
    train = [t.n_ranks for t in sorted(traces, key=lambda t: t.n_ranks)]
    outputs = {}
    for result in sweep.results:
        out = _out_path(args.out, result.target_n_ranks, len(sweep.targets))
        result.trace.save_npz(out)
        outputs[f"trace_{result.target_n_ranks}"] = Path(out)
        if guard is not None:
            sidecar = _write_quality_sidecar(out, degradation)
            outputs[f"quality_{result.target_n_ranks}"] = sidecar
        print(
            f"extrapolated {traces[0].app} {train} -> "
            f"{result.target_n_ranks} ranks ({hist}) -> {out}"
        )
    if guard is not None and degradation.trust_fraction is not None:
        print(
            f"guard: cross-validation trust fraction "
            f"{degradation.trust_fraction:.3f} at threshold "
            f"{degradation.trust_threshold:g} "
            f"({degradation.n_crossval_flagged} elements flagged)"
        )
    _log_guard(degradation)
    _write_manifest(
        args, command="extrapolate", outputs=outputs, app=traces[0].app,
        guard=degradation,
    )
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    app = _resolve_app(args.app)
    machine = get_machine(_check_machine(args.machine))
    guard = _build_guard(args)
    trace = _load_trace(args.trace)
    degradation = _new_degradation(guard)
    quality = _load_quality_sidecar(args.trace) if guard is not None else None
    try:
        check_prediction_inputs(
            trace, machine, config=guard, report=degradation
        )
        if quality is not None and quality.get("trust_fraction") is not None:
            trust = float(quality["trust_fraction"])
            floor = getattr(args, "trust_threshold", None)
            if floor is not None and trust < floor:
                message = (
                    f"extrapolation trust fraction {trust:.3f} below the "
                    f"--trust-threshold floor {floor:g} "
                    f"(from {args.trace}{QUALITY_SIDECAR_SUFFIX})"
                )
                if guard is not None and guard.strict:
                    degradation.refuse(message)
                    raise GuardError([
                        GuardViolation(
                            artifact="extrapolated-trace",
                            boundary="trace->predict",
                            check="trust-floor",
                            message=message,
                            severity="error",
                        )
                    ])
                log.warning("guard: %s", message)
    finally:
        _write_degradation(args, degradation)
    prediction = predict_runtime(app, args.ranks, trace, machine)
    kind = "extrapolated" if trace.extrapolated else "collected"
    line = (
        f"{args.app} @ {args.ranks} ranks on {args.machine} "
        f"({kind} trace): predicted runtime {prediction.runtime_s:.6f} s"
    )
    print(line)
    if quality is not None and quality.get("trust_fraction") is not None:
        print(
            f"guard: extrapolation trust fraction "
            f"{float(quality['trust_fraction']):.3f} "
            f"({int(quality.get('flagged_elements', 0))} elements flagged "
            f"in training cross-validation)"
        )
    _log_guard(degradation)
    _write_manifest(
        args,
        command="predict",
        outputs={"prediction.txt": (line + "\n").encode("utf-8")},
        app=args.app,
        machine=args.machine,
        guard=degradation,
    )
    return 0


def cmd_measure(args: argparse.Namespace) -> int:
    app = _resolve_app(args.app)
    result = measure_runtime(app, args.ranks, get_spec(_check_machine(args.machine)))
    line = (
        f"{args.app} @ {args.ranks} ranks on {args.machine}: "
        f"measured runtime {result.runtime_s:.6f} s"
    )
    print(line)
    _write_manifest(
        args,
        command="measure",
        outputs={"measurement.txt": (line + "\n").encode("utf-8")},
        app=args.app,
        machine=args.machine,
    )
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    app = _resolve_app(args.app)
    _check_machine(args.machine)
    guard = _build_guard(args)
    cache = _build_cache(args)
    train = ",".join(str(c) for c in args.train)
    journal = _build_journal(
        args, cache,
        f"table1-{args.app}-{args.machine}-{train}-{args.target}",
    )
    config = Table1Config(
        machine=args.machine,
        collection=CollectionSettings(
            collector=_build_collector(args, cache),
            workers=args.workers,
            resilience=_build_resilience(args),
        ),
        cache=cache,
        journal=journal,
        guard=guard,
    )
    degradation = _new_degradation(guard)
    try:
        result = run_table1(
            app, args.train, args.target, config, degradation=degradation
        )
    finally:
        _write_degradation(args, degradation)
    rendered = (
        table1_report(result.rows)
        + f"\nmeasured runtime: {result.measured_runtime_s:.6f} s\n"
    )
    print(rendered, end="")
    # only a run the guards touched gets a stdout line — a clean run's
    # stdout stays byte-identical to the rendered table artifact
    if not result.degradation.clean:
        print(f"guard: {result.degradation.summary()}")
    _log_cache_stats(cache)
    _log_run_health(result.run_report, journal)
    _log_guard(result.degradation)
    _write_manifest(
        args,
        command="table1",
        outputs={"table1.txt": rendered.encode("utf-8")},
        app=args.app,
        machine=args.machine,
        cache=cache,
        report=result.run_report,
        journal=journal,
        guard=result.degradation,
    )
    return 0


def _dag_root(args: argparse.Namespace) -> Path:
    root = (
        args.dag_root
        or os.environ.get("REPRO_DAG_ROOT")
        or os.path.expanduser("~/.cache/repro/dag")
    )
    _check_writable("--dag-root", str(root), is_dir=True)
    return Path(root)


def _build_sweep_spec(args: argparse.Namespace) -> SweepSpec:
    _resolve_app(args.app)
    _check_machine(args.machine)
    return SweepSpec(
        app=args.app,
        machine=args.machine,
        train_counts=tuple(args.train),
        targets=tuple(args.targets),
        cache_engine=args.cache_engine,
        forms="extended" if args.extended_forms else "paper",
        code_version=args.code_version or default_code_version(),
        table1=not args.no_table1,
        rate_trust_factor=args.rate_trust_factor,
        accesses_per_probe=args.accesses_per_probe,
        sample_accesses=args.sample_accesses,
        max_sample_accesses=args.max_sample_accesses,
    )


def cmd_dag_run(args: argparse.Namespace) -> int:
    if args.fresh and args.resume:
        raise UsageError("--fresh and --resume are mutually exclusive")
    spec = _build_sweep_spec(args)
    root = _dag_root(args)
    report = RunReport()
    result = run_dag(
        spec,
        root,
        fresh=args.fresh,
        workers=args.workers,
        resilience=_build_resilience(args),
        report=report,
        lock_stale_s=args.lock_stale,
        lock_poll_s=args.lock_poll,
        lock_wait_s=args.lock_wait,
    )
    outputs = {}
    rendered = ""
    for node, artifact in (
        ("report:table1", "table1.txt"),
        ("report:whatif", "whatif.txt"),
    ):
        if result.statuses.get(node) in ("executed", "clean"):
            text = result.artifact_json(node)["text"] + "\n"
            rendered += text
            outputs[artifact] = text.encode("utf-8")
    print(rendered, end="")
    log.info("dag [%s]: %s", root, result.stats)
    _log_run_health(report, None)
    for name, message in sorted(result.errors.items()):
        log.error("dag node failed: %s: %s", name, message)
    for name, status in sorted(result.statuses.items()):
        if status == "poisoned":
            log.warning("dag node poisoned (upstream failure): %s", name)
    _write_manifest(
        args,
        command="dag-run",
        outputs=outputs,
        app=args.app,
        machine=args.machine,
        report=report,
        dag=result.to_dict(),
    )
    return 0 if result.ok else 1


def cmd_dag_status(args: argparse.Namespace) -> int:
    spec = _build_sweep_spec(args)
    root = _dag_root(args)
    statuses = dag_status(spec, root)
    if args.json:
        print(json.dumps([s.to_dict() for s in statuses], indent=2))
    else:
        columns = ["Node", "Rule", "State"]
        if args.explain:
            columns.append("Reason")
        table = Table(
            columns=columns,
            title=f"DAG status: {spec.app}@{spec.machine} [{root}]",
        )
        for s in statuses:
            row = [s.name, s.rule, s.state]
            if args.explain:
                row.append(s.reason)
            table.add_row(*row)
        print(table.render())
    return 0 if all(s.state == "clean" for s in statuses) else 1


def _serve_feature_summary(answer, schema) -> dict:
    """Compact JSONL view of one answer's feature matrix.

    ``features_sha256`` digests the raw float64 bytes, so two serving
    runs (batched or not) can be compared for bit-identity from the
    protocol alone.
    """
    import hashlib

    import numpy as np

    values = np.ascontiguousarray(answer.values, dtype=np.float64)
    hr = values[:, schema.hit_rate_slice]
    return {
        "n_pairs": int(values.shape[0]),
        "features_sha256": hashlib.sha256(values.tobytes()).hexdigest(),
        "mean_hit_rates": {
            level: round(float(hr[:, j].mean()), 6) if hr.size else 0.0
            for j, level in enumerate(schema.level_names)
        },
    }


async def _serve_answer_one(engine, req_id, query, schema) -> None:
    """Resolve one JSONL request and print its response line."""
    try:
        answer = await engine.query(query)
    except ReproError as exc:
        doc = {
            "id": req_id,
            "ok": False,
            "error": str(exc),
            "error_type": type(exc).__name__,
        }
    else:
        doc = {
            "id": req_id,
            "ok": True,
            "target": answer.target,
            "kind": answer.kind,
            "batch_size": answer.batch_size,
            "latency_ms": round(answer.latency_s * 1e3, 3),
            **_serve_feature_summary(answer, schema),
        }
        if answer.runtime_s is not None:
            doc["runtime_s"] = answer.runtime_s
    print(json.dumps(doc), flush=True)


def _install_drain_handlers(loop, callback) -> list:
    """Route SIGTERM/SIGINT into ``callback`` on the loop (best effort).

    Returns the signals actually hooked, so the caller can unhook them.
    Platforms without loop signal support (Windows) fall back to the
    default KeyboardInterrupt behavior.
    """
    import signal

    hooked = []
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, callback)
        except (NotImplementedError, RuntimeError, ValueError):
            continue
        hooked.append(sig)
    return hooked


async def _serve_stdin_loop(
    engine, schema, *, deadline_ms=None, telemetry=None
) -> bool:
    """JSONL request/response over stdin/stdout until EOF or a signal.

    Returns True when the exit was a graceful drain (SIGTERM/SIGINT):
    admission stops, open batches deadline-flush, in-flight queries are
    answered — never a mid-batch teardown.
    """
    import asyncio
    import threading

    from repro.serve import Query

    await engine.start()
    if telemetry is not None:
        await telemetry.start()
    loop = asyncio.get_running_loop()
    #: reader → loop handoff; None is the drain sentinel, "" is EOF
    lines: asyncio.Queue = asyncio.Queue()

    def _reader() -> None:
        # a dedicated daemon thread, NOT the default executor: a
        # readline blocked on a quiet stdin would otherwise be joined
        # by asyncio.run's shutdown and wedge the drain forever
        while True:
            line = sys.stdin.readline()
            try:
                loop.call_soon_threadsafe(lines.put_nowait, line)
            except RuntimeError:  # loop already closed
                return
            if not line:
                return

    threading.Thread(target=_reader, name="serve-stdin", daemon=True).start()
    hooked = _install_drain_handlers(loop, lambda: lines.put_nowait(None))
    pending: set = set()
    drained = False
    try:
        while True:
            line = await lines.get()
            if line is None:
                drained = True
                break
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            req_id = None
            try:
                req = json.loads(line)
                req_id = req.get("id") if isinstance(req, dict) else None
                deadline = req.get("deadline_ms", deadline_ms)
                query = Query(
                    target=int(req["target"]),
                    tenant=str(req.get("tenant", "default")),
                    kind=str(req.get("kind", "features")),
                    deadline_ms=(
                        float(deadline) if deadline is not None else None
                    ),
                )
            except (json.JSONDecodeError, KeyError, TypeError, ValueError,
                    ReproError) as exc:
                print(
                    json.dumps({"id": req_id, "ok": False, "error": str(exc)}),
                    flush=True,
                )
                continue
            task = asyncio.ensure_future(
                _serve_answer_one(engine, req_id, query, schema)
            )
            pending.add(task)
            task.add_done_callback(pending.discard)
    finally:
        for sig in hooked:
            try:
                loop.remove_signal_handler(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
    # yield once so every accepted request has entered the engine —
    # a request read before EOF/drain must not see a closed door
    await asyncio.sleep(0)
    engine.stop_admission()
    if pending:
        await asyncio.gather(*pending, return_exceptions=True)
    await engine.stop()
    if telemetry is not None:
        # after the drain, so the final record closes the books exactly
        await telemetry.stop()
    return drained


async def _serve_load_main(engine, load_spec, digest, telemetry=None):
    import asyncio

    from repro.serve import run_load, synthetic_queries

    await engine.start()
    if telemetry is not None:
        await telemetry.start()
    loop = asyncio.get_running_loop()
    # a signal mid-load closes admission: the unsubmitted remainder is
    # counted as rejected and the run exits 0 with its partial report
    hooked = _install_drain_handlers(loop, engine.stop_admission)
    queries = synthetic_queries(load_spec, model=digest)
    try:
        return await run_load(engine, queries, spec=load_spec)
    finally:
        for sig in hooked:
            try:
                loop.remove_signal_handler(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        await engine.stop()
        if telemetry is not None:
            await telemetry.stop()


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import (
        LoadSpec,
        ModelRegistry,
        ModelSpec,
        QueryEngine,
        ServeConfig,
    )

    app = _resolve_app(args.app)
    _check_machine(args.machine)
    registry_dir = (
        args.registry
        or os.environ.get("REPRO_MODEL_REGISTRY")
        or str(Path.home() / ".cache" / "repro" / "models")
    )
    _check_writable("--registry", registry_dir, is_dir=True)
    if not args.batch_window > 0:
        raise UsageError(
            f"--batch-window must be positive, got {args.batch_window}"
        )
    if args.batch_max < 1:
        raise UsageError(f"--batch-max must be >= 1, got {args.batch_max}")
    if args.queue_depth < 1:
        raise UsageError(
            f"--queue-depth must be >= 1, got {args.queue_depth}"
        )
    if args.mem_models < 1:
        raise UsageError(
            f"--mem-models must be >= 1, got {args.mem_models}"
        )
    if args.load_gen is not None and args.load_gen < 1:
        raise UsageError(
            f"--load-gen must be >= 1, got {args.load_gen}"
        )
    if args.deadline_ms is not None and not args.deadline_ms > 0:
        raise UsageError(
            f"--deadline-ms must be positive, got {args.deadline_ms}"
        )
    if args.breaker_threshold < 1:
        raise UsageError(
            f"--breaker-threshold must be >= 1, got {args.breaker_threshold}"
        )
    if not args.breaker_open_ms > 0:
        raise UsageError(
            f"--breaker-open-ms must be positive, got {args.breaker_open_ms}"
        )
    if args.registry_budget_mb is not None and not args.registry_budget_mb > 0:
        raise UsageError(
            f"--registry-budget-mb must be positive, "
            f"got {args.registry_budget_mb}"
        )
    if args.runtime_workers < 0:
        raise UsageError(
            f"--runtime-workers must be >= 0, got {args.runtime_workers}"
        )
    if args.load_waves < 1:
        raise UsageError(
            f"--load-waves must be >= 1, got {args.load_waves}"
        )
    if args.load_wave_interval_ms < 0:
        raise UsageError(
            f"--load-wave-interval-ms must be >= 0, "
            f"got {args.load_wave_interval_ms}"
        )
    if args.summary_out:
        _check_writable("--summary-out", args.summary_out, is_dir=False)
    if not args.telemetry_interval > 0:
        raise UsageError(
            f"--telemetry-interval must be positive, "
            f"got {args.telemetry_interval}"
        )
    if args.telemetry_out:
        _check_writable("--telemetry-out", args.telemetry_out, is_dir=False)
    if args.prom_out:
        _check_writable("--prom-out", args.prom_out, is_dir=False)

    cache = _build_cache(args)
    fit_config = Table1Config(
        machine=args.machine,
        forms=EXTENDED_FORMS if args.extended_forms else PAPER_FORMS,
        collection=CollectionSettings(
            collector=_build_collector(args, cache),
            workers=args.workers,
            resilience=_build_resilience(args),
        ),
        cache=cache,
    )
    registry = ModelRegistry(
        registry_dir,
        mem_entries=args.mem_models,
        budget_mb=args.registry_budget_mb,
    )
    spec = ModelSpec(
        app=args.app,
        machine=args.machine,
        train_counts=tuple(args.train),
        cache_engine=args.cache_engine,
        forms="extended" if args.extended_forms else "paper",
    )
    preloaded = spec in registry
    model = registry.get_or_fit(spec, config=fit_config)
    log.info(
        "serving model %s: %s (%s)",
        model.digest[:12],
        spec.describe(),
        "registry hit" if preloaded else "freshly fitted",
    )
    engine = QueryEngine(
        registry,
        default_model=model.digest,
        config=ServeConfig(
            max_batch=args.batch_max,
            window_s=args.batch_window / 1e3,
            queue_depth=args.queue_depth,
            admission=args.admission,
            hardened=not args.no_harden,
            breaker_threshold=args.breaker_threshold,
            breaker_open_s=args.breaker_open_ms / 1e3,
            runtime_workers=args.runtime_workers,
        ),
    )
    telemetry = None
    if args.telemetry_out or args.prom_out:
        from repro.obs.telemetry import TelemetryConfig, TelemetrySampler

        telemetry = TelemetrySampler(
            engine,
            TelemetryConfig(
                interval_s=args.telemetry_interval / 1e3,
                out=args.telemetry_out,
                prom_out=args.prom_out,
            ),
        )

    if args.load_gen is not None:
        if args.load_targets is not None:
            targets = tuple(args.load_targets)
        else:
            base = max(spec.train_counts)
            targets = tuple(base * m for m in (2, 4, 8, 16, 32))
        load_spec = LoadSpec(
            n_queries=args.load_gen,
            targets=targets,
            tenants=tuple(f"tenant{i}" for i in range(args.load_tenants)),
            kind=args.load_kind,
            name=args.load_name,
            deadline_ms=args.deadline_ms,
            waves=args.load_waves,
            wave_interval_s=args.load_wave_interval_ms / 1e3,
        )
        report, _answers = asyncio.run(
            _serve_load_main(engine, load_spec, model.digest, telemetry)
        )
        load_report = report.to_dict()
        r = load_report
        print(
            f"serve-load: n={r['n_queries']} qps={r['qps']} "
            f"p50_ms={round(r['p50_ms'], 3)} p95_ms={round(r['p95_ms'], 3)} "
            f"mean_batch={r['mean_batch']} rejected={r['rejected']} "
            f"errors={r['errors']}"
        )
        drained = engine.draining
    else:
        load_report = None
        drained = asyncio.run(
            _serve_stdin_loop(
                engine,
                model.template.schema,
                deadline_ms=args.deadline_ms,
                telemetry=telemetry,
            )
        )

    summary = engine.summary()
    if load_report is not None:
        summary["load"] = load_report
    if drained:
        s = engine.stats
        print(
            f"serve-drain: answered={s.answered} failed={s.failed} "
            f"rejected={s.rejected} {engine.report.summary()}",
            file=sys.stderr,
        )
    log.info("serve summary: %s", summary)
    _log_cache_stats(cache)
    summary_bytes = (
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    ).encode("utf-8")
    if args.summary_out:
        Path(args.summary_out).write_bytes(summary_bytes)
        log.info("wrote serve summary: %s", args.summary_out)
    outputs = {"serve_summary.json": summary_bytes}
    if telemetry is not None:
        log.info(
            "telemetry: %d flight-recorder records%s%s",
            telemetry.records_written,
            f" -> {args.telemetry_out}" if args.telemetry_out else "",
            f", prometheus -> {args.prom_out}" if args.prom_out else "",
        )
        if args.telemetry_out:
            outputs["telemetry.jsonl"] = Path(args.telemetry_out).read_bytes()
        if args.prom_out:
            outputs["metrics.prom"] = Path(args.prom_out).read_bytes()
    _write_manifest(
        args,
        command="serve",
        outputs=outputs,
        app=app.name,
        machine=args.machine,
        cache=cache,
        serve=engine.report,
    )
    return 0


def _stats_doc(records: list, top: int) -> dict:
    """Digest a flight-recorder record list into the `repro stats` doc."""
    from repro.obs.telemetry import StreamingHistogram, sum_counters

    totals = sum_counters(records)
    tenants: dict = {}
    tenant_fields = ("queries", "answered", "failed", "rejected", "waits")
    for name, value in totals.items():
        parts = name.split(".")
        if name.startswith("serve.tenant.") and len(parts) == 4:
            _, _, fld, tenant = parts
            if fld in tenant_fields:
                row = tenants.setdefault(
                    tenant, {f: 0 for f in tenant_fields}
                )
                row[fld] = value
    timeline = []
    lags = []
    for record in records:
        counters = record.get("counters", {})
        interval = record.get("interval_s", 0.0)
        answered = counters.get("serve.answered", 0)
        entry = {
            "seq": record.get("seq", 0),
            "t_s": record.get("t_s", 0.0),
            "interval_s": interval,
            "answered": answered,
            "qps": round(answered / interval, 1) if interval > 0 else 0.0,
            "final": bool(record.get("final")),
        }
        latency = record.get("hists", {}).get("serve.latency_s")
        if latency:
            hist = StreamingHistogram.from_dict(latency)
            entry["p50_ms"] = round(hist.quantile(0.50) * 1e3, 3)
            entry["p95_ms"] = round(hist.quantile(0.95) * 1e3, 3)
        if "loop_lag_s" in record:
            entry["lag_ms"] = round(record["loop_lag_s"] * 1e3, 3)
            lags.append(record["loop_lag_s"])
        timeline.append(entry)
    slow = sorted(
        (
            entry
            for record in records
            for entry in record.get("slow_queries", [])
        ),
        key=lambda e: -e.get("latency_ms", 0.0),
    )[: max(top, 0)]
    transitions = [
        {"seq": record.get("seq", 0), "t_s": record.get("t_s", 0.0),
         "transition": tag}
        for record in records
        for tag in record.get("transitions", [])
    ]
    lookups = sum(
        totals.get(f"serve.registry.{f}", 0)
        for f in ("mem_hits", "disk_hits", "misses")
    )
    hits = sum(
        totals.get(f"serve.registry.{f}", 0)
        for f in ("mem_hits", "disk_hits")
    )
    batches = totals.get("serve.batch.batches", 0)
    doc = {
        "records": len(records),
        "complete": bool(records and records[-1].get("final")),
        "duration_s": records[-1].get("t_s", 0.0) if records else 0.0,
        "totals": {
            "queries": totals.get("serve.queries", 0),
            "answered": totals.get("serve.answered", 0),
            "failed": totals.get("serve.failed", 0),
            "rejected": totals.get("serve.rejected", 0),
            "batches": batches,
            "mean_batch": round(
                totals.get("serve.batch.queries", 0) / batches, 2
            ) if batches else 0.0,
            "registry_hit_rate": round(hits / lookups, 3) if lookups else 0.0,
        },
        "counters": {k: totals[k] for k in sorted(totals)},
        "tenants": {t: tenants[t] for t in sorted(tenants)},
        "timeline": timeline,
        "transitions": transitions,
        "breakers": records[-1].get("breakers", {}) if records else {},
        "slow_queries": slow,
    }
    if lags:
        doc["loop_lag"] = {
            "mean_ms": round(sum(lags) / len(lags) * 1e3, 3),
            "max_ms": round(max(lags) * 1e3, 3),
        }
    return doc


def _render_stats(doc: dict) -> str:
    """Human rendering of one :func:`_stats_doc` (the golden-tested text)."""
    from repro.util.tables import Table

    out = []
    state = "complete" if doc["complete"] else "mid-run (no final record)"
    totals = doc["totals"]
    out.append(
        f"flight recorder: {doc['records']} records over "
        f"{doc['duration_s']:.3f}s ({state})"
    )
    out.append(
        f"totals: queries={totals['queries']} "
        f"answered={totals['answered']} failed={totals['failed']} "
        f"rejected={totals['rejected']} batches={totals['batches']} "
        f"mean_batch={totals['mean_batch']} "
        f"registry_hit_rate={totals['registry_hit_rate']}"
    )
    if "loop_lag" in doc:
        lag = doc["loop_lag"]
        out.append(
            f"loop lag: mean={lag['mean_ms']}ms max={lag['max_ms']}ms"
        )
    timeline = Table(
        ["seq", "t_s", "dt_s", "answered", "qps", "p50_ms", "p95_ms"],
        title="rate timeline",
    )
    for entry in doc["timeline"]:
        timeline.add_row(
            entry["seq"],
            entry["t_s"],
            entry["interval_s"],
            entry["answered"],
            entry["qps"],
            entry.get("p50_ms", "-"),
            entry.get("p95_ms", "-"),
        )
    out.append("")
    out.append(timeline.render())
    if doc["tenants"]:
        tenants = Table(
            ["tenant", "queries", "answered", "failed", "rejected", "waits"],
            title="tenants",
        )
        for tenant, row in doc["tenants"].items():
            tenants.add_row(
                tenant, row["queries"], row["answered"], row["failed"],
                row["rejected"], row["waits"],
            )
        out.append("")
        out.append(tenants.render())
    if doc["transitions"] or doc["breakers"]:
        breakers = Table(
            ["seq", "t_s", "transition"], title="breaker transitions"
        )
        for entry in doc["transitions"]:
            breakers.add_row(
                entry["seq"], entry["t_s"], entry["transition"]
            )
        out.append("")
        out.append(breakers.render())
        if doc["breakers"]:
            states = " ".join(
                f"{model}:{state}"
                for model, state in sorted(doc["breakers"].items())
            )
            out.append(f"breaker states: {states}")
    if doc["slow_queries"]:
        slow = Table(
            ["latency_ms", "tenant", "target", "kind", "model"],
            title="slowest queries",
        )
        for entry in doc["slow_queries"]:
            slow.add_row(
                entry.get("latency_ms", 0.0),
                entry.get("tenant", "-"),
                entry.get("target", 0),
                entry.get("kind", "-"),
                entry.get("model", "-"),
            )
        out.append("")
        out.append(slow.render())
    return "\n".join(out)


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs.telemetry import read_flight_records

    path = Path(args.telemetry)
    if not path.exists():
        raise UsageError(f"--telemetry file not found: {path}")
    if args.top < 0:
        raise UsageError(f"--top must be >= 0, got {args.top}")
    records = read_flight_records(path)
    if not records:
        print(f"stats: no complete records in {path} (empty or torn file)")
        return 0
    doc = _stats_doc(records, args.top)
    if args.as_json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(_render_stats(doc))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Trace extrapolation for large-scale computation behavior",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list known apps and machines").set_defaults(
        fn=cmd_list
    )

    p = sub.add_parser("collect", help="trace an app at one core count")
    p.add_argument("--app", required=True, help="application name (see `repro list`)")
    p.add_argument("--ranks", required=True, type=int)
    p.add_argument("--machine", default="blue_waters_p1",
                   help="machine name (see `repro list`)")
    p.add_argument("--out", required=True, help="signature output directory")
    _add_exec_flags(p)
    _add_guard_flags(
        p,
        trust_help="per-element cross-validation error threshold used by "
                   "the fit quality gates downstream (default 0.2)",
    )
    _add_obs_flags(p)
    p.set_defaults(fn=cmd_collect)

    p = sub.add_parser("extrapolate", help="synthesize a large-count trace")
    p.add_argument("--trace", required=True, nargs="+",
                   help="training trace files (.npz or .jsonl)")
    p.add_argument("--target", required=True, type=_parse_counts,
                   help="target core count, or a comma-separated sweep "
                        "(fits once, evaluates every target)")
    p.add_argument("--extended-forms", action="store_true",
                   help="include the paper's SVI extension forms")
    p.add_argument("--engine", choices=("batched", "reference"),
                   default="batched",
                   help="fitting engine: vectorized batched (default) or "
                        "the per-element scalar reference")
    p.add_argument("--out", required=True,
                   help="output .npz path; with a multi-target sweep it "
                        "must contain a {target} placeholder")
    _add_guard_flags(
        p,
        trust_help="per-element relative-error threshold for the "
                   "leave-one-out cross-validation gate; the fraction of "
                   "elements under it is reported as the trust fraction "
                   "(default 0.2)",
    )
    _add_obs_flags(p)
    p.set_defaults(fn=cmd_extrapolate)

    p = sub.add_parser("predict", help="predict runtime from a trace")
    p.add_argument("--app", required=True, help="application name (see `repro list`)")
    p.add_argument("--ranks", required=True, type=int)
    p.add_argument("--machine", default="blue_waters_p1",
                   help="machine name (see `repro list`)")
    p.add_argument("--trace", required=True)
    _add_guard_flags(
        p,
        trust_help="minimum extrapolation trust fraction (from the "
                   "trace's .quality.json sidecar) to accept: below it, "
                   "--guard strict refuses and --guard degrade warns "
                   "(default: no floor)",
        trust_default=None,
    )
    _add_obs_flags(p)
    p.set_defaults(fn=cmd_predict)

    p = sub.add_parser("measure", help="ground-truth runtime of an app")
    p.add_argument("--app", required=True, help="application name (see `repro list`)")
    p.add_argument("--ranks", required=True, type=int)
    p.add_argument("--machine", default="blue_waters_p1",
                   help="machine name (see `repro list`)")
    _add_obs_flags(p)
    p.set_defaults(fn=cmd_measure)

    p = sub.add_parser("table1", help="run the Table I protocol")
    p.add_argument("--app", required=True, help="application name (see `repro list`)")
    p.add_argument("--train", required=True, type=_parse_counts,
                   help="comma-separated training core counts")
    p.add_argument("--target", required=True, type=int)
    p.add_argument("--machine", default="blue_waters_p1",
                   help="machine name (see `repro list`)")
    _add_exec_flags(p)
    _add_guard_flags(
        p,
        trust_help="per-element relative-error threshold for the "
                   "leave-one-out cross-validation gate (default 0.2)",
    )
    _add_obs_flags(p)
    p.set_defaults(fn=cmd_table1)

    p = sub.add_parser(
        "dag",
        help="crash-consistent incremental pipeline DAG",
        description="The full sweep (collect, fit, extrapolate, "
                    "convolve, predict, measure, report) as a "
                    "content-addressed DAG: every node is keyed by a "
                    "digest over its inputs, config, and code version; "
                    "completions are journaled durably; re-running "
                    "recomputes only dirty nodes, bit-identically.",
    )
    dag_sub = p.add_subparsers(dest="dag_command", required=True)

    def _add_dag_spec_flags(dp: argparse.ArgumentParser) -> None:
        dp.add_argument("--app", required=True,
                        help="application name (see `repro list`)")
        dp.add_argument("--machine", default="blue_waters_p1",
                        help="machine name (see `repro list`)")
        dp.add_argument("--train", required=True, type=_parse_counts,
                        help="comma-separated training core counts")
        dp.add_argument("--targets", required=True, type=_parse_counts,
                        help="comma-separated target core counts")
        dp.add_argument("--cache-engine", choices=ENGINE_NAMES,
                        default="exact",
                        help="hit-rate engine for collection (part of "
                             "node identity)")
        dp.add_argument("--extended-forms", action="store_true",
                        help="include the paper's SVI extension forms")
        dp.add_argument("--no-table1", action="store_true",
                        help="skip the Table I validation arm (collected-"
                             "trace prediction + ground truth at the "
                             "first target)")
        dp.add_argument("--rate-trust-factor", type=float, default=2.0,
                        help="extrapolation rate clamp (default 2.0)")
        dp.add_argument("--accesses-per-probe", type=int, default=100_000,
                        help="machine-profile probe budget")
        dp.add_argument("--sample-accesses", type=int, default=200_000,
                        help="per-block sampled accesses per pass")
        dp.add_argument("--max-sample-accesses", type=int,
                        default=3_000_000,
                        help="total sampled-access cap per trace")
        dp.add_argument("--code-version", default=None, metavar="TOKEN",
                        help="code-version token in node keys (default: "
                             "current git SHA)")
        dp.add_argument("--dag-root", default=None, metavar="DIR",
                        help="artifact/state directory (default: "
                             "$REPRO_DAG_ROOT or ~/.cache/repro/dag)")

    dp = dag_sub.add_parser(
        "run", help="execute the sweep DAG, recomputing only dirty nodes"
    )
    _add_dag_spec_flags(dp)
    dp.add_argument("--fresh", action="store_true",
                    help="ignore all prior node state and recompute "
                         "everything (truncates the state store)")
    dp.add_argument("--resume", action="store_true",
                    help="reuse committed nodes from interrupted or "
                         "previous runs (the default; spelled out for "
                         "symmetry with the other commands)")
    dp.add_argument("--workers", type=int, default=None, metavar="N",
                    help="process-pool size for node fan-out "
                         "(default: one per CPU; 0 = serial)")
    dp.add_argument("--task-timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="per-attempt wall-clock budget per node")
    dp.add_argument("--max-retries", type=int, default=None, metavar="N",
                    help="additional attempts per node after a crash, "
                         "timeout, or transient error")
    dp.add_argument("--lock-stale", type=float, default=30.0,
                    metavar="SECONDS",
                    help="node locks older than this are presumed "
                         "abandoned and taken over (default 30)")
    dp.add_argument("--lock-poll", type=float, default=0.05,
                    metavar="SECONDS",
                    help="poll interval while another process holds a "
                         "node lock (default 0.05)")
    dp.add_argument("--lock-wait", type=float, default=600.0,
                    metavar="SECONDS",
                    help="give up waiting for another process's node "
                         "lock after this long (default 600)")
    _add_obs_flags(dp)
    dp.set_defaults(fn=cmd_dag_run)

    dp = dag_sub.add_parser(
        "status", help="show per-node dirtiness without running anything"
    )
    _add_dag_spec_flags(dp)
    dp.add_argument("--explain", action="store_true",
                    help="add the reason each node is clean or dirty")
    dp.add_argument("--json", action="store_true",
                    help="machine-readable status document on stdout")
    _add_obs_flags(dp)
    dp.set_defaults(fn=cmd_dag_status)

    p = sub.add_parser(
        "serve",
        help="answer what-if queries from a fitted-model registry",
        description="Fit (or load from the registry) one model per "
                    "(app, machine, training counts, cache engine, form "
                    "set, code version), then answer queries: JSONL "
                    "requests on stdin by default, or a replayable "
                    "synthetic load with --load-gen.  Concurrent "
                    "compatible queries are micro-batched into single "
                    "vectorized sweep evaluations.",
    )
    p.add_argument("--app", required=True, help="application name (see `repro list`)")
    p.add_argument("--train", required=True, type=_parse_counts,
                   help="comma-separated training core counts")
    p.add_argument("--machine", default="blue_waters_p1",
                   help="machine name (see `repro list`)")
    p.add_argument("--registry", default=None, metavar="DIR",
                   help="fitted-model registry directory (default: "
                        "$REPRO_MODEL_REGISTRY or ~/.cache/repro/models)")
    p.add_argument("--mem-models", type=int, default=8, metavar="N",
                   help="in-memory model LRU size in front of the "
                        "registry's disk tier (default 8)")
    p.add_argument("--extended-forms", action="store_true",
                   help="fit with the paper's SVI extension forms")
    p.add_argument("--batch-window", type=float, default=2.0, metavar="MS",
                   help="micro-batch coalescing window in milliseconds: "
                        "a batch flushes when full or this old "
                        "(default 2.0)")
    p.add_argument("--batch-max", type=int, default=64, metavar="N",
                   help="maximum queries per micro-batch (default 64)")
    p.add_argument("--queue-depth", type=int, default=256, metavar="N",
                   help="per-tenant admission queue bound (default 256)")
    p.add_argument("--admission", choices=("wait", "reject"),
                   default="wait",
                   help="policy when a tenant's queue is full: 'wait' "
                        "applies backpressure, 'reject' fails the query "
                        "fast (default wait)")
    p.add_argument("--load-gen", type=int, default=None, metavar="N",
                   help="instead of serving stdin, fire N synthetic "
                        "queries (replayable keyed-RNG trace) and print "
                        "qps / latency percentiles")
    p.add_argument("--load-targets", type=_parse_counts, default=None,
                   help="target core counts the synthetic load draws "
                        "from (default: training max x 2,4,8,16,32)")
    p.add_argument("--load-tenants", type=int, default=4, metavar="N",
                   help="synthetic tenants issuing the load (default 4)")
    p.add_argument("--load-kind", choices=("features", "runtime"),
                   default="features",
                   help="query kind the synthetic load issues "
                        "(default features)")
    p.add_argument("--load-name", default="cli", metavar="NAME",
                   help="keyed-RNG stream name: same name, same load "
                        "(default 'cli')")
    p.add_argument("--load-waves", type=int, default=1, metavar="N",
                   help="split the synthetic load into N sequential "
                        "arrival waves (default 1: all at once)")
    p.add_argument("--load-wave-interval-ms", type=float, default=0.0,
                   metavar="MS",
                   help="quiet gap between load waves in milliseconds "
                        "(default 0); chaos runs use this so opened "
                        "circuit breakers can half-open and close")
    p.add_argument("--deadline-ms", type=float, default=None, metavar="MS",
                   help="default per-query deadline: queries not "
                        "answered in time fail fast with "
                        "DeadlineExceededError instead of waiting "
                        "(JSONL requests may override per query; "
                        "default: no deadline)")
    p.add_argument("--breaker-threshold", type=int, default=5, metavar="K",
                   help="consecutive batch failures that open a "
                        "model's circuit breaker (default 5)")
    p.add_argument("--breaker-open-ms", type=float, default=250.0,
                   metavar="MS",
                   help="base open window before a breaker's half-open "
                        "probe, jittered +0..25%% (default 250)")
    p.add_argument("--registry-budget-mb", type=float, default=None,
                   metavar="MB",
                   help="disk budget for the model registry: after "
                        "each store, least-recently-used entries are "
                        "evicted until under budget (default: unbounded)")
    p.add_argument("--runtime-workers", type=int, default=0, metavar="N",
                   help="worker processes for offloaded runtime replay "
                        "(default 0: serial in the offload thread, "
                        "which still never blocks the event loop)")
    p.add_argument("--no-harden", action="store_true",
                   help="disable the serving resilience layer "
                        "(circuit breakers, worker offload) — the "
                        "overhead benchmark's baseline")
    p.add_argument("--summary-out", default=None, metavar="FILE",
                   help="also write serve_summary.json (engine, "
                        "batcher, registry, resilience tallies) to "
                        "this path")
    p.add_argument("--telemetry-out", default=None, metavar="FILE",
                   help="append one JSON flight-recorder record per "
                        "telemetry interval (per-interval counter and "
                        "latency-histogram deltas, queue depths, "
                        "breaker states, loop lag, slow queries); "
                        "read it back with `repro stats`")
    p.add_argument("--prom-out", default=None, metavar="FILE",
                   help="rewrite this file atomically each telemetry "
                        "interval with Prometheus text exposition of "
                        "the live metrics registry")
    p.add_argument("--telemetry-interval", type=float, default=1000.0,
                   metavar="MS",
                   help="sampling interval for --telemetry-out / "
                        "--prom-out in milliseconds (default 1000)")
    _add_exec_flags(p)
    _add_obs_flags(p)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "stats",
        help="summarize a serve flight-recorder file",
        description="Read a --telemetry-out flight recorder (complete, "
                    "or mid-run with a torn final line) and print "
                    "end-to-end totals, a per-interval rate timeline, "
                    "per-tenant and breaker summaries, and the slowest "
                    "queries.",
    )
    p.add_argument("--telemetry", required=True, metavar="FILE",
                   help="flight-recorder JSONL written by "
                        "`repro serve --telemetry-out`")
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="slow-query log entries to show (default 10)")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit the full stats document as JSON instead "
                        "of tables")
    p.set_defaults(fn=cmd_stats)

    return parser


def _export_obs_artifacts(args: argparse.Namespace) -> None:
    """Flush requested trace/metrics artifacts (best effort, post-run)."""
    trace_out = getattr(args, "trace_out", None)
    if trace_out and obs_trace.is_enabled():
        obs_trace.current().export_chrome(trace_out)
        log.info("wrote chrome trace: %s", trace_out)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        REGISTRY.export(metrics_out)
        log.info("wrote metrics: %s", metrics_out)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    obs_log.configure(
        level=getattr(args, "log_level", None),
        json_mode=True if getattr(args, "log_json", False) else None,
        quiet=getattr(args, "quiet", False),
    )
    try:
        _check_obs_paths(args)
    except (ReproError, ValidationError) as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    # per-invocation observability state: a fresh registry and tracer,
    # so repeated in-process main() calls (tests) never accumulate
    REGISTRY.reset()
    want_trace = bool(
        getattr(args, "trace_out", None)
        or os.environ.get(obs_trace.ENV_TRACE)
    )
    obs_trace.disable()
    if want_trace:
        obs_trace.enable()
    try:
        with obs_trace.span(f"cli.{args.command}"):
            return args.fn(args)
    except (ReproError, ValidationError) as exc:
        # structured pipeline/usage/validation error: one actionable
        # line, status 2 (GuardError is a ReproError, so strict-policy
        # refusals land here too)
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("repro: interrupted", file=sys.stderr)
        return 130
    finally:
        _export_obs_artifacts(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
