"""Command-line interface: ``python -m repro <command>``.

Exposes the pipeline's workflows for shell-driven use:

=================  ====================================================
``list``           known apps and machines
``collect``        trace an app at one core count -> signature directory
``extrapolate``    small-count traces -> synthesized large-count trace
``predict``        trace + machine -> predicted runtime
``measure``        ground-truth runtime of an app on a machine
``table1``         the full Table I protocol for one app
=================  ====================================================

Examples::

    python -m repro collect --app uh3d --ranks 1024 --out sig1024
    python -m repro extrapolate --trace sig1024/rank*.npz --target 8192 \
        --out uh3d-8192.npz
    python -m repro extrapolate --trace sig1024/rank*.npz \
        --target 8192,16384,32768 --out uh3d-{target}.npz
    python -m repro predict --app uh3d --ranks 8192 \
        --trace uh3d-8192.npz
    python -m repro table1 --app uh3d --train 1024,2048,4096 --target 8192
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.apps.registry import APP_BUILDERS, get_app
from repro.core.canonical import EXTENDED_FORMS, PAPER_FORMS
from repro.core.extrapolate import extrapolate_trace_many
from repro.exec.sigcache import SignatureCache
from repro.machine.systems import MACHINE_BUILDERS, get_machine, get_spec
from repro.pipeline.collect import CollectionSettings, collect_signature
from repro.pipeline.experiment import Table1Config, run_table1
from repro.pipeline.predict import measure_runtime, predict_runtime
from repro.pipeline.report import table1_report
from repro.trace.tracefile import TraceFile


def _add_exec_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool size for collection fan-out "
             "(default: one per CPU; 0 = serial)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="always collect fresh, bypassing the signature cache",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="signature cache directory (default: $REPRO_SIGNATURE_CACHE "
             "or ~/.cache/repro/signatures)",
    )


def _build_cache(args: argparse.Namespace) -> Optional[SignatureCache]:
    if args.no_cache:
        return None
    return SignatureCache(args.cache_dir)


def _print_cache_stats(cache: Optional[SignatureCache]) -> None:
    if cache is not None:
        print(f"signature cache [{cache.root}]: {cache.stats}")


def _parse_counts(text: str) -> List[int]:
    try:
        counts = [int(c) for c in text.split(",") if c.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad core-count list: {text!r}")
    if not counts:
        raise argparse.ArgumentTypeError("empty core-count list")
    return counts


def _load_trace(path: str) -> TraceFile:
    p = Path(path)
    if p.suffix == ".jsonl":
        return TraceFile.load_jsonl(p)
    return TraceFile.load_npz(p)


def cmd_list(args: argparse.Namespace) -> int:
    print("applications:")
    for name in sorted(APP_BUILDERS):
        print(f"  {name}")
    print("machines:")
    for name in sorted(MACHINE_BUILDERS):
        print(f"  {name}")
    return 0


def cmd_collect(args: argparse.Namespace) -> int:
    app = get_app(args.app)
    machine = get_machine(args.machine)
    cache = _build_cache(args)
    settings = CollectionSettings(workers=args.workers)
    signature = collect_signature(
        app, args.ranks, machine.hierarchy, settings, cache=cache
    )
    signature.save_dir(args.out)
    _print_cache_stats(cache)
    trace = signature.slowest_trace()
    print(
        f"collected {args.app} @ {args.ranks} ranks against {args.machine}: "
        f"slowest rank {trace.rank}, {trace.n_blocks} blocks -> {args.out}"
    )
    return 0


def _out_path(template: str, target: int, n_targets: int) -> str:
    """Resolve --out for one target of a sweep.

    With multiple targets the template must contain a ``{target}``
    placeholder so each synthesized trace gets its own file.
    """
    if "{target}" in template:
        return template.replace("{target}", str(target))
    if n_targets > 1:
        raise SystemExit(
            "--out must contain a {target} placeholder when --target "
            "lists multiple core counts"
        )
    return template


def cmd_extrapolate(args: argparse.Namespace) -> int:
    traces = [_load_trace(p) for p in args.trace]
    forms = EXTENDED_FORMS if args.extended_forms else PAPER_FORMS
    sweep = extrapolate_trace_many(
        traces, args.target, forms=forms, engine=args.engine
    )
    hist = dict(sweep.report.form_histogram())
    train = [t.n_ranks for t in sorted(traces, key=lambda t: t.n_ranks)]
    for result in sweep.results:
        out = _out_path(args.out, result.target_n_ranks, len(sweep.targets))
        result.trace.save_npz(out)
        print(
            f"extrapolated {traces[0].app} {train} -> "
            f"{result.target_n_ranks} ranks ({hist}) -> {out}"
        )
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    app = get_app(args.app)
    machine = get_machine(args.machine)
    trace = _load_trace(args.trace)
    prediction = predict_runtime(app, args.ranks, trace, machine)
    kind = "extrapolated" if trace.extrapolated else "collected"
    print(
        f"{args.app} @ {args.ranks} ranks on {args.machine} "
        f"({kind} trace): predicted runtime {prediction.runtime_s:.6f} s"
    )
    return 0


def cmd_measure(args: argparse.Namespace) -> int:
    app = get_app(args.app)
    result = measure_runtime(app, args.ranks, get_spec(args.machine))
    print(
        f"{args.app} @ {args.ranks} ranks on {args.machine}: "
        f"measured runtime {result.runtime_s:.6f} s"
    )
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    app = get_app(args.app)
    cache = _build_cache(args)
    config = Table1Config(
        collection=CollectionSettings(workers=args.workers),
        cache=cache,
    )
    result = run_table1(app, args.train, args.target, config)
    print(table1_report(result.rows))
    print(f"measured runtime: {result.measured_runtime_s:.6f} s")
    _print_cache_stats(cache)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Trace extrapolation for large-scale computation behavior",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list known apps and machines").set_defaults(
        fn=cmd_list
    )

    p = sub.add_parser("collect", help="trace an app at one core count")
    p.add_argument("--app", required=True, choices=sorted(APP_BUILDERS))
    p.add_argument("--ranks", required=True, type=int)
    p.add_argument("--machine", default="blue_waters_p1",
                   choices=sorted(MACHINE_BUILDERS))
    p.add_argument("--out", required=True, help="signature output directory")
    _add_exec_flags(p)
    p.set_defaults(fn=cmd_collect)

    p = sub.add_parser("extrapolate", help="synthesize a large-count trace")
    p.add_argument("--trace", required=True, nargs="+",
                   help="training trace files (.npz or .jsonl)")
    p.add_argument("--target", required=True, type=_parse_counts,
                   help="target core count, or a comma-separated sweep "
                        "(fits once, evaluates every target)")
    p.add_argument("--extended-forms", action="store_true",
                   help="include the paper's SVI extension forms")
    p.add_argument("--engine", choices=("batched", "reference"),
                   default="batched",
                   help="fitting engine: vectorized batched (default) or "
                        "the per-element scalar reference")
    p.add_argument("--out", required=True,
                   help="output .npz path; with a multi-target sweep it "
                        "must contain a {target} placeholder")
    p.set_defaults(fn=cmd_extrapolate)

    p = sub.add_parser("predict", help="predict runtime from a trace")
    p.add_argument("--app", required=True, choices=sorted(APP_BUILDERS))
    p.add_argument("--ranks", required=True, type=int)
    p.add_argument("--machine", default="blue_waters_p1",
                   choices=sorted(MACHINE_BUILDERS))
    p.add_argument("--trace", required=True)
    p.set_defaults(fn=cmd_predict)

    p = sub.add_parser("measure", help="ground-truth runtime of an app")
    p.add_argument("--app", required=True, choices=sorted(APP_BUILDERS))
    p.add_argument("--ranks", required=True, type=int)
    p.add_argument("--machine", default="blue_waters_p1",
                   choices=sorted(MACHINE_BUILDERS))
    p.set_defaults(fn=cmd_measure)

    p = sub.add_parser("table1", help="run the Table I protocol")
    p.add_argument("--app", required=True, choices=sorted(APP_BUILDERS))
    p.add_argument("--train", required=True, type=_parse_counts,
                   help="comma-separated training core counts")
    p.add_argument("--target", required=True, type=int)
    _add_exec_flags(p)
    p.set_defaults(fn=cmd_table1)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
