"""Application-signature data model.

An *application signature* (paper §III-A) is a set of per-MPI-task trace
files; each trace file holds, for every basic block the task executed,
per-instruction *feature vectors*: floating-point work and its
composition, memory-op counts and sizes, simulated cache hit rates on the
target system, and working-set size.  These are the objects the trace
extrapolation (:mod:`repro.core`) fits and synthesizes.
"""

from repro.trace.features import FeatureSchema
from repro.trace.records import BasicBlockRecord, InstructionRecord, SourceLocation
from repro.trace.tracefile import TraceFile
from repro.trace.signature import ApplicationSignature
from repro.trace.diff import TraceDiff, compare_traces

__all__ = [
    "FeatureSchema",
    "InstructionRecord",
    "BasicBlockRecord",
    "SourceLocation",
    "TraceFile",
    "ApplicationSignature",
    "TraceDiff",
    "compare_traces",
]
