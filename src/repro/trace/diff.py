"""Element-wise comparison of two trace files.

Used to evaluate extrapolation fidelity directly (paper §IV: "every
extrapolated element within all of the influential instructions had an
absolute relative error of less than 20%") — independent of the
end-to-end runtime-prediction comparison of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.trace.tracefile import TraceFile

#: Relative denominators below this are treated as "both sides zero-ish";
#: the element contributes zero error if the absolute difference is also
#: below it.
_ZERO_EPS = 1e-12


@dataclass
class ElementError:
    """Error of one feature element of one instruction."""

    block_id: int
    instr_id: int
    field: str
    expected: float
    actual: float

    @property
    def abs_rel_error(self) -> float:
        denom = abs(self.expected)
        if denom < _ZERO_EPS:
            return 0.0 if abs(self.actual) < _ZERO_EPS else np.inf
        return abs(self.actual - self.expected) / denom


@dataclass
class TraceDiff:
    """All element errors between a reference and a candidate trace."""

    reference: TraceFile
    candidate: TraceFile
    errors: List[ElementError] = field(default_factory=list)

    def max_abs_rel_error(self) -> float:
        if not self.errors:
            return 0.0
        return max(e.abs_rel_error for e in self.errors)

    def median_abs_rel_error(self) -> float:
        if not self.errors:
            return 0.0
        return float(np.median([e.abs_rel_error for e in self.errors]))

    def errors_by_field(self) -> Dict[str, List[float]]:
        out: Dict[str, List[float]] = {}
        for e in self.errors:
            out.setdefault(e.field, []).append(e.abs_rel_error)
        return out

    def worst(self, n: int = 10) -> List[ElementError]:
        return sorted(self.errors, key=lambda e: -e.abs_rel_error)[:n]


def compare_traces(
    reference: TraceFile,
    candidate: TraceFile,
    *,
    block_ids: Optional[List[int]] = None,
    fields: Optional[List[str]] = None,
) -> TraceDiff:
    """Compute per-element absolute relative errors.

    Parameters
    ----------
    reference, candidate:
        Traces with identical schemas and block/instruction structure
        (extrapolation preserves structure, so collected-vs-extrapolated
        comparisons always satisfy this).
    block_ids:
        Restrict to these blocks (e.g. the influential ones).
    fields:
        Restrict to these feature fields.
    """
    if reference.schema.fields != candidate.schema.fields:
        raise ValueError("traces have different schemas")
    schema = reference.schema
    wanted_fields = fields or list(schema.fields)
    field_idx = [(f, schema.index(f)) for f in wanted_fields]
    diff = TraceDiff(reference=reference, candidate=candidate)
    blocks = block_ids if block_ids is not None else sorted(reference.blocks)
    for bid in blocks:
        if bid not in candidate.blocks:
            raise KeyError(f"candidate trace missing block {bid}")
        ref_block = reference.blocks[bid]
        cand_block = candidate.blocks[bid]
        if ref_block.n_instructions != cand_block.n_instructions:
            raise ValueError(
                f"block {bid}: instruction count mismatch "
                f"({ref_block.n_instructions} vs {cand_block.n_instructions})"
            )
        for ref_ins, cand_ins in zip(ref_block.instructions, cand_block.instructions):
            for fname, j in field_idx:
                diff.errors.append(
                    ElementError(
                        block_id=bid,
                        instr_id=ref_ins.instr_id,
                        field=fname,
                        expected=float(ref_ins.features[j]),
                        actual=float(cand_ins.features[j]),
                    )
                )
    return diff
