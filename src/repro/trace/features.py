"""Feature-vector schema.

Each instruction's behavior at one core count is a flat float vector; the
schema names its elements and provides indexed access.  The hit-rate
block's width depends on the target hierarchy, so schemas are built per
target system.

Elements (matching paper §III-B's feature-vector inventory, plus the
ILP/data-dependency features §I lists):

==================  =====================================================
``exec_count``      dynamic executions of the instruction
``fp_add`` ...      floating-point op counts by class (amount *and*
                    composition of fp work)
``mem_ops``         dynamic memory references
``loads/stores``    split of ``mem_ops``
``ref_bytes``       average reference size, bytes
``working_set_b``   bytes the instruction touches (unique lines x line)
``hit_rate_<L>``    cumulative hit rate (fraction in [0,1]) per target
                    cache level
``ilp``             independent-instruction parallelism estimate
``dep_chain``       average dependence-chain length feeding the op
==================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.machine.timing import FP_OP_KINDS

#: Fixed (hierarchy-independent) leading fields, in storage order.
BASE_FIELDS: Tuple[str, ...] = (
    "exec_count",
    "fp_add",
    "fp_mul",
    "fp_fma",
    "fp_div",
    "mem_ops",
    "loads",
    "stores",
    "ref_bytes",
    "working_set_bytes",
    "ilp",
    "dep_chain",
)

#: Fields that are *counts* and must stay non-negative integers-ish under
#: extrapolation (clamped at >= 0).
COUNT_FIELDS: Tuple[str, ...] = (
    "exec_count",
    "fp_add",
    "fp_mul",
    "fp_fma",
    "fp_div",
    "mem_ops",
    "loads",
    "stores",
)

#: Fields bounded to [0, 1] under extrapolation.
RATE_PREFIX = "hit_rate_"


@dataclass(frozen=True)
class FeatureSchema:
    """Names and positions of feature-vector elements for one target.

    Parameters
    ----------
    level_names:
        Target-hierarchy cache level names, innermost first; generates
        one ``hit_rate_<name>`` field per level.
    """

    level_names: Tuple[str, ...]

    def __init__(self, level_names: Sequence[str]):
        object.__setattr__(self, "level_names", tuple(level_names))
        if not self.level_names:
            raise ValueError("schema needs at least one cache level")

    @property
    def fields(self) -> Tuple[str, ...]:
        return BASE_FIELDS + tuple(
            f"{RATE_PREFIX}{name}" for name in self.level_names
        )

    @property
    def n_features(self) -> int:
        return len(self.fields)

    def index(self, field: str) -> int:
        """Position of a field in the vector; KeyError if unknown."""
        try:
            return self.fields.index(field)
        except ValueError:
            raise KeyError(
                f"unknown feature {field!r}; known: {', '.join(self.fields)}"
            ) from None

    @property
    def hit_rate_slice(self) -> slice:
        """Slice selecting the hit-rate block."""
        start = len(BASE_FIELDS)
        return slice(start, start + len(self.level_names))

    def is_count_field(self, field: str) -> bool:
        return field in COUNT_FIELDS

    def is_rate_field(self, field: str) -> bool:
        return field.startswith(RATE_PREFIX)

    def bounds(self, field: str) -> Tuple[float, float]:
        """Physical bounds for a field's values (used to clamp fits)."""
        if self.is_rate_field(field):
            return (0.0, 1.0)
        if field in ("ilp", "dep_chain", "ref_bytes"):
            return (0.0, np.inf)
        return (0.0, np.inf)

    def empty_vector(self) -> np.ndarray:
        return np.zeros(self.n_features, dtype=np.float64)

    def vector_from_dict(self, values: Dict[str, float]) -> np.ndarray:
        """Build a vector from a field->value mapping (missing = 0)."""
        vec = self.empty_vector()
        for field, value in values.items():
            vec[self.index(field)] = value
        return vec

    def dict_from_vector(self, vector: np.ndarray) -> Dict[str, float]:
        if vector.shape[-1] != self.n_features:
            raise ValueError(
                f"vector has {vector.shape[-1]} elements, schema expects "
                f"{self.n_features}"
            )
        return dict(zip(self.fields, (float(v) for v in vector)))

    def fp_counts(self, vector: np.ndarray) -> Dict[str, float]:
        """Extract per-class fp counts from a vector."""
        return {kind: float(vector[self.index(kind)]) for kind in FP_OP_KINDS}

    def hit_rates(self, vector: np.ndarray) -> np.ndarray:
        """Extract cumulative hit rates, shape (n_levels,)."""
        return np.asarray(vector[..., self.hit_rate_slice], dtype=np.float64)
