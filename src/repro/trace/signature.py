"""Application signatures: the set of per-rank trace files for one run.

The paper's framework keeps one trace file per MPI task; this work
focuses on the most computationally demanding task (§IV) but the data
model supports full per-rank signatures (used by the clustering extension
of §VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from repro.trace.tracefile import TraceFile


@dataclass
class ApplicationSignature:
    """All trace data for one application run at one core count.

    Not every rank need be materialized: the slowest-task workflow
    stores one trace; the clustering workflow stores one per cluster
    centroid.  ``compute_times`` (seconds of computation per rank, from
    the lightweight profiling run) identify the slowest task.
    """

    app: str
    n_ranks: int
    target: str
    traces: Dict[int, TraceFile] = field(default_factory=dict)
    compute_times: Dict[int, float] = field(default_factory=dict)

    def add_trace(self, trace: TraceFile) -> None:
        if trace.app != self.app:
            raise ValueError(f"trace app {trace.app!r} != signature app {self.app!r}")
        if trace.n_ranks != self.n_ranks:
            raise ValueError(
                f"trace core count {trace.n_ranks} != signature {self.n_ranks}"
            )
        if trace.target != self.target:
            raise ValueError(
                f"trace target {trace.target!r} != signature {self.target!r}"
            )
        if trace.rank in self.traces:
            raise ValueError(f"duplicate trace for rank {trace.rank}")
        self.traces[trace.rank] = trace

    @property
    def ranks(self) -> List[int]:
        return sorted(self.traces)

    def slowest_rank(self) -> int:
        """Rank with the largest profiled computation time.

        Falls back to the rank with the most memory operations when no
        profile data is attached.
        """
        if self.compute_times:
            return max(self.compute_times, key=lambda r: (self.compute_times[r], -r))
        if not self.traces:
            raise ValueError("signature has no traces and no profile data")
        return max(
            self.traces,
            key=lambda r: (self.traces[r].total_memory_ops(), -r),
        )

    def slowest_trace(self) -> TraceFile:
        rank = self.slowest_rank()
        if rank not in self.traces:
            raise KeyError(
                f"slowest rank {rank} identified by profiling has no trace; "
                f"materialized ranks: {self.ranks}"
            )
        return self.traces[rank]

    # ------------------------------------------------------------------
    # directory persistence

    def save_dir(self, directory: Union[str, Path]) -> None:
        """Write one ``rank<k>.npz`` per trace plus a profile sidecar."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for rank, trace in self.traces.items():
            trace.save_npz(directory / f"rank{rank:06d}.npz")
        import json

        sidecar = {
            "app": self.app,
            "n_ranks": self.n_ranks,
            "target": self.target,
            "compute_times": {str(k): v for k, v in self.compute_times.items()},
        }
        (directory / "signature.json").write_text(json.dumps(sidecar, indent=2))

    @classmethod
    def load_dir(cls, directory: Union[str, Path]) -> "ApplicationSignature":
        """Load a signature previously written by :meth:`save_dir`."""
        import json

        directory = Path(directory)
        sidecar = json.loads((directory / "signature.json").read_text())
        sig = cls(
            app=sidecar["app"],
            n_ranks=int(sidecar["n_ranks"]),
            target=sidecar["target"],
            compute_times={
                int(k): float(v) for k, v in sidecar["compute_times"].items()
            },
        )
        for path in sorted(directory.glob("rank*.npz")):
            sig.add_trace(TraceFile.load_npz(path))
        return sig
