"""Trace files: one MPI task's signature at one core count.

Supports two serializations:

- **NPZ** — compact columnar storage (one feature matrix + id columns),
  the format the pipeline uses.
- **JSONL** — one JSON object per basic block, human-inspectable, used in
  examples and for debugging.

The two round-trip identically; the test suite checks this.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.trace.features import FeatureSchema
from repro.trace.records import BasicBlockRecord, InstructionRecord, SourceLocation

_FORMAT_VERSION = 1


@dataclass
class TraceFile:
    """Per-task trace: all basic blocks one MPI task executed.

    Parameters
    ----------
    app:
        Application name.
    rank:
        MPI rank the trace belongs to.
    n_ranks:
        Total core count of the run.
    target:
        Name of the target system whose hierarchy the hit rates were
        simulated against.
    schema:
        Feature schema (defines the hit-rate block width).
    blocks:
        Basic-block records keyed by block id.
    extrapolated:
        True if this trace was synthesized by extrapolation rather than
        collected.
    """

    app: str
    rank: int
    n_ranks: int
    target: str
    schema: FeatureSchema
    blocks: Dict[int, BasicBlockRecord] = field(default_factory=dict)
    extrapolated: bool = False

    # ------------------------------------------------------------------
    # construction helpers

    def add_block(self, block: BasicBlockRecord) -> None:
        if block.block_id in self.blocks:
            raise ValueError(f"duplicate block id {block.block_id}")
        self.blocks[block.block_id] = block

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def n_instructions(self) -> int:
        return sum(b.n_instructions for b in self.blocks.values())

    def sorted_blocks(self) -> List[BasicBlockRecord]:
        return [self.blocks[k] for k in sorted(self.blocks)]

    def pair_keys(self) -> List[tuple]:
        """``(block_id, instr_index)`` keys in canonical (sorted) order.

        The instruction *index* within its block (not ``instr_id``)
        matches the pair addressing used by the fitting engines and the
        guard subsystem.
        """
        return [
            (block.block_id, k)
            for block in self.sorted_blocks()
            for k in range(block.n_instructions)
        ]

    def stacked_features(self) -> np.ndarray:
        """All instruction feature vectors as one (n_pairs, n_features)
        matrix, rows in :meth:`pair_keys` order.

        Raises ``ValueError`` when any instruction's vector width
        disagrees with the schema — callers that must not crash on
        malformed traces (the guard validators) check widths first.
        """
        rows = [
            np.asarray(ins.features, dtype=np.float64)
            for block in self.sorted_blocks()
            for ins in block.instructions
        ]
        if not rows:
            return np.zeros((0, self.schema.n_features))
        matrix = np.stack(rows)
        if matrix.shape[1] != self.schema.n_features:
            raise ValueError(
                f"feature rows have {matrix.shape[1]} columns, schema "
                f"expects {self.schema.n_features}"
            )
        return matrix

    def total_memory_ops(self) -> float:
        return sum(b.memory_ops(self.schema) for b in self.blocks.values())

    def total_fp_ops(self) -> float:
        return sum(b.fp_ops(self.schema) for b in self.blocks.values())

    # ------------------------------------------------------------------
    # NPZ serialization

    def save_npz(self, path: Union[str, Path]) -> None:
        """Write the trace as a columnar .npz file."""
        block_ids: List[int] = []
        instr_ids: List[int] = []
        kinds: List[str] = []
        rows: List[np.ndarray] = []
        meta_blocks = {}
        for block in self.sorted_blocks():
            meta_blocks[str(block.block_id)] = {
                "function": block.location.function,
                "file": block.location.file,
                "line": block.location.line,
                "address": block.location.address,
            }
            for ins in block.instructions:
                block_ids.append(block.block_id)
                instr_ids.append(ins.instr_id)
                kinds.append(ins.kind)
                rows.append(ins.features)
        features = (
            np.stack(rows)
            if rows
            else np.zeros((0, self.schema.n_features))
        )
        meta = {
            "version": _FORMAT_VERSION,
            "app": self.app,
            "rank": self.rank,
            "n_ranks": self.n_ranks,
            "target": self.target,
            "level_names": list(self.schema.level_names),
            "extrapolated": self.extrapolated,
            "blocks": meta_blocks,
        }
        np.savez_compressed(
            Path(path),
            meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
            block_ids=np.asarray(block_ids, dtype=np.int64),
            instr_ids=np.asarray(instr_ids, dtype=np.int64),
            kinds=np.asarray(kinds, dtype="U8"),
            features=features,
        )

    @classmethod
    def load_npz(cls, path: Union[str, Path]) -> "TraceFile":
        """Load a trace previously written by :meth:`save_npz`."""
        with np.load(Path(path), allow_pickle=False) as data:
            meta = json.loads(bytes(data["meta"]).decode("utf-8"))
            if meta.get("version") != _FORMAT_VERSION:
                raise ValueError(
                    f"unsupported trace format version {meta.get('version')!r}"
                )
            schema = FeatureSchema(meta["level_names"])
            trace = cls(
                app=meta["app"],
                rank=int(meta["rank"]),
                n_ranks=int(meta["n_ranks"]),
                target=meta["target"],
                schema=schema,
                extrapolated=bool(meta["extrapolated"]),
            )
            block_meta = meta["blocks"]
            block_ids = data["block_ids"]
            instr_ids = data["instr_ids"]
            kinds = data["kinds"]
            features = data["features"]
            for bid_str, info in block_meta.items():
                bid = int(bid_str)
                trace.add_block(
                    BasicBlockRecord(
                        block_id=bid,
                        location=SourceLocation(
                            function=info["function"],
                            file=info["file"],
                            line=int(info["line"]),
                            address=int(info["address"]),
                        ),
                    )
                )
            for bid, iid, kind, row in zip(block_ids, instr_ids, kinds, features):
                trace.blocks[int(bid)].instructions.append(
                    InstructionRecord(
                        instr_id=int(iid), kind=str(kind), features=row.copy()
                    )
                )
        return trace

    # ------------------------------------------------------------------
    # JSONL serialization

    def save_jsonl(self, path: Union[str, Path]) -> None:
        """Write the trace as newline-delimited JSON (header + blocks)."""
        with open(Path(path), "w", encoding="utf-8") as fh:
            header = {
                "version": _FORMAT_VERSION,
                "app": self.app,
                "rank": self.rank,
                "n_ranks": self.n_ranks,
                "target": self.target,
                "level_names": list(self.schema.level_names),
                "extrapolated": self.extrapolated,
            }
            fh.write(json.dumps({"header": header}) + "\n")
            for block in self.sorted_blocks():
                obj = {
                    "block_id": block.block_id,
                    "function": block.location.function,
                    "file": block.location.file,
                    "line": block.location.line,
                    "address": block.location.address,
                    "instructions": [
                        {
                            "instr_id": ins.instr_id,
                            "kind": ins.kind,
                            "features": [float(v) for v in ins.features],
                        }
                        for ins in block.instructions
                    ],
                }
                fh.write(json.dumps(obj) + "\n")

    @classmethod
    def load_jsonl(cls, path: Union[str, Path]) -> "TraceFile":
        """Load a trace previously written by :meth:`save_jsonl`."""
        with open(Path(path), "r", encoding="utf-8") as fh:
            first = json.loads(fh.readline())
            header = first.get("header")
            if header is None or header.get("version") != _FORMAT_VERSION:
                raise ValueError(f"bad trace header in {path}")
            schema = FeatureSchema(header["level_names"])
            trace = cls(
                app=header["app"],
                rank=int(header["rank"]),
                n_ranks=int(header["n_ranks"]),
                target=header["target"],
                schema=schema,
                extrapolated=bool(header["extrapolated"]),
            )
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                obj = json.loads(line)
                block = BasicBlockRecord(
                    block_id=int(obj["block_id"]),
                    location=SourceLocation(
                        function=obj["function"],
                        file=obj["file"],
                        line=int(obj["line"]),
                        address=int(obj["address"]),
                    ),
                )
                for ins in obj["instructions"]:
                    block.instructions.append(
                        InstructionRecord(
                            instr_id=int(ins["instr_id"]),
                            kind=str(ins["kind"]),
                            features=np.asarray(ins["features"], dtype=np.float64),
                        )
                    )
                trace.add_block(block)
        return trace
