"""Per-instruction and per-basic-block trace records.

The paper's trace file contains, per basic block: source location, fp op
counts and types, memory reference counts/kinds/sizes, expected target
cache hit rates, and (for extrapolation) per-instruction detail.  These
records mirror that structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.trace.features import FeatureSchema


@dataclass(frozen=True)
class SourceLocation:
    """Where a basic block lives in the (synthetic) source and binary."""

    function: str
    file: str = "<synthetic>"
    line: int = 0
    address: int = 0

    def __str__(self) -> str:
        return f"{self.function} @ {self.file}:{self.line}"


@dataclass
class InstructionRecord:
    """One static instruction's measured behavior at one core count.

    Parameters
    ----------
    instr_id:
        Index of the instruction within its basic block.
    kind:
        Coarse class: ``"load"``, ``"store"`` or ``"fp"``.
    features:
        Feature vector following the trace file's schema.
    """

    instr_id: int
    kind: str
    features: np.ndarray

    def feature(self, schema: FeatureSchema, name: str) -> float:
        return float(self.features[schema.index(name)])


@dataclass
class BasicBlockRecord:
    """One basic block's records: location + per-instruction features."""

    block_id: int
    location: SourceLocation
    instructions: List[InstructionRecord] = field(default_factory=list)

    @property
    def n_instructions(self) -> int:
        return len(self.instructions)

    def feature_matrix(self) -> np.ndarray:
        """Stack instruction vectors into ``(n_instr, n_features)``."""
        if not self.instructions:
            return np.zeros((0, 0))
        return np.stack([ins.features for ins in self.instructions])

    def aggregate(self, schema: FeatureSchema) -> Dict[str, float]:
        """Block-level totals/averages.

        Counts are summed over instructions; hit rates, working set,
        ref size, ilp and dep_chain are weighted by each instruction's
        memory ops (falling back to exec count for non-memory fields) —
        the weighting the paper uses when deciding influence.
        """
        if not self.instructions:
            return {name: 0.0 for name in schema.fields}
        mat = self.feature_matrix()
        out: Dict[str, float] = {}
        mem_ops = mat[:, schema.index("mem_ops")]
        exec_count = mat[:, schema.index("exec_count")]
        mem_weight = mem_ops if mem_ops.sum() > 0 else exec_count
        exec_weight = exec_count if exec_count.sum() > 0 else np.ones(len(mat))
        for j, name in enumerate(schema.fields):
            col = mat[:, j]
            if schema.is_count_field(name):
                out[name] = float(col.sum())
            elif schema.is_rate_field(name) or name == "ref_bytes":
                w = mem_weight if mem_weight.sum() > 0 else exec_weight
                out[name] = float(np.average(col, weights=np.maximum(w, 1e-12)))
            elif name == "working_set_bytes":
                out[name] = float(col.sum())
            else:  # ilp, dep_chain: execution-weighted averages
                out[name] = float(
                    np.average(col, weights=np.maximum(exec_weight, 1e-12))
                )
        return out

    def memory_ops(self, schema: FeatureSchema) -> float:
        """Total dynamic memory references in the block."""
        if not self.instructions:
            return 0.0
        return float(self.feature_matrix()[:, schema.index("mem_ops")].sum())

    def fp_ops(self, schema: FeatureSchema) -> float:
        """Total dynamic floating-point ops in the block."""
        if not self.instructions:
            return 0.0
        mat = self.feature_matrix()
        cols = [schema.index(k) for k in ("fp_add", "fp_mul", "fp_fma", "fp_div")]
        return float(mat[:, cols].sum())
