"""Prediction and ground-truth measurement workflows.

``predict_runtime`` is the PMaC path: convolve a (collected or
extrapolated) trace with the machine profile, then replay the job's event
timeline.  ``measure_runtime`` is the stand-in for actually running the
application on the target machine (see
:mod:`repro.psins.ground_truth`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.base import AppModel
from repro.machine.profile import MachineProfile
from repro.machine.systems import MachineSpec, get_spec
from repro.obs.trace import span
from repro.psins.convolution import ComputationModel, ConvolutionConfig
from repro.psins.ground_truth import GroundTruthConfig, measure_job
from repro.psins.replay import ReplayResult, UniformTimer, replay_job
from repro.simmpi.runtime import Job
from repro.trace.tracefile import TraceFile
from repro.util.errors import PredictionError


@dataclass
class PredictionResult:
    """A prediction plus the intermediate models (for inspection)."""

    replay: ReplayResult
    model: ComputationModel
    trace: TraceFile

    @property
    def runtime_s(self) -> float:
        return self.replay.runtime_s


def predict_runtime(
    app: AppModel,
    n_ranks: int,
    trace: TraceFile,
    machine: MachineProfile,
    *,
    config: Optional[ConvolutionConfig] = None,
    job: Optional[Job] = None,
) -> PredictionResult:
    """Predict the app's runtime at ``n_ranks`` on ``machine``.

    The trace (collected or extrapolated, always of the slowest task)
    calibrates per-iteration basic-block costs; every rank's compute
    events are priced with those costs (the paper's slowest-task-as-base
    strategy), and the full event timeline is replayed.
    """
    if trace.n_ranks != n_ranks:
        raise PredictionError(
            f"trace is for {trace.n_ranks} ranks, predicting {n_ranks}",
            stage="predict",
            task_key=f"predict:{app.name}:{n_ranks}",
        )
    if job is None:
        job = app.build_job(n_ranks)
    with span("predict.runtime", app=app.name, n_ranks=n_ranks):
        with span("convolve.model", machine=machine.name):
            model = ComputationModel(trace, machine, config)
        timer = UniformTimer(model.iteration_time_s)
        replay = replay_job(job, timer, machine.network)
    return PredictionResult(replay=replay, model=model, trace=trace)


def measure_runtime(
    app: AppModel,
    n_ranks: int,
    machine: MachineSpec,
    *,
    config: Optional[GroundTruthConfig] = None,
    job: Optional[Job] = None,
) -> ReplayResult:
    """"Run" the app on the target machine; return the measured timeline."""
    if isinstance(machine, str):
        machine = get_spec(machine)
    if job is None:
        job = app.build_job(n_ranks)
    with span("measure.ground_truth", app=app.name, n_ranks=n_ranks):
        return measure_job(
            job,
            app.program_factory(n_ranks),
            app.equivalence_classes(n_ranks),
            machine.hierarchy,
            machine.timing,
            machine.network,
            config,
        )
