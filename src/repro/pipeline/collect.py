"""Signature collection workflow.

One call = one application run at one core count on the (simulated) base
system with PEBIL probes attached: profile all tasks cheaply, pick the
ranks to trace, and run each traced rank's address stream through the
target system's cache simulator (Fig. 2).

Collection is embarrassingly parallel at two levels — across traced
ranks within a run, and across core counts within an experiment — and
every trace draws its randomness from a keyed RNG stream, so both
levels fan out over :func:`repro.exec.pool.run_tasks` with bit-for-bit
serial-identical results.  A :class:`repro.exec.sigcache.SignatureCache`
short-circuits recollection entirely.

Fault tolerance is opt-in per call site: when
``CollectionSettings.resilience`` is set, the fan-out goes through
:func:`repro.exec.resilience.run_tasks_resilient` (timeouts, retries,
pool restart, serial fallback), and a :class:`RunJournal` passed to
:func:`collect_signatures` checkpoints each completed ``(app, count)``
unit so an interrupted sweep resumes where it stopped.  Neither can
change results — tasks are pure functions of their arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.apps.base import AppModel
from repro.cache.hierarchy import CacheHierarchy
from repro.exec import faults
from repro.exec.pool import run_tasks
from repro.exec.resilience import ResilienceConfig, RunReport, run_tasks_resilient
from repro.exec.sigcache import SignatureCache
from repro.instrument.collector import CollectorConfig, collect_trace
from repro.obs.log import get_logger
from repro.obs.trace import span
from repro.pipeline.journal import RunJournal, unit_key
from repro.simmpi.profiler import profile_job
from repro.simmpi.runtime import Job
from repro.trace.signature import ApplicationSignature
from repro.trace.tracefile import TraceFile
from repro.util.errors import CollectionError
from repro.util.rng import stream

log = get_logger("pipeline.collect")


@dataclass(frozen=True)
class CollectionSettings:
    """What and how to trace.

    ``ranks`` selects which tasks get full traces: the string
    ``"slowest"`` (the paper's choice), ``"all"`` (needed by the
    clustering extension), or an explicit list of rank ids.

    ``workers`` sizes the process pool used for rank/count fan-out:
    ``None`` = one per CPU, ``0``/``1`` = serial (the escape hatch).
    ``resilience`` switches the fan-out to the fault-tolerant executor.
    Both are execution mechanics, not collection identity, so they are
    excluded from cache keys.
    """

    ranks: Union[str, Sequence[int]] = "slowest"
    collector: CollectorConfig = field(default_factory=CollectorConfig)
    workers: Optional[int] = None
    resilience: Optional[ResilienceConfig] = None


def task_key(app_name: str, n_ranks: int, rank: Optional[int] = None) -> str:
    """Stable task key for fault plans / retry backoff / error context."""
    base = f"collect:{app_name}:{n_ranks}"
    return base if rank is None else f"{base}:rank{rank}"


def _collect_rank_trace(
    app: AppModel,
    rank: int,
    n_ranks: int,
    hierarchy: CacheHierarchy,
    collector: CollectorConfig,
) -> TraceFile:
    """Trace one rank.  Module-level and argument-complete so it can run
    in a pool worker; the serial path calls the same function, which is
    what makes parallel/serial identity trivial."""
    with span("collect.rank", app=app.name, rank=rank, n_ranks=n_ranks):
        program = app.rank_program(rank, n_ranks)
        trace = collect_trace(
            program,
            hierarchy,
            app=app.name,
            rank=rank,
            n_ranks=n_ranks,
            config=collector,
            rng=stream("collect", app.name, n_ranks, rank, hierarchy.name),
        )
        # fault-injection hook: a planned poison-trace spec overwrites
        # one element here, where a real probe bug would corrupt it
        return faults.poison_trace(trace, task_key(app.name, n_ranks, rank))


def _fan_out(
    fn,
    tasks: Sequence[tuple],
    keys: Sequence[str],
    settings: CollectionSettings,
    report: Optional[RunReport],
    on_result=None,
) -> List:
    """Dispatch to the plain or resilient executor per the settings."""
    if settings.resilience is not None:
        results, _ = run_tasks_resilient(
            fn,
            tasks,
            keys=keys,
            workers=settings.workers,
            config=settings.resilience,
            report=report,
            on_result=on_result,
            stage="collect",
        )
        return results
    results = run_tasks(fn, tasks, workers=settings.workers, keys=keys)
    if on_result is not None:
        for i, value in enumerate(results):
            on_result(i, value)
    return results


def collect_signature(
    app: AppModel,
    n_ranks: int,
    hierarchy: CacheHierarchy,
    settings: Optional[CollectionSettings] = None,
    *,
    job: Optional[Job] = None,
    cache: Optional[SignatureCache] = None,
    report: Optional[RunReport] = None,
) -> ApplicationSignature:
    """Collect an application signature at one core count.

    Parameters
    ----------
    app:
        The application proxy.
    n_ranks:
        Core count of the run.
    hierarchy:
        *Target-system* hierarchy the hit rates are simulated against.
    settings:
        Rank selection, collector knobs, pool size, and retry policy.
    job:
        Pre-built job (to avoid rebuilding when the caller also replays).
    cache:
        Optional on-disk memoization; hits skip collection entirely.
    report:
        Resilience report to accumulate recovery events into.
    """
    settings = settings or CollectionSettings()
    key = None
    if cache is not None:
        if report is not None:
            cache.bind_report(report)
        key = cache.key_for(app, n_ranks, hierarchy, settings)
        cached = cache.get(key)
        if cached is not None:
            log.debug("signature cache hit: %s n=%d", app.name, n_ranks)
            return cached
        log.debug("signature cache miss: %s n=%d", app.name, n_ranks)
    if job is None:
        job = app.build_job(n_ranks)
    elif job.n_ranks != n_ranks:
        raise CollectionError(
            f"supplied job has {job.n_ranks} ranks, expected {n_ranks}",
            stage="collect",
            task_key=task_key(app.name, n_ranks),
        )
    with span("collect.profile", app=app.name, n_ranks=n_ranks):
        profile = profile_job(job, app.program_factory(n_ranks))
    if settings.ranks == "slowest":
        trace_ranks: List[int] = [profile.slowest_rank()]
    elif settings.ranks == "all":
        trace_ranks = list(range(n_ranks))
    else:
        trace_ranks = sorted(set(int(r) for r in settings.ranks))
        bad = [r for r in trace_ranks if not 0 <= r < n_ranks]
        if bad:
            raise CollectionError(
                f"trace ranks out of range: {bad}",
                stage="collect",
                task_key=task_key(app.name, n_ranks),
            )
    signature = ApplicationSignature(
        app=app.name,
        n_ranks=n_ranks,
        target=hierarchy.name,
        compute_times=dict(profile.compute_times_s),
    )
    with span(
        "collect.signature",
        app=app.name,
        n_ranks=n_ranks,
        traced_ranks=len(trace_ranks),
    ):
        traces = _fan_out(
            _collect_rank_trace,
            [
                (app, rank, n_ranks, hierarchy, settings.collector)
                for rank in trace_ranks
            ],
            [task_key(app.name, n_ranks, rank) for rank in trace_ranks],
            settings,
            report,
        )
    for trace in traces:
        signature.add_trace(trace)
    if cache is not None:
        cache.put(key, signature)
    return signature


def _collect_signature_task(
    app: AppModel,
    n_ranks: int,
    hierarchy: CacheHierarchy,
    settings: CollectionSettings,
) -> ApplicationSignature:
    """One core count's collection, for pool submission (the nested
    rank-level pool degrades to serial inside a worker)."""
    return collect_signature(app, n_ranks, hierarchy, settings)


def collect_signatures(
    app: AppModel,
    counts: Sequence[int],
    hierarchy: CacheHierarchy,
    settings: Optional[CollectionSettings] = None,
    *,
    cache: Optional[SignatureCache] = None,
    journal: Optional[RunJournal] = None,
    report: Optional[RunReport] = None,
) -> List[ApplicationSignature]:
    """Collect signatures for several core counts, fanned out as a batch.

    Cache lookups happen in the parent so warm entries never reach the
    pool; only the misses are (re)collected — concurrently when
    ``settings.workers`` allows — then stored.  Results are returned in
    ``counts`` order.

    With a ``journal``, each ``(app, count)`` unit is committed the
    moment its signature is cached (in completion order, not batch
    order), so a killed run resumes from the last completed unit; a
    journaled unit is only trusted when its cache entry is still
    readable, making resume safe against cleared or corrupted caches.
    """
    settings = settings or CollectionSettings()
    if cache is not None and report is not None:
        cache.bind_report(report)
    results: List[Optional[ApplicationSignature]] = [None] * len(counts)
    missing: List[int] = []
    for i, count in enumerate(counts):
        unit = unit_key("collect", app.name, hierarchy.name, count)
        cached = None
        if cache is not None:
            cached = cache.get(cache.key_for(app, count, hierarchy, settings))
        if cached is not None:
            results[i] = cached
            if journal is not None:
                # count the resume skip, and (re)commit cache-only hits
                # so the journal converges to the full unit set
                if not journal.skip(unit):
                    journal.mark(unit)
            continue
        missing.append(i)

    def _store(j: int, sig: ApplicationSignature) -> None:
        i = missing[j]
        results[i] = sig
        if cache is not None:
            cache.put(
                cache.key_for(app, counts[i], hierarchy, settings), sig
            )
        if journal is not None:
            journal.mark(unit_key("collect", app.name, hierarchy.name, counts[i]))

    log.info(
        "collecting %s: %d/%d counts cached, %d to collect",
        app.name,
        len(counts) - len(missing),
        len(counts),
        len(missing),
    )
    with span(
        "collect.signatures",
        app=app.name,
        counts=len(counts),
        missing=len(missing),
    ):
        _fan_out(
            _collect_signature_task,
            [(app, counts[i], hierarchy, settings) for i in missing],
            [task_key(app.name, counts[i]) for i in missing],
            settings,
            report,
            on_result=_store,
        )
    return results
