"""Signature collection workflow.

One call = one application run at one core count on the (simulated) base
system with PEBIL probes attached: profile all tasks cheaply, pick the
ranks to trace, and run each traced rank's address stream through the
target system's cache simulator (Fig. 2).

Collection is embarrassingly parallel at two levels — across traced
ranks within a run, and across core counts within an experiment — and
every trace draws its randomness from a keyed RNG stream, so both
levels fan out over :func:`repro.exec.pool.run_tasks` with bit-for-bit
serial-identical results.  A :class:`repro.exec.sigcache.SignatureCache`
short-circuits recollection entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.apps.base import AppModel
from repro.cache.hierarchy import CacheHierarchy
from repro.exec.pool import run_tasks
from repro.exec.sigcache import SignatureCache
from repro.instrument.collector import CollectorConfig, collect_trace
from repro.simmpi.profiler import profile_job
from repro.simmpi.runtime import Job
from repro.trace.signature import ApplicationSignature
from repro.trace.tracefile import TraceFile
from repro.util.rng import stream


@dataclass(frozen=True)
class CollectionSettings:
    """What and how to trace.

    ``ranks`` selects which tasks get full traces: the string
    ``"slowest"`` (the paper's choice), ``"all"`` (needed by the
    clustering extension), or an explicit list of rank ids.

    ``workers`` sizes the process pool used for rank/count fan-out:
    ``None`` = one per CPU, ``0``/``1`` = serial (the escape hatch).
    It is execution mechanics, not collection identity, so it is
    excluded from cache keys.
    """

    ranks: Union[str, Sequence[int]] = "slowest"
    collector: CollectorConfig = field(default_factory=CollectorConfig)
    workers: Optional[int] = None


def _collect_rank_trace(
    app: AppModel,
    rank: int,
    n_ranks: int,
    hierarchy: CacheHierarchy,
    collector: CollectorConfig,
) -> TraceFile:
    """Trace one rank.  Module-level and argument-complete so it can run
    in a pool worker; the serial path calls the same function, which is
    what makes parallel/serial identity trivial."""
    program = app.rank_program(rank, n_ranks)
    return collect_trace(
        program,
        hierarchy,
        app=app.name,
        rank=rank,
        n_ranks=n_ranks,
        config=collector,
        rng=stream("collect", app.name, n_ranks, rank, hierarchy.name),
    )


def collect_signature(
    app: AppModel,
    n_ranks: int,
    hierarchy: CacheHierarchy,
    settings: Optional[CollectionSettings] = None,
    *,
    job: Optional[Job] = None,
    cache: Optional[SignatureCache] = None,
) -> ApplicationSignature:
    """Collect an application signature at one core count.

    Parameters
    ----------
    app:
        The application proxy.
    n_ranks:
        Core count of the run.
    hierarchy:
        *Target-system* hierarchy the hit rates are simulated against.
    settings:
        Rank selection, collector knobs, and pool size.
    job:
        Pre-built job (to avoid rebuilding when the caller also replays).
    cache:
        Optional on-disk memoization; hits skip collection entirely.
    """
    settings = settings or CollectionSettings()
    key = None
    if cache is not None:
        key = cache.key_for(app, n_ranks, hierarchy, settings)
        cached = cache.get(key)
        if cached is not None:
            return cached
    if job is None:
        job = app.build_job(n_ranks)
    elif job.n_ranks != n_ranks:
        raise ValueError(
            f"supplied job has {job.n_ranks} ranks, expected {n_ranks}"
        )
    profile = profile_job(job, app.program_factory(n_ranks))
    if settings.ranks == "slowest":
        trace_ranks: List[int] = [profile.slowest_rank()]
    elif settings.ranks == "all":
        trace_ranks = list(range(n_ranks))
    else:
        trace_ranks = sorted(set(int(r) for r in settings.ranks))
        bad = [r for r in trace_ranks if not 0 <= r < n_ranks]
        if bad:
            raise ValueError(f"trace ranks out of range: {bad}")
    signature = ApplicationSignature(
        app=app.name,
        n_ranks=n_ranks,
        target=hierarchy.name,
        compute_times=dict(profile.compute_times_s),
    )
    traces = run_tasks(
        _collect_rank_trace,
        [
            (app, rank, n_ranks, hierarchy, settings.collector)
            for rank in trace_ranks
        ],
        workers=settings.workers,
    )
    for trace in traces:
        signature.add_trace(trace)
    if cache is not None:
        cache.put(key, signature)
    return signature


def _collect_signature_task(
    app: AppModel,
    n_ranks: int,
    hierarchy: CacheHierarchy,
    settings: CollectionSettings,
) -> ApplicationSignature:
    """One core count's collection, for pool submission (the nested
    rank-level pool degrades to serial inside a worker)."""
    return collect_signature(app, n_ranks, hierarchy, settings)


def collect_signatures(
    app: AppModel,
    counts: Sequence[int],
    hierarchy: CacheHierarchy,
    settings: Optional[CollectionSettings] = None,
    *,
    cache: Optional[SignatureCache] = None,
) -> List[ApplicationSignature]:
    """Collect signatures for several core counts, fanned out as a batch.

    Cache lookups happen in the parent so warm entries never reach the
    pool; only the misses are (re)collected — concurrently when
    ``settings.workers`` allows — then stored.  Results are returned in
    ``counts`` order.
    """
    settings = settings or CollectionSettings()
    results: List[Optional[ApplicationSignature]] = [None] * len(counts)
    missing: List[int] = []
    for i, count in enumerate(counts):
        if cache is not None:
            sig = cache.get(cache.key_for(app, count, hierarchy, settings))
            if sig is not None:
                results[i] = sig
                continue
        missing.append(i)
    collected = run_tasks(
        _collect_signature_task,
        [(app, counts[i], hierarchy, settings) for i in missing],
        workers=settings.workers,
    )
    for i, sig in zip(missing, collected):
        results[i] = sig
        if cache is not None:
            cache.put(
                cache.key_for(app, counts[i], hierarchy, settings), sig
            )
    return results
