"""Signature collection workflow.

One call = one application run at one core count on the (simulated) base
system with PEBIL probes attached: profile all tasks cheaply, pick the
ranks to trace, and run each traced rank's address stream through the
target system's cache simulator (Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

from repro.apps.base import AppModel
from repro.cache.hierarchy import CacheHierarchy
from repro.instrument.collector import CollectorConfig, collect_trace
from repro.simmpi.profiler import profile_job
from repro.simmpi.runtime import Job
from repro.trace.signature import ApplicationSignature
from repro.util.rng import stream


@dataclass(frozen=True)
class CollectionSettings:
    """What and how to trace.

    ``ranks`` selects which tasks get full traces: the string
    ``"slowest"`` (the paper's choice), ``"all"`` (needed by the
    clustering extension), or an explicit list of rank ids.
    """

    ranks: Union[str, Sequence[int]] = "slowest"
    collector: CollectorConfig = field(default_factory=CollectorConfig)


def collect_signature(
    app: AppModel,
    n_ranks: int,
    hierarchy: CacheHierarchy,
    settings: Optional[CollectionSettings] = None,
    *,
    job: Optional[Job] = None,
) -> ApplicationSignature:
    """Collect an application signature at one core count.

    Parameters
    ----------
    app:
        The application proxy.
    n_ranks:
        Core count of the run.
    hierarchy:
        *Target-system* hierarchy the hit rates are simulated against.
    settings:
        Rank selection and collector knobs.
    job:
        Pre-built job (to avoid rebuilding when the caller also replays).
    """
    settings = settings or CollectionSettings()
    if job is None:
        job = app.build_job(n_ranks)
    elif job.n_ranks != n_ranks:
        raise ValueError(
            f"supplied job has {job.n_ranks} ranks, expected {n_ranks}"
        )
    profile = profile_job(job, app.program_factory(n_ranks))
    if settings.ranks == "slowest":
        trace_ranks: List[int] = [profile.slowest_rank()]
    elif settings.ranks == "all":
        trace_ranks = list(range(n_ranks))
    else:
        trace_ranks = sorted(set(int(r) for r in settings.ranks))
        bad = [r for r in trace_ranks if not 0 <= r < n_ranks]
        if bad:
            raise ValueError(f"trace ranks out of range: {bad}")
    signature = ApplicationSignature(
        app=app.name,
        n_ranks=n_ranks,
        target=hierarchy.name,
        compute_times=dict(profile.compute_times_s),
    )
    for rank in trace_ranks:
        program = app.rank_program(rank, n_ranks)
        trace = collect_trace(
            program,
            hierarchy,
            app=app.name,
            rank=rank,
            n_ranks=n_ranks,
            config=settings.collector,
            rng=stream("collect", app.name, n_ranks, rank, hierarchy.name),
        )
        signature.add_trace(trace)
    return signature
