"""Rendering experiment results as the paper's tables."""

from __future__ import annotations

from typing import Iterable

from repro.pipeline.experiment import Table1Row
from repro.util.tables import Table


def table1_report(rows: Iterable[Table1Row]) -> str:
    """Render Table I: prediction errors by trace type.

    Matches the paper's columns: Application, Core Count, Trace Type,
    Predicted Runtime (s), % Error.
    """
    table = Table(
        columns=[
            "Application",
            "Core Count",
            "Trace Type",
            "Predicted Runtime (s)",
            "% Error",
        ],
        title="Table I: prediction errors using extrapolated and collected traces",
        float_fmt=".1f",
    )
    for row in rows:
        table.add_row(
            row.app,
            row.core_count,
            row.trace_type,
            row.predicted_runtime_s,
            f"{row.pct_error:.1f}%",
        )
    return table.render()
