"""End-to-end experiment pipeline.

Wires the substrates together into the paper's workflows:

- :mod:`repro.pipeline.collect` — run + profile an app at a core count,
  trace the slowest task (or all / selected ranks) against a target
  hierarchy, producing an application signature.
- :mod:`repro.pipeline.predict` — PMaC prediction: signature x machine
  profile -> replayed runtime; and the ground-truth "actually run it"
  path.
- :mod:`repro.pipeline.experiment` — the paper's experiments (Table I
  protocol: train on small counts, extrapolate, predict, compare with
  collected-trace prediction and measured runtime).
- :mod:`repro.pipeline.report` — table rendering of experiment results.
- :mod:`repro.pipeline.journal` — checkpoint journal making multi-unit
  runs resumable after an interruption (``--resume``).
- :mod:`repro.pipeline.dag` — the workflows above as a crash-consistent
  content-addressed DAG with incremental recomputation (``repro dag``).
"""

from repro.pipeline.collect import (
    CollectionSettings,
    collect_signature,
    collect_signatures,
)
from repro.pipeline.dag import (
    Dag,
    DagRunResult,
    DagStats,
    Node,
    NodeStatus,
    SweepSpec,
    build_dag,
    dag_status,
    node_key,
    run_dag,
)
from repro.pipeline.journal import RunJournal, make_journal, unit_key
from repro.pipeline.predict import (
    PredictionResult,
    measure_runtime,
    predict_runtime,
)
from repro.pipeline.experiment import (
    Table1Config,
    Table1Row,
    Table1Result,
    WhatIfResult,
    WhatIfRow,
    collect_training_traces,
    run_table1,
    run_whatif_sweep,
)
from repro.pipeline.report import table1_report

__all__ = [
    "Dag",
    "DagRunResult",
    "DagStats",
    "Node",
    "NodeStatus",
    "SweepSpec",
    "build_dag",
    "dag_status",
    "node_key",
    "run_dag",
    "CollectionSettings",
    "collect_signature",
    "collect_signatures",
    "RunJournal",
    "make_journal",
    "unit_key",
    "PredictionResult",
    "predict_runtime",
    "measure_runtime",
    "Table1Config",
    "Table1Row",
    "Table1Result",
    "run_table1",
    "WhatIfRow",
    "WhatIfResult",
    "collect_training_traces",
    "run_whatif_sweep",
    "table1_report",
]
