"""The paper's experiment protocols.

``run_table1`` implements the full Table I procedure for one application:

1. collect slowest-task traces at the training core counts (96/384/1536
   for SPECFEM3D; 1024/2048/4096 for UH3D),
2. extrapolate to the target count (6144 / 8192),
3. *also* collect a real trace at the target count,
4. predict the runtime with both traces,
5. measure the "real" runtime via the ground-truth simulator,
6. report predicted runtimes and % errors for both trace types.

``run_whatif_sweep`` is the design-space companion (§V's "what if we ran
at N cores?" question asked many times over): collect the training
series once, fit once, synthesize a trace per target core count via the
multi-target sweep API, and predict the runtime of each — the
fit-once/evaluate-many path the Tables II/III benches exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.apps.base import AppModel
from repro.core.canonical import CanonicalForm, PAPER_FORMS
from repro.core.errors import abs_rel_error
from repro.core.extrapolate import ExtrapolationResult, ExtrapolationSweep
from repro.exec.resilience import RunReport
from repro.exec.sigcache import SignatureCache
from repro.guard.config import GuardConfig
from repro.guard.degrade import DegradationReport
from repro.guard.engine import (
    check_prediction_inputs,
    guarded_extrapolate,
    guarded_extrapolate_many,
)
from repro.machine.systems import get_machine, get_spec
from repro.obs.log import get_logger
from repro.obs.trace import span
from repro.pipeline.collect import CollectionSettings, collect_signatures
from repro.pipeline.journal import RunJournal
from repro.pipeline.predict import measure_runtime, predict_runtime
from repro.psins.ground_truth import GroundTruthConfig
from repro.trace.tracefile import TraceFile

log = get_logger("pipeline.experiment")


@dataclass(frozen=True)
class Table1Config:
    """Experiment knobs for :func:`run_table1`."""

    machine: str = "blue_waters_p1"
    forms: Sequence[CanonicalForm] = PAPER_FORMS
    collection: CollectionSettings = field(default_factory=CollectionSettings)
    ground_truth: GroundTruthConfig = field(default_factory=GroundTruthConfig)
    #: probe budget for the machine profile (MultiMAPS)
    accesses_per_probe: int = 100_000
    #: optional on-disk signature memoization (None = collect fresh)
    cache: Optional[SignatureCache] = None
    #: fitting engine: "batched" (vectorized) or "reference" (scalar)
    engine: str = "batched"
    #: optional checkpoint journal: completed collection units are
    #: committed as they land, so an interrupted run can resume
    journal: Optional[RunJournal] = None
    #: stage-boundary guardrails (None = off, the library default; the
    #: CLI defaults to policy "degrade")
    guard: Optional[GuardConfig] = None


@dataclass
class Table1Row:
    """One row of Table I."""

    app: str
    core_count: int
    trace_type: str  # "Extrap." or "Coll."
    predicted_runtime_s: float
    measured_runtime_s: float

    @property
    def pct_error(self) -> float:
        return 100.0 * abs_rel_error(self.measured_runtime_s, self.predicted_runtime_s)


@dataclass
class Table1Result:
    """Rows plus every intermediate artifact (for deeper analysis)."""

    rows: List[Table1Row]
    training_traces: List[TraceFile]
    extrapolation: ExtrapolationResult
    collected_trace: TraceFile
    measured_runtime_s: float
    #: recovery events observed during collection (empty when clean)
    run_report: RunReport = field(default_factory=RunReport)
    #: everything the guards observed and did (clean when guards off)
    degradation: DegradationReport = field(default_factory=DegradationReport)

    def extrap_vs_collected_gap(self) -> float:
        """Relative gap between the two predictions (paper: negligible)."""
        extrap = next(r for r in self.rows if r.trace_type == "Extrap.")
        coll = next(r for r in self.rows if r.trace_type == "Coll.")
        return abs_rel_error(coll.predicted_runtime_s, extrap.predicted_runtime_s)


def run_table1(
    app: AppModel,
    train_counts: Sequence[int],
    target_count: int,
    config: Optional[Table1Config] = None,
    *,
    degradation: Optional[DegradationReport] = None,
) -> Table1Result:
    """Run the Table I protocol for one application.

    ``degradation`` optionally supplies the guard ledger to accumulate
    into (so a caller keeps the partial record when a ``strict`` run
    refuses mid-protocol); one is created when omitted.
    """
    config = config or Table1Config()
    log.info(
        "table1: app=%s train=%s target=%d machine=%s",
        app.name,
        list(train_counts),
        target_count,
        config.machine,
    )
    machine = get_machine(
        config.machine, accesses_per_probe=config.accesses_per_probe
    )
    spec = get_spec(config.machine)

    # 1+3. signatures at every core count — the three training runs and
    # the target run are independent, so they are collected as one batch
    # (concurrently when the pool allows, memoized when a cache is set,
    # checkpointed per unit when a journal is set)
    report = RunReport()
    counts = sorted(train_counts) + [target_count]
    signatures = collect_signatures(
        app,
        counts,
        machine.hierarchy,
        config.collection,
        cache=config.cache,
        journal=config.journal,
        report=report,
    )
    training: List[TraceFile] = [
        sig.slowest_trace() for sig in signatures[:-1]
    ]
    collected = signatures[-1].slowest_trace()

    # 2. extrapolate to the target core count (guarded when configured)
    if degradation is None:
        degradation = (
            DegradationReport.for_config(config.guard)
            if config.guard is not None
            else DegradationReport(policy="off")
        )
    with span("fit.extrapolate", app=app.name, target=target_count):
        extrapolation, degradation = guarded_extrapolate(
            training,
            target_count,
            forms=config.forms,
            engine=config.engine,
            config=config.guard,
            report=degradation,
        )

    # the guarded engine validated the extrapolated trace as its
    # postcondition; the collected target trace and the machine profile
    # enter prediction unvetted, so they get their boundary check here
    if config.guard is not None and config.guard.enabled:
        check_prediction_inputs(
            collected, machine, config=config.guard, report=degradation
        )

    # the collected target trace is the expensive one the methodology is
    # designed to avoid — gathered anyway to evaluate it (Table I's
    # "Coll." rows); the replay below shares one rebuilt job
    target_job = app.build_job(target_count)

    # 4. predictions with both trace types (sharing the replayed job)
    pred_extrap = predict_runtime(
        app, target_count, extrapolation.trace, machine, job=target_job
    )
    pred_coll = predict_runtime(
        app, target_count, collected, machine, job=target_job
    )

    # 5. ground truth
    measured = measure_runtime(
        app, target_count, spec, config=config.ground_truth, job=target_job
    )

    rows = [
        Table1Row(
            app=app.name,
            core_count=target_count,
            trace_type="Extrap.",
            predicted_runtime_s=pred_extrap.runtime_s,
            measured_runtime_s=measured.runtime_s,
        ),
        Table1Row(
            app=app.name,
            core_count=target_count,
            trace_type="Coll.",
            predicted_runtime_s=pred_coll.runtime_s,
            measured_runtime_s=measured.runtime_s,
        ),
    ]
    return Table1Result(
        rows=rows,
        training_traces=training,
        extrapolation=extrapolation,
        collected_trace=collected,
        measured_runtime_s=measured.runtime_s,
        run_report=report,
        degradation=degradation,
    )


def collect_training_traces(
    app: AppModel,
    train_counts: Sequence[int],
    config: Optional[Table1Config] = None,
    *,
    report: Optional[RunReport] = None,
) -> List[TraceFile]:
    """Collect the slowest-task training series for an extrapolation.

    The collection half of :func:`run_table1` on its own — useful when
    the same training series feeds many downstream sweeps (Tables
    II/III) and re-collecting per experiment would dominate.
    """
    config = config or Table1Config()
    machine = get_machine(
        config.machine, accesses_per_probe=config.accesses_per_probe
    )
    signatures = collect_signatures(
        app,
        sorted(train_counts),
        machine.hierarchy,
        config.collection,
        cache=config.cache,
        journal=config.journal,
        report=report,
    )
    return [sig.slowest_trace() for sig in signatures]


@dataclass
class WhatIfRow:
    """One target core count of a what-if sweep."""

    app: str
    core_count: int
    predicted_runtime_s: float


@dataclass
class WhatIfResult:
    """Predicted runtimes across a sweep of target core counts."""

    rows: List[WhatIfRow]
    sweep: ExtrapolationSweep
    training_traces: List[TraceFile]
    degradation: DegradationReport = field(default_factory=DegradationReport)


def run_whatif_sweep(
    app: AppModel,
    train_counts: Sequence[int],
    target_counts: Sequence[int],
    config: Optional[Table1Config] = None,
    training: Optional[Sequence[TraceFile]] = None,
    report: Optional[RunReport] = None,
) -> WhatIfResult:
    """Predict runtimes at many target core counts from one training fit.

    Collects the training series (unless ``training`` supplies it),
    fits every feature element once, synthesizes a trace per target via
    :func:`~repro.core.extrapolate.extrapolate_trace_many`, and predicts
    each target's runtime on the configured machine.
    """
    config = config or Table1Config()
    log.info(
        "whatif sweep: app=%s train=%s targets=%d machine=%s",
        app.name,
        list(train_counts),
        len(target_counts),
        config.machine,
    )
    machine = get_machine(
        config.machine, accesses_per_probe=config.accesses_per_probe
    )
    if training is None:
        training = collect_training_traces(app, train_counts, config, report=report)
    sweep, degradation = guarded_extrapolate_many(
        training,
        target_counts,
        forms=config.forms,
        engine=config.engine,
        config=config.guard,
    )
    rows = []
    for result in sweep.results:
        prediction = predict_runtime(
            app, result.target_n_ranks, result.trace, machine
        )
        rows.append(
            WhatIfRow(
                app=app.name,
                core_count=result.target_n_ranks,
                predicted_runtime_s=prediction.runtime_s,
            )
        )
    return WhatIfResult(
        rows=rows,
        sweep=sweep,
        training_traces=list(training),
        degradation=degradation,
    )
