"""Crash-consistent, content-addressed pipeline DAG.

The paper's full workflow — collect training traces, fit canonical
forms, extrapolate to target counts, convolve with the machine profile,
predict runtimes, measure ground truth, render Tables I/II/III — is a
directed acyclic graph of pure *rules*.  This module makes that graph
explicit and gives it make-like incremental semantics with a crash
model:

- **Content addressing.**  Every node is keyed by a SHA-256 digest over
  its rule, its configuration tokens, the code version, and the *output
  digests of its parents* (:func:`node_key`).  Changing one target core
  count re-keys only the extrapolate cone for that target; changing the
  probe budget re-keys everything.  Parent digests give early cutoff: a
  re-collected trace that hashes identically leaves the downstream
  cone clean.
- **Durable node state.**  Node completions are appended to a
  :class:`~repro.pipeline.journal.RunJournal` state store
  (``state.jsonl``) with flush+fsync per record; a torn tail from a
  SIGKILL mid-append is skipped on recovery, so the store is readable
  after a kill at *any* instant and a committed node is never lost.
- **Atomic artifacts.**  Node outputs commit via the shared
  tmp + ``os.replace`` discipline (:mod:`repro.util.atomic`), so an
  artifact either exists complete or not at all — re-running after a
  crash recomputes exactly the nodes whose artifacts did not commit,
  and the outputs are bit-identical to an uninterrupted run.
- **Fault isolation.**  A failing node is recorded, not raised: its
  downstream cone is marked *poisoned* (one
  :class:`~repro.guard.violations.GuardViolation` per poisoned node)
  and every independent branch keeps executing.
- **Concurrency.**  ``O_CREAT|O_EXCL`` lockfiles with stale-mtime
  takeover (the :mod:`repro.serve.registry` idiom) let two ``repro dag
  run`` processes share one cache directory: exactly one executes each
  node; the loser polls, refreshes the state store, and adopts the
  winner's artifact.

Ready nodes execute in topological waves through
:func:`~repro.exec.resilience.run_tasks_resilient`, so per-node
timeouts, retries, pool restarts, and the :mod:`repro.exec.faults`
plans (including the DAG-specific ``node-crash``,
``corrupt-node-artifact``, and ``stale-lock`` kinds, keyed
``dag:<node-name>``) all apply per node.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.cache.engine import ENGINE_NAMES
from repro.core.batchfit import BatchFitResult
from repro.core.canonical import EXTENDED_FORMS, PAPER_FORMS
from repro.core.extrapolate import fit_traces, synthesize_from_prediction
from repro.core.fitting import BatchedFitReport
from repro.exec import faults
from repro.exec.resilience import (
    ResilienceConfig,
    RunReport,
    run_tasks_resilient,
)
from repro.guard.violations import GuardViolation
from repro.instrument.collector import CollectorConfig
from repro.machine.systems import get_machine, get_spec
from repro.obs.log import get_logger
from repro.obs.manifest import digest_file, git_sha
from repro.obs.metrics import REGISTRY
from repro.obs.trace import span
from repro.pipeline.journal import RunJournal
from repro.trace.features import FeatureSchema
from repro.trace.tracefile import TraceFile
from repro.util.atomic import atomic_writer
from repro.util.errors import DagError
from repro.util.tables import Table

log = get_logger("pipeline.dag")

#: bump when node keying or artifact formats change incompatibly —
#: every key changes, so old stores are simply ignored, never misread
DAG_SCHEMA_VERSION = 1

STATE_FILE = "state.jsonl"
ARTIFACTS_DIR = "artifacts"
LOCKS_DIR = "locks"
QUARANTINE_DIR = "quarantine"

#: named canonical-form sets a spec may reference (mirrors the serving
#: registry's map; defined locally so the DAG never imports the serve
#: stack)
FORM_SETS = {"paper": PAPER_FORMS, "extended": EXTENDED_FORMS}

#: fit-bundle matrices persisted into the fit node's .npz, in manifest
#: order: (array name, BatchFitResult attribute)
_FIT_ARRAYS = (
    ("x", "x"),
    ("Y", "Y"),
    ("sse", "sse"),
    ("applicable", "applicable"),
    ("order", "order"),
    ("n_candidates", "n_candidates"),
)


def default_code_version() -> str:
    """The code-version token baked into new specs."""
    return git_sha() or "unversioned"


@dataclass(frozen=True)
class SweepSpec:
    """Everything a full sweep depends on — the DAG's identity surface.

    ``train_counts`` and ``targets`` are canonicalized (sorted,
    deduplicated) so keys are insensitive to argument order.  Fields
    that affect only part of the graph enter only those nodes' keys:
    ``targets`` and ``rate_trust_factor`` key the extrapolation cone,
    ``train_counts`` reach the fit through its parent digests — so
    adding a target, or re-ordering counts, never dirties the collected
    traces.
    """

    app: str
    machine: str = "blue_waters_p1"
    train_counts: Tuple[int, ...] = (64, 128, 256)
    targets: Tuple[int, ...] = (1024,)
    cache_engine: str = "exact"
    forms: str = "paper"
    code_version: str = field(default_factory=default_code_version)
    #: include the Table I validation arm (collected-trace prediction +
    #: ground-truth measurement) for the first target
    table1: bool = True
    rate_trust_factor: float = 2.0
    accesses_per_probe: int = 100_000
    sample_accesses: int = 200_000
    max_sample_accesses: int = 3_000_000

    def __post_init__(self):
        counts = tuple(sorted({int(c) for c in self.train_counts}))
        targets = tuple(sorted({int(t) for t in self.targets}))
        object.__setattr__(self, "train_counts", counts)
        object.__setattr__(self, "targets", targets)
        if len(counts) < 2:
            raise DagError(
                f"need at least 2 training counts, got {list(counts)}",
                stage="dag",
            )
        if not targets:
            raise DagError("need at least 1 target core count", stage="dag")
        if self.cache_engine not in ENGINE_NAMES:
            raise DagError(
                f"unknown cache engine {self.cache_engine!r}; "
                f"known engines: {ENGINE_NAMES}",
                stage="dag",
            )
        if self.forms not in FORM_SETS:
            raise DagError(
                f"unknown form set {self.forms!r}; "
                f"known sets: {sorted(FORM_SETS)}",
                stage="dag",
            )

    def collector(self) -> CollectorConfig:
        return CollectorConfig(
            sample_accesses=self.sample_accesses,
            max_sample_accesses=self.max_sample_accesses,
            engine=self.cache_engine,
        )

    def identity_tokens(self) -> Tuple[str, ...]:
        """Spec tokens every node's key includes.

        Deliberately *excludes* ``train_counts`` (they reach the fit
        node through its parent set), ``targets`` (per-node tokens),
        and ``rate_trust_factor`` (an extrapolate-node token).
        """
        return (
            self.app,
            self.machine,
            self.cache_engine,
            self.forms,
            self.code_version,
            f"probe={self.accesses_per_probe}",
            f"sample={self.sample_accesses}",
            f"maxsample={self.max_sample_accesses}",
        )

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "machine": self.machine,
            "train_counts": list(self.train_counts),
            "targets": list(self.targets),
            "cache_engine": self.cache_engine,
            "forms": self.forms,
            "code_version": self.code_version,
            "table1": self.table1,
            "rate_trust_factor": self.rate_trust_factor,
            "accesses_per_probe": self.accesses_per_probe,
            "sample_accesses": self.sample_accesses,
            "max_sample_accesses": self.max_sample_accesses,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "SweepSpec":
        return cls(
            app=doc["app"],
            machine=doc["machine"],
            train_counts=tuple(doc["train_counts"]),
            targets=tuple(doc["targets"]),
            cache_engine=doc["cache_engine"],
            forms=doc["forms"],
            code_version=doc["code_version"],
            table1=doc["table1"],
            rate_trust_factor=doc["rate_trust_factor"],
            accesses_per_probe=doc["accesses_per_probe"],
            sample_accesses=doc["sample_accesses"],
            max_sample_accesses=doc["max_sample_accesses"],
        )


@dataclass(frozen=True)
class Node:
    """One rule instance in the graph."""

    name: str
    rule: str
    parents: Tuple[str, ...] = ()
    tokens: Tuple[str, ...] = ()  #: per-node identity beyond the spec
    ext: str = ".json"  #: artifact file extension


@dataclass(frozen=True)
class Dag:
    """A spec's node graph; ``nodes`` iterates in topological order."""

    spec: SweepSpec
    nodes: Mapping[str, Node]

    def topo(self) -> List[Node]:
        return list(self.nodes.values())

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "nodes": {
                n.name: {"rule": n.rule, "parents": list(n.parents)}
                for n in self.nodes.values()
            },
        }


def build_dag(spec: SweepSpec) -> Dag:
    """The full-sweep graph for one spec.

    Construction order is a topological order (every parent is added
    before its children), which the executors rely on.
    """
    nodes: Dict[str, Node] = {}

    def add(name, rule, parents=(), tokens=(), ext=".json"):
        for p in parents:
            if p not in nodes:
                raise DagError(
                    f"node {name} references unknown parent {p}", stage="dag"
                )
        nodes[name] = Node(
            name=name, rule=rule, parents=tuple(parents),
            tokens=tuple(str(t) for t in tokens), ext=ext,
        )

    t0 = spec.targets[0]
    counts = set(spec.train_counts)
    if spec.table1:
        counts.add(t0)
    for c in sorted(counts):
        add(f"collect:{c}", "collect", tokens=(c,), ext=".npz")
    add(
        "fit", "fit",
        parents=[f"collect:{c}" for c in spec.train_counts], ext=".npz",
    )
    t_min = spec.train_counts[0]
    for t in spec.targets:
        add(
            f"extrapolate:{t}", "extrapolate",
            parents=["fit", f"collect:{t_min}"],
            tokens=(t, f"rtf={spec.rate_trust_factor!r}"), ext=".npz",
        )
        add(f"convolve:extrap:{t}", "convolve", parents=[f"extrapolate:{t}"])
        add(f"predict:extrap:{t}", "predict", parents=[f"convolve:extrap:{t}"])
    if spec.table1:
        add(f"convolve:coll:{t0}", "convolve", parents=[f"collect:{t0}"])
        add(f"predict:coll:{t0}", "predict", parents=[f"convolve:coll:{t0}"])
        add(f"measure:{t0}", "measure", tokens=(t0,))
        add(
            "report:table1", "report-table1",
            parents=[
                f"predict:extrap:{t0}", f"predict:coll:{t0}", f"measure:{t0}"
            ],
        )
    add(
        "report:whatif", "report-whatif",
        parents=[f"predict:extrap:{t}" for t in spec.targets],
    )
    return Dag(spec=spec, nodes=nodes)


def node_key(
    node: Node, spec: SweepSpec, parent_digests: Mapping[str, str]
) -> str:
    """Content digest naming one node's output.

    Covers the schema version, the rule, the spec's shared identity
    tokens, the node's own tokens, and each parent's *output digest* —
    so identity flows transitively through the graph, and an upstream
    recompute that reproduces identical bytes cuts off re-keying
    (early cutoff).
    """
    h = hashlib.sha256()
    for token in (
        f"dag-v{DAG_SCHEMA_VERSION}",
        node.rule,
        node.name,
        *spec.identity_tokens(),
        *node.tokens,
    ):
        h.update(token.encode("utf-8"))
        h.update(b"\x00")
    for pname in node.parents:
        h.update(f"{pname}={parent_digests[pname]}".encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


# ---------------------------------------------------------------------------
# rules — pure functions from (spec, parent artifacts) to one payload.
# Module-level and argument-complete so they run in pool workers.
# ---------------------------------------------------------------------------


def _target_of(name: str) -> int:
    return int(name.rsplit(":", 1)[1])


def _rule_collect(name: str, spec: SweepSpec, parents: Dict[str, Path]):
    # local import: keep DAG importable without dragging the app zoo in
    from repro.apps.registry import get_app
    from repro.pipeline.collect import CollectionSettings, collect_signature

    count = _target_of(name)
    app = get_app(spec.app)
    machine = get_machine(
        spec.machine, accesses_per_probe=spec.accesses_per_probe
    )
    settings = CollectionSettings(
        ranks="slowest", collector=spec.collector(), workers=0
    )
    signature = collect_signature(app, count, machine.hierarchy, settings)
    return signature.slowest_trace()


def _rule_fit(name: str, spec: SweepSpec, parents: Dict[str, Path]):
    traces = [
        TraceFile.load_npz(parents[p])
        for p in sorted(parents, key=_target_of)
    ]
    report, _template = fit_traces(
        traces, forms=FORM_SETS[spec.forms], engine="batched"
    )
    return report


def _rule_extrapolate(name: str, spec: SweepSpec, parents: Dict[str, Path]):
    target = _target_of(name)
    report = _load_fit(parents["fit"])
    template_name = next(p for p in parents if p.startswith("collect:"))
    template = TraceFile.load_npz(parents[template_name])
    prediction = report.predict_many(
        [target], rate_trust_factor=spec.rate_trust_factor
    )
    return synthesize_from_prediction(template, prediction, target)


def _rule_convolve(name: str, spec: SweepSpec, parents: Dict[str, Path]):
    from repro.psins.convolution import ComputationModel

    trace = TraceFile.load_npz(next(iter(parents.values())))
    machine = get_machine(
        spec.machine, accesses_per_probe=spec.accesses_per_probe
    )
    model = ComputationModel(trace, machine)
    return {
        "n_ranks": int(trace.n_ranks),
        "iteration_time_s": {
            str(bid): float(model.iteration_time_s(bid))
            for bid in sorted(trace.blocks)
        },
    }


def _rule_predict(name: str, spec: SweepSpec, parents: Dict[str, Path]):
    from repro.apps.registry import get_app
    from repro.psins.replay import UniformTimer, replay_job

    target = _target_of(name)
    doc = json.loads(next(iter(parents.values())).read_text())
    times = doc["iteration_time_s"]
    app = get_app(spec.app)
    job = app.build_job(target)
    timer = UniformTimer(lambda bid: times[str(bid)])
    replay = replay_job(job, timer, get_spec(spec.machine).network)
    return {
        "app": spec.app,
        "core_count": target,
        "runtime_s": float(replay.runtime_s),
    }


def _rule_measure(name: str, spec: SweepSpec, parents: Dict[str, Path]):
    from repro.apps.registry import get_app
    from repro.pipeline.predict import measure_runtime

    target = _target_of(name)
    app = get_app(spec.app)
    result = measure_runtime(app, target, get_spec(spec.machine))
    return {
        "app": spec.app,
        "core_count": target,
        "runtime_s": float(result.runtime_s),
    }


def _rule_report_table1(name: str, spec: SweepSpec, parents: Dict[str, Path]):
    from repro.pipeline.experiment import Table1Row
    from repro.pipeline.report import table1_report

    t0 = spec.targets[0]
    extrap = json.loads(parents[f"predict:extrap:{t0}"].read_text())
    coll = json.loads(parents[f"predict:coll:{t0}"].read_text())
    measured = json.loads(parents[f"measure:{t0}"].read_text())
    rows = [
        Table1Row(
            app=spec.app, core_count=t0, trace_type=trace_type,
            predicted_runtime_s=doc["runtime_s"],
            measured_runtime_s=measured["runtime_s"],
        )
        for trace_type, doc in (("Extrap.", extrap), ("Coll.", coll))
    ]
    return {
        "app": spec.app,
        "core_count": t0,
        "measured_runtime_s": measured["runtime_s"],
        "rows": [
            {
                "trace_type": r.trace_type,
                "predicted_runtime_s": r.predicted_runtime_s,
                "pct_error": r.pct_error,
            }
            for r in rows
        ],
        "text": table1_report(rows),
    }


def _rule_report_whatif(name: str, spec: SweepSpec, parents: Dict[str, Path]):
    predictions = {}
    for path in parents.values():
        doc = json.loads(path.read_text())
        predictions[str(doc["core_count"])] = doc["runtime_s"]
    table = Table(
        columns=["Application", "Core Count", "Predicted Runtime (s)"],
        title="What-if sweep: predicted runtimes from extrapolated traces",
        float_fmt=".1f",
    )
    for t in spec.targets:
        table.add_row(spec.app, t, predictions[str(t)])
    return {"app": spec.app, "predictions": predictions, "text": table.render()}


_RULES = {
    "collect": _rule_collect,
    "fit": _rule_fit,
    "extrapolate": _rule_extrapolate,
    "convolve": _rule_convolve,
    "predict": _rule_predict,
    "measure": _rule_measure,
    "report-table1": _rule_report_table1,
    "report-whatif": _rule_report_whatif,
}


# ---------------------------------------------------------------------------
# fit-bundle serialization — one .npz mirroring the serving registry's
# per-model directory, collapsed to a single artifact file
# ---------------------------------------------------------------------------


def _save_fit(report: BatchedFitReport, forms_set: str, path: Path) -> None:
    batch = report.batch
    arrays = {stem: getattr(batch, attr) for stem, attr in _FIT_ARRAYS}
    for f, params in enumerate(batch.params):
        arrays[f"params_{f}"] = params
    meta = {
        "schema_version": DAG_SCHEMA_VERSION,
        "core_counts": [int(c) for c in report.core_counts],
        "level_names": list(report.schema.level_names),
        "pair_keys": [[int(b), int(k)] for b, k in report.pair_keys],
        "form_names": [f.name for f in batch.forms],
        "forms_set": forms_set,
    }
    arrays["meta"] = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(Path(path), **arrays)


def _load_fit(path: Path) -> BatchedFitReport:
    with np.load(Path(path), allow_pickle=False) as data:
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        if meta.get("schema_version") != DAG_SCHEMA_VERSION:
            raise DagError(
                f"unsupported fit-bundle schema "
                f"{meta.get('schema_version')!r} in {path}",
                stage="dag",
            )
        by_name = {f.name: f for f in FORM_SETS[meta["forms_set"]]}
        try:
            forms = tuple(by_name[n] for n in meta["form_names"])
        except KeyError as exc:
            raise DagError(
                f"fit bundle {path} references unknown form {exc}",
                stage="dag",
            )
        batch = BatchFitResult(
            x=np.asarray(data["x"], dtype=np.float64),
            Y=np.asarray(data["Y"]),
            forms=forms,
            params=[
                np.asarray(data[f"params_{f}"]) for f in range(len(forms))
            ],
            sse=np.asarray(data["sse"]),
            applicable=np.asarray(data["applicable"]),
            order=np.asarray(data["order"]),
            n_candidates=np.asarray(data["n_candidates"]),
        )
    return BatchedFitReport(
        core_counts=meta["core_counts"],
        schema=FeatureSchema(meta["level_names"]),
        pair_keys=[(int(b), int(k)) for b, k in meta["pair_keys"]],
        batch=batch,
    )


def _execute_node(
    name: str,
    rule: str,
    spec: SweepSpec,
    parent_paths: Dict[str, str],
    out_path: str,
) -> dict:
    """Run one node and atomically commit its artifact.

    Module-level so it pickles into pool workers.  Generic fault kinds
    (``raise``/``hang``/``crash``/``node-crash``) were already applied
    by the executor under the key ``dag:<name>``.
    """
    out = Path(out_path)
    with span("dag.node", node=name, rule=rule):
        payload = _RULES[rule](
            name, spec, {k: Path(v) for k, v in parent_paths.items()}
        )
        with atomic_writer(out) as tmp:
            if isinstance(payload, TraceFile):
                payload.save_npz(tmp)
            elif isinstance(payload, BatchedFitReport):
                _save_fit(payload, spec.forms, tmp)
            else:
                tmp.write_text(
                    json.dumps(payload, indent=2, sort_keys=True) + "\n"
                )
    return {"sha256": digest_file(out)}


# ---------------------------------------------------------------------------
# run engine
# ---------------------------------------------------------------------------


@dataclass
class DagStats:
    """Counters for one DAG run, mirrored to ``dag.*`` registry metrics."""

    executed: int = 0  #: nodes this run computed and committed
    clean: int = 0  #: nodes reused (valid artifact already present)
    failed: int = 0  #: nodes whose rule raised (isolated, not fatal)
    poisoned: int = 0  #: nodes skipped because an ancestor failed
    quarantined: int = 0  #: corrupt artifacts moved aside, then redone
    lock_waits: int = 0  #: polls spent waiting on another process's lock
    lock_takeovers: int = 0  #: stale locks removed (crashed holder)
    node_crashes: int = 0  #: worker deaths observed while executing nodes

    COUNTER_FIELDS = (
        "executed", "clean", "failed", "poisoned", "quarantined",
        "lock_waits", "lock_takeovers", "node_crashes",
    )

    def bump(self, name: str, n: int = 1) -> None:
        setattr(self, name, getattr(self, name) + n)
        REGISTRY.inc(f"dag.{name}", n)

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.COUNTER_FIELDS}

    def __str__(self) -> str:
        return " ".join(
            f"{name}={getattr(self, name)}" for name in self.COUNTER_FIELDS
        )


@dataclass
class DagRunResult:
    """Outcome of one :func:`run_dag` invocation."""

    spec: SweepSpec
    root: Path
    statuses: Dict[str, str]  #: node -> executed|clean|failed|poisoned
    digests: Dict[str, str]  #: node -> artifact content digest
    artifacts: Dict[str, str]  #: node -> absolute artifact path
    errors: Dict[str, str]  #: failed node -> error message
    stats: DagStats
    report: RunReport
    violations: List[GuardViolation]

    @property
    def ok(self) -> bool:
        return not self.errors and "poisoned" not in self.statuses.values()

    def artifact_json(self, name: str) -> dict:
        """Load one JSON node artifact (reports, predictions)."""
        return json.loads(Path(self.artifacts[name]).read_text())

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "statuses": dict(self.statuses),
            "digests": dict(self.digests),
            "errors": dict(self.errors),
            "stats": self.stats.to_dict(),
        }


def _artifact_path(root: Path, key: str, ext: str) -> Path:
    return root / ARTIFACTS_DIR / f"{key}{ext}"


def _lock_path(root: Path, key: str) -> Path:
    return root / LOCKS_DIR / f"{key}.lock"


def _try_lock(
    root: Path, key: str, stats: DagStats, lock_stale_s: float
) -> bool:
    """O_EXCL advisory node lock; False = somebody else is executing.

    A lock older than ``lock_stale_s`` is presumed abandoned (the
    executor was SIGKILLed between acquire and release) and removed, so
    the next poll can take over.
    """
    path = _lock_path(root, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            return False  # holder released between checks; re-poll
        if age > lock_stale_s:
            try:
                os.remove(path)
            except OSError:  # pragma: no cover - lost the takeover race
                pass
            else:
                stats.bump("lock_takeovers")
                log.warning(
                    "took over stale node lock %s (age %.1fs)", key[:12], age
                )
        return False
    with os.fdopen(fd, "w") as fh:
        fh.write(f"{os.getpid()} {time.time():.6f}\n")
    return True


def _unlock(root: Path, key: str) -> None:
    try:
        os.remove(_lock_path(root, key))
    except OSError:  # pragma: no cover - already taken over
        pass


def _plant_stale_lock(root: Path, key: str, lock_stale_s: float) -> None:
    """``stale-lock`` fault: materialize an abandoned holder's lockfile."""
    path = _lock_path(root, key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("0 0.0\n")
    stale = time.time() - lock_stale_s - 60.0
    os.utime(path, (stale, stale))


def _quarantine_artifact(
    root: Path, art: Path, key: str, stats: DagStats
) -> None:
    """Move a corrupt artifact aside (never delete: forensics first)."""
    qdir = root / QUARANTINE_DIR
    qdir.mkdir(parents=True, exist_ok=True)
    n = 0
    while True:
        dest = qdir / f"{key}-{n}{art.suffix}"
        if not dest.exists():
            break
        n += 1
    try:
        os.replace(art, dest)
    except OSError:  # pragma: no cover - a concurrent run moved it first
        return
    stats.bump("quarantined")
    log.warning("quarantined corrupt artifact %s -> %s", art.name, dest.name)


def _artifact_valid(art: Path, meta: Optional[dict]) -> bool:
    """Does the on-disk artifact match its committed digest?"""
    if not meta or meta.get("status") != "done" or not art.exists():
        return False
    return digest_file(art) == meta.get("sha256")


def run_dag(
    spec: SweepSpec,
    root: Union[str, Path],
    *,
    fresh: bool = False,
    workers: Optional[int] = 0,
    resilience: Optional[ResilienceConfig] = None,
    report: Optional[RunReport] = None,
    lock_stale_s: float = 30.0,
    lock_poll_s: float = 0.05,
    lock_wait_s: float = 600.0,
) -> DagRunResult:
    """Execute a spec's graph incrementally under ``root``.

    Walks the graph in topological waves.  Per node: resolve its
    content key from the parents' output digests, reuse the committed
    artifact when its recorded digest still matches (``clean``),
    quarantine-and-redo when it does not, and otherwise execute the
    rule under a node lockfile through the resilient executor.  Node
    completions append durably to ``state.jsonl`` as they land, so a
    SIGKILL at any instant loses at most in-flight nodes; ``fresh=True``
    truncates the store and recomputes everything.
    """
    dag = build_dag(spec)
    root = Path(root)
    (root / ARTIFACTS_DIR).mkdir(parents=True, exist_ok=True)
    resilience = resilience or ResilienceConfig()
    report = report if report is not None else RunReport()
    stats = DagStats()
    REGISTRY.gauge("dag.nodes_total").set(float(len(dag.nodes)))
    store = RunJournal(root / STATE_FILE, resume=not fresh)
    statuses: Dict[str, str] = {}
    digests: Dict[str, str] = {}
    artifacts: Dict[str, str] = {}
    errors: Dict[str, str] = {}
    violations: List[GuardViolation] = []
    bad: Dict[str, str] = {}  # name -> root-cause description
    pending: Dict[str, Node] = dict(dag.nodes)
    try:
        with span("dag.run", app=spec.app, nodes=len(dag.nodes)):
            while pending:
                _run_wave(
                    dag, root, store, pending, statuses, digests, artifacts,
                    errors, bad, violations, stats, report,
                    workers=workers, resilience=resilience,
                    lock_stale_s=lock_stale_s, lock_poll_s=lock_poll_s,
                    lock_wait_s=lock_wait_s,
                )
    finally:
        store.close()
    log.info("dag run complete: %s", stats)
    return DagRunResult(
        spec=spec, root=root, statuses=statuses, digests=digests,
        artifacts=artifacts, errors=errors, stats=stats, report=report,
        violations=violations,
    )


def _run_wave(
    dag: Dag,
    root: Path,
    store: RunJournal,
    pending: Dict[str, Node],
    statuses: Dict[str, str],
    digests: Dict[str, str],
    artifacts: Dict[str, str],
    errors: Dict[str, str],
    bad: Dict[str, str],
    violations: List[GuardViolation],
    stats: DagStats,
    report: RunReport,
    *,
    workers: Optional[int],
    resilience: ResilienceConfig,
    lock_stale_s: float,
    lock_poll_s: float,
    lock_wait_s: float,
) -> None:
    spec = dag.spec
    # poison-cone propagation first: a node below any failed/poisoned
    # ancestor is skipped with a violation, never executed
    poisoned = [
        n for n in pending.values() if any(p in bad for p in n.parents)
    ]
    for node in poisoned:
        cause = next(p for p in node.parents if p in bad)
        statuses[node.name] = "poisoned"
        bad[node.name] = f"poisoned via {cause}"
        stats.bump("poisoned")
        violations.append(
            GuardViolation(
                artifact=node.name,
                boundary="dag",
                check="upstream-failed",
                message=f"upstream {cause}: {bad[cause]}",
            )
        )
        del pending[node.name]
    ready = [
        n for n in pending.values()
        if all(p in digests for p in n.parents)
    ]
    if not ready:
        if pending:  # pragma: no cover - build_dag forbids cycles
            raise DagError(
                f"no runnable nodes among {sorted(pending)}", stage="dag"
            )
        return

    def adopt_clean(node: Node, key: str, art: Path) -> None:
        digests[node.name] = store.meta(key)["sha256"]
        artifacts[node.name] = str(art)
        statuses[node.name] = "clean"
        stats.bump("clean")
        del pending[node.name]

    # split the wave: reuse committed-and-intact artifacts, run the rest
    to_run: List[Tuple[Node, str, Path]] = []
    for node in ready:
        key = node_key(node, spec, digests)
        art = _artifact_path(root, key, node.ext)
        if art.exists() and (
            faults.check_dag_corrupt(f"dag:{node.name}") is not None
        ):
            # bit-rot fault: damage the committed bytes right before
            # reuse validation, which must catch and quarantine them
            data = art.read_bytes()
            art.write_bytes(data[: len(data) // 2])
            log.warning("fault plan corrupted artifact of %s", node.name)
        meta = store.meta(key)
        if _artifact_valid(art, meta):
            adopt_clean(node, key, art)
            continue
        if meta and meta.get("status") == "done" and art.exists():
            # committed digest no longer matches the bytes: bit-rot or
            # an injected corrupt-node-artifact — quarantine, then redo
            _quarantine_artifact(root, art, key, stats)
        to_run.append((node, key, art))

    # node locks: exactly one process executes each node; losers poll,
    # refresh the shared state store, and adopt the winner's artifact
    runnable: List[Tuple[Node, str, Path]] = []
    for node, key, art in to_run:
        if faults.check_stale_lock(f"dag:{node.name}") is not None:
            _plant_stale_lock(root, key, lock_stale_s)
        adopted = False
        waited = 0.0
        while not _try_lock(root, key, stats, lock_stale_s):
            stats.bump("lock_waits")
            time.sleep(lock_poll_s)
            waited += lock_poll_s
            store.refresh()
            if _artifact_valid(art, store.meta(key)):
                adopted = True
                break
            if waited >= lock_wait_s:
                raise DagError(
                    f"timed out after {lock_wait_s:.0f}s waiting for the "
                    f"node lock of {node.name}",
                    stage="dag", task_key=key,
                )
        if not adopted:
            # double-check under the lock: the previous holder may have
            # committed while we raced for it
            store.refresh()
            if _artifact_valid(art, store.meta(key)):
                _unlock(root, key)
                adopted = True
        if adopted:
            adopt_clean(node, key, art)
        else:
            runnable.append((node, key, art))
    if not runnable:
        return

    tasks = [
        (
            node.name, node.rule, spec,
            {p: artifacts[p] for p in node.parents}, str(art),
        )
        for node, key, art in runnable
    ]
    keys = [f"dag:{node.name}" for node, _key, _art in runnable]

    def on_result(i: int, value) -> None:
        # durable per-node commit, written the moment the node settles:
        # a SIGKILL after this line never re-executes the node
        node, key, _art = runnable[i]
        if isinstance(value, Exception):
            store.amend(
                key, node=node.name, rule=node.rule, status="failed",
                error=str(value),
            )
        else:
            store.amend(
                key, node=node.name, rule=node.rule, status="done",
                sha256=value["sha256"],
            )

    log.info(
        "wave: executing %d node(s): %s",
        len(runnable), ", ".join(n.name for n, _k, _a in runnable),
    )
    crashes_before = report.crashes
    results, _ = run_tasks_resilient(
        _execute_node, tasks,
        keys=keys, workers=workers, config=resilience, report=report,
        on_result=on_result, stage="dag", collect_errors=True,
    )
    if report.crashes > crashes_before:
        stats.bump("node_crashes", report.crashes - crashes_before)
    for (node, key, art), value in zip(runnable, results):
        _unlock(root, key)
        del pending[node.name]
        if isinstance(value, Exception) or value is None:
            message = str(value) if value is not None else "no result"
            statuses[node.name] = "failed"
            errors[node.name] = message
            bad[node.name] = message
            stats.bump("failed")
            violations.append(
                GuardViolation(
                    artifact=node.name,
                    boundary="dag",
                    check="node-failed",
                    message=message,
                )
            )
        else:
            digests[node.name] = value["sha256"]
            artifacts[node.name] = str(art)
            statuses[node.name] = "executed"
            stats.bump("executed")


# ---------------------------------------------------------------------------
# status
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodeStatus:
    """One node's dirtiness verdict, with the reason when explained."""

    name: str
    rule: str
    state: str  #: clean | stale | failed | blocked
    reason: str
    key: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "rule": self.rule,
            "state": self.state,
            "reason": self.reason,
            "key": self.key,
        }


def dag_status(spec: SweepSpec, root: Union[str, Path]) -> List[NodeStatus]:
    """What would ``repro dag run`` do right now, and why.

    Pure read: walks the graph in topological order resolving keys from
    committed digests, without taking locks or writing anything.  A
    node below a non-clean ancestor is ``blocked`` — its key cannot be
    resolved until the ancestor recomputes.
    """
    dag = build_dag(spec)
    root = Path(root)
    metas: Dict[str, Optional[dict]] = {}
    state_path = root / STATE_FILE
    if state_path.exists():
        store = RunJournal(state_path, resume=True)
        metas = store.metas()
        store.close()
    built_names = {
        meta.get("node") for meta in metas.values() if meta
    }
    digests: Dict[str, str] = {}
    out: List[NodeStatus] = []
    for node in dag.topo():
        unresolved = [p for p in node.parents if p not in digests]
        if unresolved:
            out.append(NodeStatus(
                name=node.name, rule=node.rule, state="blocked",
                reason=f"upstream {unresolved[0]} is not clean",
            ))
            continue
        key = node_key(node, spec, digests)
        art = _artifact_path(root, key, node.ext)
        meta = metas.get(key)
        if meta and meta.get("status") == "done":
            if not art.exists():
                state, reason = "stale", "artifact missing"
            elif digest_file(art) != meta.get("sha256"):
                state, reason = "stale", "artifact corrupt (will quarantine)"
            else:
                state, reason = "clean", "artifact matches committed digest"
                digests[node.name] = meta["sha256"]
        elif meta:
            state = "failed"
            reason = f"failed last run: {meta.get('error', 'unknown error')}"
        elif node.name in built_names:
            state, reason = "stale", "inputs or config changed"
        else:
            state, reason = "stale", "never built"
        out.append(NodeStatus(
            name=node.name, rule=node.rule, state=state, reason=reason,
            key=key,
        ))
    return out
