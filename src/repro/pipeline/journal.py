"""Checkpoint journal: resumable multi-unit pipeline runs.

A long collection sweep (Table I, what-if campaigns) is a series of
independent *units* — one ``(app, core count)`` collection each.  The
journal is an append-only JSONL file, one line per completed unit,
living next to the signature cache (or wherever ``--checkpoint-dir``
points).  Killing a run mid-sweep loses at most the in-flight units:
re-invoking with ``--resume`` skips every journaled unit (its payload
is served by the signature cache) and re-collects only the rest.

The journal records *bookkeeping*, the cache records *data*.  A
journaled unit whose cache entry has vanished (cleared or quarantined
cache) is simply re-collected — resume can never produce results that
differ from a fresh run, because collection is a pure function of its
configuration.

Lines are written with flush+fsync before a unit is considered
committed, and a torn final line (the crash case) is ignored on load.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.obs.log import get_logger
from repro.obs.metrics import REGISTRY

log = get_logger("pipeline.journal")


def unit_key(*parts) -> str:
    """Canonical ``:``-joined unit name, e.g. ``collect:jacobi:bw:16``."""
    return ":".join(str(p) for p in parts)


@dataclass
class JournalStats:
    """Counters for one journal instance's lifetime."""

    resumed: int = 0  #: units skipped because a previous run completed them
    marked: int = 0  #: units newly committed by this run
    amended: int = 0  #: units re-committed with replacement metadata

    COUNTER_FIELDS = ("resumed", "marked", "amended")

    def bump(self, name: str, n: int = 1) -> None:
        setattr(self, name, getattr(self, name) + n)
        REGISTRY.inc(f"journal.{name}", n)

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.COUNTER_FIELDS}

    def __str__(self) -> str:
        return (
            f"resumed={self.resumed} marked={self.marked} "
            f"amended={self.amended}"
        )


class RunJournal:
    """Append-only completion journal for one logical run.

    ``resume=False`` (a fresh run) truncates any stale journal at the
    same path; ``resume=True`` loads it and lets :meth:`skip` answer
    "already done?".
    """

    def __init__(self, path: Union[str, Path], *, resume: bool = False):
        self.path = Path(path)
        self.resume = resume
        self.stats = JournalStats()
        self._done = set()
        self._meta: dict = {}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume and self.path.exists():
            self._load()
        self._fh = open(self.path, "a" if resume else "w", encoding="utf-8")

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    unit = entry["unit"]
                except (ValueError, KeyError, TypeError):
                    # torn tail line from a killed writer: the unit was
                    # not committed, so it is simply redone
                    continue
                self._done.add(unit)
                # latest record wins: an :meth:`amend` written after the
                # original mark replaces its metadata on reload
                self._meta[unit] = entry.get("meta")

    def refresh(self) -> None:
        """Re-read the file, folding in records other processes appended.

        The cross-process primitive behind shared DAG state stores: two
        ``repro dag run`` processes append to the same journal (O_APPEND
        writes of whole lines), and a reader refreshes to observe the
        other writer's committed units.  Torn tails are skipped exactly
        as on load.
        """
        if self.path.exists():
            self._load()

    # ------------------------------------------------------------------

    @property
    def completed(self) -> frozenset:
        return frozenset(self._done)

    def done(self, unit: str) -> bool:
        return unit in self._done

    def skip(self, unit: str) -> bool:
        """True (and counted) when ``unit`` finished in a previous run."""
        if unit in self._done:
            self.stats.bump("resumed")
            log.debug("resume skip: %s", unit)
            return True
        return False

    def meta(self, unit: str) -> Optional[dict]:
        """The latest metadata committed with ``unit`` (None when bare)."""
        return self._meta.get(unit)

    def metas(self) -> dict:
        """Snapshot of every unit's latest metadata (unit -> meta|None)."""
        return dict(self._meta)

    def _append(self, unit: str, meta: dict) -> None:
        entry = {"unit": unit}
        if meta:
            entry["meta"] = meta
        self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._done.add(unit)
        self._meta[unit] = meta or None

    def mark(self, unit: str, **meta) -> None:
        """Commit ``unit`` as complete (durably: flush + fsync)."""
        if unit in self._done:
            return
        self._append(unit, meta)
        self.stats.bump("marked")
        log.debug("journaled: %s", unit)

    def amend(self, unit: str, **meta) -> None:
        """Commit ``unit`` with *replacement* metadata, even if done.

        Appends a fresh record (the store stays append-only; recovery
        takes the latest record per unit), so a unit's state can change
        over a run's lifetime — the DAG uses this for ``failed`` →
        ``done`` transitions when a retry or re-run succeeds.
        """
        self._append(unit, meta)
        self.stats.bump("amended")
        log.debug("journal amended: %s", unit)

    def mark_many(self, units: Iterable[str]) -> None:
        for unit in units:
            self.mark(unit)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunJournal(path={str(self.path)!r}, resume={self.resume}, "
            f"completed={len(self._done)})"
        )


def default_journal_path(
    checkpoint_dir: Union[str, Path], run_name: str
) -> Path:
    """Journal file path for a named run under a checkpoint directory."""
    safe = "".join(c if (c.isalnum() or c in "-_.") else "-" for c in run_name)
    return Path(checkpoint_dir) / f"{safe}.jsonl"


def make_journal(
    checkpoint_dir: Optional[Union[str, Path]],
    run_name: str,
    *,
    resume: bool = False,
) -> Optional[RunJournal]:
    """Build a journal when checkpointing is requested, else ``None``."""
    if checkpoint_dir is None:
        return None
    return RunJournal(default_journal_path(checkpoint_dir, run_name), resume=resume)
