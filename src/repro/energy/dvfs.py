"""Memory- and computation-aware DVFS what-ifs (paper ref [23]).

Laurenzano et al. (Euro-Par'11) reduce energy by lowering core frequency
during memory-bound phases: memory time barely responds to frequency,
while core dynamic power drops superlinearly.  With per-block memory/fp
breakdowns (Eq. 1) and the activity-based power model, the same analysis
falls out here per basic block:

- time(f)   = memory_time + fp_time * (f_nom / f)
- power(f)  = static + mem_dynamic + core_dynamic * (f / f_nom)^3
  (voltage tracks frequency, P_dyn ~ f * V^2)

``plan_dvfs`` picks each block's energy-minimal frequency subject to a
slowdown budget — computable from an *extrapolated* trace, i.e. a DVFS
schedule for 8192 cores designed without ever running there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.energy.power import EnergyModel
from repro.util.validation import check_in_range, check_positive

#: Typical discrete frequency ladder (relative to nominal).
DEFAULT_FREQUENCIES = (0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass
class DvfsPoint:
    """One block's behavior at one relative frequency."""

    block_id: int
    frequency: float
    time_s: float
    power_w: float

    @property
    def energy_j(self) -> float:
        return self.time_s * self.power_w


@dataclass
class DvfsPlan:
    """A per-block frequency schedule and its aggregate effect."""

    choices: Dict[int, DvfsPoint] = field(default_factory=dict)
    baseline_time_s: float = 0.0
    baseline_energy_j: float = 0.0

    @property
    def time_s(self) -> float:
        return sum(p.time_s for p in self.choices.values())

    @property
    def energy_j(self) -> float:
        return sum(p.energy_j for p in self.choices.values())

    def energy_savings(self) -> float:
        if self.baseline_energy_j <= 0:
            return 0.0
        return 1.0 - self.energy_j / self.baseline_energy_j

    def slowdown(self) -> float:
        if self.baseline_time_s <= 0:
            return 0.0
        return self.time_s / self.baseline_time_s - 1.0


def _point(model: EnergyModel, block_id: int, frequency: float) -> DvfsPoint:
    comp = model.computation.breakdown(block_id)
    from repro.psins.convolution import combine_with_overlap

    fp_scaled = comp.fp_time_s / frequency
    time_s = combine_with_overlap(
        comp.memory_time_s, fp_scaled, model.computation.config.overlap
    )
    base = model.block(block_id)
    power_w = (
        model.power.static_w
        + model.power.mem_dynamic_max_w * base.mem_activity
        + model.power.core_dynamic_max_w
        * base.core_activity
        * frequency**3
    )
    return DvfsPoint(
        block_id=block_id, frequency=frequency, time_s=time_s, power_w=power_w
    )


def plan_dvfs(
    model: EnergyModel,
    *,
    frequencies: Sequence[float] = DEFAULT_FREQUENCIES,
    max_slowdown: float = 0.05,
) -> DvfsPlan:
    """Choose each block's energy-minimal frequency within a slowdown cap.

    Parameters
    ----------
    model:
        Energy model over the (possibly extrapolated) trace.
    frequencies:
        Available relative frequencies (must include 1.0).
    max_slowdown:
        Per-block slowdown budget (fraction of the block's nominal
        time); the aggregate slowdown is then bounded by the same
        fraction.
    """
    check_in_range("max_slowdown", max_slowdown, low=0.0)
    if 1.0 not in frequencies:
        raise ValueError("the frequency ladder must include nominal (1.0)")
    for f in frequencies:
        check_positive("frequency", f)
    plan = DvfsPlan()
    for bid in model.computation.trace.blocks:
        nominal = _point(model, bid, 1.0)
        plan.baseline_time_s += nominal.time_s
        plan.baseline_energy_j += nominal.energy_j
        budget = nominal.time_s * (1.0 + max_slowdown)
        best = nominal
        for f in frequencies:
            candidate = _point(model, bid, f)
            if candidate.time_s <= budget and candidate.energy_j < best.energy_j:
                best = candidate
        plan.choices[bid] = best
    return plan
