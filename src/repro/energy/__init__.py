"""Power and energy modeling on top of the prediction framework.

The paper selects its feature set because the features "are important
for both performance and energy" (§I) and builds on PMaC's energy work:
memory/computation-aware dynamic frequency scaling (ref [23]) and
power/energy models of HPC kernels from the same low-level features
(ref [24]).  This package completes that half of the story:

- :mod:`repro.energy.power` — per-block power draw from the trace's
  feature vectors (activity-based: achieved flop and byte rates against
  the machine's dynamic-power envelope) and whole-run energy from a
  replayed timeline.
- :mod:`repro.energy.dvfs` — frequency-scaling what-ifs: memory-bound
  blocks tolerate lower frequency with little slowdown, so a per-block
  frequency schedule saves energy — computable at 8192 cores from an
  extrapolated trace, without the machine or the run existing.
"""

from repro.energy.power import (
    BlockEnergyBreakdown,
    EnergyModel,
    EnergyResult,
    PowerParameters,
)
from repro.energy.dvfs import DvfsPlan, DvfsPoint, plan_dvfs

__all__ = [
    "PowerParameters",
    "BlockEnergyBreakdown",
    "EnergyModel",
    "EnergyResult",
    "DvfsPoint",
    "DvfsPlan",
    "plan_dvfs",
]
