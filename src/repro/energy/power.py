"""Activity-based per-core power and whole-run energy models.

Follows the structure of PMaC's kernel power models (paper ref [24]):
per-core power is a static floor plus dynamic components proportional to
how hard each subsystem is driven —

    P(block) = P_static
             + P_core_max * (achieved flop rate / peak flop rate)
             + P_mem_max  * (achieved byte rate / peak byte rate)

Both activity ratios come from quantities the prediction framework
already produces per block: Eq. 1's memory time (hence bytes/s) and the
fp op counts and issue rates (hence flops/s).  Because the inputs are
exactly the trace's feature vectors, energy extrapolates to large core
counts the same way runtime does — from small-count traces only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


from repro.machine.timing import FP_OP_KINDS
from repro.psins.convolution import ComputationModel
from repro.psins.replay import ReplayResult
from repro.simmpi.events import ComputeEvent
from repro.simmpi.runtime import Job
from repro.util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class PowerParameters:
    """Per-core power envelope of a machine.

    Defaults are in the range of a late-2000s HPC core (the paper's
    Blue Waters / Cray XT5 era): ~10 W static, up to ~15 W of core
    dynamic power at full floating-point throughput and ~8 W of memory-
    subsystem power at full bandwidth.
    """

    static_w: float = 10.0
    core_dynamic_max_w: float = 15.0
    mem_dynamic_max_w: float = 8.0
    #: peak per-core flop rate used to normalize core activity, GFLOP/s
    peak_gflops: float = 8.0
    #: peak per-core memory bandwidth used to normalize memory activity
    peak_gbs: float = 16.0
    #: core-pipeline activity of issuing one memory op, relative to a
    #: flop (address generation, load/store units): memory-bound code
    #: still burns core power, which is what DVFS reclaims (ref [23])
    mem_issue_weight: float = 0.5

    def __post_init__(self):
        check_positive("static_w", self.static_w)
        check_in_range("core_dynamic_max_w", self.core_dynamic_max_w, low=0.0)
        check_in_range("mem_dynamic_max_w", self.mem_dynamic_max_w, low=0.0)
        check_positive("peak_gflops", self.peak_gflops)
        check_positive("peak_gbs", self.peak_gbs)
        check_in_range("mem_issue_weight", self.mem_issue_weight, 0.0, 1.0)

    @property
    def max_power_w(self) -> float:
        return self.static_w + self.core_dynamic_max_w + self.mem_dynamic_max_w


@dataclass
class BlockEnergyBreakdown:
    """Power/energy of one block's full (traced-task) execution."""

    block_id: int
    time_s: float
    power_w: float
    core_activity: float
    mem_activity: float

    @property
    def energy_j(self) -> float:
        return self.time_s * self.power_w


@dataclass
class EnergyResult:
    """Whole-job energy prediction."""

    app: str
    n_ranks: int
    compute_energy_j: float
    idle_energy_j: float

    @property
    def total_energy_j(self) -> float:
        return self.compute_energy_j + self.idle_energy_j


class EnergyModel:
    """Per-block power and whole-run energy for one (trace, machine) pair.

    Wraps a :class:`~repro.psins.convolution.ComputationModel`: every
    block's activity ratios are derived from its Eq. 1 breakdown and the
    trace's feature vectors.
    """

    def __init__(
        self,
        computation: ComputationModel,
        power: Optional[PowerParameters] = None,
    ):
        self.computation = computation
        self.power = power or PowerParameters()
        self._blocks: Dict[int, BlockEnergyBreakdown] = {}
        self._build()

    def _build(self) -> None:
        trace = self.computation.trace
        schema = trace.schema
        for bid, block in trace.blocks.items():
            breakdown = self.computation.breakdown(bid)
            time_s = breakdown.total_time_s
            if time_s <= 0:
                self._blocks[bid] = BlockEnergyBreakdown(
                    block_id=bid,
                    time_s=0.0,
                    power_w=self.power.static_w,
                    core_activity=0.0,
                    mem_activity=0.0,
                )
                continue
            fp_ops = 0.0
            mem_ops = 0.0
            bytes_moved = 0.0
            for ins in block.instructions:
                vec = ins.features
                for kind in FP_OP_KINDS:
                    fp_ops += float(vec[schema.index(kind)])
                mem_ops += float(vec[schema.index("mem_ops")])
                bytes_moved += float(
                    vec[schema.index("mem_ops")] * vec[schema.index("ref_bytes")]
                )
            issue_ops = fp_ops + self.power.mem_issue_weight * mem_ops
            core_activity = min(
                1.0, (issue_ops / time_s) / (self.power.peak_gflops * 1e9)
            )
            mem_activity = min(
                1.0, (bytes_moved / time_s) / (self.power.peak_gbs * 1e9)
            )
            power_w = (
                self.power.static_w
                + self.power.core_dynamic_max_w * core_activity
                + self.power.mem_dynamic_max_w * mem_activity
            )
            self._blocks[bid] = BlockEnergyBreakdown(
                block_id=bid,
                time_s=time_s,
                power_w=power_w,
                core_activity=core_activity,
                mem_activity=mem_activity,
            )

    def block(self, block_id: int) -> BlockEnergyBreakdown:
        try:
            return self._blocks[block_id]
        except KeyError:
            raise KeyError(f"no energy breakdown for block {block_id}") from None

    def block_power_w(self, block_id: int) -> float:
        return self.block(block_id).power_w

    def traced_task_energy_j(self) -> float:
        """Energy of the traced task's computation alone."""
        return sum(b.energy_j for b in self._blocks.values())

    def job_energy(self, job: Job, replay: ReplayResult) -> EnergyResult:
        """Whole-job energy from a replayed timeline.

        Compute events burn their block's modeled power for their
        modeled duration (scaled by each rank's iterations); the
        remaining wall-clock (communication, waiting) burns static
        power — the idle-energy term that grows with load imbalance.
        """
        if replay.n_ranks != job.n_ranks:
            raise ValueError("replay and job rank counts differ")
        per_iter_power_time = {
            bid: (self.computation.iteration_time_s(bid), b.power_w)
            for bid, b in self._blocks.items()
        }
        compute_energy = 0.0
        compute_time_total = 0.0
        for script in job.scripts:
            for ev in script.events:
                if isinstance(ev, ComputeEvent):
                    dt, watts = per_iter_power_time[ev.block_id]
                    compute_energy += dt * ev.iterations * watts
                    compute_time_total += dt * ev.iterations
        wall = replay.runtime_s
        idle_time = max(0.0, wall * job.n_ranks - compute_time_total)
        idle_energy = idle_time * self.power.static_w
        return EnergyResult(
            app=job.app,
            n_ranks=job.n_ranks,
            compute_energy_j=compute_energy,
            idle_energy_j=idle_energy,
        )
