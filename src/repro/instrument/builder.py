"""Fluent construction of synthetic programs.

The app proxies build many similarly-shaped blocks; :class:`ProgramBuilder`
removes the boilerplate of ids, locations and tuple plumbing while
keeping :mod:`repro.instrument.program` dataclasses frozen and explicit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.instrument.program import (
    BasicBlockSpec,
    FpInstructionSpec,
    MemInstructionSpec,
    Program,
)
from repro.memstream.patterns import AccessPattern
from repro.trace.records import SourceLocation


class BlockBuilder:
    """Accumulates instructions for one basic block."""

    def __init__(
        self,
        program_builder: "ProgramBuilder",
        block_id: int,
        function: str,
        file: str,
        line: int,
    ):
        self._pb = program_builder
        self._block_id = block_id
        self._location = SourceLocation(
            function=function, file=file, line=line, address=0x400000 + 64 * block_id
        )
        self._mem: List[MemInstructionSpec] = []
        self._fp: List[FpInstructionSpec] = []
        self._exec_count = 1

    def load(self, pattern: AccessPattern, per_iteration: int = 1) -> "BlockBuilder":
        self._mem.append(
            MemInstructionSpec(kind="load", pattern=pattern, per_iteration=per_iteration)
        )
        return self

    def store(self, pattern: AccessPattern, per_iteration: int = 1) -> "BlockBuilder":
        self._mem.append(
            MemInstructionSpec(kind="store", pattern=pattern, per_iteration=per_iteration)
        )
        return self

    def fp(
        self,
        op_counts: Dict[str, float],
        *,
        ilp: float = 2.0,
        dep_chain: float = 3.0,
    ) -> "BlockBuilder":
        self._fp.append(
            FpInstructionSpec(op_counts=dict(op_counts), ilp=ilp, dep_chain=dep_chain)
        )
        return self

    def executes(self, count: int) -> "BlockBuilder":
        """Set the block's dynamic execution (iteration) count."""
        self._exec_count = int(count)
        return self

    def done(self) -> "ProgramBuilder":
        """Finalize the block and return to the program builder."""
        self._pb._program.add_block(
            BasicBlockSpec(
                block_id=self._block_id,
                location=self._location,
                mem_instructions=tuple(self._mem),
                fp_instructions=tuple(self._fp),
                exec_count=self._exec_count,
            )
        )
        return self._pb


class ProgramBuilder:
    """Builds a :class:`~repro.instrument.program.Program` fluently.

    Example::

        program = (
            ProgramBuilder("jacobi")
            .block("sweep", file="jacobi.f90", line=42)
            .load(StencilPattern(...)).store(StridedPattern(...))
            .fp({"fp_add": 4, "fp_mul": 2})
            .executes(10_000)
            .done()
            .build()
        )
    """

    def __init__(self, name: str):
        self._program = Program(name=name)
        self._next_id = 0

    def block(
        self,
        function: str,
        *,
        file: str = "<synthetic>",
        line: int = 0,
        block_id: Optional[int] = None,
    ) -> BlockBuilder:
        bid = self._next_id if block_id is None else block_id
        self._next_id = max(self._next_id, bid) + 1
        return BlockBuilder(self, bid, function, file, line)

    def build(self, *, layout: bool = True) -> Program:
        """Finish; optionally run the address-layout pass."""
        if layout:
            self._program.layout()
        return self._program
